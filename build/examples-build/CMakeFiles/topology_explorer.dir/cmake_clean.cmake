file(REMOVE_RECURSE
  "../examples/topology_explorer"
  "../examples/topology_explorer.pdb"
  "CMakeFiles/topology_explorer.dir/topology_explorer.cpp.o"
  "CMakeFiles/topology_explorer.dir/topology_explorer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
