file(REMOVE_RECURSE
  "../examples/multi_user_cluster"
  "../examples/multi_user_cluster.pdb"
  "CMakeFiles/multi_user_cluster.dir/multi_user_cluster.cpp.o"
  "CMakeFiles/multi_user_cluster.dir/multi_user_cluster.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_user_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
