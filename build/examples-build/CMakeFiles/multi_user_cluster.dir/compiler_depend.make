# Empty compiler generated dependencies file for multi_user_cluster.
# This may be replaced when dependencies are built.
