# Empty dependencies file for measure_and_reschedule.
# This may be replaced when dependencies are built.
