file(REMOVE_RECURSE
  "../examples/measure_and_reschedule"
  "../examples/measure_and_reschedule.pdb"
  "CMakeFiles/measure_and_reschedule.dir/measure_and_reschedule.cpp.o"
  "CMakeFiles/measure_and_reschedule.dir/measure_and_reschedule.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_and_reschedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
