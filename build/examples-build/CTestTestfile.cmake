# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "3")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_video_on_demand "/root/repo/build/examples/video_on_demand")
set_tests_properties(example_video_on_demand PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_user_cluster "/root/repo/build/examples/multi_user_cluster")
set_tests_properties(example_multi_user_cluster PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_topology_explorer "/root/repo/build/examples/topology_explorer" "rings")
set_tests_properties(example_topology_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_measure_and_reschedule "/root/repo/build/examples/measure_and_reschedule")
set_tests_properties(example_measure_and_reschedule PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
