# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_usage "/root/repo/build/tools/commsched_cli")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_topo "/root/repo/build/tools/commsched_cli" "topo" "--kind" "rings")
set_tests_properties(cli_topo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_topo_dot "/root/repo/build/tools/commsched_cli" "topo" "--kind" "mixed" "--dot")
set_tests_properties(cli_topo_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_distance "/root/repo/build/tools/commsched_cli" "distance" "--kind" "random" "--switches" "8" "--seed" "2")
set_tests_properties(cli_distance PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_distance_hops "/root/repo/build/tools/commsched_cli" "distance" "--kind" "mixed" "--hops")
set_tests_properties(cli_distance_hops PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_schedule "/root/repo/build/tools/commsched_cli" "schedule" "--kind" "mixed" "--apps" "4")
set_tests_properties(cli_schedule PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/commsched_cli" "simulate" "--kind" "random" "--switches" "12" "--apps" "4" "--mapping" "random" "--points" "2" "--max-rate" "0.4" "--warmup" "500" "--measure" "1500")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate_duato "/root/repo/build/tools/commsched_cli" "simulate" "--kind" "random" "--switches" "12" "--apps" "4" "--mapping" "blocked" "--points" "2" "--max-rate" "0.4" "--duato" "--warmup" "500" "--measure" "1500")
set_tests_properties(cli_simulate_duato PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_experiment "/root/repo/build/tools/commsched_cli" "experiment" "--kind" "random" "--switches" "12" "--apps" "4" "--randoms" "1" "--points" "2" "--max-rate" "0.5" "--warmup" "500" "--measure" "1500")
set_tests_properties(cli_experiment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_kind "/root/repo/build/tools/commsched_cli" "topo" "--kind" "bogus")
set_tests_properties(cli_bad_kind PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_indivisible "/root/repo/build/tools/commsched_cli" "schedule" "--kind" "random" "--switches" "14" "--apps" "4")
set_tests_properties(cli_indivisible PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
