file(REMOVE_RECURSE
  "../tools/commsched_cli"
  "../tools/commsched_cli.pdb"
  "CMakeFiles/commsched_cli.dir/commsched_cli.cpp.o"
  "CMakeFiles/commsched_cli.dir/commsched_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commsched_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
