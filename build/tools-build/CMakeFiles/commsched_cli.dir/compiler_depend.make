# Empty compiler generated dependencies file for commsched_cli.
# This may be replaced when dependencies are built.
