file(REMOVE_RECURSE
  "libcs_hetero.a"
)
