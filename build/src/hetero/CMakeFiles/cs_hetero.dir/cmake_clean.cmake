file(REMOVE_RECURSE
  "CMakeFiles/cs_hetero.dir/combined.cpp.o"
  "CMakeFiles/cs_hetero.dir/combined.cpp.o.d"
  "CMakeFiles/cs_hetero.dir/etc.cpp.o"
  "CMakeFiles/cs_hetero.dir/etc.cpp.o.d"
  "CMakeFiles/cs_hetero.dir/meta_heuristics.cpp.o"
  "CMakeFiles/cs_hetero.dir/meta_heuristics.cpp.o.d"
  "libcs_hetero.a"
  "libcs_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
