# Empty dependencies file for cs_hetero.
# This may be replaced when dependencies are built.
