# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("obs")
subdirs("linalg")
subdirs("topology")
subdirs("routing")
subdirs("distance")
subdirs("quality")
subdirs("workload")
subdirs("sched")
subdirs("hetero")
subdirs("simnet")
subdirs("stats")
subdirs("core")
