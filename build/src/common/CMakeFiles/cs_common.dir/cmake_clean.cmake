file(REMOVE_RECURSE
  "CMakeFiles/cs_common.dir/check.cpp.o"
  "CMakeFiles/cs_common.dir/check.cpp.o.d"
  "CMakeFiles/cs_common.dir/parallel.cpp.o"
  "CMakeFiles/cs_common.dir/parallel.cpp.o.d"
  "CMakeFiles/cs_common.dir/rng.cpp.o"
  "CMakeFiles/cs_common.dir/rng.cpp.o.d"
  "CMakeFiles/cs_common.dir/strings.cpp.o"
  "CMakeFiles/cs_common.dir/strings.cpp.o.d"
  "CMakeFiles/cs_common.dir/table.cpp.o"
  "CMakeFiles/cs_common.dir/table.cpp.o.d"
  "libcs_common.a"
  "libcs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
