file(REMOVE_RECURSE
  "CMakeFiles/cs_sched.dir/annealing.cpp.o"
  "CMakeFiles/cs_sched.dir/annealing.cpp.o.d"
  "CMakeFiles/cs_sched.dir/astar.cpp.o"
  "CMakeFiles/cs_sched.dir/astar.cpp.o.d"
  "CMakeFiles/cs_sched.dir/exhaustive.cpp.o"
  "CMakeFiles/cs_sched.dir/exhaustive.cpp.o.d"
  "CMakeFiles/cs_sched.dir/local_search.cpp.o"
  "CMakeFiles/cs_sched.dir/local_search.cpp.o.d"
  "CMakeFiles/cs_sched.dir/online.cpp.o"
  "CMakeFiles/cs_sched.dir/online.cpp.o.d"
  "CMakeFiles/cs_sched.dir/scheduler.cpp.o"
  "CMakeFiles/cs_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/cs_sched.dir/search.cpp.o"
  "CMakeFiles/cs_sched.dir/search.cpp.o.d"
  "CMakeFiles/cs_sched.dir/tabu.cpp.o"
  "CMakeFiles/cs_sched.dir/tabu.cpp.o.d"
  "CMakeFiles/cs_sched.dir/weighted_tabu.cpp.o"
  "CMakeFiles/cs_sched.dir/weighted_tabu.cpp.o.d"
  "libcs_sched.a"
  "libcs_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
