
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/annealing.cpp" "src/sched/CMakeFiles/cs_sched.dir/annealing.cpp.o" "gcc" "src/sched/CMakeFiles/cs_sched.dir/annealing.cpp.o.d"
  "/root/repo/src/sched/astar.cpp" "src/sched/CMakeFiles/cs_sched.dir/astar.cpp.o" "gcc" "src/sched/CMakeFiles/cs_sched.dir/astar.cpp.o.d"
  "/root/repo/src/sched/exhaustive.cpp" "src/sched/CMakeFiles/cs_sched.dir/exhaustive.cpp.o" "gcc" "src/sched/CMakeFiles/cs_sched.dir/exhaustive.cpp.o.d"
  "/root/repo/src/sched/local_search.cpp" "src/sched/CMakeFiles/cs_sched.dir/local_search.cpp.o" "gcc" "src/sched/CMakeFiles/cs_sched.dir/local_search.cpp.o.d"
  "/root/repo/src/sched/online.cpp" "src/sched/CMakeFiles/cs_sched.dir/online.cpp.o" "gcc" "src/sched/CMakeFiles/cs_sched.dir/online.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/cs_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/cs_sched.dir/scheduler.cpp.o.d"
  "/root/repo/src/sched/search.cpp" "src/sched/CMakeFiles/cs_sched.dir/search.cpp.o" "gcc" "src/sched/CMakeFiles/cs_sched.dir/search.cpp.o.d"
  "/root/repo/src/sched/tabu.cpp" "src/sched/CMakeFiles/cs_sched.dir/tabu.cpp.o" "gcc" "src/sched/CMakeFiles/cs_sched.dir/tabu.cpp.o.d"
  "/root/repo/src/sched/weighted_tabu.cpp" "src/sched/CMakeFiles/cs_sched.dir/weighted_tabu.cpp.o" "gcc" "src/sched/CMakeFiles/cs_sched.dir/weighted_tabu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/cs_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/cs_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/cs_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/cs_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/cs_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cs_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
