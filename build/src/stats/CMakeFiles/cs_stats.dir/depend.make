# Empty dependencies file for cs_stats.
# This may be replaced when dependencies are built.
