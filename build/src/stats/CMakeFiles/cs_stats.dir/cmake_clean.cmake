file(REMOVE_RECURSE
  "CMakeFiles/cs_stats.dir/stats.cpp.o"
  "CMakeFiles/cs_stats.dir/stats.cpp.o.d"
  "libcs_stats.a"
  "libcs_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
