file(REMOVE_RECURSE
  "libcs_stats.a"
)
