file(REMOVE_RECURSE
  "CMakeFiles/cs_topology.dir/generator.cpp.o"
  "CMakeFiles/cs_topology.dir/generator.cpp.o.d"
  "CMakeFiles/cs_topology.dir/graph.cpp.o"
  "CMakeFiles/cs_topology.dir/graph.cpp.o.d"
  "CMakeFiles/cs_topology.dir/library.cpp.o"
  "CMakeFiles/cs_topology.dir/library.cpp.o.d"
  "CMakeFiles/cs_topology.dir/serialize.cpp.o"
  "CMakeFiles/cs_topology.dir/serialize.cpp.o.d"
  "libcs_topology.a"
  "libcs_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
