file(REMOVE_RECURSE
  "libcs_topology.a"
)
