# Empty compiler generated dependencies file for cs_topology.
# This may be replaced when dependencies are built.
