# Empty compiler generated dependencies file for cs_distance.
# This may be replaced when dependencies are built.
