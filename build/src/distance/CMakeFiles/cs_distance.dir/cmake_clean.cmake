file(REMOVE_RECURSE
  "CMakeFiles/cs_distance.dir/distance_table.cpp.o"
  "CMakeFiles/cs_distance.dir/distance_table.cpp.o.d"
  "libcs_distance.a"
  "libcs_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
