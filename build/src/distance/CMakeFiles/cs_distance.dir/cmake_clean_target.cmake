file(REMOVE_RECURSE
  "libcs_distance.a"
)
