# Empty compiler generated dependencies file for cs_quality.
# This may be replaced when dependencies are built.
