file(REMOVE_RECURSE
  "libcs_quality.a"
)
