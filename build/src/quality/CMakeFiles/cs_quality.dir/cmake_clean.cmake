file(REMOVE_RECURSE
  "CMakeFiles/cs_quality.dir/partition.cpp.o"
  "CMakeFiles/cs_quality.dir/partition.cpp.o.d"
  "CMakeFiles/cs_quality.dir/quality.cpp.o"
  "CMakeFiles/cs_quality.dir/quality.cpp.o.d"
  "CMakeFiles/cs_quality.dir/weighted.cpp.o"
  "CMakeFiles/cs_quality.dir/weighted.cpp.o.d"
  "libcs_quality.a"
  "libcs_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
