file(REMOVE_RECURSE
  "CMakeFiles/cs_workload.dir/workload.cpp.o"
  "CMakeFiles/cs_workload.dir/workload.cpp.o.d"
  "libcs_workload.a"
  "libcs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
