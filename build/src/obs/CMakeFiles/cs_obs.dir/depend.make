# Empty dependencies file for cs_obs.
# This may be replaced when dependencies are built.
