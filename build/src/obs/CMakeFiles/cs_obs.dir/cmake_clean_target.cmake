file(REMOVE_RECURSE
  "libcs_obs.a"
)
