file(REMOVE_RECURSE
  "CMakeFiles/cs_obs.dir/obs.cpp.o"
  "CMakeFiles/cs_obs.dir/obs.cpp.o.d"
  "CMakeFiles/cs_obs.dir/trace.cpp.o"
  "CMakeFiles/cs_obs.dir/trace.cpp.o.d"
  "libcs_obs.a"
  "libcs_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
