file(REMOVE_RECURSE
  "CMakeFiles/cs_linalg.dir/matrix.cpp.o"
  "CMakeFiles/cs_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/cs_linalg.dir/resistance.cpp.o"
  "CMakeFiles/cs_linalg.dir/resistance.cpp.o.d"
  "CMakeFiles/cs_linalg.dir/solve.cpp.o"
  "CMakeFiles/cs_linalg.dir/solve.cpp.o.d"
  "libcs_linalg.a"
  "libcs_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
