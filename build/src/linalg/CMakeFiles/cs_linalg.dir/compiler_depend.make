# Empty compiler generated dependencies file for cs_linalg.
# This may be replaced when dependencies are built.
