file(REMOVE_RECURSE
  "libcs_linalg.a"
)
