# Empty compiler generated dependencies file for cs_simnet.
# This may be replaced when dependencies are built.
