file(REMOVE_RECURSE
  "CMakeFiles/cs_simnet.dir/estimate.cpp.o"
  "CMakeFiles/cs_simnet.dir/estimate.cpp.o.d"
  "CMakeFiles/cs_simnet.dir/simulator.cpp.o"
  "CMakeFiles/cs_simnet.dir/simulator.cpp.o.d"
  "CMakeFiles/cs_simnet.dir/sweep.cpp.o"
  "CMakeFiles/cs_simnet.dir/sweep.cpp.o.d"
  "CMakeFiles/cs_simnet.dir/traffic.cpp.o"
  "CMakeFiles/cs_simnet.dir/traffic.cpp.o.d"
  "CMakeFiles/cs_simnet.dir/vc_routing.cpp.o"
  "CMakeFiles/cs_simnet.dir/vc_routing.cpp.o.d"
  "libcs_simnet.a"
  "libcs_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
