file(REMOVE_RECURSE
  "libcs_simnet.a"
)
