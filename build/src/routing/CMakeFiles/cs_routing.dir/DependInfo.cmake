
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/deadlock.cpp" "src/routing/CMakeFiles/cs_routing.dir/deadlock.cpp.o" "gcc" "src/routing/CMakeFiles/cs_routing.dir/deadlock.cpp.o.d"
  "/root/repo/src/routing/routing.cpp" "src/routing/CMakeFiles/cs_routing.dir/routing.cpp.o" "gcc" "src/routing/CMakeFiles/cs_routing.dir/routing.cpp.o.d"
  "/root/repo/src/routing/shortest_path.cpp" "src/routing/CMakeFiles/cs_routing.dir/shortest_path.cpp.o" "gcc" "src/routing/CMakeFiles/cs_routing.dir/shortest_path.cpp.o.d"
  "/root/repo/src/routing/updown.cpp" "src/routing/CMakeFiles/cs_routing.dir/updown.cpp.o" "gcc" "src/routing/CMakeFiles/cs_routing.dir/updown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cs_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
