file(REMOVE_RECURSE
  "libcs_routing.a"
)
