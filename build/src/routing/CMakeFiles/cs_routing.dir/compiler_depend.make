# Empty compiler generated dependencies file for cs_routing.
# This may be replaced when dependencies are built.
