file(REMOVE_RECURSE
  "CMakeFiles/cs_routing.dir/deadlock.cpp.o"
  "CMakeFiles/cs_routing.dir/deadlock.cpp.o.d"
  "CMakeFiles/cs_routing.dir/routing.cpp.o"
  "CMakeFiles/cs_routing.dir/routing.cpp.o.d"
  "CMakeFiles/cs_routing.dir/shortest_path.cpp.o"
  "CMakeFiles/cs_routing.dir/shortest_path.cpp.o.d"
  "CMakeFiles/cs_routing.dir/updown.cpp.o"
  "CMakeFiles/cs_routing.dir/updown.cpp.o.d"
  "libcs_routing.a"
  "libcs_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
