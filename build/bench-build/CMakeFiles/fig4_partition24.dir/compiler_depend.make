# Empty compiler generated dependencies file for fig4_partition24.
# This may be replaced when dependencies are built.
