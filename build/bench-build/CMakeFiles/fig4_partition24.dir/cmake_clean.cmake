file(REMOVE_RECURSE
  "../bench/fig4_partition24"
  "../bench/fig4_partition24.pdb"
  "CMakeFiles/fig4_partition24.dir/fig4_partition24.cpp.o"
  "CMakeFiles/fig4_partition24.dir/fig4_partition24.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_partition24.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
