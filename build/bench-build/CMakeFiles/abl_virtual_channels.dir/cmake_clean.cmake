file(REMOVE_RECURSE
  "../bench/abl_virtual_channels"
  "../bench/abl_virtual_channels.pdb"
  "CMakeFiles/abl_virtual_channels.dir/abl_virtual_channels.cpp.o"
  "CMakeFiles/abl_virtual_channels.dir/abl_virtual_channels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_virtual_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
