# Empty dependencies file for abl_virtual_channels.
# This may be replaced when dependencies are built.
