# Empty dependencies file for abl_tabu_params.
# This may be replaced when dependencies are built.
