file(REMOVE_RECURSE
  "../bench/abl_tabu_params"
  "../bench/abl_tabu_params.pdb"
  "CMakeFiles/abl_tabu_params.dir/abl_tabu_params.cpp.o"
  "CMakeFiles/abl_tabu_params.dir/abl_tabu_params.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tabu_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
