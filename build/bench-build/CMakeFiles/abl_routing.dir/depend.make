# Empty dependencies file for abl_routing.
# This may be replaced when dependencies are built.
