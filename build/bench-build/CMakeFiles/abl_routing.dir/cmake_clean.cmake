file(REMOVE_RECURSE
  "../bench/abl_routing"
  "../bench/abl_routing.pdb"
  "CMakeFiles/abl_routing.dir/abl_routing.cpp.o"
  "CMakeFiles/abl_routing.dir/abl_routing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
