file(REMOVE_RECURSE
  "../bench/fig5_perf24"
  "../bench/fig5_perf24.pdb"
  "CMakeFiles/fig5_perf24.dir/fig5_perf24.cpp.o"
  "CMakeFiles/fig5_perf24.dir/fig5_perf24.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_perf24.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
