# Empty compiler generated dependencies file for fig5_perf24.
# This may be replaced when dependencies are built.
