file(REMOVE_RECURSE
  "../bench/tab_heuristic_compare"
  "../bench/tab_heuristic_compare.pdb"
  "CMakeFiles/tab_heuristic_compare.dir/tab_heuristic_compare.cpp.o"
  "CMakeFiles/tab_heuristic_compare.dir/tab_heuristic_compare.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_heuristic_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
