# Empty compiler generated dependencies file for tab_heuristic_compare.
# This may be replaced when dependencies are built.
