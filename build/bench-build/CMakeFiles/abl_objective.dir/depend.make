# Empty dependencies file for abl_objective.
# This may be replaced when dependencies are built.
