file(REMOVE_RECURSE
  "../bench/abl_objective"
  "../bench/abl_objective.pdb"
  "CMakeFiles/abl_objective.dir/abl_objective.cpp.o"
  "CMakeFiles/abl_objective.dir/abl_objective.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_objective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
