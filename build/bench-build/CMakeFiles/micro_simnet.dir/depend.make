# Empty dependencies file for micro_simnet.
# This may be replaced when dependencies are built.
