file(REMOVE_RECURSE
  "../bench/abl_distance_metric"
  "../bench/abl_distance_metric.pdb"
  "CMakeFiles/abl_distance_metric.dir/abl_distance_metric.cpp.o"
  "CMakeFiles/abl_distance_metric.dir/abl_distance_metric.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_distance_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
