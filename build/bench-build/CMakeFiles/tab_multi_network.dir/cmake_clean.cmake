file(REMOVE_RECURSE
  "../bench/tab_multi_network"
  "../bench/tab_multi_network.pdb"
  "CMakeFiles/tab_multi_network.dir/tab_multi_network.cpp.o"
  "CMakeFiles/tab_multi_network.dir/tab_multi_network.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_multi_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
