# Empty dependencies file for tab_multi_network.
# This may be replaced when dependencies are built.
