file(REMOVE_RECURSE
  "../bench/micro_distance"
  "../bench/micro_distance.pdb"
  "CMakeFiles/micro_distance.dir/micro_distance.cpp.o"
  "CMakeFiles/micro_distance.dir/micro_distance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
