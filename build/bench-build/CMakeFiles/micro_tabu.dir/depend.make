# Empty dependencies file for micro_tabu.
# This may be replaced when dependencies are built.
