file(REMOVE_RECURSE
  "../bench/micro_tabu"
  "../bench/micro_tabu.pdb"
  "CMakeFiles/micro_tabu.dir/micro_tabu.cpp.o"
  "CMakeFiles/micro_tabu.dir/micro_tabu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tabu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
