file(REMOVE_RECURSE
  "../bench/tab_meta_heuristics"
  "../bench/tab_meta_heuristics.pdb"
  "CMakeFiles/tab_meta_heuristics.dir/tab_meta_heuristics.cpp.o"
  "CMakeFiles/tab_meta_heuristics.dir/tab_meta_heuristics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_meta_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
