# Empty dependencies file for tab_meta_heuristics.
# This may be replaced when dependencies are built.
