# Empty compiler generated dependencies file for micro_hetero.
# This may be replaced when dependencies are built.
