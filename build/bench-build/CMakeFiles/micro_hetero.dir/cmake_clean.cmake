file(REMOVE_RECURSE
  "../bench/micro_hetero"
  "../bench/micro_hetero.pdb"
  "CMakeFiles/micro_hetero.dir/micro_hetero.cpp.o"
  "CMakeFiles/micro_hetero.dir/micro_hetero.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
