file(REMOVE_RECURSE
  "../bench/abl_weighted_quality"
  "../bench/abl_weighted_quality.pdb"
  "CMakeFiles/abl_weighted_quality.dir/abl_weighted_quality.cpp.o"
  "CMakeFiles/abl_weighted_quality.dir/abl_weighted_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_weighted_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
