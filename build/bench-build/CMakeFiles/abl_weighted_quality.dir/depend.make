# Empty dependencies file for abl_weighted_quality.
# This may be replaced when dependencies are built.
