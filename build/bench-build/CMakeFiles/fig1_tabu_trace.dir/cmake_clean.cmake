file(REMOVE_RECURSE
  "../bench/fig1_tabu_trace"
  "../bench/fig1_tabu_trace.pdb"
  "CMakeFiles/fig1_tabu_trace.dir/fig1_tabu_trace.cpp.o"
  "CMakeFiles/fig1_tabu_trace.dir/fig1_tabu_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_tabu_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
