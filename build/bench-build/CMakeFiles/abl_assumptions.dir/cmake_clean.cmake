file(REMOVE_RECURSE
  "../bench/abl_assumptions"
  "../bench/abl_assumptions.pdb"
  "CMakeFiles/abl_assumptions.dir/abl_assumptions.cpp.o"
  "CMakeFiles/abl_assumptions.dir/abl_assumptions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_assumptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
