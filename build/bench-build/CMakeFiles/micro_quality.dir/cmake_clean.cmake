file(REMOVE_RECURSE
  "../bench/micro_quality"
  "../bench/micro_quality.pdb"
  "CMakeFiles/micro_quality.dir/micro_quality.cpp.o"
  "CMakeFiles/micro_quality.dir/micro_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
