# Empty dependencies file for micro_quality.
# This may be replaced when dependencies are built.
