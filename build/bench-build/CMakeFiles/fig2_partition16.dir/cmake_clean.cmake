file(REMOVE_RECURSE
  "../bench/fig2_partition16"
  "../bench/fig2_partition16.pdb"
  "CMakeFiles/fig2_partition16.dir/fig2_partition16.cpp.o"
  "CMakeFiles/fig2_partition16.dir/fig2_partition16.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_partition16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
