# Empty dependencies file for fig2_partition16.
# This may be replaced when dependencies are built.
