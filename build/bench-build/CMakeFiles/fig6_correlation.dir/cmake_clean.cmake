file(REMOVE_RECURSE
  "../bench/fig6_correlation"
  "../bench/fig6_correlation.pdb"
  "CMakeFiles/fig6_correlation.dir/fig6_correlation.cpp.o"
  "CMakeFiles/fig6_correlation.dir/fig6_correlation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
