file(REMOVE_RECURSE
  "../bench/abl_migration"
  "../bench/abl_migration.pdb"
  "CMakeFiles/abl_migration.dir/abl_migration.cpp.o"
  "CMakeFiles/abl_migration.dir/abl_migration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
