file(REMOVE_RECURSE
  "../bench/tab_combined_strategy"
  "../bench/tab_combined_strategy.pdb"
  "CMakeFiles/tab_combined_strategy.dir/tab_combined_strategy.cpp.o"
  "CMakeFiles/tab_combined_strategy.dir/tab_combined_strategy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_combined_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
