# Empty compiler generated dependencies file for tab_combined_strategy.
# This may be replaced when dependencies are built.
