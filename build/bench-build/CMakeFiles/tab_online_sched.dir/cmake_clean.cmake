file(REMOVE_RECURSE
  "../bench/tab_online_sched"
  "../bench/tab_online_sched.pdb"
  "CMakeFiles/tab_online_sched.dir/tab_online_sched.cpp.o"
  "CMakeFiles/tab_online_sched.dir/tab_online_sched.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_online_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
