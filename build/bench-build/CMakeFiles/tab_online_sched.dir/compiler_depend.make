# Empty compiler generated dependencies file for tab_online_sched.
# This may be replaced when dependencies are built.
