
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_obs.cpp" "tests/CMakeFiles/test_obs.dir/test_obs.cpp.o" "gcc" "tests/CMakeFiles/test_obs.dir/test_obs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hetero/CMakeFiles/cs_hetero.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cs_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/cs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/cs_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/cs_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/cs_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/cs_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/cs_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
