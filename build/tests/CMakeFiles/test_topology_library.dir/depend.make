# Empty dependencies file for test_topology_library.
# This may be replaced when dependencies are built.
