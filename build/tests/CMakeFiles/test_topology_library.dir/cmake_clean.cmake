file(REMOVE_RECURSE
  "CMakeFiles/test_topology_library.dir/test_topology_library.cpp.o"
  "CMakeFiles/test_topology_library.dir/test_topology_library.cpp.o.d"
  "test_topology_library"
  "test_topology_library.pdb"
  "test_topology_library[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
