file(REMOVE_RECURSE
  "CMakeFiles/test_intensity.dir/test_intensity.cpp.o"
  "CMakeFiles/test_intensity.dir/test_intensity.cpp.o.d"
  "test_intensity"
  "test_intensity.pdb"
  "test_intensity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
