# Empty compiler generated dependencies file for test_combined.
# This may be replaced when dependencies are built.
