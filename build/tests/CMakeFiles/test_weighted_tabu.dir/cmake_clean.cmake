file(REMOVE_RECURSE
  "CMakeFiles/test_weighted_tabu.dir/test_weighted_tabu.cpp.o"
  "CMakeFiles/test_weighted_tabu.dir/test_weighted_tabu.cpp.o.d"
  "test_weighted_tabu"
  "test_weighted_tabu.pdb"
  "test_weighted_tabu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weighted_tabu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
