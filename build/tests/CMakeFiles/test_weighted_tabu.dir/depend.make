# Empty dependencies file for test_weighted_tabu.
# This may be replaced when dependencies are built.
