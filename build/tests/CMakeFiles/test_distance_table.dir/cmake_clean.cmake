file(REMOVE_RECURSE
  "CMakeFiles/test_distance_table.dir/test_distance_table.cpp.o"
  "CMakeFiles/test_distance_table.dir/test_distance_table.cpp.o.d"
  "test_distance_table"
  "test_distance_table.pdb"
  "test_distance_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distance_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
