# Empty dependencies file for test_vc_routing.
# This may be replaced when dependencies are built.
