file(REMOVE_RECURSE
  "CMakeFiles/test_vc_routing.dir/test_vc_routing.cpp.o"
  "CMakeFiles/test_vc_routing.dir/test_vc_routing.cpp.o.d"
  "test_vc_routing"
  "test_vc_routing.pdb"
  "test_vc_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vc_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
