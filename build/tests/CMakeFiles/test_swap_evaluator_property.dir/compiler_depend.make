# Empty compiler generated dependencies file for test_swap_evaluator_property.
# This may be replaced when dependencies are built.
