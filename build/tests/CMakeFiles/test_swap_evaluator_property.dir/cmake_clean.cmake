file(REMOVE_RECURSE
  "CMakeFiles/test_swap_evaluator_property.dir/test_swap_evaluator_property.cpp.o"
  "CMakeFiles/test_swap_evaluator_property.dir/test_swap_evaluator_property.cpp.o.d"
  "test_swap_evaluator_property"
  "test_swap_evaluator_property.pdb"
  "test_swap_evaluator_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swap_evaluator_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
