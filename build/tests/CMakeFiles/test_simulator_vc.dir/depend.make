# Empty dependencies file for test_simulator_vc.
# This may be replaced when dependencies are built.
