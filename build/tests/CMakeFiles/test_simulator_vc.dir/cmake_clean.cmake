file(REMOVE_RECURSE
  "CMakeFiles/test_simulator_vc.dir/test_simulator_vc.cpp.o"
  "CMakeFiles/test_simulator_vc.dir/test_simulator_vc.cpp.o.d"
  "test_simulator_vc"
  "test_simulator_vc.pdb"
  "test_simulator_vc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulator_vc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
