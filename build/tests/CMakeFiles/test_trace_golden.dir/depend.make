# Empty dependencies file for test_trace_golden.
# This may be replaced when dependencies are built.
