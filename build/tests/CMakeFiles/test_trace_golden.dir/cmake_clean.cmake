file(REMOVE_RECURSE
  "CMakeFiles/test_trace_golden.dir/test_trace_golden.cpp.o"
  "CMakeFiles/test_trace_golden.dir/test_trace_golden.cpp.o.d"
  "test_trace_golden"
  "test_trace_golden.pdb"
  "test_trace_golden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
