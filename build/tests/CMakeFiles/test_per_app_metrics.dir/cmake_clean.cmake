file(REMOVE_RECURSE
  "CMakeFiles/test_per_app_metrics.dir/test_per_app_metrics.cpp.o"
  "CMakeFiles/test_per_app_metrics.dir/test_per_app_metrics.cpp.o.d"
  "test_per_app_metrics"
  "test_per_app_metrics.pdb"
  "test_per_app_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_per_app_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
