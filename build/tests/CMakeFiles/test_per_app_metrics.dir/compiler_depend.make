# Empty compiler generated dependencies file for test_per_app_metrics.
# This may be replaced when dependencies are built.
