# Empty dependencies file for test_cli_trace.
# This may be replaced when dependencies are built.
