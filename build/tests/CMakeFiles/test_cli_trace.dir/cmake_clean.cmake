file(REMOVE_RECURSE
  "CMakeFiles/test_cli_trace.dir/test_cli_trace.cpp.o"
  "CMakeFiles/test_cli_trace.dir/test_cli_trace.cpp.o.d"
  "test_cli_trace"
  "test_cli_trace.pdb"
  "test_cli_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cli_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
