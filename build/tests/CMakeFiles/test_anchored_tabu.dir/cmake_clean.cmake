file(REMOVE_RECURSE
  "CMakeFiles/test_anchored_tabu.dir/test_anchored_tabu.cpp.o"
  "CMakeFiles/test_anchored_tabu.dir/test_anchored_tabu.cpp.o.d"
  "test_anchored_tabu"
  "test_anchored_tabu.pdb"
  "test_anchored_tabu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anchored_tabu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
