file(REMOVE_RECURSE
  "CMakeFiles/test_meta_heuristics.dir/test_meta_heuristics.cpp.o"
  "CMakeFiles/test_meta_heuristics.dir/test_meta_heuristics.cpp.o.d"
  "test_meta_heuristics"
  "test_meta_heuristics.pdb"
  "test_meta_heuristics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_meta_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
