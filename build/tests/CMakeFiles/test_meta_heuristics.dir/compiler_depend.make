# Empty compiler generated dependencies file for test_meta_heuristics.
# This may be replaced when dependencies are built.
