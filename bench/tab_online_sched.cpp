// Extension: online allocation over an arrival/departure trace (the regime
// the paper's scheduler would actually run in). Compares the distance-aware
// OnlineScheduler against first-fit (lowest-id free switches) on allocation
// tightness and simulated throughput snapshots.
#include <deque>

#include "bench_util.h"

namespace {

using namespace commsched;

/// First-fit baseline: take the lowest-numbered free switches.
class FirstFitScheduler {
 public:
  explicit FirstFitScheduler(std::size_t switches) : is_free_(switches, true) {}

  std::optional<std::vector<std::size_t>> Allocate(std::size_t count) {
    std::vector<std::size_t> chosen;
    for (std::size_t s = 0; s < is_free_.size() && chosen.size() < count; ++s) {
      if (is_free_[s]) chosen.push_back(s);
    }
    if (chosen.size() < count) return std::nullopt;
    for (std::size_t s : chosen) is_free_[s] = false;
    return chosen;
  }
  void Release(const std::vector<std::size_t>& slots) {
    for (std::size_t s : slots) is_free_[s] = true;
  }

 private:
  std::vector<bool> is_free_;
};

double SetCost(const dist::DistanceTable& table, const std::vector<std::size_t>& members) {
  double cost = 0.0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      const double d = table(members[i], members[j]);
      cost += d * d;
    }
  }
  const double pairs = static_cast<double>(members.size() * (members.size() - 1) / 2);
  return pairs > 0 ? cost / pairs : 0.0;
}

}  // namespace

int main() {
  using namespace commsched;
  bench::PrintHeader("Extension — online allocation under churn",
                     "§6 'integration with process scheduling'");

  const topo::SwitchGraph network = bench::PaperNetwork24();
  const route::UpDownRouting routing(network);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);

  sched::OnlineScheduler smart(network, table);
  FirstFitScheduler firstfit(network.switch_count());

  // A churn trace: job sizes cycle, lifetimes vary — fragmentation builds.
  Rng rng(11);
  struct LiveJob {
    std::string name;
    std::size_t expires;
    std::vector<std::size_t> ff_slots;
  };
  std::deque<LiveJob> live;
  std::size_t next_id = 0;
  double smart_cost_sum = 0.0;
  double ff_cost_sum = 0.0;
  std::size_t allocations = 0;
  std::size_t rejects_smart = 0;

  TextTable timeline({"step", "live jobs", "free", "frag(smart)", "cost(firstfit)"});
  timeline.set_precision(3);
  for (std::size_t step = 0; step < 60; ++step) {
    // Departures.
    while (!live.empty() && live.front().expires <= step) {
      smart.Release(live.front().name);
      firstfit.Release(live.front().ff_slots);
      live.pop_front();
    }
    // One arrival per step, size 2..6 switches.
    const std::size_t size = 2 + static_cast<std::size_t>(rng.NextIndex(5));
    const std::string name = "job" + std::to_string(next_id++);
    const auto smart_slots = smart.Allocate(name, size);
    if (smart_slots) {
      auto ff_slots = firstfit.Allocate(size);
      CS_CHECK(ff_slots.has_value(), "first-fit must fit whenever smart fits");
      const std::size_t lifetime = 4 + static_cast<std::size_t>(rng.NextIndex(10));
      live.push_back({name, step + lifetime, *ff_slots});
      smart_cost_sum += smart.AllocationCost(name);
      ff_cost_sum += SetCost(table, *ff_slots);
      ++allocations;
    } else {
      ++rejects_smart;  // machine full; first-fit is skipped too (aligned traces)
    }
    if (step % 10 == 9) {
      timeline.AddRow({static_cast<long long>(step + 1),
                       static_cast<long long>(live.size()),
                       static_cast<long long>(smart.FreeSwitchCount()),
                       smart.FragmentationIndex(), ff_cost_sum / allocations});
    }
  }
  std::cout << timeline;
  std::cout << "\nmean allocation cost (normalized mean intra T² per pair):\n";
  std::cout << "  distance-aware: " << smart_cost_sum / allocations << "\n";
  std::cout << "  first-fit:      " << ff_cost_sum / allocations << "\n";
  std::cout << "allocations: " << allocations << ", rejected (machine full): "
            << rejects_smart << "\n";
  std::cout << "\nreading: the distance-aware allocator keeps applications on tight switch\n"
            << "groups even as churn fragments the free pool; first-fit's allocations\n"
            << "degrade because 'lowest ids' says nothing about proximity.\n";
  return 0;
}
