// Multilevel mapping ablation (DESIGN.md §13): what the sparse-QAP path
// buys over the dense evaluator, and what the full coarsen/map/uncoarsen
// pipeline costs at the 100k-process scale the paper's dense searchers
// cannot touch.
//
//   * SwapDelta micro: dense O(cluster) scan vs sparse O(deg) edge walk on
//     comparable instances — the per-move speedup that makes 10^5-vertex
//     refinement passes affordable.
//   * End-to-end: 100k processes (grid stencil) onto a 1000-switch 3-D
//     torus with hop-count distances, the acceptance scenario (single-digit
//     seconds wall-clock).
#include <benchmark/benchmark.h>

#include "core/commsched.h"

namespace {

using namespace commsched;

/// Random symmetric table (the evaluators only need symmetry).
dist::DistanceTable RandomTable(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  dist::DistanceTable table(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      table.Set(i, j, 0.5 + 3.0 * rng.NextDouble());
    }
  }
  return table;
}

/// Dense SwapEvaluator delta on a 4-cluster partition: O(cluster size).
void BM_DenseSwapDelta(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const dist::DistanceTable table = RandomTable(n, 1);
  Rng rng(2);
  const qual::SwapEvaluator eval(table,
                                 qual::Partition::Random(std::vector<std::size_t>(4, n / 4), rng));
  std::uint64_t deltas = 0;
  for (auto _ : state) {
    const std::size_t a = rng.NextIndex(n);
    const std::size_t b = rng.NextIndex(n);
    if (eval.partition().ClusterOf(a) == eval.partition().ClusterOf(b)) continue;
    benchmark::DoNotOptimize(eval.SwapDelta(a, b));
    ++deltas;
  }
  state.counters["deltas_per_sec"] =
      benchmark::Counter(static_cast<double>(deltas), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DenseSwapDelta)->Arg(256)->Arg(1024);

/// Sparse evaluator delta on a grid stencil (degree <= 4): O(deg), flat in
/// the process count.
void BM_SparseSwapDelta(benchmark::State& state) {
  const std::size_t procs = static_cast<std::size_t>(state.range(0));
  const std::size_t switches = 256;
  const dist::DistanceTable table = RandomTable(switches, 1);
  const qual::CommGraph graph = work::MakeGridComm(procs);
  Rng rng(3);
  std::vector<std::size_t> placement(procs);
  for (std::size_t v = 0; v < procs; ++v) placement[v] = rng.NextIndex(switches);
  const qual::SparseQapEvaluator eval(graph, table, std::move(placement));
  std::uint64_t deltas = 0;
  for (auto _ : state) {
    const std::size_t a = rng.NextIndex(procs);
    const std::size_t b = rng.NextIndex(procs);
    if (a == b) continue;
    benchmark::DoNotOptimize(eval.SwapDelta(a, b));
    ++deltas;
  }
  state.counters["deltas_per_sec"] =
      benchmark::Counter(static_cast<double>(deltas), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SparseSwapDelta)->Arg(1024)->Arg(100000);

/// The acceptance scenario end to end: 100k-process grid onto a 10x10x10
/// torus (1000 switches, 104 hosts each) over BFS hop distances.
void BM_Multilevel100k(benchmark::State& state) {
  const topo::SwitchGraph fabric = topo::MakeTorus3D(10, 10, 10, 104);
  const dist::DistanceTable table = dist::DistanceTable::BuildGraphHops(fabric);
  const qual::CommGraph processes = work::MakeGridComm(100000);
  double normalized = 0.0;
  for (auto _ : state) {
    const sched::ml::MultilevelResult result =
        sched::ml::MapMultilevel(processes, table, 104, {});
    normalized = result.normalized;
    benchmark::DoNotOptimize(result.cost);
  }
  state.counters["normalized_cost"] = benchmark::Counter(normalized);
}
BENCHMARK(BM_Multilevel100k)->Unit(benchmark::kMillisecond);

/// The same pipeline at a mid scale, engine refinement included (the
/// coarsest graph fits the SearchEngine here).
void BM_Multilevel10k(benchmark::State& state) {
  const topo::SwitchGraph fabric = topo::MakeTorus3D(6, 6, 6, 64);
  const dist::DistanceTable table = dist::DistanceTable::BuildGraphHops(fabric);
  const qual::CommGraph processes = work::MakeGridComm(10000);
  for (auto _ : state) {
    const sched::ml::MultilevelResult result =
        sched::ml::MapMultilevel(processes, table, 64, {});
    benchmark::DoNotOptimize(result.cost);
  }
}
BENCHMARK(BM_Multilevel10k)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
