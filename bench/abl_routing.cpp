// Ablation: deterministic vs adaptive selection among the minimal legal
// up*/down* outputs, and how the scheduling gain interacts with it. Also
// reports what the up*/down* restriction itself costs relative to hop-count
// distances (root congestion is the paper's motivation for modeling routing
// inside the distance table).
#include "bench_util.h"

int main() {
  using namespace commsched;
  bench::PrintHeader("Ablation — routing: deterministic vs adaptive up*/down*",
                     "§2 Autonet discussion");

  const topo::SwitchGraph network = bench::PaperNetwork16();
  const route::UpDownRouting routing(network);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);
  const work::Workload workload = work::Workload::Uniform(4, 16);

  const sched::SearchResult op = sched::TabuSearch(table, {4, 4, 4, 4});
  Rng rng(2000);
  const qual::Partition random_partition = qual::Partition::Random({4, 4, 4, 4}, rng);

  TextTable out({"mapping", "routing", "throughput", "low-load latency"});
  out.set_precision(3);
  for (const bool adaptive : {false, true}) {
    for (const auto* which : {"OP", "random"}) {
      const qual::Partition& partition =
          std::string(which) == "OP" ? op.best : random_partition;
      const auto mapping = work::ProcessMapping::FromPartition(network, workload, partition);
      const sim::TrafficPattern pattern(network, workload, mapping);
      sim::SweepOptions sweep = bench::PaperSweep();
      sweep.points = 7;
      sweep.config.adaptive_routing = adaptive;
      const sim::SweepResult result = sim::RunLoadSweep(network, routing, pattern, sweep);
      out.AddRow({std::string(which), std::string(adaptive ? "adaptive" : "deterministic"),
                  result.Throughput(), result.LowLoadLatency()});
    }
  }
  std::cout << out;

  // How much does the up*/down* restriction inflate distances? (It forbids
  // some minimal physical paths and concentrates traffic near the root.)
  const route::ShortestPathRouting unrestricted(network);
  const dist::DistanceTable ud_hops = dist::DistanceTable::BuildHopCount(routing);
  const dist::DistanceTable sp_hops = dist::DistanceTable::BuildHopCount(unrestricted);
  double inflated_pairs = 0.0;
  double total_pairs = 0.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < network.switch_count(); ++i) {
    for (std::size_t j = i + 1; j < network.switch_count(); ++j) {
      total_pairs += 1.0;
      const double extra = ud_hops(i, j) - sp_hops(i, j);
      if (extra > 0.5) inflated_pairs += 1.0;
      worst = std::max(worst, extra);
    }
  }
  std::cout << "\nup*/down* forbids the physically shortest path for "
            << 100.0 * inflated_pairs / total_pairs << " % of switch pairs (worst detour +"
            << worst << " hops) — why the distance model must see the routing algorithm.\n";
  return 0;
}
