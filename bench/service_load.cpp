// Load generator for the scheduling service (DESIGN.md §10): drives an
// in-process Daemon with batches of mixed JSONL requests and reports
// sustained req/s plus end-to-end latency percentiles. CI runs this with
// --benchmark_format=json into BENCH_service.json and gates the medians
// against bench/baselines/ via tools/bench_compare.
//
// Three operating points:
//   * hot    — caches warmed, mixed schedule/quality/ping traffic; the
//              steady-state serving rate.
//   * cold   — a fresh service per batch, distinct topologies: every
//              request pays routing construction + the O(N²) resistance
//              solves. This is the work the topology cache deletes.
//   * ping   — protocol parse + queue + render only; the transport floor.
//   * hot+windowed — the hot batch with rolling-window metrics recording
//              on and periodic Prometheus exposition renders; CI asserts
//              the observability layer costs <5% of hot throughput.
//
// Scale-out points (DESIGN.md §14):
//   * batch vs singles — the same 64 hot sub-requests as one batch frame
//              vs 64 daemon round-trips; `batch_speedup_x` is the frame's
//              amortization factor, gated >=3 in CI.
//   * boot cold vs warm — service construction + first requests with an
//              empty artifact store vs one warm-booted from a populated
//              store (no routing or Laplacian re-solve).
//   * fleet  — three in-process shards behind a ShardRing, mixed traffic
//              routed by topology hash.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/commsched.h"

namespace {

using namespace commsched;

std::string ScheduleRequest(std::uint64_t id, std::uint64_t topo_seed, std::size_t switches,
                            const std::string& algo) {
  svc::JsonObjectWriter topology;
  topology.Field("kind", "random");
  topology.Field("switches", static_cast<std::uint64_t>(switches));
  topology.Field("seed", topo_seed);
  svc::JsonObjectWriter request;
  request.Field("id", "s" + std::to_string(id));
  request.Field("op", "schedule");
  request.Raw("topology", topology.Finish());
  request.Field("apps", static_cast<std::uint64_t>(4));
  request.Field("algo", algo);
  return request.Finish();
}

std::string PingRequest(std::uint64_t id) {
  svc::JsonObjectWriter request;
  request.Field("id", "p" + std::to_string(id));
  request.Field("op", "ping");
  return request.Finish();
}

/// The hot-path batch: mixed ops over a small pool of topologies, so the
/// model cache converges to all-hits after the first round.
std::vector<std::string> MixedBatch(std::size_t size) {
  std::vector<std::string> batch;
  batch.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    switch (i % 4) {
      case 0:
        batch.push_back(ScheduleRequest(i, 1 + i % 3, 12, "tabu"));
        break;
      case 1:
        batch.push_back(ScheduleRequest(i, 1 + i % 3, 12, "sd"));
        break;
      case 2:
        batch.push_back(ScheduleRequest(i, 1 + i % 3, 12, "random"));
        break;
      default:
        batch.push_back(PingRequest(i));
        break;
    }
  }
  return batch;
}

/// Runs one batch through a fresh Daemon (the service — and so the caches —
/// is owned by the caller) and returns the number of responses.
std::size_t ServeBatch(svc::SchedulingService& service, const std::vector<std::string>& batch,
                       std::size_t queue_capacity, bool windowed_metrics = false) {
  svc::DaemonOptions options;
  options.queue_capacity = queue_capacity;
  options.windowed_metrics = windowed_metrics;
  svc::Daemon daemon(service, options);
  std::atomic<std::size_t> responses{0};
  for (const std::string& line : batch) {
    daemon.Submit(line, [&responses](const std::string&) {
      responses.fetch_add(1, std::memory_order_relaxed);
    });
  }
  daemon.Drain();
  return responses.load(std::memory_order_relaxed);
}

void ReportLatencyPercentiles(benchmark::State& state) {
  state.counters["latency_p50_us"] =
      benchmark::Counter(bench::HistogramPercentile("svc.latency_ns", 0.50) / 1000.0);
  state.counters["latency_p99_us"] =
      benchmark::Counter(bench::HistogramPercentile("svc.latency_ns", 0.99) / 1000.0);
}

void BM_ServiceMixedHot(benchmark::State& state) {
  const std::vector<std::string> batch = MixedBatch(static_cast<std::size_t>(state.range(0)));
  svc::SchedulingService service;
  // Warm the caches outside the measured region: steady state is the point.
  ServeBatch(service, batch, batch.size());
  std::size_t responses = 0;
  for (auto _ : state) {
    responses += ServeBatch(service, batch, batch.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(responses));
  state.counters["req_per_sec"] =
      benchmark::Counter(static_cast<double>(responses), benchmark::Counter::kIsRate);
  ReportLatencyPercentiles(state);
}
BENCHMARK(BM_ServiceMixedHot)->Arg(32)->Unit(benchmark::kMillisecond);

/// The hot batch with the full observability layer engaged: rolling-window
/// recording per request plus a Prometheus scrape every 256 batches (~8k
/// requests, >100x denser than a 1 Hz production scraper at this
/// throughput). CI gates req_per_sec at >=95% of BM_ServiceMixedHot's.
void BM_ServiceMixedHotWindowed(benchmark::State& state) {
  const std::vector<std::string> batch = MixedBatch(static_cast<std::size_t>(state.range(0)));
  svc::SchedulingService service;
  ServeBatch(service, batch, batch.size(), /*windowed_metrics=*/true);
  std::size_t responses = 0;
  std::size_t exposition_bytes = 0;
  std::size_t batches = 0;
  for (auto _ : state) {
    responses += ServeBatch(service, batch, batch.size(), /*windowed_metrics=*/true);
    if (++batches % 256 == 0) {
      const std::string scrape = service.MetricsText();
      benchmark::DoNotOptimize(scrape.data());
      exposition_bytes = scrape.size();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(responses));
  state.counters["req_per_sec"] =
      benchmark::Counter(static_cast<double>(responses), benchmark::Counter::kIsRate);
  state.counters["exposition_bytes"] = benchmark::Counter(static_cast<double>(exposition_bytes));
  ReportLatencyPercentiles(state);
}
BENCHMARK(BM_ServiceMixedHotWindowed)->Arg(32)->Unit(benchmark::kMillisecond);

/// Paired measurement of the windowing cost: every iteration serves the same
/// batch twice back-to-back — windowed metrics off, then on — so machine
/// drift on any timescale longer than a batch (~tens of microseconds)
/// cancels out of the comparison. The `windowed_overhead_pct` counter is the
/// headline number CI gates at <5; the separate BM_ServiceMixedHot* entries
/// above keep absolute throughput comparable against the baselines.
void BM_ServiceWindowedOverheadPaired(benchmark::State& state) {
  const std::vector<std::string> batch = MixedBatch(static_cast<std::size_t>(state.range(0)));
  svc::SchedulingService service;
  ServeBatch(service, batch, batch.size(), /*windowed_metrics=*/true);
  std::uint64_t hot_ns = 0;
  std::uint64_t windowed_ns = 0;
  std::size_t responses = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    responses += ServeBatch(service, batch, batch.size(), /*windowed_metrics=*/false);
    const auto t1 = std::chrono::steady_clock::now();
    responses += ServeBatch(service, batch, batch.size(), /*windowed_metrics=*/true);
    const auto t2 = std::chrono::steady_clock::now();
    hot_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    windowed_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1).count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(responses));
  state.counters["windowed_overhead_pct"] = benchmark::Counter(
      hot_ns == 0 ? 0.0
                  : (static_cast<double>(windowed_ns) - static_cast<double>(hot_ns)) * 100.0 /
                        static_cast<double>(hot_ns));
}
BENCHMARK(BM_ServiceWindowedOverheadPaired)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_ServiceColdModels(benchmark::State& state) {
  std::uint64_t topo_seed = 100;  // never repeats: every batch misses the cache
  std::size_t responses = 0;
  for (auto _ : state) {
    svc::SchedulingService service;
    std::vector<std::string> batch;
    for (std::uint64_t i = 0; i < 8; ++i) {
      batch.push_back(ScheduleRequest(i, ++topo_seed, 12, "sd"));
    }
    responses += ServeBatch(service, batch, batch.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(responses));
  state.counters["req_per_sec"] =
      benchmark::Counter(static_cast<double>(responses), benchmark::Counter::kIsRate);
  ReportLatencyPercentiles(state);
}
BENCHMARK(BM_ServiceColdModels)->Unit(benchmark::kMillisecond);

void BM_ServicePingFloor(benchmark::State& state) {
  std::vector<std::string> batch;
  for (std::uint64_t i = 0; i < 64; ++i) batch.push_back(PingRequest(i));
  svc::SchedulingService service;
  std::size_t responses = 0;
  for (auto _ : state) {
    responses += ServeBatch(service, batch, batch.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(responses));
  state.counters["req_per_sec"] =
      benchmark::Counter(static_cast<double>(responses), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServicePingFloor)->Unit(benchmark::kMillisecond);

/// Wraps request lines into one batch frame.
std::string BatchFrame(const std::string& frame_id, const std::vector<std::string>& lines) {
  std::string frame = R"({"id":")" + frame_id + R"(","op":"batch","requests":[)";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i > 0) frame += ",";
    frame += lines[i];
  }
  frame += "]}";
  return frame;
}

/// Paired measurement of the batch protocol's amortization: each iteration
/// serves the same 512 hot sub-requests twice — as 512 single lines, then
/// as 8 frames of 64 — through one daemon each, so the daemon construction
/// cost is identical on both sides and cancels. `batch_speedup_x` is
/// singles-time over batch-time for identical work; CI gates it at >=3.
void BM_ServiceBatchVsSingles(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const std::vector<std::string> base = MixedBatch(size);
  std::vector<std::string> singles;
  std::vector<std::string> frames;
  for (int i = 0; i < 8; ++i) {
    singles.insert(singles.end(), base.begin(), base.end());
    frames.push_back(BatchFrame("f" + std::to_string(i), base));
  }
  svc::SchedulingService service;
  ServeBatch(service, base, size);  // warm the model/result caches
  std::uint64_t singles_ns = 0;
  std::uint64_t batch_ns = 0;
  std::size_t responses = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    responses += ServeBatch(service, singles, singles.size());
    const auto t1 = std::chrono::steady_clock::now();
    responses += size * ServeBatch(service, frames, frames.size());
    const auto t2 = std::chrono::steady_clock::now();
    singles_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    batch_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1).count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(responses));
  state.counters["batch_speedup_x"] = benchmark::Counter(
      batch_ns == 0 ? 0.0
                    : static_cast<double>(singles_ns) / static_cast<double>(batch_ns));
}
BENCHMARK(BM_ServiceBatchVsSingles)->Arg(64)->Unit(benchmark::kMillisecond);

/// Distinct-topology schedule requests (the boot benches below pay a full
/// solve per topology when cold and zero when warm).
std::vector<std::string> DistinctTopologyBatch(std::size_t count) {
  std::vector<std::string> batch;
  for (std::uint64_t i = 0; i < count; ++i) {
    batch.push_back(ScheduleRequest(i, 1000 + i, 12, "sd"));
  }
  return batch;
}

/// Service construction + 4 distinct-topology requests against an empty
/// artifact store: every request is a cold routing + resistance solve (plus
/// the artifact encode/write). The floor BM_ServiceBootWarm deletes.
void BM_ServiceBootCold(benchmark::State& state) {
  const std::vector<std::string> batch = DistinctTopologyBatch(4);
  const std::string dir = std::filesystem::temp_directory_path() / "commsched_bench_boot_cold";
  std::size_t responses = 0;
  for (auto _ : state) {
    std::filesystem::remove_all(dir);  // a genuinely cold store every time
    svc::ServiceOptions options;
    options.store_dir = dir;
    svc::SchedulingService service(options);
    responses += ServeBatch(service, batch, batch.size());
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(static_cast<std::int64_t>(responses));
  state.counters["req_per_sec"] =
      benchmark::Counter(static_cast<double>(responses), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServiceBootCold)->Unit(benchmark::kMillisecond);

/// The same construction + requests warm-booted from a store populated once
/// outside the measured region: models decode from disk at boot, the
/// requests are pure cache hits, and zero solves run (the restart path the
/// CI warm-restart gate asserts on).
void BM_ServiceBootWarm(benchmark::State& state) {
  const std::vector<std::string> batch = DistinctTopologyBatch(4);
  const std::string dir = std::filesystem::temp_directory_path() / "commsched_bench_boot_warm";
  std::filesystem::remove_all(dir);
  {
    svc::ServiceOptions options;
    options.store_dir = dir;
    svc::SchedulingService seeder(options);
    ServeBatch(seeder, batch, batch.size());
  }
  std::size_t responses = 0;
  for (auto _ : state) {
    svc::ServiceOptions options;
    options.store_dir = dir;
    svc::SchedulingService service(options);
    responses += ServeBatch(service, batch, batch.size());
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(static_cast<std::int64_t>(responses));
  state.counters["req_per_sec"] =
      benchmark::Counter(static_cast<double>(responses), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServiceBootWarm)->Unit(benchmark::kMillisecond);

/// Three in-process shards behind a ShardRing: the router-side cost of
/// ShardKeyOf (a topology build + hash per request) plus the owning shard's
/// hot execution, without socket hops. Mirrors the CI fleet-smoke job.
void BM_ServiceFleet3(benchmark::State& state) {
  const std::vector<std::string> lines = MixedBatch(32);
  std::vector<svc::Request> parsed;
  for (const std::string& line : lines) parsed.push_back(svc::ParseRequest(line));
  const svc::ShardRing ring({"shard-a", "shard-b", "shard-c"});
  std::vector<std::unique_ptr<svc::SchedulingService>> shards;
  for (std::size_t i = 0; i < ring.nodes().size(); ++i) {
    shards.push_back(std::make_unique<svc::SchedulingService>());
  }
  // Warm every shard's caches for its own keys.
  for (const svc::Request& request : parsed) {
    benchmark::DoNotOptimize(shards[ring.NodeIndexOf(svc::ShardKeyOf(request))]
                                 ->Execute(request).data());
  }
  std::size_t responses = 0;
  for (auto _ : state) {
    for (const svc::Request& request : parsed) {
      const std::size_t owner = ring.NodeIndexOf(svc::ShardKeyOf(request));
      const std::string response = shards[owner]->Execute(request);
      benchmark::DoNotOptimize(response.data());
      ++responses;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(responses));
  state.counters["req_per_sec"] =
      benchmark::Counter(static_cast<double>(responses), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServiceFleet3)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
