// Figure 3: latency vs. accepted traffic for the 16-switch network — the
// scheduled mapping (OP) against randomly generated mappings (R1..), each
// swept from low load (S1) to saturation (S9), with the clustering
// coefficient attached to every curve. Paper: OP throughput ≈ 85 % above
// the best random mapping.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace commsched;
  bench::PrintHeader("Fig. 3 — simulation results, 16-switch network", "paper Figure 3");

  const topo::SwitchGraph network = bench::PaperNetwork16();
  core::ExperimentOptions options;
  options.random_mappings = 9;  // the paper generated 9 random mappings
  options.sweep = bench::PaperSweep();
  options.sweep.config.exec_mode = bench::ParseSimMode(argc, argv);
  const core::ExperimentResult result = core::RunPaperExperiment(network, options);

  for (const core::MappingEvaluation& eval : result.mappings) {
    std::cout << "\n-- mapping " << eval.label << "  (C_c = " << eval.cc << ")\n";
    std::cout << "   partition " << eval.partition.ToString() << "\n";
    TextTable table({"point", "offered", "accepted", "latency(cycles)", "saturated"});
    table.set_precision(3);
    for (std::size_t k = 0; k < eval.sweep.points.size(); ++k) {
      const sim::SweepPoint& p = eval.sweep.points[k];
      table.AddRow({std::string("S") + std::to_string(k + 1), p.offered_rate,
                    p.metrics.accepted_flits_per_switch_cycle, p.metrics.avg_latency_cycles,
                    std::string(p.metrics.Saturated() ? "yes" : "no")});
    }
    std::cout << table;
    std::cout << "   throughput = " << eval.Throughput() << " flits/switch/cycle\n";
  }

  std::cout << "\n== summary ==\n";
  std::cout << "OP throughput:          " << result.Scheduled().Throughput() << "\n";
  std::cout << "best random throughput: " << result.BestRandomThroughput() << "\n";
  std::cout << "improvement:            "
            << (result.ThroughputImprovement() - 1.0) * 100.0 << " % (paper: ~85 %)\n";
  std::cout << "OP C_c "
            << result.Scheduled().cc << " vs random C_c range [";
  double cc_min = 1e300;
  double cc_max = -1e300;
  for (std::size_t k = 1; k < result.mappings.size(); ++k) {
    cc_min = std::min(cc_min, result.mappings[k].cc);
    cc_max = std::max(cc_max, result.mappings[k].cc);
  }
  std::cout << cc_min << ", " << cc_max << "] (paper: OP clearly higher)\n";
  return 0;
}
