// Extension: migration-aware re-scheduling. A live system cannot freely
// reshuffle processes; the anchored Tabu search trades mapping quality
// against the number of switches whose processes must move. Scenario: a
// link of the designed 24-switch network fails, distances change, and the
// scheduler re-places with increasing migration budgets.
#include "bench_util.h"

int main() {
  using namespace commsched;
  bench::PrintHeader("Extension — migration-aware re-scheduling after a link failure",
                     "anchored search; §6 integration future work");

  const topo::SwitchGraph healthy = bench::PaperNetwork24();
  const route::UpDownRouting routing_before(healthy);
  const dist::DistanceTable table_before = dist::DistanceTable::Build(routing_before);
  sched::TabuOptions base;
  base.max_iterations_per_seed = 60;
  const sched::SearchResult original = sched::TabuSearch(table_before, {6, 6, 6, 6}, base);
  std::cout << "healthy mapping:  " << original.best.ToString() << "  (F_G "
            << original.best_fg << ")\n";

  // Fail two links of ring 0: the ring splits into two chains held together
  // only through other rings, so the old ring-aligned cluster is now spread
  // across the tree and the optimal partition changes. (A single ring-link
  // cut leaves the ring partition optimal — rings are 2-edge-connected.)
  topo::SwitchGraph degraded = healthy.WithoutLink(*healthy.FindLink(0, 1));
  degraded = degraded.WithoutLink(*degraded.FindLink(3, 4));
  CS_CHECK(degraded.IsConnected(), "bridges keep the degraded net connected");
  const route::UpDownRouting routing_after(degraded);
  const dist::DistanceTable table_after = dist::DistanceTable::Build(routing_after);
  const double stale_fg = qual::GlobalSimilarity(table_after, original.best);
  std::cout << "links (0,1) and (3,4) failed: stale mapping now scores F_G " << stale_fg
            << " on the new distance table\n\n";

  const work::Workload workload = work::Workload::Uniform(4, 24);
  sim::SweepOptions sweep = bench::PaperSweep();
  sweep.points = 6;
  sweep.max_rate = 1.0;
  auto throughput = [&](const qual::Partition& p) {
    const auto mapping = work::ProcessMapping::FromPartition(degraded, workload, p);
    const sim::TrafficPattern pattern(degraded, workload, mapping);
    return sim::RunLoadSweep(degraded, routing_after, pattern, sweep).Throughput();
  };

  TextTable out({"migration penalty", "switches moved", "F_G after", "throughput"});
  out.set_precision(4);
  out.AddRow({std::string("stale (no resched)"), 0LL, stale_fg, throughput(original.best)});
  for (double penalty : {1.0, 0.1, 0.02, 0.0}) {
    sched::TabuOptions anchored = base;
    anchored.anchor = &original.best;
    anchored.migration_penalty = penalty;
    const sched::SearchResult result = sched::TabuSearch(table_after, {6, 6, 6, 6}, anchored);
    out.AddRow({penalty, static_cast<long long>(result.moved_from_anchor), result.best_fg,
                throughput(result.best)});
  }
  std::cout << out;
  std::cout << "\nreading: the penalty knob spans 'do nothing' to 'full re-optimization';\n"
            << "moderate penalties recover most of the lost quality while migrating only\n"
            << "a handful of switches' processes.\n";
  return 0;
}
