// Ablation / extension: heterogeneous communication requirements (the
// paper's future work). One application is 8x hotter than the rest; the
// measure → schedule loop (simulate, estimate per-application intensities,
// intensity-weighted Tabu) should place the hot application on the
// tightest network region and beat the requirement-blind mapping.
#include "bench_util.h"

int main() {
  using namespace commsched;
  bench::PrintHeader("Extension — measured communication requirements & weighted F_G",
                     "paper §1/§6 future work");

  // The mixed-density 16-switch network: one dense K4 region, three sparse
  // path regions — a machine where placement of the hot application truly
  // matters. (On uniformly random degree-3 nets all 4-switch regions are
  // nearly equivalent and the weighted search can only relabel clusters.)
  const topo::SwitchGraph network = topo::MakeMixedDensity16();
  const route::UpDownRouting routing(network);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);

  std::vector<work::ApplicationSpec> apps = work::Workload::Uniform(4, 16).applications();
  apps[0].traffic_weight = 8.0;  // the hot application
  const work::Workload workload(apps);

  // Step 1: requirement-blind mapping (the paper's base technique).
  const sched::SearchResult plain = sched::TabuSearch(table, {4, 4, 4, 4});
  const auto plain_mapping = work::ProcessMapping::FromPartition(network, workload, plain.best);

  // Step 2: run it, measure the traffic, estimate per-app intensities.
  const sim::TrafficPattern plain_traffic(network, workload, plain_mapping);
  sim::SimConfig measure_config;
  measure_config.warmup_cycles = 2000;
  measure_config.measure_cycles = 15000;
  measure_config.collect_traffic_matrix = true;
  sim::NetworkSimulator monitor(network, routing, plain_traffic, measure_config);
  const sim::SimMetrics measured = monitor.Run(0.2);
  const std::vector<double> intensity =
      sim::EstimateAppIntensities(measured.switch_pair_flit_rate, plain.best);
  std::cout << "estimated per-application intensities (true ratio 8:1:1:1): ";
  for (double v : intensity) std::cout << v << ' ';
  std::cout << "\n";

  // Step 3: re-schedule with the measured requirements.
  const sched::SearchResult weighted =
      sched::IntensityTabuSearch(table, {4, 4, 4, 4}, intensity);
  const auto weighted_mapping =
      work::ProcessMapping::FromPartition(network, workload, weighted.best);

  std::cout << "\nhot application's switches: blind ("
            << Join(plain.best.Members(0), ",") << ") vs weighted ("
            << Join(weighted.best.Members(0), ",") << ")\n";
  std::cout << "hot cluster intra cost (sum T², lower is tighter): blind "
            << qual::ClusterSimilarity(table, plain.best, 0) << " vs weighted "
            << qual::ClusterSimilarity(table, weighted.best, 0) << "\n";

  // Step 4: confirm by simulation across a load sweep.
  sim::SweepOptions sweep = bench::PaperSweep();
  sweep.points = 7;
  const sim::TrafficPattern weighted_traffic(network, workload, weighted_mapping);
  const sim::SweepResult r_plain = sim::RunLoadSweep(network, routing, plain_traffic, sweep);
  const sim::SweepResult r_weighted =
      sim::RunLoadSweep(network, routing, weighted_traffic, sweep);

  TextTable out({"offered", "accepted(blind)", "accepted(weighted)", "latency(blind)",
                 "latency(weighted)"});
  out.set_precision(3);
  for (std::size_t k = 0; k < r_plain.points.size(); ++k) {
    out.AddRow({r_plain.points[k].offered_rate,
                r_plain.points[k].metrics.accepted_flits_per_switch_cycle,
                r_weighted.points[k].metrics.accepted_flits_per_switch_cycle,
                r_plain.points[k].metrics.avg_latency_cycles,
                r_weighted.points[k].metrics.avg_latency_cycles});
  }
  std::cout << '\n' << out;
  std::cout << "\nthroughput: blind " << r_plain.Throughput() << " vs weighted "
            << r_weighted.Throughput() << " flits/switch/cycle ("
            << (r_weighted.Throughput() / r_plain.Throughput() - 1.0) * 100.0 << " %)\n";
  return 0;
}
