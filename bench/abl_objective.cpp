// Ablation: the paper minimizes F_G and argues this also maximizes
// C_c = D_G/F_G because cluster sizes are fixed. Here we check that claim
// empirically: optimize F_G, then compare against directly maximizing C_c
// (hill climbing on C_c) and against maximizing D_G alone.
#include "bench_util.h"

namespace {

using namespace commsched;

/// Generic steepest-ascent hill climbing on an arbitrary partition score.
template <typename Score>
qual::Partition HillClimb(const dist::DistanceTable& table, qual::Partition start,
                          Score&& score, std::size_t max_iter = 500) {
  double current = score(start);
  for (std::size_t it = 0; it < max_iter; ++it) {
    double best = current;
    std::pair<std::size_t, std::size_t> move{0, 0};
    bool found = false;
    const std::size_t n = start.switch_count();
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (start.ClusterOf(a) == start.ClusterOf(b)) continue;
        start.Swap(a, b);
        const double candidate = score(start);
        start.Swap(a, b);
        if (candidate > best + 1e-12) {
          best = candidate;
          move = {a, b};
          found = true;
        }
      }
    }
    if (!found) break;
    start.Swap(move.first, move.second);
    current = best;
  }
  return start;
}

}  // namespace

int main() {
  using namespace commsched;
  bench::PrintHeader("Ablation — target function: F_G vs C_c vs D_G", "§4.2 design choice");

  TextTable out({"network", "objective", "F_G", "D_G", "C_c"});
  out.set_precision(4);

  struct Net {
    std::string name;
    topo::SwitchGraph graph;
  };
  std::vector<Net> nets;
  nets.push_back({"random-16sw", bench::PaperNetwork16()});
  nets.push_back({"rings-24sw", bench::PaperNetwork24()});

  for (const Net& net : nets) {
    const route::UpDownRouting routing(net.graph);
    const dist::DistanceTable table = dist::DistanceTable::Build(routing);
    const std::size_t m = net.graph.switch_count() / 4;
    const std::vector<std::size_t> sizes(4, m);

    // Paper: Tabu on F_G.
    sched::TabuOptions tabu;
    tabu.max_iterations_per_seed = net.graph.switch_count() >= 20 ? 60 : 20;
    const sched::SearchResult fg_result = sched::TabuSearch(table, sizes, tabu);
    out.AddRow({net.name, std::string("min F_G (paper)"),
                qual::GlobalSimilarity(table, fg_result.best),
                qual::GlobalDissimilarity(table, fg_result.best),
                qual::ClusteringCoefficient(table, fg_result.best)});

    // Direct C_c and D_G hill climbs from the same 5 random starts.
    Rng rng(7);
    qual::Partition best_cc_part = qual::Partition::Blocked(sizes);
    double best_cc = -1.0;
    qual::Partition best_dg_part = best_cc_part;
    double best_dg = -1.0;
    for (int s = 0; s < 5; ++s) {
      const qual::Partition start = qual::Partition::Random(sizes, rng);
      const qual::Partition cc_climbed = HillClimb(table, start, [&](const qual::Partition& p) {
        return qual::ClusteringCoefficient(table, p);
      });
      if (qual::ClusteringCoefficient(table, cc_climbed) > best_cc) {
        best_cc = qual::ClusteringCoefficient(table, cc_climbed);
        best_cc_part = cc_climbed;
      }
      const qual::Partition dg_climbed = HillClimb(table, start, [&](const qual::Partition& p) {
        return qual::GlobalDissimilarity(table, p);
      });
      if (qual::GlobalDissimilarity(table, dg_climbed) > best_dg) {
        best_dg = qual::GlobalDissimilarity(table, dg_climbed);
        best_dg_part = dg_climbed;
      }
    }
    out.AddRow({net.name, std::string("max C_c directly"),
                qual::GlobalSimilarity(table, best_cc_part),
                qual::GlobalDissimilarity(table, best_cc_part), best_cc});
    out.AddRow({net.name, std::string("max D_G directly"),
                qual::GlobalSimilarity(table, best_dg_part), best_dg,
                qual::ClusteringCoefficient(table, best_dg_part)});
  }
  std::cout << out;
  std::cout << "\nreading: with fixed cluster sizes the ordered intercluster sum equals\n"
            << "2*(total - intracluster sum), so D_G is an affine *decreasing* function of\n"
            << "the same intracluster sum F_G grows with, and C_c = D_G/F_G is monotone in\n"
            << "it too: all three objectives have identical optimizers. The paper's choice\n"
            << "of minimizing F_G is not merely a good proxy for maximizing C_c — under its\n"
            << "assumptions it is exactly equivalent, which the table confirms empirically.\n";
  return 0;
}
