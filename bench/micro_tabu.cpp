// Micro-benchmarks: full searcher runs (the paper's scheduling cost).
// Work counters come from the obs registry, so the perf JSON carries
// swaps_per_sec (candidate evaluations / s) next to the wall-clock columns.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/commsched.h"

namespace {

using namespace commsched;

dist::DistanceTable Table(std::size_t switches) {
  topo::IrregularTopologyOptions options;
  options.switch_count = switches;
  options.seed = 1;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const route::UpDownRouting routing(g);
  return dist::DistanceTable::Build(routing);
}

void BM_TabuSearchPaperSchedule(benchmark::State& state) {
  const dist::DistanceTable table = Table(static_cast<std::size_t>(state.range(0)));
  const std::vector<std::size_t> sizes(4, table.size() / 4);
  std::uint64_t seed = 0;
  const bench::ObsDelta obs_delta;
  for (auto _ : state) {
    sched::TabuOptions options;
    options.rng_seed = ++seed;
    benchmark::DoNotOptimize(sched::TabuSearch(table, sizes, options));
  }
  state.counters["swaps_per_sec"] =
      benchmark::Counter(static_cast<double>(obs_delta.Delta("search.tabu.evaluations")),
                         benchmark::Counter::kIsRate);
  state.counters["seed_iters_p50"] =
      benchmark::Counter(bench::HistogramPercentile("search.tabu.seed_iters", 0.50));
  state.counters["seed_iters_p99"] =
      benchmark::Counter(bench::HistogramPercentile("search.tabu.seed_iters", 0.99));
}
BENCHMARK(BM_TabuSearchPaperSchedule)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_TabuSearchParallelSeeds(benchmark::State& state) {
  const dist::DistanceTable table = Table(24);
  const std::vector<std::size_t> sizes(4, 6);
  std::uint64_t seed = 0;
  const bench::ObsDelta obs_delta;
  for (auto _ : state) {
    sched::TabuOptions options;
    options.rng_seed = ++seed;
    options.parallel_seeds = true;
    benchmark::DoNotOptimize(sched::TabuSearch(table, sizes, options));
  }
  state.counters["swaps_per_sec"] =
      benchmark::Counter(static_cast<double>(obs_delta.Delta("search.tabu.evaluations")),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TabuSearchParallelSeeds)->Unit(benchmark::kMillisecond);

void BM_SimulatedAnnealing(benchmark::State& state) {
  const dist::DistanceTable table = Table(16);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    sched::AnnealingOptions options;
    options.iterations = 20000;
    options.rng_seed = ++seed;
    benchmark::DoNotOptimize(sched::SimulatedAnnealing(table, {4, 4, 4, 4}, options));
  }
}
BENCHMARK(BM_SimulatedAnnealing)->Unit(benchmark::kMillisecond);

void BM_ExhaustiveWithPruning(benchmark::State& state) {
  const dist::DistanceTable table = Table(static_cast<std::size_t>(state.range(0)));
  const std::vector<std::size_t> sizes(4, table.size() / 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::ExhaustiveSearch(table, sizes));
  }
}
BENCHMARK(BM_ExhaustiveWithPruning)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
