// §2 survey in code: the computation-side mapping heuristics the paper
// cites (OLB, UDA/MET, Fast Greedy/MCT, Min-min, Max-min [1, 12, 16], plus
// Sufferage [18]) raced on Braun-style ETC instances across consistency and
// heterogeneity classes. Expected shape (from the HCW literature): Min-min
// family near the best everywhere; OLB and MET poor — MET catastrophically
// so on consistent matrices (it piles every task onto the one globally
// fastest machine).
#include "bench_util.h"

int main() {
  using namespace commsched;
  using namespace commsched::hetero;
  bench::PrintHeader("Meta-task mapping heuristics on Braun-style ETC instances",
                     "§2 cited heuristics [1, 12, 16, 18]");

  struct Case {
    std::string name;
    EtcOptions options;
  };
  std::vector<Case> cases;
  for (const auto& [cname, consistency] :
       std::vector<std::pair<std::string, EtcConsistency>>{
           {"consistent", EtcConsistency::kConsistent},
           {"semi", EtcConsistency::kSemiConsistent},
           {"inconsistent", EtcConsistency::kInconsistent}}) {
    for (const auto& [hname, th, mh] : std::vector<std::tuple<std::string, double, double>>{
             {"hi-hi", 3000.0, 1000.0}, {"hi-lo", 3000.0, 10.0}, {"lo-hi", 100.0, 1000.0},
             {"lo-lo", 100.0, 10.0}}) {
      EtcOptions options;
      options.tasks = 256;
      options.machines = 8;
      options.task_heterogeneity = th;
      options.machine_heterogeneity = mh;
      options.consistency = consistency;
      options.seed = 42;
      cases.push_back({cname + "/" + hname, options});
    }
  }

  TextTable out({"instance", "OLB", "MET", "MCT", "Min-min", "Max-min", "Sufferage",
                 "Min-min+LS"});
  out.set_precision(0);
  for (const Case& c : cases) {
    const EtcMatrix etc = EtcMatrix::Generate(c.options);
    const auto results = RunAllHeuristics(etc);
    std::vector<TableCell> row{c.name};
    for (const auto& [name, schedule] : results) {
      row.push_back(schedule.makespan);
    }
    out.AddRow(std::move(row));
  }
  std::cout << out;

  // Normalized summary: each heuristic's makespan relative to the best
  // heuristic on that instance, averaged over instances.
  std::vector<double> ratio_sum;
  std::vector<std::string> names;
  for (const Case& c : cases) {
    const EtcMatrix etc = EtcMatrix::Generate(c.options);
    const auto results = RunAllHeuristics(etc);
    double best = results.front().second.makespan;
    for (const auto& [name, schedule] : results) best = std::min(best, schedule.makespan);
    if (ratio_sum.empty()) {
      ratio_sum.assign(results.size(), 0.0);
      for (const auto& [name, schedule] : results) names.push_back(name);
    }
    for (std::size_t k = 0; k < results.size(); ++k) {
      ratio_sum[k] += results[k].second.makespan / best;
    }
  }
  std::cout << "\naverage makespan relative to the per-instance best:\n";
  for (std::size_t k = 0; k < names.size(); ++k) {
    std::cout << "  " << names[k] << ": " << ratio_sum[k] / static_cast<double>(cases.size())
              << "\n";
  }
  return 0;
}
