// Extension: relaxing the paper's simplifying assumptions (§6 lists this as
// future work):
//   (a) "all the applications generate only intracluster traffic" — sweep
//       the intercluster fraction ε and watch the scheduling gain decay;
//   (b) "one process per processor … integer multiple of network nodes" —
//       compare switch-aligned placements against host-level (unaligned)
//       random placements, which fragment applications across switches.
#include "bench_util.h"

int main() {
  using namespace commsched;
  bench::PrintHeader("Extension — relaxing the paper's simplifying assumptions",
                     "§6 future work");

  const topo::SwitchGraph network = bench::PaperNetwork16();
  const route::UpDownRouting routing(network);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);
  const sched::SearchResult op = sched::TabuSearch(table, {4, 4, 4, 4});

  sim::SweepOptions sweep = bench::PaperSweep();
  sweep.points = 6;

  // --- (a) intercluster-fraction sweep -----------------------------------
  std::cout << "\n(a) intercluster traffic fraction (0 = the paper's assumption)\n";
  TextTable eps_table({"epsilon", "OP tput", "random tput", "OP/random"});
  eps_table.set_precision(3);
  for (double eps : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    std::vector<work::ApplicationSpec> apps = work::Workload::Uniform(4, 16).applications();
    for (auto& app : apps) app.intercluster_fraction = eps;
    const work::Workload workload(apps);

    const auto op_mapping = work::ProcessMapping::FromPartition(network, workload, op.best);
    Rng rng(500);
    const auto rnd_mapping = work::ProcessMapping::RandomAligned(network, workload, rng);
    const sim::TrafficPattern op_traffic(network, workload, op_mapping);
    const sim::TrafficPattern rnd_traffic(network, workload, rnd_mapping);
    const double op_t = sim::RunLoadSweep(network, routing, op_traffic, sweep).Throughput();
    const double rnd_t = sim::RunLoadSweep(network, routing, rnd_traffic, sweep).Throughput();
    eps_table.AddRow({eps, op_t, rnd_t, op_t / rnd_t});
  }
  std::cout << eps_table;
  std::cout << "reading: the gain decays smoothly with epsilon; at epsilon = 1 every\n"
            << "destination is remote and placement cannot matter (ratio ~ 1).\n";

  // --- (b) switch-aligned vs host-level placements -------------------------
  std::cout << "\n(b) placement granularity (one process per workstation)\n";
  const work::Workload workload = work::Workload::Uniform(4, 16);
  TextTable align_table({"placement", "throughput", "low-load latency"});
  align_table.set_precision(3);
  {
    const auto mapping = work::ProcessMapping::FromPartition(network, workload, op.best);
    const sim::TrafficPattern traffic(network, workload, mapping);
    const sim::SweepResult r = sim::RunLoadSweep(network, routing, traffic, sweep);
    align_table.AddRow({std::string("scheduled (aligned)"), r.Throughput(),
                        r.LowLoadLatency()});
  }
  Rng rng(700);
  double aligned_sum = 0.0;
  double unaligned_sum = 0.0;
  const int trials = 3;
  for (int k = 0; k < trials; ++k) {
    const auto aligned = work::ProcessMapping::RandomAligned(network, workload, rng);
    const sim::TrafficPattern ta(network, workload, aligned);
    aligned_sum += sim::RunLoadSweep(network, routing, ta, sweep).Throughput();
    const auto unaligned = work::ProcessMapping::RandomUnaligned(network, workload, rng);
    const sim::TrafficPattern tu(network, workload, unaligned);
    unaligned_sum += sim::RunLoadSweep(network, routing, tu, sweep).Throughput();
  }
  align_table.AddRow({std::string("random aligned (avg of 3)"), aligned_sum / trials, 0.0});
  align_table.AddRow({std::string("random host-level (avg of 3)"), unaligned_sum / trials,
                      0.0});
  std::cout << align_table;
  std::cout << "reading: fragmenting applications across switches (host-level random)\n"
            << "forces even same-application traffic onto the network, performing at or\n"
            << "below switch-aligned random — the paper's whole-switch granularity is the\n"
            << "right unit for communication-aware placement.\n";
  return 0;
}
