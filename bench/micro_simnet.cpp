// Micro-benchmarks: flit-level simulator cycle throughput. The obs-registry
// deltas add flits_per_cycle / cycles_per_sec columns to the perf JSON.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/commsched.h"

namespace {

using namespace commsched;

struct SimFixture {
  topo::SwitchGraph graph;
  route::UpDownRouting routing;
  work::Workload workload;
  work::ProcessMapping mapping;
  sim::TrafficPattern pattern;

  explicit SimFixture(std::size_t switches)
      : graph(topo::GenerateIrregularTopology({switches, 4, 3, 1, 1000})),
        routing(graph),
        workload(work::Workload::Uniform(4, switches)),
        mapping(Make(graph, workload)),
        pattern(graph, workload, mapping) {}

  static work::ProcessMapping Make(const topo::SwitchGraph& g, const work::Workload& w) {
    Rng rng(1);
    return work::ProcessMapping::RandomAligned(g, w, rng);
  }
};

void BM_SimulateModerateLoad(benchmark::State& state) {
  SimFixture f(static_cast<std::size_t>(state.range(0)));
  sim::SimConfig config;
  config.warmup_cycles = 1000;
  config.measure_cycles = 4000;
  sim::NetworkSimulator simulator(f.graph, f.routing, f.pattern, config);
  const bench::ObsDelta obs_delta;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.Run(0.3));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(config.warmup_cycles + config.measure_cycles));
  state.counters["flits_per_cycle"] =
      benchmark::Counter(obs_delta.Rate("sim.flits_delivered", "sim.measured_cycles"));
  state.counters["cycles_per_sec"] = benchmark::Counter(
      static_cast<double>(obs_delta.Delta("sim.cycles")), benchmark::Counter::kIsRate);
  state.counters["lat_p50"] = benchmark::Counter(bench::HistogramPercentile("net.latency", 0.50));
  state.counters["lat_p99"] = benchmark::Counter(bench::HistogramPercentile("net.latency", 0.99));
}
BENCHMARK(BM_SimulateModerateLoad)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_SimulateSaturation(benchmark::State& state) {
  SimFixture f(16);
  sim::SimConfig config;
  config.warmup_cycles = 1000;
  config.measure_cycles = 4000;
  sim::NetworkSimulator simulator(f.graph, f.routing, f.pattern, config);
  const bench::ObsDelta obs_delta;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.Run(1.4));
  }
  state.counters["flits_per_cycle"] =
      benchmark::Counter(obs_delta.Rate("sim.flits_delivered", "sim.measured_cycles"));
}
BENCHMARK(BM_SimulateSaturation)->Unit(benchmark::kMillisecond);

void BM_LoadSweepParallel(benchmark::State& state) {
  SimFixture f(16);
  sim::SweepOptions sweep;
  sweep.points = 5;
  sweep.min_rate = 0.1;
  sweep.max_rate = 1.0;
  sweep.config.warmup_cycles = 500;
  sweep.config.measure_cycles = 2000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::RunLoadSweep(f.graph, f.routing, f.pattern, sweep));
  }
}
BENCHMARK(BM_LoadSweepParallel)->Unit(benchmark::kMillisecond);

// Cycle vs event engine at low load — the regime the event engine exists
// for (fig5's lowest sweep points): long idle spans between arrivals that
// ExecMode::kEvent skips in O(1). Arg(0) = cycle, Arg(1) = event, at the
// fig5 sweep's 24-switch scale.
void BM_SimulateLowLoad(benchmark::State& state) {
  SimFixture f(24);
  sim::SimConfig config;
  config.exec_mode = state.range(0) == 0 ? sim::ExecMode::kCycle : sim::ExecMode::kEvent;
  config.warmup_cycles = 2000;
  config.measure_cycles = 10000;
  sim::NetworkSimulator simulator(f.graph, f.routing, f.pattern, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.Run(0.02));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(config.warmup_cycles + config.measure_cycles));
  state.SetLabel(state.range(0) == 0 ? "cycle" : "event");
}
BENCHMARK(BM_SimulateLowLoad)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Event engine across the load range: its overhead must stay bounded even
// when the network is busy and few cycles can be skipped.
void BM_SimulateEventModerateLoad(benchmark::State& state) {
  SimFixture f(static_cast<std::size_t>(state.range(0)));
  sim::SimConfig config;
  config.exec_mode = sim::ExecMode::kEvent;
  config.warmup_cycles = 1000;
  config.measure_cycles = 4000;
  sim::NetworkSimulator simulator(f.graph, f.routing, f.pattern, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.Run(0.3));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(config.warmup_cycles + config.measure_cycles));
}
BENCHMARK(BM_SimulateEventModerateLoad)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
