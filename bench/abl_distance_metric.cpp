// Ablation: equivalent-resistance distance (the paper's model) vs plain
// hop-count distance as the scheduler's input. The equivalent distance
// rewards path redundancy (parallel minimal paths), which hops cannot see;
// this harness measures whether that translates into better mappings.
#include "bench_util.h"

int main() {
  using namespace commsched;
  bench::PrintHeader("Ablation — equivalent distance vs hop count as the search metric",
                     "design choice of §3");

  TextTable out({"network", "metric", "Cc(by own metric)", "Cc(by equiv metric)", "throughput"});
  out.set_precision(3);

  struct Net {
    std::string name;
    topo::SwitchGraph graph;
  };
  std::vector<Net> nets;
  nets.push_back({"random-16sw", bench::PaperNetwork16()});
  nets.push_back({"rings-24sw", bench::PaperNetwork24()});

  for (const Net& net : nets) {
    const route::UpDownRouting routing(net.graph);
    const dist::DistanceTable equiv = dist::DistanceTable::Build(routing);
    const dist::DistanceTable hops = dist::DistanceTable::BuildHopCount(routing);
    const std::size_t m = net.graph.switch_count() / 4;
    const std::vector<std::size_t> sizes(4, m);
    sched::TabuOptions tabu;
    tabu.max_iterations_per_seed = net.graph.switch_count() >= 20 ? 60 : 20;

    const work::Workload workload = work::Workload::Uniform(4, net.graph.host_count() / 4);
    sim::SweepOptions sweep = bench::PaperSweep();
    sweep.points = 7;

    for (const auto* metric : {"equivalent", "hop-count"}) {
      const bool is_equiv = std::string(metric) == "equivalent";
      const dist::DistanceTable& table = is_equiv ? equiv : hops;
      const sched::SearchResult result = sched::TabuSearch(table, sizes, tabu);
      const double own_cc = result.best_cc;
      const double equiv_cc = qual::ClusteringCoefficient(equiv, result.best);
      const auto mapping = work::ProcessMapping::FromPartition(net.graph, workload, result.best);
      const sim::TrafficPattern pattern(net.graph, workload, mapping);
      const double tput =
          sim::RunLoadSweep(net.graph, routing, pattern, sweep).Throughput();
      out.AddRow({net.name, std::string(metric), own_cc, equiv_cc, tput});
    }
  }
  std::cout << out;
  std::cout << "\nreading: close throughputs mean hop count is a decent proxy on these\n"
            << "sparse nets; the equivalent metric is never worse and wins where minimal\n"
            << "paths overlap (it models shared-link contention).\n";
  return 0;
}
