// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <iostream>
#include <string>

#include "core/commsched.h"

namespace commsched::bench {

/// The random irregular 16-switch network used throughout §5 (seeded so the
/// repo's numbers are reproducible; the paper's own instance is unpublished).
inline topo::SwitchGraph PaperNetwork16(std::uint64_t seed = 1) {
  topo::IrregularTopologyOptions options;
  options.switch_count = 16;
  options.seed = seed;
  return topo::GenerateIrregularTopology(options);
}

/// The specially designed 24-switch network of §5.2 (four rings of six).
inline topo::SwitchGraph PaperNetwork24() { return topo::MakeFourRingsOfSix(); }

/// Simulation settings sized so a full figure regenerates in seconds while
/// keeping the curve shapes stable.
inline sim::SweepOptions PaperSweep() {
  sim::SweepOptions sweep;
  sweep.points = 9;  // S1..S9
  sweep.min_rate = 0.08;
  sweep.max_rate = 1.4;
  sweep.config.warmup_cycles = 5000;
  sweep.config.measure_cycles = 15000;
  return sweep;
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::cout << "==================================================================\n";
  std::cout << title << "\n";
  std::cout << "(reproduces " << paper_ref << ")\n";
  std::cout << "==================================================================\n";
}

}  // namespace commsched::bench
