// Shared helpers for the figure/table reproduction harnesses and the
// google-benchmark micro benches.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "core/commsched.h"

namespace commsched::bench {

/// Snapshot-delta reader over the global obs::Registry: construct before the
/// measured region, then ask for per-counter deltas afterwards. Benches use
/// this to report work counters (swap evaluations, flits, cycles) next to
/// wall-clock numbers — e.g. as google-benchmark custom counters, which land
/// in the perf JSON as swaps/sec or flits/cycle columns.
class ObsDelta {
 public:
  ObsDelta() : start_(obs::Registry::Global().CounterValues()) {}

  /// Counter increase since construction (0 for never-registered names).
  [[nodiscard]] std::uint64_t Delta(const std::string& name) const {
    const auto now = obs::Registry::Global().CounterValues();
    const auto it = now.find(name);
    if (it == now.end()) return 0;
    const auto base = start_.find(name);
    return it->second - (base == start_.end() ? 0 : base->second);
  }

  /// Ratio of two counter deltas (e.g. flits delivered / cycles simulated);
  /// 0 when the denominator has not moved.
  [[nodiscard]] double Rate(const std::string& numerator,
                            const std::string& denominator) const {
    const std::uint64_t denom = Delta(denominator);
    if (denom == 0) return 0.0;
    return static_cast<double>(Delta(numerator)) / static_cast<double>(denom);
  }

 private:
  std::map<std::string, std::uint64_t> start_;
};

/// Percentile estimate from a global-registry histogram (0 when absent or
/// empty). Histograms accumulate across bench iterations, so this reports
/// the distribution over the whole measured region — which is what a p50/p99
/// column should mean.
inline double HistogramPercentile(const std::string& name, double q) {
  const auto histograms = obs::Registry::Global().HistogramValues();
  const auto it = histograms.find(name);
  if (it == histograms.end() || it->second.count == 0) return 0.0;
  return it->second.Percentile(q);
}

/// The random irregular 16-switch network used throughout §5 (seeded so the
/// repo's numbers are reproducible; the paper's own instance is unpublished).
inline topo::SwitchGraph PaperNetwork16(std::uint64_t seed = 1) {
  topo::IrregularTopologyOptions options;
  options.switch_count = 16;
  options.seed = seed;
  return topo::GenerateIrregularTopology(options);
}

/// The specially designed 24-switch network of §5.2 (four rings of six).
inline topo::SwitchGraph PaperNetwork24() { return topo::MakeFourRingsOfSix(); }

/// Simulation settings sized so a full figure regenerates in seconds while
/// keeping the curve shapes stable.
inline sim::SweepOptions PaperSweep() {
  sim::SweepOptions sweep;
  sweep.points = 9;  // S1..S9
  sweep.min_rate = 0.08;
  sweep.max_rate = 1.4;
  sweep.config.warmup_cycles = 5000;
  sweep.config.measure_cycles = 15000;
  return sweep;
}

/// Figure binaries accept `--sim-mode cycle|event` (or `--sim-mode=...`) so
/// the event engine can regenerate every curve; anything else is an error.
inline sim::ExecMode ParseSimMode(int argc, char** argv) {
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sim-mode" && i + 1 < argc) {
      value = argv[++i];
    } else if (arg.rfind("--sim-mode=", 0) == 0) {
      value = arg.substr(std::string("--sim-mode=").size());
    }
  }
  if (value.empty() || value == "cycle") return sim::ExecMode::kCycle;
  if (value == "event") return sim::ExecMode::kEvent;
  std::cerr << "unknown --sim-mode '" << value << "' (want cycle|event)\n";
  std::exit(2);
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::cout << "==================================================================\n";
  std::cout << title << "\n";
  std::cout << "(reproduces " << paper_ref << ")\n";
  std::cout << "==================================================================\n";
}

}  // namespace commsched::bench
