// Micro-benchmarks: equivalent-distance table construction.
#include <benchmark/benchmark.h>

#include "core/commsched.h"

namespace {

using namespace commsched;

topo::SwitchGraph Net(std::size_t switches, std::uint64_t seed = 1) {
  topo::IrregularTopologyOptions options;
  options.switch_count = switches;
  options.seed = seed;
  return topo::GenerateIrregularTopology(options);
}

void BM_DistanceTableBuild(benchmark::State& state) {
  const topo::SwitchGraph g = Net(static_cast<std::size_t>(state.range(0)));
  const route::UpDownRouting routing(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::DistanceTable::Build(routing, /*parallel=*/false));
  }
}
BENCHMARK(BM_DistanceTableBuild)->Arg(8)->Arg(16)->Arg(24);

void BM_DistanceTableBuildParallel(benchmark::State& state) {
  const topo::SwitchGraph g = Net(static_cast<std::size_t>(state.range(0)));
  const route::UpDownRouting routing(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::DistanceTable::Build(routing, /*parallel=*/true));
  }
}
BENCHMARK(BM_DistanceTableBuildParallel)->Arg(16)->Arg(24);

void BM_LinksOnMinimalPaths(benchmark::State& state) {
  const topo::SwitchGraph g = Net(16);
  const route::UpDownRouting routing(g);
  std::size_t pair = 0;
  for (auto _ : state) {
    const std::size_t i = pair % 16;
    const std::size_t j = (pair / 16 + i + 1) % 16;
    ++pair;
    if (i == j) continue;
    benchmark::DoNotOptimize(routing.LinksOnMinimalPaths(i, j));
  }
}
BENCHMARK(BM_LinksOnMinimalPaths);

void BM_EffectiveResistance(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  linalg::ResistorNetwork net(n);
  for (std::size_t i = 0; i < n; ++i) {
    net.Add(i, (i + 1) % n);
    net.Add(i, (i + 2) % n);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.EffectiveResistance(0, n / 2));
  }
}
BENCHMARK(BM_EffectiveResistance)->Arg(8)->Arg(16)->Arg(32);

void BM_UpDownRoutingBuild(benchmark::State& state) {
  const topo::SwitchGraph g = Net(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    route::UpDownRouting routing(g);
    benchmark::DoNotOptimize(routing.MinimalDistance(0, g.switch_count() - 1));
  }
}
BENCHMARK(BM_UpDownRoutingBuild)->Arg(16)->Arg(24);

}  // namespace

BENCHMARK_MAIN();
