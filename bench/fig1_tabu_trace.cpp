// Figure 1: value of the target function F(P_i) along the Tabu search in a
// 16-switch network — 10 random starting points, peaks at each restart,
// rapid descent in the first few iterations, minimum not reached from every
// seed.
#include "bench_util.h"

int main() {
  using namespace commsched;
  bench::PrintHeader("Fig. 1 — Tabu search trace, 16-switch network", "paper Figure 1");

  const topo::SwitchGraph network = bench::PaperNetwork16();
  const route::UpDownRouting routing(network);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);

  sched::TabuOptions options;
  options.record_trace = true;
  const sched::SearchResult result = sched::TabuSearch(table, {4, 4, 4, 4}, options);

  TextTable trace({"iteration", "F", "restart"});
  trace.set_precision(5);
  for (const sched::TracePoint& point : result.trace) {
    trace.AddRow({static_cast<long long>(point.iteration), point.fg,
                  std::string(point.is_restart ? "*" : "")});
  }
  std::cout << trace;

  // Which starting points reach the global minimum (paper: only some do).
  std::size_t seeds_reaching_min = 0;
  std::size_t total_seeds = 0;
  double seed_min = 1e300;
  for (std::size_t k = 0; k < result.trace.size(); ++k) {
    if (result.trace[k].is_restart) {
      if (total_seeds > 0 && seed_min <= result.best_fg + 1e-9) ++seeds_reaching_min;
      ++total_seeds;
      seed_min = result.trace[k].fg;
    } else {
      seed_min = std::min(seed_min, result.trace[k].fg);
    }
  }
  if (total_seeds > 0 && seed_min <= result.best_fg + 1e-9) ++seeds_reaching_min;

  std::cout << "\nminimum F found: " << result.best_fg << " (C_c = " << result.best_cc << ")\n";
  std::cout << "starting points reaching the minimum: " << seeds_reaching_min << " of "
            << total_seeds << "\n";
  std::cout << "total moves: " << result.iterations << ", swap evaluations: "
            << result.evaluations << "\n";
  std::cout << "best partition: " << result.best.ToString() << "\n";
  return 0;
}
