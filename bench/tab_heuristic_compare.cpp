// §2/§4.2 claim: among the studied heuristics, the Tabu variant found
// equal-or-better clustering coefficients than methods with higher
// computational cost, and matched exhaustive search on small networks.
// This harness races Tabu against simulated annealing, genetic simulated
// annealing, steepest descent and random sampling on several networks.
#include <chrono>

#include "bench_util.h"

namespace {

using namespace commsched;

struct Row {
  std::string method;
  double fg;
  double cc;
  std::size_t evaluations;
  double millis;
};

template <typename F>
Row Measure(const std::string& method, const dist::DistanceTable& table, F&& run) {
  const auto start = std::chrono::steady_clock::now();
  const sched::SearchResult result = run();
  const auto stop = std::chrono::steady_clock::now();
  return {method, result.best_fg, result.best_cc, result.evaluations,
          std::chrono::duration<double, std::milli>(stop - start).count()};
}

}  // namespace

int main() {
  using namespace commsched;
  bench::PrintHeader("Heuristic comparison — Tabu vs SA / GSA / descent / random",
                     "§2 and §4.2 claims");

  struct Net {
    std::string name;
    topo::SwitchGraph graph;
    std::vector<std::size_t> sizes;
    bool exhaustive;
  };
  std::vector<Net> nets;
  nets.push_back({"random-8sw", topo::GenerateIrregularTopology({8, 4, 3, 1, 1000}),
                  {2, 2, 2, 2}, true});
  nets.push_back({"random-12sw", topo::GenerateIrregularTopology({12, 4, 3, 2, 1000}),
                  {3, 3, 3, 3}, true});
  nets.push_back({"random-16sw", bench::PaperNetwork16(), {4, 4, 4, 4}, true});
  nets.push_back({"rings-24sw", bench::PaperNetwork24(), {6, 6, 6, 6}, false});

  for (const Net& net : nets) {
    const route::UpDownRouting routing(net.graph);
    const dist::DistanceTable table = dist::DistanceTable::Build(routing);

    // Every searcher runs its restarts through the shared engine's parallel
    // multi-start driver — results are bit-identical to sequential runs, so
    // only the time column moves.
    std::vector<Row> rows;
    sched::TabuOptions tabu;
    tabu.max_iterations_per_seed = net.graph.switch_count() >= 20 ? 60 : 20;
    tabu.parallel_seeds = true;
    rows.push_back(Measure("tabu (paper)", table,
                           [&] { return sched::TabuSearch(table, net.sizes, tabu); }));
    sched::AnnealingOptions sa;
    sa.iterations = 30000;
    sa.parallel_seeds = true;
    rows.push_back(Measure("simulated annealing", table,
                           [&] { return sched::SimulatedAnnealing(table, net.sizes, sa); }));
    sched::GeneticAnnealingOptions gsa;
    gsa.generations = 150;
    gsa.parallel_seeds = true;
    rows.push_back(Measure("genetic SA", table, [&] {
      return sched::GeneticSimulatedAnnealing(table, net.sizes, gsa);
    }));
    sched::SteepestDescentOptions sd;
    sd.parallel_seeds = true;
    rows.push_back(Measure("steepest descent", table,
                           [&] { return sched::SteepestDescent(table, net.sizes, sd); }));
    sched::RandomSearchOptions random;
    random.samples = 5000;
    random.parallel_seeds = true;
    rows.push_back(Measure("random x5000", table,
                           [&] { return sched::RandomSearch(table, net.sizes, random); }));
    if (net.exhaustive) {
      rows.push_back(Measure("A* (exact)", table,
                             [&] { return sched::AStarSearch(table, net.sizes); }));
      rows.push_back(Measure("exhaustive (exact)", table,
                             [&] { return sched::ExhaustiveSearch(table, net.sizes); }));
    }

    std::cout << "\n== " << net.name << " ==\n";
    TextTable out({"method", "F_G", "C_c", "evaluations", "time(ms)"});
    out.set_precision(4);
    for (const Row& row : rows) {
      out.AddRow({row.method, row.fg, row.cc, static_cast<long long>(row.evaluations),
                  row.millis});
    }
    std::cout << out;
    const double tabu_fg = rows.front().fg;
    bool tabu_best = true;
    for (const Row& row : rows) {
      if (row.fg < tabu_fg - 1e-9) tabu_best = false;
    }
    std::cout << "tabu matched-or-beat every other heuristic: "
              << (tabu_best ? "YES" : "NO") << "\n";
  }
  return 0;
}
