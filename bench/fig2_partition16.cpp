// Figure 2: the 4-cluster partition the scheduling technique finds for a
// 16-switch network — four clusters of exactly four switches each, printed
// in the paper's "(a,b,c,d) ..." style, and validated against exhaustive
// search (§4.2: identical minima for networks up to 16 switches).
#include "bench_util.h"

int main() {
  using namespace commsched;
  bench::PrintHeader("Fig. 2 — 4-cluster partition of a 16-switch network", "paper Figure 2");

  const topo::SwitchGraph network = bench::PaperNetwork16();
  const route::UpDownRouting routing(network);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);

  const sched::SearchResult tabu = sched::TabuSearch(table, {4, 4, 4, 4});
  std::cout << "partition: " << tabu.best.ToString() << "\n";
  std::cout << "F_G = " << tabu.best_fg << ", D_G = " << tabu.best_dg
            << ", C_c = " << tabu.best_cc << "\n";
  for (std::size_t c = 0; c < 4; ++c) {
    std::cout << "cluster " << c << " has " << tabu.best.ClusterSize(c) << " switches\n";
  }

  std::cout << "\nvalidating against exhaustive search over "
            << sched::CountPartitions({4, 4, 4, 4}) << " partitions...\n";
  const sched::SearchResult exact = sched::ExhaustiveSearch(table, {4, 4, 4, 4});
  std::cout << "exhaustive minimum F_G = " << exact.best_fg << " (visited "
            << exact.evaluations << " leaves after pruning)\n";
  std::cout << "tabu matches exhaustive: "
            << (std::abs(tabu.best_fg - exact.best_fg) < 1e-9 ? "YES" : "NO") << "\n";
  return 0;
}
