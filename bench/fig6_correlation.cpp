// Figure 6: correlation of the clustering coefficient C_c with network
// performance at each simulation point S1..S9 across all the Fig. 3
// mappings. Paper: ~85 % at low load (S1-S4), ~75 % under deep saturation
// (S7-S9), not significant around the saturation knee (S5-S6).
//
// "Performance" at a point: accepted traffic (saturated runs deliver less);
// we also report the latency-based correlation (negative: lower latency =
// better mapping) for completeness.
#include "bench_util.h"

int main() {
  using namespace commsched;
  bench::PrintHeader("Fig. 6 — correlation of C_c with network performance", "paper Figure 6");

  const topo::SwitchGraph network = bench::PaperNetwork16();
  core::ExperimentOptions options;
  options.random_mappings = 9;
  options.sweep = bench::PaperSweep();
  const core::ExperimentResult result = core::RunPaperExperiment(network, options);

  std::vector<double> cc;
  cc.reserve(result.mappings.size());
  for (const core::MappingEvaluation& eval : result.mappings) {
    cc.push_back(eval.cc);
  }

  TextTable table({"point", "offered", "corr(Cc,accepted)", "corr(Cc,latency)"});
  table.set_precision(3);
  const std::size_t points = result.mappings.front().sweep.points.size();
  for (std::size_t k = 0; k < points; ++k) {
    std::vector<double> accepted;
    std::vector<double> latency;
    for (const core::MappingEvaluation& eval : result.mappings) {
      accepted.push_back(eval.sweep.points[k].metrics.accepted_flits_per_switch_cycle);
      latency.push_back(eval.sweep.points[k].metrics.avg_latency_cycles);
    }
    auto safe_corr = [&](const std::vector<double>& y) -> double {
      // Degenerate below saturation: every mapping accepts the full offered
      // load, so accepted traffic carries no signal there.
      double spread = 0.0;
      for (double v : y) spread = std::max(spread, std::abs(v - y.front()));
      if (spread < 1e-9) return 0.0;
      return stats::PearsonCorrelation(cc, y);
    };
    table.AddRow({std::string("S") + std::to_string(k + 1),
                  result.mappings.front().sweep.points[k].offered_rate, safe_corr(accepted),
                  safe_corr(latency)});
  }
  std::cout << table;

  // Aggregate check mirroring the paper's claim: strong positive
  // correlation between C_c and the sweep throughput of a mapping.
  std::vector<double> throughput;
  for (const core::MappingEvaluation& eval : result.mappings) {
    throughput.push_back(eval.Throughput());
  }
  std::cout << "\ncorr(C_c, throughput) over all mappings: "
            << stats::PearsonCorrelation(cc, throughput) << " (paper: > 0.7 everywhere)\n";
  std::cout << "rank correlation (Spearman):             "
            << stats::SpearmanCorrelation(cc, throughput) << "\n";
  return 0;
}
