// Micro-benchmarks: meta-task heuristics and the combined scheduler.
#include <benchmark/benchmark.h>

#include "core/commsched.h"

namespace {

using namespace commsched;
using namespace commsched::hetero;

EtcMatrix Instance(std::size_t tasks, std::size_t machines) {
  EtcOptions options;
  options.tasks = tasks;
  options.machines = machines;
  options.seed = 7;
  return EtcMatrix::Generate(options);
}

void BM_MinMin(benchmark::State& state) {
  const EtcMatrix etc = Instance(static_cast<std::size_t>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinMin(etc));
  }
}
BENCHMARK(BM_MinMin)->Arg(128)->Arg(512);

void BM_Sufferage(benchmark::State& state) {
  const EtcMatrix etc = Instance(static_cast<std::size_t>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sufferage(etc));
  }
}
BENCHMARK(BM_Sufferage)->Arg(128)->Arg(512);

void BM_Mct(benchmark::State& state) {
  const EtcMatrix etc = Instance(static_cast<std::size_t>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Mct(etc));
  }
}
BENCHMARK(BM_Mct)->Arg(512)->Arg(4096);

void BM_LocalSearchPolish(benchmark::State& state) {
  const EtcMatrix etc = Instance(128, 8);
  const MetaSchedule seed = MinMin(etc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ImproveByLocalSearch(etc, seed));
  }
}
BENCHMARK(BM_LocalSearchPolish)->Unit(benchmark::kMillisecond);

void BM_CombinedStrategy(benchmark::State& state) {
  const topo::SwitchGraph graph = topo::MakeFourRingsOfSix();
  const route::UpDownRouting routing(graph);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);
  HeteroSystem system;
  system.graph = &graph;
  system.table = &table;
  system.switch_speed.assign(24, 1.0);
  for (std::size_t s = 0; s < 24; s += 4) system.switch_speed[s] = 6.0;
  const std::vector<ApplicationDemand> apps = {
      {"a", 40.0, 1.0, 6}, {"b", 2.0, 30.0, 6}, {"c", 10.0, 10.0, 6}, {"d", 10.0, 10.0, 6}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScheduleHetero(system, apps, HeteroStrategy::kCombined));
  }
}
BENCHMARK(BM_CombinedStrategy)->Unit(benchmark::kMillisecond);

void BM_OnlineAllocate(benchmark::State& state) {
  const topo::SwitchGraph graph = topo::MakeFourRingsOfSix();
  const route::UpDownRouting routing(graph);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);
  for (auto _ : state) {
    sched::OnlineScheduler scheduler(graph, table);
    benchmark::DoNotOptimize(scheduler.Allocate("a", 6));
    benchmark::DoNotOptimize(scheduler.Allocate("b", 6));
    benchmark::DoNotOptimize(scheduler.Allocate("c", 6));
  }
}
BENCHMARK(BM_OnlineAllocate);

}  // namespace

BENCHMARK_MAIN();
