// Micro-benchmarks for the unified search engine (sched/engine.h): what the
// Objective virtual dispatch + span/trace machinery costs against a
// hand-inlined copy of the legacy scan loop, and what the multi-start
// driver's thread pool buys. Identical walks run on both sides (same starts,
// same comparison rule), so the wall-clock delta IS the engine overhead.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/commsched.h"

namespace {

using namespace commsched;

dist::DistanceTable Table(std::size_t switches) {
  topo::IrregularTopologyOptions options;
  options.switch_count = switches;
  options.seed = 1;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const route::UpDownRouting routing(g);
  return dist::DistanceTable::Build(routing);
}

/// Steepest descent through the engine: IntraSumObjective + GreedyDescent
/// rules, one seed per bench iteration.
void BM_EngineDescentSeed(benchmark::State& state) {
  const dist::DistanceTable table = Table(static_cast<std::size_t>(state.range(0)));
  const std::vector<std::size_t> sizes(4, table.size() / 4);
  sched::EngineOptions options;
  options.seeds = 1;
  options.max_iterations_per_seed = 1000;
  const sched::SearchEngine engine("sd", options, sched::ScanRules::GreedyDescent());
  std::uint64_t seed = 0;
  std::uint64_t evaluations = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    const qual::Partition start = qual::Partition::Random(sizes, rng);
    qual::SwapEvaluator eval(table, start);
    sched::IntraSumObjective objective(table, eval);
    sched::SeedRun run = engine.RunSeed(objective, 0);
    engine.FlushSeedObservability(run, 0);
    evaluations += run.result.evaluations;
    benchmark::DoNotOptimize(run.result.best_fg);
  }
  state.counters["evals_per_sec"] =
      benchmark::Counter(static_cast<double>(evaluations), benchmark::Counter::kIsRate);
  state.counters["seed_iters_p50"] =
      benchmark::Counter(bench::HistogramPercentile("search.sd.seed_iters", 0.50));
  state.counters["seed_iters_p99"] =
      benchmark::Counter(bench::HistogramPercentile("search.sd.seed_iters", 0.99));
}
BENCHMARK(BM_EngineDescentSeed)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

/// The same walk with the scan loop inlined by hand — the shape of the
/// pre-engine searcher loops. No virtual dispatch, no spans, no events.
void BM_RawDescentLoop(benchmark::State& state) {
  const dist::DistanceTable table = Table(static_cast<std::size_t>(state.range(0)));
  const std::vector<std::size_t> sizes(4, table.size() / 4);
  constexpr double kEps = 1e-12;
  std::uint64_t seed = 0;
  std::uint64_t evaluations = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    qual::SwapEvaluator eval(table, qual::Partition::Random(sizes, rng));
    const std::size_t n = table.size();
    for (std::size_t it = 0; it < 1000; ++it) {
      double best_delta = -kEps;
      std::size_t best_a = 0;
      std::size_t best_b = 0;
      bool found = false;
      for (std::size_t a = 0; a + 1 < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
          if (eval.partition().ClusterOf(a) == eval.partition().ClusterOf(b)) continue;
          const double delta = eval.SwapDelta(a, b);
          ++evaluations;
          if (delta < best_delta) {
            best_delta = delta;
            best_a = a;
            best_b = b;
            found = true;
          }
        }
      }
      if (!found) break;
      eval.ApplySwap(best_a, best_b);
    }
    benchmark::DoNotOptimize(eval.Fg());
  }
  state.counters["evals_per_sec"] =
      benchmark::Counter(static_cast<double>(evaluations), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RawDescentLoop)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

/// Multi-start driver, sequential vs. thread pool (identical results; the
/// ratio of these two rows is the parallel-restart speedup).
void BM_EngineMultiStart(benchmark::State& state) {
  const dist::DistanceTable table = Table(24);
  const std::vector<std::size_t> sizes(4, 6);
  std::uint64_t seed = 0;
  const bench::ObsDelta obs_delta;
  for (auto _ : state) {
    sched::TabuOptions options;
    options.seeds = 8;
    options.max_iterations_per_seed = 60;
    options.rng_seed = ++seed;
    options.parallel_seeds = state.range(0) != 0;
    benchmark::DoNotOptimize(sched::TabuSearch(table, sizes, options));
  }
  state.counters["evals_per_sec"] =
      benchmark::Counter(static_cast<double>(obs_delta.Delta("search.tabu.evaluations")),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineMultiStart)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("parallel")
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
