// Figure 4: the partition found for the specially designed 24-switch
// network (four interconnected rings of six switches). The scheduling
// technique must identify the four rings as the four clusters.
#include "bench_util.h"

int main() {
  using namespace commsched;
  bench::PrintHeader("Fig. 4 — partition of the designed 24-switch network", "paper Figure 4");

  const topo::SwitchGraph network = bench::PaperNetwork24();
  const route::UpDownRouting routing(network);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);

  sched::TabuOptions options;
  options.max_iterations_per_seed = 60;  // larger network than Fig. 2
  const sched::SearchResult result = sched::TabuSearch(table, {6, 6, 6, 6}, options);

  std::cout << "partition: " << result.best.ToString() << "\n";
  std::cout << "F_G = " << result.best_fg << ", C_c = " << result.best_cc << "\n";

  // Ring r owns switches [6r, 6r+5]; check recovery up to cluster labels.
  const qual::Partition rings({0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1,
                               2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3});
  const bool recovered = result.best.SameGrouping(rings);
  std::cout << "identified the four rings: " << (recovered ? "YES" : "NO") << "\n";
  if (!recovered) {
    std::cout << "expected " << rings.ToString() << "\n";
  }

  // The paper notes the 24-switch C_c exceeds the 16-switch one (better
  // defined clusters).
  const topo::SwitchGraph net16 = bench::PaperNetwork16();
  const route::UpDownRouting routing16(net16);
  const dist::DistanceTable table16 = dist::DistanceTable::Build(routing16);
  const sched::SearchResult result16 = sched::TabuSearch(table16, {4, 4, 4, 4});
  std::cout << "C_c comparison: designed 24-switch " << result.best_cc
            << " vs random 16-switch " << result16.best_cc
            << "  (paper: 24-switch higher) -> "
            << (result.best_cc > result16.best_cc ? "CONSISTENT" : "INCONSISTENT") << "\n";
  return 0;
}
