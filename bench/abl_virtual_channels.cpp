// Ablation: virtual channels and routing flexibility. The paper's simulator
// uses single-channel wormhole up*/down*; Duato's design methodology [8]
// (the paper's evaluation reference) adds virtual channels and fully
// adaptive minimal routing with an escape channel. How much of the
// scheduling gain survives better routing — and does better routing shrink
// the gap between good and bad mappings?
#include "bench_util.h"

int main() {
  using namespace commsched;
  bench::PrintHeader("Ablation — virtual channels & Duato fully-adaptive routing",
                     "evaluation substrate of §5 / reference [8]");

  const topo::SwitchGraph network = bench::PaperNetwork16();
  const route::UpDownRouting routing(network);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);
  const work::Workload workload = work::Workload::Uniform(4, 16);

  const sched::SearchResult op = sched::TabuSearch(table, {4, 4, 4, 4});
  Rng rng(2000);
  const qual::Partition random_partition = qual::Partition::Random({4, 4, 4, 4}, rng);

  const auto op_mapping = work::ProcessMapping::FromPartition(network, workload, op.best);
  const auto rnd_mapping =
      work::ProcessMapping::FromPartition(network, workload, random_partition);
  const sim::TrafficPattern op_traffic(network, workload, op_mapping);
  const sim::TrafficPattern rnd_traffic(network, workload, rnd_mapping);

  auto throughput = [&](const sim::TrafficPattern& pattern, const sim::VcRoutingPolicy& policy,
                        std::size_t vcs) {
    sim::SimConfig config;
    config.warmup_cycles = 4000;
    config.measure_cycles = 12000;
    config.virtual_channels = vcs;
    double best = 0.0;
    for (double rate : {0.4, 0.8, 1.2, 1.6}) {
      sim::NetworkSimulator simulator(network, policy, pattern, config);
      best = std::max(best, simulator.Run(rate).accepted_flits_per_switch_cycle);
    }
    return best;
  };

  TextTable out({"routing", "VCs", "OP tput", "random tput", "OP/random"});
  out.set_precision(3);
  for (std::size_t vcs : {1u, 2u, 4u}) {
    const sim::SingleClassVcPolicy det(routing, vcs, false);
    const double op_t = throughput(op_traffic, det, vcs);
    const double rnd_t = throughput(rnd_traffic, det, vcs);
    out.AddRow({std::string("up*/down* det"), static_cast<long long>(vcs), op_t, rnd_t,
                op_t / rnd_t});
  }
  for (std::size_t vcs : {1u, 2u, 4u}) {
    const sim::SingleClassVcPolicy adapt(routing, vcs, true);
    const double op_t = throughput(op_traffic, adapt, vcs);
    const double rnd_t = throughput(rnd_traffic, adapt, vcs);
    out.AddRow({std::string("up*/down* adaptive"), static_cast<long long>(vcs), op_t, rnd_t,
                op_t / rnd_t});
  }
  for (std::size_t vcs : {2u, 4u}) {
    const sim::DuatoFullyAdaptivePolicy duato(network, vcs);
    const double op_t = throughput(op_traffic, duato, vcs);
    const double rnd_t = throughput(rnd_traffic, duato, vcs);
    out.AddRow({std::string("duato fully-adaptive"), static_cast<long long>(vcs), op_t, rnd_t,
                op_t / rnd_t});
  }
  std::cout << out;
  std::cout << "\nreading: richer routing lifts every mapping, but the scheduled mapping\n"
            << "keeps a clear margin — communication-aware placement and adaptive routing\n"
            << "are complementary, not substitutes.\n";
  return 0;
}
