// §5.2 claim: "The correlation index for any of the considered networks was
// higher than 70% for simulation points at both low network load and network
// saturation." This harness repeats the Fig. 6 study over several distinct
// topologies (sizes 16..24) and reports the C_c / throughput correlation and
// the OP-vs-random improvement for each.
#include "bench_util.h"

int main() {
  using namespace commsched;
  bench::PrintHeader("Multi-network study — C_c correlation and OP gain per topology",
                     "§5.2 'other network examples'");

  struct Net {
    std::string name;
    topo::SwitchGraph graph;
  };
  std::vector<Net> nets;
  nets.push_back({"random-16sw-A", bench::PaperNetwork16(1)});
  nets.push_back({"random-16sw-B", bench::PaperNetwork16(7)});
  nets.push_back({"random-20sw", topo::GenerateIrregularTopology({20, 4, 3, 3, 1000})});
  nets.push_back({"random-24sw", topo::GenerateIrregularTopology({24, 4, 3, 5, 1000})});
  nets.push_back({"rings-24sw", bench::PaperNetwork24()});

  TextTable out({"network", "OP Cc", "rand Cc(max)", "corr(Cc,tput)", "OP/rand tput"});
  out.set_precision(3);
  for (const Net& net : nets) {
    core::ExperimentOptions options;
    options.random_mappings = 6;
    options.sweep = bench::PaperSweep();
    options.sweep.points = 7;
    options.tabu.max_iterations_per_seed = net.graph.switch_count() >= 20 ? 60 : 20;
    const core::ExperimentResult result = core::RunPaperExperiment(net.graph, options);

    std::vector<double> cc;
    std::vector<double> tput;
    double rand_cc_max = 0.0;
    for (std::size_t k = 0; k < result.mappings.size(); ++k) {
      cc.push_back(result.mappings[k].cc);
      tput.push_back(result.mappings[k].Throughput());
      if (k > 0) rand_cc_max = std::max(rand_cc_max, result.mappings[k].cc);
    }
    out.AddRow({net.name, result.Scheduled().cc, rand_cc_max,
                stats::PearsonCorrelation(cc, tput), result.ThroughputImprovement()});
  }
  std::cout << out;
  std::cout << "\npaper's claims: corr > 0.7 on every network; OP/rand > 1 everywhere,\n"
            << "largest on the clustered rings-24sw topology.\n";
  return 0;
}
