// Micro-benchmarks: quality functions and the incremental swap evaluator —
// the inner loop of every searcher.
#include <benchmark/benchmark.h>

#include "core/commsched.h"

namespace {

using namespace commsched;

dist::DistanceTable Table(std::size_t switches) {
  topo::IrregularTopologyOptions options;
  options.switch_count = switches;
  options.seed = 1;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const route::UpDownRouting routing(g);
  return dist::DistanceTable::Build(routing);
}

void BM_GlobalSimilarityDirect(benchmark::State& state) {
  const dist::DistanceTable table = Table(static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  const std::vector<std::size_t> sizes(4, table.size() / 4);
  const qual::Partition p = qual::Partition::Random(sizes, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qual::GlobalSimilarity(table, p));
  }
}
BENCHMARK(BM_GlobalSimilarityDirect)->Arg(16)->Arg(24);

void BM_SwapDelta(benchmark::State& state) {
  const dist::DistanceTable table = Table(static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  const std::vector<std::size_t> sizes(4, table.size() / 4);
  qual::SwapEvaluator eval(table, qual::Partition::Random(sizes, rng));
  // Pre-pick an inter-cluster pair.
  std::size_t a = 0;
  std::size_t b = 1;
  while (eval.partition().ClusterOf(a) == eval.partition().ClusterOf(b)) ++b;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.SwapDelta(a, b));
  }
}
BENCHMARK(BM_SwapDelta)->Arg(16)->Arg(24);

void BM_FullNeighborhoodScan(benchmark::State& state) {
  const dist::DistanceTable table = Table(static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  const std::vector<std::size_t> sizes(4, table.size() / 4);
  qual::SwapEvaluator eval(table, qual::Partition::Random(sizes, rng));
  const std::size_t n = table.size();
  for (auto _ : state) {
    double best = 0.0;
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (eval.partition().ClusterOf(a) == eval.partition().ClusterOf(b)) continue;
        best = std::min(best, eval.SwapDelta(a, b));
      }
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_FullNeighborhoodScan)->Arg(16)->Arg(24);

void BM_ClusteringCoefficient(benchmark::State& state) {
  const dist::DistanceTable table = Table(16);
  Rng rng(1);
  const qual::Partition p = qual::Partition::Random({4, 4, 4, 4}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qual::ClusteringCoefficient(table, p));
  }
}
BENCHMARK(BM_ClusteringCoefficient);

}  // namespace

BENCHMARK_MAIN();
