// Ablation: the paper's Tabu schedule (10 seeds / 20 iterations / 3 repeats,
// tabu tenure h). How sensitive is the found minimum to each knob?
#include "bench_util.h"

int main() {
  using namespace commsched;
  bench::PrintHeader("Ablation — Tabu search parameters", "§4.2 schedule");

  const topo::SwitchGraph network = bench::PaperNetwork16();
  const route::UpDownRouting routing(network);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);
  const std::vector<std::size_t> sizes{4, 4, 4, 4};

  const sched::SearchResult exact = sched::ExhaustiveSearch(table, sizes);
  std::cout << "exact minimum F_G = " << exact.best_fg << "\n\n";

  TextTable out({"seeds", "iters/seed", "tenure", "aspiration", "F_G", "gap(%)", "evals"});
  out.set_precision(4);
  auto run = [&](std::size_t seeds, std::size_t iters, std::size_t tenure, bool aspiration) {
    sched::TabuOptions options;
    options.seeds = seeds;
    options.max_iterations_per_seed = iters;
    options.tenure = tenure;
    options.aspiration = aspiration;
    const sched::SearchResult r = sched::TabuSearch(table, sizes, options);
    out.AddRow({static_cast<long long>(seeds), static_cast<long long>(iters),
                static_cast<long long>(tenure), std::string(aspiration ? "on" : "off"),
                r.best_fg, (r.best_fg / exact.best_fg - 1.0) * 100.0,
                static_cast<long long>(r.evaluations)});
  };

  // Seed count sweep (paper: 10).
  for (std::size_t seeds : {1u, 3u, 5u, 10u, 20u}) run(seeds, 20, 4, true);
  // Iteration budget sweep (paper: 20).
  for (std::size_t iters : {5u, 10u, 20u, 50u, 100u}) run(10, iters, 4, true);
  // Tenure sweep.
  for (std::size_t tenure : {1u, 2u, 4u, 8u, 16u}) run(10, 20, tenure, true);
  // Aspiration off.
  run(10, 20, 4, false);

  std::cout << out;
  std::cout << "\nreading: the paper's 10x20 schedule reaches the exact optimum; fewer\n"
            << "seeds or a tiny budget leave a gap, larger budgets only cost evaluations.\n";
  return 0;
}
