// Figure 5: latency vs. accepted traffic for the specially designed
// 24-switch network (four rings of six) — OP vs three random mappings.
// Paper: OP throughput ≈ 5x the random mappings', and the OP clustering
// coefficient is higher than on the 16-switch network.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace commsched;
  bench::PrintHeader("Fig. 5 — simulation results, designed 24-switch network",
                     "paper Figure 5");

  const topo::SwitchGraph network = bench::PaperNetwork24();
  core::ExperimentOptions options;
  options.random_mappings = 3;  // the paper uses 3 random mappings here
  options.sweep = bench::PaperSweep();
  options.sweep.config.exec_mode = bench::ParseSimMode(argc, argv);
  options.tabu.max_iterations_per_seed = 60;
  const core::ExperimentResult result = core::RunPaperExperiment(network, options);

  for (const core::MappingEvaluation& eval : result.mappings) {
    std::cout << "\n-- mapping " << eval.label << "  (C_c = " << eval.cc << ")\n";
    std::cout << "   partition " << eval.partition.ToString() << "\n";
    TextTable table({"point", "offered", "accepted", "latency(cycles)", "saturated"});
    table.set_precision(3);
    for (std::size_t k = 0; k < eval.sweep.points.size(); ++k) {
      const sim::SweepPoint& p = eval.sweep.points[k];
      table.AddRow({std::string("S") + std::to_string(k + 1), p.offered_rate,
                    p.metrics.accepted_flits_per_switch_cycle, p.metrics.avg_latency_cycles,
                    std::string(p.metrics.Saturated() ? "yes" : "no")});
    }
    std::cout << table;
    std::cout << "   throughput = " << eval.Throughput() << " flits/switch/cycle\n";
  }

  std::cout << "\n== summary ==\n";
  std::cout << "OP throughput:          " << result.Scheduled().Throughput() << "\n";
  std::cout << "best random throughput: " << result.BestRandomThroughput() << "\n";
  std::cout << "ratio:                  " << result.ThroughputImprovement()
            << "x (paper: ~5x)\n";
  return 0;
}
