// The paper's §1 vision, made executable: "the scheduler would choose
// either a computation-aware or a communication-aware task scheduling
// strategy depending on the kind of requirements that leads to the system
// performance bottleneck." We sweep workloads from compute-bound to
// communication-bound on a heterogeneous 24-switch system and compare the
// three strategies' estimated makespans.
#include "bench_util.h"

int main() {
  using namespace commsched;
  using namespace commsched::hetero;
  bench::PrintHeader("Combined computation/communication scheduling strategies",
                     "§1 (integration is the paper's future work)");

  const topo::SwitchGraph network = bench::PaperNetwork24();
  const route::UpDownRouting routing(network);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);

  // Heterogeneous machine: fast switches scattered across the rings.
  HeteroSystem system;
  system.graph = &network;
  system.table = &table;
  system.switch_speed.assign(24, 1.0);
  for (std::size_t s = 0; s < 24; s += 4) system.switch_speed[s] = 6.0;

  // Four applications with distinct profiles (an HPC job, a streaming job,
  // two middling ones); the sweep scales the whole workload from compute-
  // bound to communication-bound.
  auto make_apps = [](double compute_scale, double comm_scale) {
    return std::vector<ApplicationDemand>{
        {"hpc", 40.0 * compute_scale, 1.0 * comm_scale, 6},
        {"stream", 2.0 * compute_scale, 30.0 * comm_scale, 6},
        {"mixed1", 10.0 * compute_scale, 10.0 * comm_scale, 6},
        {"mixed2", 10.0 * compute_scale, 10.0 * comm_scale, 6},
    };
  };

  TextTable out({"workload (compute/comm scale)", "compute-only", "comm-only", "combined",
                 "winner"});
  out.set_precision(3);
  for (const auto& [label, compute, comm] :
       std::vector<std::tuple<std::string, double, double>>{
           {"compute-bound (10/0.01)", 10.0, 0.01},
           {"mostly compute (4/0.2)", 4.0, 0.2},
           {"balanced (1/1)", 1.0, 1.0},
           {"mostly comm (0.2/4)", 0.2, 4.0},
           {"comm-bound (0.01/10)", 0.01, 10.0}}) {
    const std::vector<ApplicationDemand> apps = make_apps(compute, comm);
    const double mk_compute =
        ScheduleHetero(system, apps, HeteroStrategy::kComputeOnly).makespan;
    const double mk_comm =
        ScheduleHetero(system, apps, HeteroStrategy::kCommunicationOnly).makespan;
    const double mk_combined =
        ScheduleHetero(system, apps, HeteroStrategy::kCombined).makespan;
    std::string winner = "combined";
    if (mk_compute <= mk_combined + 1e-9 && mk_compute <= mk_comm) winner = "compute-only(~)";
    if (mk_comm <= mk_combined + 1e-9 && mk_comm < mk_compute) winner = "comm-only(~)";
    out.AddRow({label, mk_compute, mk_comm, mk_combined, winner});
  }
  std::cout << out;
  std::cout << "\nreading: each single-objective strategy wins exactly on its own\n"
            << "bottleneck and loses badly on the other; the combined strategy matches\n"
            << "the better of the two everywhere and beats both in the middle — the\n"
            << "paper's proposed selection rule, plus the option to blend.\n";
  return 0;
}
