// Virtual-channel routing policies.
//
// The simulator multiplexes each physical link into `vc_count` virtual
// channels (flit-level interleaving, one flit per physical link per cycle).
// A policy maps a header's state to the set of (link, virtual channel)
// outputs it may claim:
//
//   * SingleClassVcPolicy — every VC carries the same routing function
//     (up*/down* or unrestricted shortest path), deterministic or adaptive
//     across links. VCs only add buffering/head-of-line relief.
//   * DuatoFullyAdaptivePolicy — Duato's design-methodology routing [8]:
//     VCs 1..V-1 are *adaptive* channels usable on any minimal physical
//     path; VC 0 is the *escape* channel restricted to up*/down*. A message
//     that takes the escape channel stays on it to the destination (the
//     conservative variant, provably deadlock-free: the escape subnetwork
//     has an acyclic CDG and every adaptive channel can drain into it).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "routing/routing.h"
#include "routing/shortest_path.h"
#include "routing/updown.h"

namespace commsched::sim {

using route::LinkId;
using route::Phase;
using route::Routing;
using route::SwitchId;
using topo::SwitchGraph;

/// One claimable output: a virtual channel of a directed link.
struct VcCandidate {
  LinkId link = 0;
  SwitchId next = 0;
  Phase phase = Phase::kUp;  // message phase after the traversal
  std::size_t vc = 0;
  bool escape = false;       // message commits to the escape network

  friend bool operator==(const VcCandidate&, const VcCandidate&) = default;
};

class VcRoutingPolicy {
 public:
  virtual ~VcRoutingPolicy() = default;

  [[nodiscard]] virtual const SwitchGraph& graph() const = 0;
  [[nodiscard]] virtual std::size_t vc_count() const = 0;

  /// Outputs a header at `current` heading to `dest` may claim, in
  /// preference order (the simulator tries them first to last).
  /// `phase`/`on_escape` describe the message's routing state.
  [[nodiscard]] virtual std::vector<VcCandidate> Candidates(SwitchId current, SwitchId dest,
                                                            Phase phase,
                                                            bool on_escape) const = 0;

  [[nodiscard]] virtual std::string Name() const = 0;
};

/// Same routing function on every VC. `adaptive` selects among all offered
/// links (and VCs); otherwise only the first offered link (still any VC).
class SingleClassVcPolicy final : public VcRoutingPolicy {
 public:
  /// `routing` must outlive the policy.
  SingleClassVcPolicy(const Routing& routing, std::size_t vc_count, bool adaptive);

  [[nodiscard]] const SwitchGraph& graph() const override { return routing_->graph(); }
  [[nodiscard]] std::size_t vc_count() const override { return vc_count_; }
  [[nodiscard]] std::vector<VcCandidate> Candidates(SwitchId current, SwitchId dest, Phase phase,
                                                    bool on_escape) const override;
  [[nodiscard]] std::string Name() const override;

 private:
  const Routing* routing_;
  std::size_t vc_count_;
  bool adaptive_;
};

/// Duato fully-adaptive minimal routing with an up*/down* escape channel.
/// Requires vc_count >= 2. Owns its two routing functions.
class DuatoFullyAdaptivePolicy final : public VcRoutingPolicy {
 public:
  /// `graph` must outlive the policy.
  DuatoFullyAdaptivePolicy(const SwitchGraph& graph, std::size_t vc_count,
                           route::RootPolicy root_policy = route::RootPolicy::kMaxDegree);

  [[nodiscard]] const SwitchGraph& graph() const override { return *graph_; }
  [[nodiscard]] std::size_t vc_count() const override { return vc_count_; }
  [[nodiscard]] std::vector<VcCandidate> Candidates(SwitchId current, SwitchId dest, Phase phase,
                                                    bool on_escape) const override;
  [[nodiscard]] std::string Name() const override { return "duato-fully-adaptive"; }

  [[nodiscard]] const route::UpDownRouting& escape_routing() const { return escape_; }
  [[nodiscard]] const route::ShortestPathRouting& adaptive_routing() const { return adaptive_; }

 private:
  const SwitchGraph* graph_;
  std::size_t vc_count_;
  route::UpDownRouting escape_;
  route::ShortestPathRouting adaptive_;
};

/// Structural safety check for the Duato policy, following the design
/// methodology's two obligations:
///   1. the escape subnetwork (up*/down* on VC 0) has an acyclic channel
///      dependency graph — deadlock-free on its own; and
///   2. every adaptive-phase state (switch, destination) is offered at
///      least one escape candidate, so blocked messages can always drain.
/// Returns true iff both hold (they do by construction; this makes the
/// argument machine-checked).
[[nodiscard]] bool VerifyDuatoSafety(const DuatoFullyAdaptivePolicy& policy);

}  // namespace commsched::sim
