// Flit-level wormhole network simulator with two execution engines.
//
// Model (per the paper's §5 evaluation methodology, after [8]):
//   * input-buffered switches; every inter-switch link is two unidirectional
//     physical channels, each multiplexed into `virtual_channels` virtual
//     channels with private input FIFOs of `input_buffer_flits` flits;
//   * wormhole switching: a header flit claims one virtual channel of an
//     output link (routing takes one cycle — the claim happens the cycle
//     after arrival at the earliest); the VC is held until the tail passes;
//   * credit flow control: a flit advances only when the downstream VC
//     buffer has a free slot; physical link bandwidth is one flit per cycle,
//     shared round-robin among its VCs;
//   * hosts inject through per-host injection queues (one flit per cycle)
//     and consume through per-host delivery ports (one flit per cycle);
//   * message arrivals are a per-host Bernoulli process (sampled as
//     geometric inter-arrival gaps from per-host streams; see arrivals.h);
//     destinations come from a TrafficPattern; which (link, VC) a header may
//     claim comes from a VcRoutingPolicy (plain up*/down*, adaptive, or
//     Duato fully-adaptive with an escape channel).
//
// SimConfig::exec_mode selects the engine. ExecMode::kCycle visits every
// switch/channel/host each cycle; ExecMode::kEvent maintains active sets
// and an arrival event queue so only elements with due work are visited and
// idle spans are skipped in O(1). Both engines run the identical protocol on
// identical arrival schedules; only the arbitration scan order may differ,
// so cross-engine results agree statistically (tests/test_sim_equivalence)
// while fault/arrival-determined counters agree exactly.
//
// Up*/down* routing is deadlock-free on a single virtual channel (see
// routing/deadlock.h) and per-VC on many; a watchdog detects deadlock for
// configurations that are not.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "faults/degraded.h"
#include "faults/fault_plan.h"
#include "routing/routing.h"
#include "simnet/arrivals.h"
#include "simnet/config.h"
#include "simnet/event_queue.h"
#include "simnet/flit_pool.h"
#include "simnet/metrics.h"
#include "simnet/traffic.h"
#include "simnet/vc_routing.h"

namespace commsched::sim {

using route::Phase;
using route::Routing;

/// Whole-run conservation totals (debug/property-test surface; cumulative
/// over the last Run, warmup included). Invariants after every Run:
///   flits_injected == flits_delivered + flits_dropped + flits_in_network
///   pool_live      == flits_in_network
///   messages_lost  >= messages_born_dead
struct SimTotals {
  std::uint64_t flits_injected = 0;
  std::uint64_t flits_delivered = 0;
  std::uint64_t flits_dropped = 0;
  std::uint64_t flits_in_network = 0;
  std::uint64_t messages_enqueued = 0;
  std::uint64_t messages_born_dead = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t pool_live = 0;
};

class NetworkSimulator {
 public:
  /// Single-class convenience: all VCs route via `routing`
  /// (config.adaptive_routing selects link adaptivity). graph/routing/
  /// pattern must outlive the simulator.
  NetworkSimulator(const SwitchGraph& graph, const Routing& routing,
                   const TrafficPattern& pattern, const SimConfig& config);

  /// Full control over VC usage; `policy` must be built for `graph` and
  /// have vc_count == config.virtual_channels.
  NetworkSimulator(const SwitchGraph& graph, const VcRoutingPolicy& policy,
                   const TrafficPattern& pattern, const SimConfig& config);

  /// Runs warmup + measurement at the given offered load (flits per switch
  /// per cycle, aggregated over the switch's hosts) and returns the metrics.
  /// Each call restarts the simulation from an empty network.
  [[nodiscard]] SimMetrics Run(double injection_flits_per_switch_cycle);

  /// Conservation totals of the last Run (see SimTotals).
  [[nodiscard]] SimTotals Totals() const;

 private:
  // ---- static structure -------------------------------------------------
  /// An input FIFO: an intrusive chain of FlitPool slots.
  struct Buffer {
    static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::uint32_t head = FlitPool::kNil;  // oldest flit
    std::uint32_t tail = FlitPool::kNil;  // newest flit
    std::size_t size = 0;
    std::size_t ready = 0;  // prefix of the chain visible to arbitration/transfer
    std::size_t capacity = 0;
    /// Output currently pulling from this buffer (wormhole hold), or kNone.
    std::size_t granted_output = kNone;
    [[nodiscard]] bool HasSpace() const { return size < capacity; }
    [[nodiscard]] bool FrontReady() const { return ready > 0; }
  };

  struct OutputPort {
    static constexpr std::size_t kFree = static_cast<std::size_t>(-1);
    std::size_t owner = kFree;          // message holding this VC/port
    std::size_t source_buffer = kFree;  // input buffer the owner streams from
    Phase next_phase = Phase::kUp;      // message phase after crossing
    bool next_escape = false;           // escape commitment after crossing
    std::uint64_t flits_moved_measured = 0;
  };

  struct Message {
    std::size_t src_host = 0;
    std::size_t dst_host = 0;
    std::size_t dst_switch = 0;
    std::size_t length = 0;
    std::size_t gen_cycle = 0;
    std::size_t inject_cycle = static_cast<std::size_t>(-1);
    std::size_t current_switch = 0;
    Phase phase = Phase::kUp;
    bool on_escape = false;
    bool lost = false;  // dropped by a fault / reconfiguration
  };

  // Index layout (V = virtual channel count, L = link count, H = hosts):
  //   directed physical channel c in [0, 2L): c = 2*link + dir (dir 0: a->b)
  //   link VC buffer/output id: c * V + vc, in [0, 2L*V)
  //   injection buffer of host h / delivery port of host h: 2L*V + h
  [[nodiscard]] std::size_t ChannelCount() const { return 2 * graph_->link_count(); }
  [[nodiscard]] std::size_t LinkVcCount() const { return ChannelCount() * vc_count_; }
  [[nodiscard]] std::size_t ChannelFrom(std::size_t channel) const;
  [[nodiscard]] std::size_t ChannelTo(std::size_t channel) const;
  [[nodiscard]] std::size_t InjectionBuffer(std::size_t host) const;
  [[nodiscard]] std::size_t DeliveryPort(std::size_t host) const;

  [[nodiscard]] bool IsHeadFlit(std::uint32_t id) const { return pool_.seq(id) == 0; }
  [[nodiscard]] bool IsTailFlit(std::uint32_t id) const {
    return pool_.seq(id) + 1 == messages_[pool_.msg(id)].length;
  }

  void Init();
  void ResetState();
  /// One simulation step. In cycle mode this is exactly one cycle; in event
  /// mode it is one visited cycle plus any idle span skipped after it.
  /// `limit` is the exclusive upper bound the skip may reach (phase end).
  void StepCycle(std::size_t limit);
  void ArbitratePhase();
  void TransferPhase();
  void InjectPhase();
  void GeneratePhase();
  void FinalizeCycle();

  // ---- per-element bodies shared by both engines -------------------------
  /// Arbitration at one switch; returns true while any ready, ungranted
  /// header remains (event mode keeps the switch dirty to retry, matching
  /// the cycle engine's per-cycle rescans).
  bool ArbitrateSwitch(std::size_t s);
  /// One flit over one physical channel (VC round-robin); returns true if a
  /// flit moved (event mode keeps the channel active).
  bool TransferChannel(std::size_t c);
  /// One flit from host h's source queue into its injection buffer; returns
  /// true while the host can keep injecting next cycle.
  bool InjectHost(std::size_t h);
  /// Materializes an arrival at host h this cycle (destination sampling,
  /// born-dead accounting, enqueue). Discards silently if h is cut off.
  void GenerateArrival(std::size_t h);
  /// Schedules host h's next arrival event (from its geometric stream).
  void ScheduleArrival(std::size_t h, std::size_t from_cycle);

  // ---- event engine ------------------------------------------------------
  void PushFlit(Buffer& buffer, std::size_t index, std::uint32_t id);
  std::uint32_t PopFlit(Buffer& buffer);
  /// Rebuilds every active set from the network state; used after fault
  /// purges/reconfigurations invalidate incremental wake tracking.
  void RebuildActiveSets();
  /// With no active element and no arrival due, jumps cycle_ forward to the
  /// next cycle anything can happen (arrival, fault, deadlock-watchdog
  /// expiry, trace boundary, `limit`), accounting skipped cycles as idle.
  void SkipIdleSpan(std::size_t limit);
  void UpdateIdleState();

  // ---- degraded mode (ISSUE 3; active only when config.fault_plan) -------
  /// Applies every fault event due at the current cycle, drops traffic that
  /// died with the hardware, and opens/extends the reconfiguration downtime
  /// window; completes a due reconfiguration (atomic routing swap).
  void AdvanceFaultState();

  /// Marks every message with flits on dead links / dead switches (or
  /// destined to a dead switch) lost and purges it from the network.
  void DropDeadTraffic();

  /// Rebuilds up*/down* routing on the largest surviving component
  /// (graceful partition handling), swaps the routing policy atomically,
  /// reconciles in-flight message phases with the new link orientation, and
  /// drops messages stranded outside the surviving component.
  void CompleteReconfiguration();

  /// Marks `msg` lost (once) and counts it.
  void MarkMessageLost(std::size_t msg);

  /// Purges every flit of lost messages from all buffers, releases output
  /// ports they held, and scrubs them from the source queues.
  void PurgeLostMessages();

  /// One telemetry sample (active tracer + telemetry_sample_cycles only):
  /// records per-VC buffer occupancies and emits a net.sample trace event
  /// with the windowed per-link utilization.
  void SampleTelemetry();

  /// Once-per-run flush of distribution metrics into the global registry:
  /// the net.latency histogram (from the collected latency samples), the
  /// net.vc.occupancy histogram (when telemetry sampled), and the
  /// link.util.<from>.<to> per-directed-link flit counters.
  void FlushDistributionMetrics();

  /// Moves one flit through output `o` if possible; returns true on success.
  bool TryMoveThroughOutput(std::size_t o);

  // ---- wiring ------------------------------------------------------------
  const SwitchGraph* graph_;
  const TrafficPattern* pattern_;
  SimConfig config_;
  std::unique_ptr<VcRoutingPolicy> owned_policy_;  // set by the Routing ctor
  const VcRoutingPolicy* policy_;
  std::size_t vc_count_ = 1;
  bool event_mode_ = false;

  std::vector<std::vector<std::size_t>> inputs_at_switch_;
  std::vector<std::size_t> switch_of_buffer_;  // arbitrating switch per buffer

  // ---- dynamic state -----------------------------------------------------
  FlitPool pool_;
  ArrivalStreams arrivals_;
  EventQueue arrival_queue_;  // (cycle, host) message-arrival events
  std::vector<Buffer> buffers_;
  std::vector<OutputPort> outputs_;
  std::vector<Message> messages_;
  std::vector<std::deque<std::size_t>> source_queue_;  // message ids per host
  std::vector<std::size_t> source_flits_pushed_;       // of each host's head message
  std::vector<double> inject_prob_;                    // per host per cycle
  std::vector<std::size_t> switch_rr_;                 // arbitration rotation per switch
  std::vector<std::size_t> channel_rr_;                // VC rotation per physical channel

  // Active sets (event engine; empty/idle in cycle mode).
  ActiveSet arb_switches_;     // switches with a ready, ungranted header
  ActiveSet channel_active_;   // physical channels that may move a flit
  ActiveSet delivery_active_;  // hosts whose delivery port may consume
  ActiveSet inject_active_;    // hosts that may push an injection flit
  ActiveSet touched_set_;      // buffers pushed into this cycle...
  std::vector<std::size_t> touched_buffers_;  // ...listed for FinalizeCycle
  bool active_sets_stale_ = false;

  std::size_t cycle_ = 0;
  bool measuring_ = false;
  bool any_movement_this_cycle_ = false;
  std::size_t idle_cycles_ = 0;
  std::size_t flits_in_network_ = 0;
  std::size_t skipped_cycles_ = 0;  // idle cycles jumped over by SkipIdleSpan
  std::size_t skip_spans_ = 0;      // SkipIdleSpan jumps taken

  // ---- fault state (all inert without a config.fault_plan) ----------------
  const VcRoutingPolicy* base_policy_ = nullptr;  // policy_ before any fault
  std::vector<faults::FaultEvent> plan_events_;   // cycle-sorted
  std::size_t next_fault_ = 0;
  std::unique_ptr<faults::DegradedView> view_;    // non-null only with a plan
  std::unique_ptr<faults::DegradedRouting> degraded_routing_;
  std::unique_ptr<SingleClassVcPolicy> degraded_policy_;
  bool reconfiguring_ = false;
  std::size_t reconfig_until_ = 0;
  std::vector<bool> covered_;  // base switch inside the routed component
  std::vector<double> base_inject_prob_;
  std::uint64_t dropped_flits_ = 0;
  std::uint64_t messages_lost_ = 0;
  std::uint64_t reconfig_cycles_count_ = 0;
  std::uint64_t fault_events_applied_ = 0;

  // ---- statistics ----------------------------------------------------------
  std::vector<std::uint64_t> pair_flits_;  // (src switch, dst switch) counts
  std::vector<std::uint64_t> app_messages_;
  std::vector<std::uint64_t> app_flits_;
  std::vector<long double> app_latency_sum_;
  std::uint64_t generated_flits_measured_ = 0;
  std::uint64_t delivered_flits_measured_ = 0;
  std::uint64_t messages_generated_measured_ = 0;
  std::uint64_t messages_delivered_measured_ = 0;
  // Whole-run conservation totals (warmup included; see SimTotals).
  std::uint64_t flits_injected_total_ = 0;
  std::uint64_t flits_delivered_total_ = 0;
  std::uint64_t messages_enqueued_total_ = 0;
  std::uint64_t messages_born_dead_ = 0;
  long double latency_sum_ = 0.0;
  long double total_latency_sum_ = 0.0;
  std::vector<std::uint32_t> latency_samples_;
  bool deadlock_ = false;

  // ---- telemetry (touched only while a tracer is installed) ---------------
  std::vector<std::uint64_t> telemetry_prev_moved_;  // per directed channel
  std::uint64_t telemetry_prev_delivered_ = 0;
  std::size_t telemetry_last_cycle_ = 0;
  std::vector<std::uint64_t> vc_occupancy_counts_;  // index = flits buffered
};

}  // namespace commsched::sim
