#include "simnet/sweep.h"

#include <algorithm>
#include <limits>

#include "common/parallel.h"
#include "obs/obs.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace commsched::sim {

double SweepResult::Throughput() const {
  double best = 0.0;
  for (const SweepPoint& point : points) {
    best = std::max(best, point.metrics.accepted_flits_per_switch_cycle);
  }
  return best;
}

double SweepResult::LowLoadLatency() const {
  CS_CHECK(!points.empty(), "empty sweep");
  return points.front().metrics.avg_latency_cycles;
}

double SweepResult::SaturationRate() const {
  for (const SweepPoint& point : points) {
    if (point.metrics.Saturated()) {
      return point.offered_rate;
    }
  }
  return std::numeric_limits<double>::infinity();
}

std::vector<double> SweepRates(const SweepOptions& options) {
  if (!options.rates.empty()) {
    return options.rates;
  }
  CS_CHECK(options.points >= 2, "sweep needs at least 2 points");
  CS_CHECK(options.min_rate > 0.0 && options.max_rate > options.min_rate,
           "invalid sweep rate range");
  std::vector<double> rates(options.points);
  for (std::size_t k = 0; k < options.points; ++k) {
    rates[k] = options.min_rate + (options.max_rate - options.min_rate) *
                                      static_cast<double>(k) /
                                      static_cast<double>(options.points - 1);
  }
  return rates;
}

namespace {

/// Shared sweep driver; `make_simulator(config)` builds a fresh simulator.
template <typename MakeSimulator>
SweepResult RunSweepImpl(const SweepOptions& options, MakeSimulator&& make_simulator) {
  obs::Registry& registry = obs::Registry::Global();
  const obs::ScopedTimer sweep_timer(registry.GetTimer("sweep.run"));
  const std::vector<double> rates = SweepRates(options);
  const obs::Span sweep_span("sweep.run", "points", rates.size());
  const std::size_t replicates = std::max<std::size_t>(options.seed_replicates, 1);
  SweepResult result;
  result.points.resize(rates.size());
  for (std::size_t k = 0; k < rates.size(); ++k) {
    result.points[k].offered_rate = rates[k];
    result.points[k].replicates.resize(replicates);
  }

  // Flat points x replicates work list; every (point, replicate) pair gets
  // an independent, pre-derived RNG stream, so parallel order is irrelevant.
  // Replicate r of point k advances the base seed (k + 1) + r SplitMix64
  // steps: r == 0 reproduces the single-replicate stream exactly.
  auto run_job = [&](std::size_t job) {
    const std::size_t k = job / replicates;
    const std::size_t r = job % replicates;
    SimConfig config = options.config;
    std::uint64_t stream = config.rng_seed;
    for (std::size_t i = 0; i < (k + 1) + r; ++i) (void)SplitMix64(stream);
    config.rng_seed = stream;
    if (r == 0) {
      const obs::Span point_span("sweep.point", "point", k);
      auto simulator = make_simulator(config);
      result.points[k].replicates[0] = simulator.Run(rates[k]);
      result.points[k].metrics = result.points[k].replicates[0];
      if (obs::Tracer* tracer = obs::ActiveTracer()) {
        const SimMetrics& m = result.points[k].metrics;
        tracer->Emit(obs::TraceEvent("sweep.point")
                         .F("point", k)
                         .F("rate", rates[k])
                         .F("accepted", m.accepted_flits_per_switch_cycle)
                         .F("avg_latency", m.avg_latency_cycles)
                         .F("saturated", m.Saturated()));
      }
    } else {
      auto simulator = make_simulator(config);
      result.points[k].replicates[r] = simulator.Run(rates[k]);
    }
  };
  const std::size_t jobs = rates.size() * replicates;
  if (options.parallel && jobs > 1) {
    ParallelFor(jobs, run_job);
  } else {
    for (std::size_t job = 0; job < jobs; ++job) run_job(job);
  }
  registry.GetCounter("sweep.runs").Add(1);
  registry.GetCounter("sweep.points").Add(rates.size());
  if (obs::Tracer* tracer = obs::ActiveTracer()) {
    tracer->Emit(obs::TraceEvent("sweep.done")
                     .F("points", rates.size())
                     .F("throughput", result.Throughput()));
  }
  return result;
}

}  // namespace

SweepResult RunLoadSweep(const SwitchGraph& graph, const Routing& routing,
                         const TrafficPattern& pattern, const SweepOptions& options) {
  return RunSweepImpl(options, [&](const SimConfig& config) {
    return NetworkSimulator(graph, routing, pattern, config);
  });
}

SweepResult RunLoadSweep(const SwitchGraph& graph, const VcRoutingPolicy& policy,
                         const TrafficPattern& pattern, const SweepOptions& options) {
  return RunSweepImpl(options, [&](const SimConfig& config) {
    return NetworkSimulator(graph, policy, pattern, config);
  });
}

double FindSaturationLoad(const SwitchGraph& graph, const Routing& routing,
                          const TrafficPattern& pattern, const SimConfig& config,
                          double min_rate, double max_rate, double tolerance) {
  CS_CHECK(min_rate > 0.0 && max_rate > min_rate, "invalid saturation search range");
  CS_CHECK(tolerance > 0.0, "tolerance must be positive");
  auto saturated_at = [&](double rate) {
    NetworkSimulator simulator(graph, routing, pattern, config);
    return simulator.Run(rate).Saturated();
  };
  if (saturated_at(min_rate)) return min_rate;
  if (!saturated_at(max_rate)) return max_rate;
  double lo = min_rate;  // known good
  double hi = max_rate;  // known saturated
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    (saturated_at(mid) ? hi : lo) = mid;
  }
  return lo;
}

}  // namespace commsched::sim
