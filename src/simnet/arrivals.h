// Per-host message-arrival streams, shared by both execution modes.
//
// The reference cycle engine used to draw one Bernoulli(p) trial per host
// per cycle. Sampling the geometric inter-arrival gap instead is the same
// stochastic process (Bernoulli inter-arrival times are geometric) but needs
// one draw per *message*, so the event engine can schedule the next arrival
// as a queue entry and skip the idle cycles in between. Each host gets its
// own splittable stream derived from the run seed; both engines consume the
// streams identically, so the arrival schedule (cycles and destinations) of
// a run is bitwise identical across ExecMode — which is what makes the
// deterministic fault counters differentially testable even though
// arbitration order is not.
#pragma once

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace commsched::sim {

/// Cycles until the next arrival of a Bernoulli(p) process, in {1, 2, ...}:
/// P(gap = k) = p * (1-p)^(k-1). Requires 0 < p <= 1; consumes one draw.
[[nodiscard]] inline std::size_t GeometricGap(Rng& rng, double p) {
  CS_CHECK(p > 0.0 && p <= 1.0, "arrival probability out of range: ", p);
  const double u = rng.NextDouble();  // in [0, 1)
  if (p >= 1.0) return 1;
  // Inverse CDF: gap = 1 + floor(log(1-u) / log(1-p)); log1p keeps the
  // small-p case accurate. u < 1 and p < 1 here, so both logs are finite
  // and negative (u = 0 gives gap 1).
  const double g = std::log1p(-u) / std::log1p(-p);
  return 1 + static_cast<std::size_t>(g);
}

/// One independent Rng stream per host, derived from a run seed.
class ArrivalStreams {
 public:
  void Reset(std::uint64_t seed, std::size_t hosts) {
    Rng root(seed);
    streams_.clear();
    streams_.reserve(hosts);
    for (std::size_t h = 0; h < hosts; ++h) {
      streams_.push_back(root.Split());
    }
  }

  [[nodiscard]] Rng& Stream(std::size_t h) {
    CS_DCHECK(h < streams_.size(), "no arrival stream for host ", h);
    return streams_[h];
  }

 private:
  std::vector<Rng> streams_;
};

}  // namespace commsched::sim
