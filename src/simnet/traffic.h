// Traffic pattern: who talks to whom, derived from the workload and the
// process mapping. Under the paper's assumptions every message goes to a
// uniformly random process of the same application ("100 % intracluster
// traffic"); the intercluster_fraction knob of ApplicationSpec relaxes this.
#pragma once

#include <vector>

#include "common/rng.h"
#include "topology/graph.h"
#include "workload/workload.h"

namespace commsched::sim {

using topo::SwitchGraph;
using work::ProcessMapping;
using work::Workload;

class TrafficPattern {
 public:
  /// Captures app membership per host; graph/workload/mapping may be
  /// destroyed afterwards.
  TrafficPattern(const SwitchGraph& graph, const Workload& workload,
                 const ProcessMapping& mapping);

  [[nodiscard]] std::size_t host_count() const { return app_of_host_.size(); }

  /// Relative injection weight of a host (its application's traffic_weight;
  /// 0 if the host has no valid destination).
  [[nodiscard]] double HostWeight(std::size_t host) const;

  /// Samples a destination host for a message from `src`: same application
  /// with probability 1 - intercluster_fraction, any other application
  /// otherwise; never src itself.
  [[nodiscard]] std::size_t SampleDestination(std::size_t src, Rng& rng) const;

  [[nodiscard]] std::size_t AppOfHost(std::size_t host) const { return app_of_host_[host]; }

  [[nodiscard]] std::size_t app_count() const { return hosts_of_app_.size(); }

 private:
  std::vector<std::size_t> app_of_host_;
  std::vector<std::vector<std::size_t>> hosts_of_app_;
  std::vector<double> weight_of_app_;
  std::vector<double> intercluster_of_app_;
};

}  // namespace commsched::sim
