// Simulator configuration.
//
// The evaluation methodology follows the paper (§5): flit-level model,
// wormhole switching, cycle-accurate link/switch timing — one flit per link
// per cycle, one cycle routing decision for header flits, input-buffered
// switches with credit flow control.
#pragma once

#include <cstddef>
#include <cstdint>

namespace commsched::faults {
class FaultPlan;
}  // namespace commsched::faults

namespace commsched::sim {

/// How the simulator advances time.
enum class ExecMode {
  /// Visit every switch, port, and VC on every cycle (the reference model).
  kCycle,
  /// Hybrid event-driven: switches/ports/VCs are scheduled only when a
  /// flit, credit, injection, or fault event is due, and idle spans are
  /// skipped in O(1). Statistically equivalent to kCycle (same arrival
  /// schedules, same protocol), but arbitration scan order may differ, so
  /// results are validated by confidence intervals, not golden bytes (see
  /// DESIGN.md §11).
  kEvent,
};

struct SimConfig {
  /// Execution engine; both modes implement the identical network protocol.
  ExecMode exec_mode = ExecMode::kCycle;

  /// Flits per message (header + body; the tail is the last flit).
  std::size_t message_length_flits = 16;

  /// Capacity of each input buffer, in flits.
  std::size_t input_buffer_flits = 4;

  /// false: deterministic routing (first minimal legal candidate).
  /// true: adaptive — a header may claim any free minimal legal output.
  /// (Used by the Routing-based constructor; ignored when an explicit
  /// VcRoutingPolicy is supplied.)
  bool adaptive_routing = false;

  /// Virtual channels per physical link (private buffers, shared 1
  /// flit/cycle bandwidth). Duato fully-adaptive routing needs >= 2.
  std::size_t virtual_channels = 1;

  /// Cycles simulated before statistics collection starts.
  std::size_t warmup_cycles = 10000;

  /// Cycles of the measurement window.
  std::size_t measure_cycles = 30000;

  /// Injection-rate randomness and destination sampling seed.
  std::uint64_t rng_seed = 1;

  /// If no flit moves for this many consecutive cycles while flits are in
  /// flight, declare deadlock and stop (safety net: up*/down* cannot
  /// deadlock, unrestricted routing can).
  std::size_t deadlock_threshold_cycles = 5000;

  /// When structured tracing is enabled (obs::SetTracer), emit a
  /// "sim.milestone" event every this many cycles (0 disables milestones).
  /// Has no cost while tracing is off.
  std::size_t trace_milestone_cycles = 5000;

  /// When structured tracing is enabled, sample deep network telemetry
  /// every this many *measured* cycles (0 disables): per-virtual-channel
  /// buffer occupancies are recorded (flushed into the `net.vc.occupancy`
  /// registry histogram after the run) and a `net.sample` trace event is
  /// emitted carrying the windowed per-link flit utilization and delivery
  /// counts. Has no cost while tracing is off.
  std::size_t telemetry_sample_cycles = 0;

  /// Record delivered flits per (source switch, destination switch) during
  /// the measurement window (SimMetrics::switch_pair_flit_rate) — the
  /// "measurement of communication requirements" the paper defers to future
  /// work; feeds the weighted quality functions.
  bool collect_traffic_matrix = false;

  /// Optional schedule of mid-run link/switch failures (must outlive the
  /// simulator; nullptr = no faults). When set, the simulator runs in
  /// degraded mode: flits on dead components are dropped and counted,
  /// routing is rebuilt on the largest surviving component and swapped
  /// atomically after `reconfig_downtime_cycles` of frozen arbitration
  /// (in-flight transfers keep draining during the window, mirroring
  /// Autonet's self-reconfiguration pause).
  const faults::FaultPlan* fault_plan = nullptr;

  /// Cycles between a fault event and the atomic routing swap (0 =
  /// same-cycle swap). Models the Autonet topology-acquisition +
  /// route-recomputation pause.
  std::size_t reconfig_downtime_cycles = 128;
};

}  // namespace commsched::sim
