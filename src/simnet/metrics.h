// Measurement outputs of one simulation run.
#pragma once

#include <cstddef>
#include <vector>

namespace commsched::sim {

struct SimMetrics {
  /// Offered load: generated flits / switch / cycle (measurement window).
  double offered_flits_per_switch_cycle = 0.0;

  /// Accepted traffic: delivered flits / switch / cycle — the paper's
  /// "traffic" axis; its maximum over a load sweep is the throughput.
  double accepted_flits_per_switch_cycle = 0.0;

  /// Mean network latency (header injection -> tail delivery), cycles,
  /// over messages delivered inside the measurement window.
  double avg_latency_cycles = 0.0;

  /// Mean total latency (generation -> tail delivery) including source
  /// queueing.
  double avg_total_latency_cycles = 0.0;

  /// Network-latency order statistics over delivered messages (0 when
  /// nothing was delivered).
  double p50_latency_cycles = 0.0;
  double p95_latency_cycles = 0.0;
  double p99_latency_cycles = 0.0;
  double max_latency_cycles = 0.0;

  std::size_t messages_generated = 0;
  std::size_t messages_delivered = 0;
  std::size_t flits_delivered = 0;

  /// Cycle the run terminated at: warmup + measure unless the deadlock
  /// watchdog stopped it early. Identical across ExecMode for drained runs
  /// (the event engine's skipped spans count as simulated time).
  std::size_t simulated_cycles = 0;

  /// Source-queue growth over the measurement window, flits/cycle/switch:
  /// ~0 below saturation, (offered - accepted) beyond it.
  double source_queue_growth = 0.0;

  /// Busiest / mean directed-link utilization (flit transfers per cycle).
  double max_link_utilization = 0.0;
  double avg_link_utilization = 0.0;

  bool deadlock_detected = false;

  /// Degraded-mode outcomes (all 0 unless SimConfig::fault_plan was set).
  std::size_t fault_events_applied = 0;
  std::size_t dropped_flits = 0;     // in-flight flits purged by faults
  std::size_t messages_lost = 0;     // messages dropped (in flight or queued)
  std::size_t reconfig_cycles = 0;   // cycles spent with arbitration frozen

  /// Delivered flits per (source switch, destination switch) per measured
  /// cycle. Empty unless SimConfig::collect_traffic_matrix was set.
  std::vector<std::vector<double>> switch_pair_flit_rate;

  /// Per-application breakdown (indexed by application id). Always filled.
  struct AppMetrics {
    std::size_t messages_delivered = 0;
    std::size_t flits_delivered = 0;
    double avg_latency_cycles = 0.0;  // network latency, delivered messages
  };
  std::vector<AppMetrics> per_app;

  /// Heuristic saturation flag: accepted lags offered by >5 % or the source
  /// queues grow steadily.
  [[nodiscard]] bool Saturated() const {
    return deadlock_detected ||
           accepted_flits_per_switch_cycle < 0.95 * offered_flits_per_switch_cycle;
  }
};

}  // namespace commsched::sim
