#include "simnet/simulator.h"

#include <algorithm>

#include "common/check.h"
#include "obs/obs.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace commsched::sim {

namespace {
constexpr std::size_t kNone = static_cast<std::size_t>(-1);
}  // namespace

NetworkSimulator::NetworkSimulator(const SwitchGraph& graph, const Routing& routing,
                                   const TrafficPattern& pattern, const SimConfig& config)
    : graph_(&graph),
      pattern_(&pattern),
      config_(config),
      owned_policy_(std::make_unique<SingleClassVcPolicy>(routing, config.virtual_channels,
                                                          config.adaptive_routing)),
      policy_(owned_policy_.get()) {
  CS_CHECK(&routing.graph() == &graph, "routing built for a different graph");
  Init();
}

NetworkSimulator::NetworkSimulator(const SwitchGraph& graph, const VcRoutingPolicy& policy,
                                   const TrafficPattern& pattern, const SimConfig& config)
    : graph_(&graph), pattern_(&pattern), config_(config), policy_(&policy) {
  CS_CHECK(&policy.graph() == &graph, "policy built for a different graph");
  CS_CHECK(policy.vc_count() == config.virtual_channels,
           "policy has ", policy.vc_count(), " VCs but config asks for ",
           config.virtual_channels);
  Init();
}

void NetworkSimulator::Init() {
  CS_CHECK(pattern_->host_count() == graph_->host_count(), "traffic pattern / graph mismatch");
  CS_CHECK(config_.message_length_flits >= 1, "messages need at least one flit");
  CS_CHECK(config_.input_buffer_flits >= 1, "buffers need at least one slot");
  CS_CHECK(config_.virtual_channels >= 1, "need at least one virtual channel");
  vc_count_ = config_.virtual_channels;
  event_mode_ = config_.exec_mode == ExecMode::kEvent;
  base_policy_ = policy_;
  if (config_.fault_plan != nullptr) {
    config_.fault_plan->ValidateFor(*graph_);
    plan_events_ = config_.fault_plan->events();
  }

  const std::size_t n = graph_->switch_count();
  inputs_at_switch_.assign(n, {});
  switch_of_buffer_.assign(LinkVcCount() + graph_->host_count(), 0);
  for (std::size_t c = 0; c < ChannelCount(); ++c) {
    for (std::size_t vc = 0; vc < vc_count_; ++vc) {
      inputs_at_switch_[ChannelTo(c)].push_back(c * vc_count_ + vc);
      switch_of_buffer_[c * vc_count_ + vc] = ChannelTo(c);
    }
  }
  for (std::size_t h = 0; h < graph_->host_count(); ++h) {
    inputs_at_switch_[graph_->SwitchOfHost(h)].push_back(InjectionBuffer(h));
    switch_of_buffer_[InjectionBuffer(h)] = graph_->SwitchOfHost(h);
  }
}

std::size_t NetworkSimulator::ChannelFrom(std::size_t channel) const {
  const topo::Link& link = graph_->link(channel / 2);
  return channel % 2 == 0 ? link.a : link.b;
}

std::size_t NetworkSimulator::ChannelTo(std::size_t channel) const {
  const topo::Link& link = graph_->link(channel / 2);
  return channel % 2 == 0 ? link.b : link.a;
}

std::size_t NetworkSimulator::InjectionBuffer(std::size_t host) const {
  return LinkVcCount() + host;
}

std::size_t NetworkSimulator::DeliveryPort(std::size_t host) const {
  return LinkVcCount() + host;
}

void NetworkSimulator::ResetState() {
  const std::size_t buffer_count = LinkVcCount() + graph_->host_count();
  buffers_.assign(buffer_count, Buffer{});
  for (Buffer& buffer : buffers_) {
    buffer.capacity = config_.input_buffer_flits;
  }
  outputs_.assign(LinkVcCount() + graph_->host_count(), OutputPort{});
  pool_.Clear();
  arrival_queue_.Clear();
  messages_.clear();
  source_queue_.assign(graph_->host_count(), {});
  source_flits_pushed_.assign(graph_->host_count(), 0);
  switch_rr_.assign(graph_->switch_count(), 0);
  channel_rr_.assign(ChannelCount(), 0);
  arb_switches_.Reset(graph_->switch_count());
  channel_active_.Reset(ChannelCount());
  delivery_active_.Reset(graph_->host_count());
  inject_active_.Reset(graph_->host_count());
  touched_set_.Reset(buffer_count);
  touched_buffers_.clear();
  active_sets_stale_ = false;
  pair_flits_.assign(
      config_.collect_traffic_matrix ? graph_->switch_count() * graph_->switch_count() : 0, 0);
  app_messages_.assign(pattern_->app_count(), 0);
  app_flits_.assign(pattern_->app_count(), 0);
  app_latency_sum_.assign(pattern_->app_count(), 0.0);
  cycle_ = 0;
  measuring_ = false;
  any_movement_this_cycle_ = false;
  idle_cycles_ = 0;
  flits_in_network_ = 0;
  generated_flits_measured_ = 0;
  delivered_flits_measured_ = 0;
  messages_generated_measured_ = 0;
  messages_delivered_measured_ = 0;
  flits_injected_total_ = 0;
  flits_delivered_total_ = 0;
  messages_enqueued_total_ = 0;
  messages_born_dead_ = 0;
  latency_sum_ = 0.0;
  total_latency_sum_ = 0.0;
  latency_samples_.clear();
  deadlock_ = false;
  policy_ = base_policy_;
  next_fault_ = 0;
  reconfiguring_ = false;
  reconfig_until_ = 0;
  dropped_flits_ = 0;
  messages_lost_ = 0;
  reconfig_cycles_count_ = 0;
  fault_events_applied_ = 0;
  degraded_routing_.reset();
  degraded_policy_.reset();
  covered_.assign(graph_->switch_count(), true);
  view_ = plan_events_.empty() ? nullptr
                               : std::make_unique<faults::DegradedView>(*graph_);
  telemetry_prev_moved_.assign(ChannelCount(), 0);
  telemetry_prev_delivered_ = 0;
  telemetry_last_cycle_ = 0;
  vc_occupancy_counts_.assign(config_.input_buffer_flits + 1, 0);
}

void NetworkSimulator::PushFlit(Buffer& buffer, std::size_t index, std::uint32_t id) {
  pool_.set_next(id, FlitPool::kNil);
  if (buffer.tail == FlitPool::kNil) {
    buffer.head = id;
  } else {
    pool_.set_next(buffer.tail, id);
  }
  buffer.tail = id;
  ++buffer.size;
  if (event_mode_ && !touched_set_.Contains(index)) {
    touched_set_.Add(index);
    touched_buffers_.push_back(index);
  }
}

std::uint32_t NetworkSimulator::PopFlit(Buffer& buffer) {
  const std::uint32_t id = buffer.head;
  CS_DCHECK(id != FlitPool::kNil, "pop from an empty buffer");
  buffer.head = pool_.next(id);
  if (buffer.head == FlitPool::kNil) buffer.tail = FlitPool::kNil;
  --buffer.size;
  --buffer.ready;
  return id;
}

void NetworkSimulator::SampleTelemetry() {
  obs::Tracer* tracer = obs::ActiveTracer();
  if (tracer == nullptr) return;

  // Per-VC input-buffer occupancy, counted exactly (values are tiny: 0 ..
  // input_buffer_flits); flushed into the net.vc.occupancy histogram after
  // the run.
  for (std::size_t b = 0; b < LinkVcCount(); ++b) {
    const std::size_t occupancy = std::min(buffers_[b].size, config_.input_buffer_flits);
    ++vc_occupancy_counts_[occupancy];
  }

  // Windowed per-link utilization since the previous sample: flits moved on
  // each directed physical channel (all its VCs) per elapsed cycle.
  const std::size_t window = cycle_ - telemetry_last_cycle_;
  double max_util = 0.0;
  double util_sum = 0.0;
  std::size_t busiest = 0;
  for (std::size_t c = 0; c < ChannelCount(); ++c) {
    std::uint64_t moved = 0;
    for (std::size_t vc = 0; vc < vc_count_; ++vc) {
      moved += outputs_[c * vc_count_ + vc].flits_moved_measured;
    }
    const std::uint64_t delta = moved - telemetry_prev_moved_[c];
    telemetry_prev_moved_[c] = moved;
    const double util =
        window == 0 ? 0.0 : static_cast<double>(delta) / static_cast<double>(window);
    util_sum += util;
    if (util > max_util) {
      max_util = util;
      busiest = c;
    }
  }
  const std::uint64_t win_flits = delivered_flits_measured_ - telemetry_prev_delivered_;
  telemetry_prev_delivered_ = delivered_flits_measured_;
  telemetry_last_cycle_ = cycle_;

  obs::TraceEvent event("net.sample");
  event.F("cycle", cycle_)
      .F("in_flight", flits_in_network_)
      .F("win_flits", win_flits)
      .F("max_link_util", max_util);
  if (ChannelCount() > 0) {
    event.F("avg_link_util", util_sum / static_cast<double>(ChannelCount()))
        .F("link_from", ChannelFrom(busiest))
        .F("link_to", ChannelTo(busiest));
  }
  tracer->Emit(event);
}

void NetworkSimulator::FlushDistributionMetrics() {
  obs::Registry& registry = obs::Registry::Global();
  obs::Histogram& latency = registry.GetHistogram("net.latency");
  for (const std::uint32_t sample : latency_samples_) {
    latency.Record(sample);
  }
  std::uint64_t occupancy_samples = 0;
  for (const std::uint64_t count : vc_occupancy_counts_) occupancy_samples += count;
  if (occupancy_samples > 0) {
    obs::Histogram& occupancy = registry.GetHistogram("net.vc.occupancy");
    for (std::size_t value = 0; value < vc_occupancy_counts_.size(); ++value) {
      if (vc_occupancy_counts_[value] > 0) {
        occupancy.Record(value, vc_occupancy_counts_[value]);
      }
    }
  }
  for (std::size_t c = 0; c < ChannelCount(); ++c) {
    std::uint64_t moved = 0;
    for (std::size_t vc = 0; vc < vc_count_; ++vc) {
      moved += outputs_[c * vc_count_ + vc].flits_moved_measured;
    }
    if (moved == 0) continue;  // keep the metrics dump free of idle links
    registry
        .GetCounter("link.util." + std::to_string(ChannelFrom(c)) + "." +
                    std::to_string(ChannelTo(c)))
        .Add(moved);
  }
}

bool NetworkSimulator::ArbitrateSwitch(std::size_t s) {
  const auto& inputs = inputs_at_switch_[s];
  if (inputs.empty()) return false;
  // Rotate the input scan start each visit for fairness.
  const std::size_t start = switch_rr_[s]++ % inputs.size();
  bool pending = false;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const std::size_t b = inputs[(start + i) % inputs.size()];
    Buffer& buffer = buffers_[b];
    if (!buffer.FrontReady() || buffer.granted_output != Buffer::kNone) continue;
    const std::uint32_t front = buffer.head;
    if (!IsHeadFlit(front)) continue;
    const std::size_t msg_id = pool_.msg(front);
    const Message& m = messages_[msg_id];

    if (m.current_switch == m.dst_switch) {
      // Consume locally: claim the destination host's delivery port.
      const std::size_t o = DeliveryPort(m.dst_host);
      OutputPort& port = outputs_[o];
      if (port.owner == OutputPort::kFree) {
        port.owner = msg_id;
        port.source_buffer = b;
        buffer.granted_output = o;
        if (event_mode_) delivery_active_.Add(m.dst_host);
      } else {
        pending = true;
      }
      continue;
    }

    bool claimed = false;
    const std::vector<VcCandidate> candidates =
        policy_->Candidates(m.current_switch, m.dst_switch, m.phase, m.on_escape);
    for (const VcCandidate& cand : candidates) {
      const topo::Link& link = graph_->link(cand.link);
      const std::size_t channel = 2 * cand.link + (link.a == m.current_switch ? 0 : 1);
      CS_DCHECK(ChannelFrom(channel) == m.current_switch, "candidate not incident");
      const std::size_t o = channel * vc_count_ + cand.vc;
      OutputPort& port = outputs_[o];
      if (port.owner != OutputPort::kFree) continue;
      port.owner = msg_id;
      port.source_buffer = b;
      port.next_phase = cand.phase;
      port.next_escape = cand.escape;
      buffer.granted_output = o;
      claimed = true;
      if (event_mode_) channel_active_.Add(channel);
      break;
    }
    if (!claimed) pending = true;
  }
  return pending;
}

void NetworkSimulator::ArbitratePhase() {
  if (event_mode_) {
    arb_switches_.Sweep([&](std::size_t s) { return ArbitrateSwitch(s); });
  } else {
    for (std::size_t s = 0; s < graph_->switch_count(); ++s) {
      (void)ArbitrateSwitch(s);
    }
  }
}

bool NetworkSimulator::TryMoveThroughOutput(std::size_t o) {
  OutputPort& port = outputs_[o];
  if (port.owner == OutputPort::kFree) return false;
  const std::size_t src_index = port.source_buffer;
  Buffer& src = buffers_[src_index];
  if (!src.FrontReady()) return false;  // bubble: upstream stalled
  const std::uint32_t flit = src.head;
  CS_DCHECK(pool_.msg(flit) == port.owner, "foreign flit at the front of a held buffer");
  const std::size_t msg_id = pool_.msg(flit);
  const bool head = IsHeadFlit(flit);
  const bool tail = IsTailFlit(flit);

  const bool is_delivery = o >= LinkVcCount();
  if (!is_delivery) {
    Buffer& dst = buffers_[o];
    if (!dst.HasSpace()) return false;  // no credit downstream
    (void)PopFlit(src);
    PushFlit(dst, o, flit);  // becomes ready at end of cycle
    any_movement_this_cycle_ = true;
    if (measuring_) ++port.flits_moved_measured;
    if (head) {
      Message& m = messages_[msg_id];
      m.current_switch = ChannelTo(o / vc_count_);
      m.phase = port.next_phase;
      m.on_escape = port.next_escape;
    }
  } else {
    // Delivery port: the host consumes one flit per cycle.
    (void)PopFlit(src);
    --flits_in_network_;
    ++flits_delivered_total_;
    any_movement_this_cycle_ = true;
    const Message& m = messages_[msg_id];
    if (measuring_) {
      ++delivered_flits_measured_;
      ++app_flits_[pattern_->AppOfHost(m.src_host)];
      if (!pair_flits_.empty()) {
        ++pair_flits_[graph_->SwitchOfHost(m.src_host) * graph_->switch_count() +
                      m.dst_switch];
      }
      if (tail) {
        ++messages_delivered_measured_;
        latency_sum_ += static_cast<long double>(cycle_ - m.inject_cycle);
        total_latency_sum_ += static_cast<long double>(cycle_ - m.gen_cycle);
        latency_samples_.push_back(static_cast<std::uint32_t>(cycle_ - m.inject_cycle));
        const std::size_t app = pattern_->AppOfHost(m.src_host);
        ++app_messages_[app];
        app_latency_sum_[app] += static_cast<long double>(cycle_ - m.inject_cycle);
      }
    }
    pool_.Free(flit);
  }
  if (event_mode_) {
    // Credit wake: the pop freed a slot in `src`, so whatever feeds it may
    // move again — the upstream output of a link buffer, or the host's
    // injection for an injection buffer.
    if (src_index < LinkVcCount()) {
      if (outputs_[src_index].owner != OutputPort::kFree) {
        channel_active_.Add(src_index / vc_count_);
      }
    } else {
      const std::size_t h = src_index - LinkVcCount();
      if (!source_queue_[h].empty()) inject_active_.Add(h);
    }
  }
  if (tail) {
    src.granted_output = Buffer::kNone;
    port.owner = OutputPort::kFree;
    port.source_buffer = kNone;
    // The next message's header (if already buffered) needs arbitration.
    if (event_mode_ && src.ready > 0) arb_switches_.Add(switch_of_buffer_[src_index]);
  }
  return true;
}

bool NetworkSimulator::TransferChannel(std::size_t c) {
  // Physical link: one flit per cycle, round-robin among the VCs.
  const std::size_t start = channel_rr_[c];
  for (std::size_t k = 0; k < vc_count_; ++k) {
    const std::size_t vc = (start + k) % vc_count_;
    if (TryMoveThroughOutput(c * vc_count_ + vc)) {
      channel_rr_[c] = (vc + 1) % vc_count_;
      return true;
    }
  }
  return false;
}

void NetworkSimulator::TransferPhase() {
  if (event_mode_) {
    channel_active_.Sweep([&](std::size_t c) { return TransferChannel(c); });
    delivery_active_.Sweep(
        [&](std::size_t h) { return TryMoveThroughOutput(DeliveryPort(h)); });
  } else {
    for (std::size_t c = 0; c < ChannelCount(); ++c) {
      (void)TransferChannel(c);
    }
    // Delivery ports: one flit per host per cycle.
    for (std::size_t h = 0; h < graph_->host_count(); ++h) {
      (void)TryMoveThroughOutput(DeliveryPort(h));
    }
  }
}

bool NetworkSimulator::InjectHost(std::size_t h) {
  auto& queue = source_queue_[h];
  if (queue.empty()) return false;
  const std::size_t bi = InjectionBuffer(h);
  Buffer& buffer = buffers_[bi];
  if (!buffer.HasSpace()) return false;
  const std::size_t msg = queue.front();
  Message& m = messages_[msg];
  const std::size_t k = source_flits_pushed_[h];
  const std::uint32_t flit =
      pool_.Allocate(static_cast<std::uint32_t>(msg), static_cast<std::uint32_t>(k));
  if (k == 0) {
    m.inject_cycle = cycle_;
    m.current_switch = graph_->SwitchOfHost(h);
    m.phase = Phase::kUp;
    m.on_escape = false;
  }
  PushFlit(buffer, bi, flit);
  ++flits_in_network_;
  ++flits_injected_total_;
  any_movement_this_cycle_ = true;
  if (k + 1 == m.length) {
    queue.pop_front();
    source_flits_pushed_[h] = 0;
  } else {
    ++source_flits_pushed_[h];
  }
  return !queue.empty() && buffer.HasSpace();
}

void NetworkSimulator::InjectPhase() {
  if (event_mode_) {
    inject_active_.Sweep([&](std::size_t h) { return InjectHost(h); });
  } else {
    for (std::size_t h = 0; h < source_queue_.size(); ++h) {
      (void)InjectHost(h);
    }
  }
}

void NetworkSimulator::GenerateArrival(std::size_t h) {
  // A cut-off host (fault coverage zeroed its rate) discards the arrival;
  // its stream keeps advancing identically in both exec modes.
  if (inject_prob_[h] <= 0.0) return;
  Message m;
  m.src_host = h;
  m.dst_host = pattern_->SampleDestination(h, arrivals_.Stream(h));
  m.dst_switch = graph_->SwitchOfHost(m.dst_host);
  if (view_ != nullptr &&
      (!covered_[m.dst_switch] || !view_->SwitchAlive(m.dst_switch))) {
    ++messages_lost_;  // destination is cut off: the message is born dead
    ++messages_born_dead_;
    return;
  }
  m.length = config_.message_length_flits;
  m.gen_cycle = cycle_;
  messages_.push_back(m);
  source_queue_[h].push_back(messages_.size() - 1);
  ++messages_enqueued_total_;
  if (event_mode_) inject_active_.Add(h);
  if (measuring_) {
    ++messages_generated_measured_;
    generated_flits_measured_ += m.length;
  }
}

void NetworkSimulator::ScheduleArrival(std::size_t h, std::size_t from_cycle) {
  const double p = base_inject_prob_[h];
  if (p <= 0.0) return;
  arrival_queue_.Push(from_cycle + GeometricGap(arrivals_.Stream(h), p), h);
}

void NetworkSimulator::GeneratePhase() {
  // Both engines pull arrivals off the same (cycle, host)-ordered queue, so
  // message ids and arrival schedules are identical across exec modes.
  while (!arrival_queue_.Empty() && arrival_queue_.NextCycle() <= cycle_) {
    const std::size_t h = arrival_queue_.Pop();
    GenerateArrival(h);
    ScheduleArrival(h, cycle_);
  }
}

void NetworkSimulator::UpdateIdleState() {
  if (reconfiguring_) {
    // The routing pause freezes arbitration on purpose; don't let the
    // watchdog read the drained network as a deadlock.
    idle_cycles_ = 0;
    return;
  }
  if (flits_in_network_ > 0 && !any_movement_this_cycle_) {
    if (++idle_cycles_ >= config_.deadlock_threshold_cycles && !deadlock_) {
      deadlock_ = true;
      if (obs::Tracer* tracer = obs::ActiveTracer()) {
        tracer->Emit(obs::TraceEvent("net.deadlock")
                         .F("cycle", cycle_)
                         .F("in_flight_flits", flits_in_network_)
                         .F("idle_cycles", idle_cycles_));
      }
    }
  } else {
    idle_cycles_ = 0;
  }
}

void NetworkSimulator::FinalizeCycle() {
  if (event_mode_) {
    // Only buffers pushed into this cycle can have ready != size.
    for (const std::size_t b : touched_buffers_) {
      Buffer& buffer = buffers_[b];
      buffer.ready = buffer.size;
      if (buffer.granted_output == Buffer::kNone) {
        if (buffer.ready > 0 && IsHeadFlit(buffer.head)) {
          arb_switches_.Add(switch_of_buffer_[b]);
        }
      } else if (buffer.granted_output >= LinkVcCount()) {
        delivery_active_.Add(buffer.granted_output - LinkVcCount());
      } else {
        channel_active_.Add(buffer.granted_output / vc_count_);
      }
    }
    touched_buffers_.clear();
    touched_set_.ClearAll();
  } else {
    for (Buffer& buffer : buffers_) {
      buffer.ready = buffer.size;
    }
  }
  UpdateIdleState();
}

void NetworkSimulator::RebuildActiveSets() {
  active_sets_stale_ = false;
  arb_switches_.ClearAll();
  channel_active_.ClearAll();
  delivery_active_.ClearAll();
  inject_active_.ClearAll();
  for (std::size_t b = 0; b < buffers_.size(); ++b) {
    const Buffer& buffer = buffers_[b];
    if (buffer.size == 0 || buffer.granted_output != Buffer::kNone) continue;
    if (IsHeadFlit(buffer.head)) arb_switches_.Add(switch_of_buffer_[b]);
  }
  for (std::size_t o = 0; o < LinkVcCount(); ++o) {
    if (outputs_[o].owner != OutputPort::kFree) channel_active_.Add(o / vc_count_);
  }
  for (std::size_t h = 0; h < graph_->host_count(); ++h) {
    if (outputs_[DeliveryPort(h)].owner != OutputPort::kFree) delivery_active_.Add(h);
    if (!source_queue_[h].empty()) inject_active_.Add(h);
  }
}

void NetworkSimulator::SkipIdleSpan(std::size_t limit) {
  if (cycle_ >= limit) return;
  // Reconfiguration downtime is counted cycle by cycle (reconfig_cycles
  // must match the cycle engine exactly), and any active element means the
  // next cycle has real work.
  if (reconfiguring_) return;
  if (arb_switches_.Any() || channel_active_.Any() || delivery_active_.Any() ||
      inject_active_.Any()) {
    return;
  }
  std::size_t next = limit;
  if (!arrival_queue_.Empty()) next = std::min(next, arrival_queue_.NextCycle());
  if (view_ != nullptr && next_fault_ < plan_events_.size()) {
    next = std::min(next, plan_events_[next_fault_].at_cycle);
  }
  const bool stuck = flits_in_network_ > 0;
  if (stuck) {
    // Nothing can move until an external event: the span is idle time, and
    // the watchdog must still fire at its configured threshold.
    next = std::min(next, cycle_ + (config_.deadlock_threshold_cycles - idle_cycles_));
  }
  if (obs::ActiveTracer() != nullptr) {
    // Land on every milestone/telemetry boundary so traced runs emit the
    // same periodic events as the cycle engine.
    if (config_.trace_milestone_cycles > 0) {
      const std::size_t m = config_.trace_milestone_cycles;
      next = std::min(next, ((cycle_ + m - 1) / m) * m);
    }
    if (measuring_ && config_.telemetry_sample_cycles > 0) {
      const std::size_t t = config_.telemetry_sample_cycles;
      const std::size_t measured = cycle_ - config_.warmup_cycles;
      next = std::min(next, config_.warmup_cycles + ((measured + t - 1) / t) * t);
    }
  }
  if (next <= cycle_) return;
  const std::size_t skipped = next - cycle_;
  cycle_ = next;
  skipped_cycles_ += skipped;
  ++skip_spans_;
  if (stuck) {
    idle_cycles_ += skipped;
    if (idle_cycles_ >= config_.deadlock_threshold_cycles && !deadlock_) {
      deadlock_ = true;
      if (obs::Tracer* tracer = obs::ActiveTracer()) {
        tracer->Emit(obs::TraceEvent("net.deadlock")
                         .F("cycle", cycle_)
                         .F("in_flight_flits", flits_in_network_)
                         .F("idle_cycles", idle_cycles_));
      }
    }
  }
}

void NetworkSimulator::MarkMessageLost(std::size_t msg) {
  Message& m = messages_[msg];
  if (m.lost) return;
  m.lost = true;
  ++messages_lost_;
}

void NetworkSimulator::PurgeLostMessages() {
  // Release output ports held by lost messages (and the wormhole grant of
  // their source buffers) before touching the FIFOs.
  for (std::size_t o = 0; o < outputs_.size(); ++o) {
    OutputPort& port = outputs_[o];
    if (port.owner == OutputPort::kFree || !messages_[port.owner].lost) continue;
    if (port.source_buffer != OutputPort::kFree) {
      buffers_[port.source_buffer].granted_output = Buffer::kNone;
    }
    port.owner = OutputPort::kFree;
    port.source_buffer = OutputPort::kFree;
  }

  // Purge the flits themselves. A purged buffer's ready prefix is no longer
  // meaningful; zeroing it stalls the buffer for the one cycle FinalizeCycle
  // needs to re-establish it.
  for (std::size_t bi = 0; bi < buffers_.size(); ++bi) {
    Buffer& buffer = buffers_[bi];
    if (buffer.size == 0) continue;
    std::size_t purged = 0;
    std::uint32_t prev = FlitPool::kNil;
    std::uint32_t id = buffer.head;
    while (id != FlitPool::kNil) {
      const std::uint32_t next = pool_.next(id);
      if (messages_[pool_.msg(id)].lost) {
        if (prev == FlitPool::kNil) {
          buffer.head = next;
        } else {
          pool_.set_next(prev, next);
        }
        if (buffer.tail == id) buffer.tail = prev;
        pool_.Free(id);
        ++purged;
      } else {
        prev = id;
      }
      id = next;
    }
    if (purged > 0) {
      buffer.size -= purged;
      dropped_flits_ += purged;
      flits_in_network_ -= purged;
      buffer.ready = 0;
      if (event_mode_ && !touched_set_.Contains(bi)) {
        touched_set_.Add(bi);
        touched_buffers_.push_back(bi);
      }
    }
  }

  // Scrub the source queues: lost messages disappear; a partially injected
  // head message resets its host's flit cursor (its injected flits were
  // purged above).
  for (std::size_t h = 0; h < source_queue_.size(); ++h) {
    auto& queue = source_queue_[h];
    if (queue.empty()) continue;
    if (messages_[queue.front()].lost) source_flits_pushed_[h] = 0;
    std::erase_if(queue, [&](std::size_t msg) { return messages_[msg].lost; });
  }

  // Incremental wake tracking can't survive an arbitrary purge.
  active_sets_stale_ = true;
}

void NetworkSimulator::DropDeadTraffic() {
  // Messages with flits sitting in a dead buffer: every VC buffer of a dead
  // directed channel, and the injection buffers of dead switches' hosts.
  for (std::size_t l = 0; l < graph_->link_count(); ++l) {
    if (view_->LinkAlive(l)) continue;
    for (std::size_t dir = 0; dir < 2; ++dir) {
      for (std::size_t vc = 0; vc < vc_count_; ++vc) {
        const std::size_t o = (2 * l + dir) * vc_count_ + vc;
        for (std::uint32_t f = buffers_[o].head; f != FlitPool::kNil; f = pool_.next(f)) {
          MarkMessageLost(pool_.msg(f));
        }
        // A message streaming across the dead link is truncated even if its
        // remaining flits sit in healthy buffers upstream.
        if (outputs_[o].owner != OutputPort::kFree) MarkMessageLost(outputs_[o].owner);
      }
    }
  }
  for (std::size_t h = 0; h < graph_->host_count(); ++h) {
    const std::size_t s = graph_->SwitchOfHost(h);
    if (view_->SwitchAlive(s)) continue;
    for (std::uint32_t f = buffers_[InjectionBuffer(h)].head; f != FlitPool::kNil;
         f = pool_.next(f)) {
      MarkMessageLost(pool_.msg(f));
    }
    if (outputs_[DeliveryPort(h)].owner != OutputPort::kFree) {
      MarkMessageLost(outputs_[DeliveryPort(h)].owner);
    }
    // The host itself is down: stop generating and abandon its backlog.
    if (h < inject_prob_.size()) inject_prob_[h] = 0.0;
    for (const std::size_t msg : source_queue_[h]) MarkMessageLost(msg);
  }

  // In-flight or queued messages destined to a dead switch can never be
  // delivered; drop them now instead of letting them clog VCs.
  for (const Buffer& buffer : buffers_) {
    for (std::uint32_t f = buffer.head; f != FlitPool::kNil; f = pool_.next(f)) {
      if (!view_->SwitchAlive(messages_[pool_.msg(f)].dst_switch)) {
        MarkMessageLost(pool_.msg(f));
      }
    }
  }
  for (const auto& queue : source_queue_) {
    for (const std::size_t msg : queue) {
      if (!view_->SwitchAlive(messages_[msg].dst_switch)) MarkMessageLost(msg);
    }
  }

  PurgeLostMessages();
}

void NetworkSimulator::CompleteReconfiguration() {
  reconfiguring_ = false;

  // Rebuild up*/down* on the largest surviving component. Reconfigure(true)
  // is the graceful path: a partitioned network evicts the smaller
  // component(s) instead of throwing.
  auto routing = std::make_unique<faults::DegradedRouting>(*graph_, view_->Reconfigure(true));
  auto policy =
      std::make_unique<SingleClassVcPolicy>(*routing, vc_count_, config_.adaptive_routing);
  for (std::size_t s = 0; s < graph_->switch_count(); ++s) {
    covered_[s] = routing->Covers(s);
  }

  // Reconcile in-flight state with the new link orientation.  Every message
  // whose head flit still sits in an input buffer will make its next routing
  // decision under the new function, so its phase must be the new routing's
  // arrival phase at its current position; messages stranded outside the
  // surviving component — or left in a state the new function cannot
  // continue (up*/down* legality is never violated, matching Autonet's
  // packet drops during reconfiguration) — are lost.
  for (std::size_t b = 0; b < buffers_.size(); ++b) {
    for (std::uint32_t f = buffers_[b].head; f != FlitPool::kNil; f = pool_.next(f)) {
      if (!IsHeadFlit(f)) continue;
      Message& m = messages_[pool_.msg(f)];
      if (m.lost) continue;
      if (!covered_[m.current_switch] || !covered_[m.dst_switch]) {
        MarkMessageLost(pool_.msg(f));
        continue;
      }
      if (b >= LinkVcCount()) {
        m.phase = Phase::kUp;  // still at its source host
      } else {
        m.phase = routing->ArrivalPhase(b / vc_count_ / 2, m.current_switch);
      }
      m.on_escape = false;
      if (m.current_switch != m.dst_switch &&
          routing->NextHops(m.current_switch, m.dst_switch, m.phase).empty()) {
        MarkMessageLost(pool_.msg(f));
      }
    }
  }
  // Output claims whose head flit has not crossed yet were made under the
  // old routing function and may be illegal under the new one; release them
  // so the head re-arbitrates under the swapped-in policy (a claim whose
  // head already crossed only streams body flits and never reads
  // next_phase again, so it is left to drain the worm).
  for (std::size_t o = 0; o < LinkVcCount(); ++o) {
    OutputPort& port = outputs_[o];
    if (port.owner == OutputPort::kFree || messages_[port.owner].lost) continue;
    Buffer& src = buffers_[port.source_buffer];
    if (src.size == 0 || !IsHeadFlit(src.head)) continue;
    src.granted_output = Buffer::kNone;
    port.owner = OutputPort::kFree;
    port.source_buffer = OutputPort::kFree;
  }
  // Queued messages to evicted destinations will never route; hosts on
  // evicted switches are cut off and stop generating, while re-covered
  // hosts (after a switch_up) resume at their configured rate.
  for (const auto& queue : source_queue_) {
    for (const std::size_t msg : queue) {
      if (!covered_[messages_[msg].dst_switch]) MarkMessageLost(msg);
    }
  }
  for (std::size_t h = 0; h < inject_prob_.size(); ++h) {
    inject_prob_[h] = covered_[graph_->SwitchOfHost(h)] ? base_inject_prob_[h] : 0.0;
  }
  PurgeLostMessages();
  active_sets_stale_ = true;

  // Atomic swap: from the next arbitration on, every routing decision uses
  // the degraded function. The old policy is destroyed only after policy_
  // points at the new one.
  policy_ = policy.get();
  degraded_routing_ = std::move(routing);
  degraded_policy_ = std::move(policy);

  obs::Registry::Global().GetCounter("fault.reconfigs").Add(1);
  if (obs::Tracer* tracer = obs::ActiveTracer()) {
    const faults::Reconfiguration& reconfig = degraded_routing_->reconfig();
    tracer->Emit(obs::TraceEvent("fault.reconfig_done")
                     .F("cycle", cycle_)
                     .F("surviving_switches", reconfig.graph.switch_count())
                     .F("surviving_links", reconfig.graph.link_count())
                     .F("dead_switches", reconfig.dead.size())
                     .F("evicted_switches", reconfig.evicted.size())
                     .F("dropped_flits", dropped_flits_)
                     .F("messages_lost", messages_lost_));
  }
}

void NetworkSimulator::AdvanceFaultState() {
  if (reconfiguring_ && cycle_ >= reconfig_until_) {
    CompleteReconfiguration();
  }
  bool applied = false;
  while (next_fault_ < plan_events_.size() && plan_events_[next_fault_].at_cycle <= cycle_) {
    const faults::FaultEvent& event = plan_events_[next_fault_++];
    view_->Apply(event);
    ++fault_events_applied_;
    applied = true;
    obs::Registry::Global().GetCounter("fault.events").Add(1);
    if (obs::Tracer* tracer = obs::ActiveTracer()) {
      obs::TraceEvent trace(std::string("fault.") + faults::FaultPlan::KindName(event.kind));
      trace.F("cycle", cycle_);
      if (event.kind == faults::FaultKind::kLinkDown ||
          event.kind == faults::FaultKind::kLinkUp) {
        trace.F("a", event.a).F("b", event.b);
      } else {
        trace.F("switch", event.switch_id);
      }
      tracer->Emit(trace);
    }
  }
  if (applied) {
    DropDeadTraffic();
    if (!reconfiguring_ && obs::TraceEnabled()) {
      obs::ActiveTracer()->Emit(obs::TraceEvent("fault.reconfig_start").F("cycle", cycle_));
    }
    reconfiguring_ = true;
    reconfig_until_ = std::max(reconfig_until_, cycle_ + config_.reconfig_downtime_cycles);
    if (cycle_ >= reconfig_until_) {
      CompleteReconfiguration();  // zero-downtime: swap within this cycle
    }
  }
  if (reconfiguring_) ++reconfig_cycles_count_;
}

void NetworkSimulator::StepCycle(std::size_t limit) {
  any_movement_this_cycle_ = false;
  if (view_ != nullptr) AdvanceFaultState();
  if (event_mode_ && active_sets_stale_) RebuildActiveSets();
  // During the reconfiguration downtime no new output claims are made —
  // in-flight worms keep draining ("blocked VCs are drained") but no new
  // routing decisions happen until the swapped-in function is live.
  if (!reconfiguring_) ArbitratePhase();
  TransferPhase();
  InjectPhase();
  GeneratePhase();
  FinalizeCycle();
  ++cycle_;
  if (event_mode_ && !deadlock_) SkipIdleSpan(limit);
}

SimMetrics NetworkSimulator::Run(double injection_flits_per_switch_cycle) {
  CS_CHECK(injection_flits_per_switch_cycle >= 0.0, "negative injection rate");
  obs::Registry& registry = obs::Registry::Global();
  const obs::ScopedTimer run_timer(registry.GetTimer("sim.run"));
  const obs::Span run_span("sim.run", "horizon",
                           config_.warmup_cycles + config_.measure_cycles);
  ResetState();

  // Per-host Bernoulli message probability: aggregate offered load is
  // rate * switch_count flits/cycle, split across hosts by traffic weight.
  const std::size_t hosts = graph_->host_count();
  inject_prob_.assign(hosts, 0.0);
  double weight_sum = 0.0;
  for (std::size_t h = 0; h < hosts; ++h) weight_sum += pattern_->HostWeight(h);
  if (weight_sum > 0.0) {
    const double total_flits_per_cycle =
        injection_flits_per_switch_cycle * static_cast<double>(graph_->switch_count());
    for (std::size_t h = 0; h < hosts; ++h) {
      const double p = total_flits_per_cycle * pattern_->HostWeight(h) /
                       (weight_sum * static_cast<double>(config_.message_length_flits));
      CS_CHECK(p <= 1.0, "offered load exceeds host injection bandwidth (p=", p, ")");
      inject_prob_[h] = p;
    }
  }
  // Faults zero the rates of cut-off hosts; a later switch_up restores them.
  base_inject_prob_ = inject_prob_;

  // Seed the per-host arrival streams and schedule each host's first
  // arrival. Identical across exec modes by construction.
  arrivals_.Reset(config_.rng_seed, hosts);
  for (std::size_t h = 0; h < hosts; ++h) {
    if (base_inject_prob_[h] > 0.0) {
      arrival_queue_.Push(GeometricGap(arrivals_.Stream(h), base_inject_prob_[h]) - 1, h);
    }
  }

  if (obs::Tracer* tracer = obs::ActiveTracer()) {
    tracer->Emit(obs::TraceEvent("sim.start")
                     .F("rate", injection_flits_per_switch_cycle)
                     .F("warmup", config_.warmup_cycles)
                     .F("measure", config_.measure_cycles)
                     .F("vcs", vc_count_));
  }

  const std::size_t horizon = config_.warmup_cycles + config_.measure_cycles;
  std::size_t measured_cycles = 0;
  const auto maybe_milestone = [&] {
    if (obs::Tracer* tracer = obs::ActiveTracer();
        tracer != nullptr && config_.trace_milestone_cycles > 0 &&
        cycle_ % config_.trace_milestone_cycles == 0) {
      tracer->Emit(obs::TraceEvent("sim.milestone")
                       .F("cycle", cycle_)
                       .F("in_flight_flits", flits_in_network_)
                       .F("delivered_flits", delivered_flits_measured_)
                       .F("generated_flits", generated_flits_measured_));
    }
  };
  {
    const obs::Span warmup_span("sim.warmup", "cycles", config_.warmup_cycles);
    while (cycle_ < config_.warmup_cycles && !deadlock_) {
      measuring_ = false;
      StepCycle(config_.warmup_cycles);
      maybe_milestone();
    }
  }
  {
    const obs::Span measure_span("sim.measure", "cycles", config_.measure_cycles);
    telemetry_last_cycle_ = cycle_;  // utilization windows exclude warmup
    while (cycle_ < horizon && !deadlock_) {
      measuring_ = true;
      const std::size_t before = cycle_;
      StepCycle(horizon);
      // The event engine may advance many cycles at once; skipped spans are
      // simulated time and count toward the measurement window.
      measured_cycles += cycle_ - before;
      maybe_milestone();
      if (config_.telemetry_sample_cycles > 0 &&
          measured_cycles % config_.telemetry_sample_cycles == 0) {
        SampleTelemetry();
      }
    }
  }

  // Source-queue backlog in flits (unsent messages + remainder of each
  // host's partially injected head message).
  auto backlog = [&]() -> double {
    double flits = 0.0;
    for (std::size_t h = 0; h < hosts; ++h) {
      flits += static_cast<double>(source_queue_[h].size()) *
               static_cast<double>(config_.message_length_flits);
      flits -= static_cast<double>(source_flits_pushed_[h]);
    }
    return flits;
  };

  SimMetrics metrics;
  const double s = static_cast<double>(graph_->switch_count());
  const double mc = static_cast<double>(std::max<std::size_t>(measured_cycles, 1));
  metrics.offered_flits_per_switch_cycle =
      static_cast<double>(generated_flits_measured_) / (mc * s);
  metrics.accepted_flits_per_switch_cycle =
      static_cast<double>(delivered_flits_measured_) / (mc * s);
  metrics.messages_generated = messages_generated_measured_;
  metrics.messages_delivered = messages_delivered_measured_;
  metrics.flits_delivered = delivered_flits_measured_;
  metrics.simulated_cycles = cycle_;
  if (messages_delivered_measured_ > 0) {
    metrics.avg_latency_cycles =
        static_cast<double>(latency_sum_ / messages_delivered_measured_);
    metrics.avg_total_latency_cycles =
        static_cast<double>(total_latency_sum_ / messages_delivered_measured_);
    std::sort(latency_samples_.begin(), latency_samples_.end());
    auto percentile = [&](double q) {
      const std::size_t idx = static_cast<std::size_t>(
          q * static_cast<double>(latency_samples_.size() - 1));
      return static_cast<double>(latency_samples_[idx]);
    };
    metrics.p50_latency_cycles = percentile(0.50);
    metrics.p95_latency_cycles = percentile(0.95);
    metrics.p99_latency_cycles = percentile(0.99);
    metrics.max_latency_cycles = static_cast<double>(latency_samples_.back());
  }
  metrics.source_queue_growth = backlog() / (mc * s);
  // Physical link utilization: sum the VC outputs of each directed channel.
  double util_sum = 0.0;
  for (std::size_t c = 0; c < ChannelCount(); ++c) {
    std::uint64_t moved = 0;
    for (std::size_t vc = 0; vc < vc_count_; ++vc) {
      moved += outputs_[c * vc_count_ + vc].flits_moved_measured;
    }
    const double util = static_cast<double>(moved) / mc;
    util_sum += util;
    metrics.max_link_utilization = std::max(metrics.max_link_utilization, util);
  }
  if (ChannelCount() > 0) {
    metrics.avg_link_utilization = util_sum / static_cast<double>(ChannelCount());
  }
  metrics.deadlock_detected = deadlock_;
  metrics.fault_events_applied = fault_events_applied_;
  metrics.dropped_flits = dropped_flits_;
  metrics.messages_lost = messages_lost_;
  metrics.reconfig_cycles = reconfig_cycles_count_;
  metrics.per_app.resize(pattern_->app_count());
  for (std::size_t a = 0; a < pattern_->app_count(); ++a) {
    metrics.per_app[a].messages_delivered = app_messages_[a];
    metrics.per_app[a].flits_delivered = app_flits_[a];
    if (app_messages_[a] > 0) {
      metrics.per_app[a].avg_latency_cycles =
          static_cast<double>(app_latency_sum_[a] / app_messages_[a]);
    }
  }
  if (!pair_flits_.empty()) {
    const std::size_t n = graph_->switch_count();
    metrics.switch_pair_flit_rate.assign(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        metrics.switch_pair_flit_rate[i][j] =
            static_cast<double>(pair_flits_[i * n + j]) / mc;
      }
    }
  }

  registry.GetCounter("sim.runs").Add(1);
  registry.GetCounter("sim.cycles").Add(cycle_);
  registry.GetCounter("sim.measured_cycles").Add(measured_cycles);
  registry.GetCounter("sim.flits_generated").Add(generated_flits_measured_);
  registry.GetCounter("sim.flits_delivered").Add(delivered_flits_measured_);
  registry.GetCounter("sim.messages_generated").Add(messages_generated_measured_);
  registry.GetCounter("sim.messages_delivered").Add(messages_delivered_measured_);
  if (deadlock_) registry.GetCounter("sim.deadlocks").Add(1);
  if (event_mode_) {
    registry.GetCounter("sim.event.skipped_cycles").Add(skipped_cycles_);
    registry.GetCounter("sim.event.skips").Add(skip_spans_);
  }
  if (view_ != nullptr) {
    registry.GetCounter("fault.dropped_flits").Add(dropped_flits_);
    registry.GetCounter("fault.messages_lost").Add(messages_lost_);
    registry.GetCounter("fault.reconfig_cycles").Add(reconfig_cycles_count_);
  }
  FlushDistributionMetrics();
  if (obs::Tracer* tracer = obs::ActiveTracer()) {
    obs::TraceEvent done("sim.done");
    done.F("rate", injection_flits_per_switch_cycle)
        .F("cycles", cycle_)
        .F("delivered_flits", delivered_flits_measured_)
        .F("delivered_messages", messages_delivered_measured_)
        .F("accepted", metrics.accepted_flits_per_switch_cycle)
        .F("avg_latency", metrics.avg_latency_cycles)
        .F("p50_latency", metrics.p50_latency_cycles)
        .F("p99_latency", metrics.p99_latency_cycles)
        .F("deadlock", deadlock_);
    // Fault fields only appear in degraded-mode runs so that the trace of a
    // fault-free run stays byte-identical to previous releases.
    if (view_ != nullptr) {
      done.F("fault_events", fault_events_applied_)
          .F("dropped_flits", dropped_flits_)
          .F("messages_lost", messages_lost_)
          .F("reconfig_cycles", reconfig_cycles_count_);
    }
    tracer->Emit(done);
  }
  return metrics;
}

SimTotals NetworkSimulator::Totals() const {
  SimTotals totals;
  totals.flits_injected = flits_injected_total_;
  totals.flits_delivered = flits_delivered_total_;
  totals.flits_dropped = dropped_flits_;
  totals.flits_in_network = flits_in_network_;
  totals.messages_enqueued = messages_enqueued_total_;
  totals.messages_born_dead = messages_born_dead_;
  totals.messages_lost = messages_lost_;
  totals.pool_live = pool_.live();
  return totals;
}

}  // namespace commsched::sim
