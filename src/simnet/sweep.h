// Load-sweep driver: simulates a mapping from low load to saturation — the
// S1..S9 simulation points of the paper's Figures 3 and 5 — and extracts the
// throughput (maximum accepted traffic).
#pragma once

#include <string>
#include <vector>

#include "simnet/simulator.h"

namespace commsched::sim {

struct SweepOptions {
  /// Explicit offered loads (flits/switch/cycle). If empty, `points` loads
  /// are spaced linearly in [min_rate, max_rate].
  std::vector<double> rates;
  double min_rate = 0.05;
  double max_rate = 1.2;
  std::size_t points = 9;  // the paper simulates S1..S9
  /// Run the points on a thread pool. Same determinism contract as the
  /// search engine's parallel_seeds (sched/engine.h): per-point RNG streams
  /// are derived up front, so parallel and sequential sweeps are identical.
  bool parallel = true;
  /// Independent seeded runs per sweep point (for confidence intervals; see
  /// tests/stat_util.h). Replicate 0 uses the same stream as a
  /// seed_replicates == 1 sweep, so existing results are unchanged; all
  /// points x replicates share one parallel work list.
  std::size_t seed_replicates = 1;
  SimConfig config;
};

struct SweepPoint {
  double offered_rate = 0.0;  // configured injection rate
  /// Metrics of replicate 0 (the only replicate unless seed_replicates > 1).
  SimMetrics metrics;
  /// All replicates, indexed by replicate id; replicates[0] == metrics.
  std::vector<SimMetrics> replicates;
};

struct SweepResult {
  std::vector<SweepPoint> points;

  /// Throughput: maximum accepted traffic over the sweep (the paper's
  /// definition — "maximum amount of information delivered per time unit").
  [[nodiscard]] double Throughput() const;

  /// Mean latency at the lowest offered load (zero-load-ish latency).
  [[nodiscard]] double LowLoadLatency() const;

  /// First configured rate at which the run saturated, or +inf.
  [[nodiscard]] double SaturationRate() const;
};

/// Runs the sweep; each point simulates independently from an empty network
/// with a rate-specific RNG stream, so `parallel` does not change results.
[[nodiscard]] SweepResult RunLoadSweep(const SwitchGraph& graph, const Routing& routing,
                                       const TrafficPattern& pattern,
                                       const SweepOptions& options);

/// Sweep with an explicit virtual-channel routing policy (Duato etc.);
/// options.config.virtual_channels must equal policy.vc_count().
[[nodiscard]] SweepResult RunLoadSweep(const SwitchGraph& graph, const VcRoutingPolicy& policy,
                                       const TrafficPattern& pattern,
                                       const SweepOptions& options);

/// The loads a sweep will use (resolving the defaulting rule above).
[[nodiscard]] std::vector<double> SweepRates(const SweepOptions& options);

/// Bisects for the saturation load: the largest offered rate in
/// [min_rate, max_rate] whose run is not Saturated(), to within
/// `tolerance` flits/switch/cycle. Returns min_rate if even that saturates
/// and max_rate if nothing does. Deterministic in config.rng_seed.
[[nodiscard]] double FindSaturationLoad(const SwitchGraph& graph, const Routing& routing,
                                        const TrafficPattern& pattern, const SimConfig& config,
                                        double min_rate = 0.02, double max_rate = 2.5,
                                        double tolerance = 0.02);

}  // namespace commsched::sim
