#include "simnet/vc_routing.h"

#include <algorithm>

#include "common/check.h"
#include "routing/deadlock.h"

namespace commsched::sim {

SingleClassVcPolicy::SingleClassVcPolicy(const Routing& routing, std::size_t vc_count,
                                         bool adaptive)
    : routing_(&routing), vc_count_(vc_count), adaptive_(adaptive) {
  CS_CHECK(vc_count >= 1, "need at least one virtual channel");
}

std::vector<VcCandidate> SingleClassVcPolicy::Candidates(SwitchId current, SwitchId dest,
                                                         Phase phase, bool /*on_escape*/) const {
  std::vector<VcCandidate> candidates;
  const auto hops = routing_->NextHops(current, dest, phase);
  const std::size_t links = adaptive_ ? hops.size() : std::min<std::size_t>(1, hops.size());
  candidates.reserve(links * vc_count_);
  // VC-major order so a blocked VC 0 falls through to VC 1 of the same link
  // before trying the next link (keeps deterministic routing on one path).
  for (std::size_t l = 0; l < links; ++l) {
    for (std::size_t vc = 0; vc < vc_count_; ++vc) {
      candidates.push_back({hops[l].link, hops[l].next, hops[l].phase, vc, false});
    }
  }
  return candidates;
}

std::string SingleClassVcPolicy::Name() const {
  return routing_->Name() + (adaptive_ ? "/adaptive" : "/deterministic") + "/vc" +
         std::to_string(vc_count_);
}

DuatoFullyAdaptivePolicy::DuatoFullyAdaptivePolicy(const SwitchGraph& graph,
                                                   std::size_t vc_count,
                                                   route::RootPolicy root_policy)
    : graph_(&graph), vc_count_(vc_count), escape_(graph, root_policy), adaptive_(graph) {
  CS_CHECK(vc_count >= 2, "Duato fully-adaptive routing needs an escape VC plus at least one "
                          "adaptive VC (vc_count >= 2)");
}

std::vector<VcCandidate> DuatoFullyAdaptivePolicy::Candidates(SwitchId current, SwitchId dest,
                                                              Phase phase,
                                                              bool on_escape) const {
  std::vector<VcCandidate> candidates;
  if (on_escape) {
    // Committed to the escape network: deterministic up*/down* on VC 0.
    const auto hops = escape_.NextHops(current, dest, phase);
    CS_CHECK(!hops.empty(), "escape network must offer a hop");
    candidates.push_back({hops.front().link, hops.front().next, hops.front().phase, 0, true});
    return candidates;
  }
  // Adaptive channels on every minimal physical hop, preferred.
  const auto minimal = adaptive_.NextHops(current, dest, Phase::kUp);
  for (const route::NextHop& hop : minimal) {
    for (std::size_t vc = 1; vc < vc_count_; ++vc) {
      candidates.push_back({hop.link, hop.next, Phase::kUp, vc, false});
    }
  }
  // Escape channel as the fallback. A message enters the escape network as
  // if freshly injected at `current` (phase restarts at kUp) — legal because
  // the escape subfunction routes from the current switch.
  const auto escape_hops = escape_.NextHops(current, dest, Phase::kUp);
  for (const route::NextHop& hop : escape_hops) {
    candidates.push_back({hop.link, hop.next, hop.phase, 0, true});
  }
  return candidates;
}

bool VerifyDuatoSafety(const DuatoFullyAdaptivePolicy& policy) {
  // Obligation 1: acyclic escape CDG.
  if (!route::IsDeadlockFree(policy.escape_routing())) {
    return false;
  }
  // Obligation 2: an escape candidate from every adaptive state.
  const std::size_t n = policy.graph().switch_count();
  for (SwitchId s = 0; s < n; ++s) {
    for (SwitchId t = 0; t < n; ++t) {
      if (s == t) continue;
      const auto candidates = policy.Candidates(s, t, Phase::kUp, /*on_escape=*/false);
      const bool has_escape = std::any_of(candidates.begin(), candidates.end(),
                                          [](const VcCandidate& c) { return c.escape; });
      if (!has_escape) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace commsched::sim
