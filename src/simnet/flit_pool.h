// Flat SoA flit storage with a free-list allocator.
//
// Every in-flight flit of the simulator lives in one FlitPool slot; buffers
// chain slots into intrusive singly-linked FIFOs via `next`. Compared to the
// previous per-buffer std::deque<Flit> this removes per-message heap churn
// (slots are recycled through the free list) and keeps the hot data in three
// flat arrays. A free bitmap guards against double-free: releasing a slot
// twice is a contract violation, not silent corruption.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace commsched::sim {

class FlitPool {
 public:
  /// Null slot id (end of a buffer chain / empty free list).
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// Takes a slot off the free list (growing the arrays when empty) and
  /// stamps it with the owning message and its flit sequence number.
  std::uint32_t Allocate(std::uint32_t msg, std::uint32_t seq) {
    std::uint32_t id;
    if (free_head_ != kNil) {
      id = free_head_;
      free_head_ = next_[id];
      CS_CHECK(live_bits_[id] == 0, "flit pool free list holds a live slot");
      msg_[id] = msg;
      seq_[id] = seq;
      next_[id] = kNil;
    } else {
      id = static_cast<std::uint32_t>(msg_.size());
      CS_CHECK(id != kNil, "flit pool exhausted");
      msg_.push_back(msg);
      seq_.push_back(seq);
      next_.push_back(kNil);
      live_bits_.push_back(0);
    }
    live_bits_[id] = 1;
    ++live_;
    return id;
  }

  /// Returns a slot to the free list. Freeing a slot that is not live (never
  /// allocated, or already freed) throws ContractError.
  void Free(std::uint32_t id) {
    CS_CHECK(id < msg_.size(), "freeing flit slot ", id, " outside the pool");
    CS_CHECK(live_bits_[id] == 1, "double free of flit slot ", id);
    live_bits_[id] = 0;
    next_[id] = free_head_;
    free_head_ = id;
    --live_;
  }

  [[nodiscard]] std::uint32_t msg(std::uint32_t id) const { return msg_[id]; }
  [[nodiscard]] std::uint32_t seq(std::uint32_t id) const { return seq_[id]; }
  [[nodiscard]] std::uint32_t next(std::uint32_t id) const { return next_[id]; }
  void set_next(std::uint32_t id, std::uint32_t next) { next_[id] = next; }

  /// Currently allocated slots (== flits physically in the network).
  [[nodiscard]] std::size_t live() const { return live_; }

  /// Total slots ever grown (capacity highwater, live + free).
  [[nodiscard]] std::size_t capacity() const { return msg_.size(); }

  /// Drops everything (slots, free list). Used when a run restarts.
  void Clear() {
    msg_.clear();
    seq_.clear();
    next_.clear();
    live_bits_.clear();
    free_head_ = kNil;
    live_ = 0;
  }

 private:
  // SoA: parallel arrays indexed by slot id. `next_` doubles as the free
  // list link while a slot is free.
  std::vector<std::uint32_t> msg_;
  std::vector<std::uint32_t> seq_;
  std::vector<std::uint32_t> next_;
  std::vector<std::uint8_t> live_bits_;
  std::uint32_t free_head_ = kNil;
  std::size_t live_ = 0;
};

}  // namespace commsched::sim
