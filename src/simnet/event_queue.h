// Event-driven engine primitives (ISSUE 6 tentpole).
//
// EventQueue is a global queue keyed by simulation cycle with a
// deterministic total order: events pop in nondecreasing cycle order and,
// within a cycle, in ascending payload-id order — so replaying the same
// pushes always fires events in the same order regardless of push order.
// The simulator uses it for message-arrival events (payload = host id).
//
// ActiveSet is a fixed-size bitmap of "things that may do work this cycle"
// (dirty switches, busy channels, injecting hosts...). Sweep() visits active
// indices in ascending order, mirroring the cycle engine's ordered scans:
// indices activated ahead of the cursor are picked up in the same sweep
// (same-cycle forward visibility, like a later loop iteration seeing state
// written by an earlier one); activations at or behind the cursor persist to
// the next sweep.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace commsched::sim {

class EventQueue {
 public:
  void Clear() { heap_.clear(); }

  [[nodiscard]] bool Empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t Size() const { return heap_.size(); }

  void Push(std::size_t cycle, std::size_t id) {
    heap_.push_back(Entry{cycle, id});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Cycle of the earliest pending event. Requires !Empty().
  [[nodiscard]] std::size_t NextCycle() const {
    CS_CHECK(!heap_.empty(), "NextCycle on an empty event queue");
    return heap_.front().cycle;
  }

  /// Pops the earliest (cycle, id) event and returns its id.
  std::size_t Pop() {
    CS_CHECK(!heap_.empty(), "Pop on an empty event queue");
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const std::size_t id = heap_.back().id;
    heap_.pop_back();
    return id;
  }

 private:
  struct Entry {
    std::size_t cycle;
    std::size_t id;
  };
  // Min-heap on (cycle, id): strict total order makes pops deterministic.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.cycle != b.cycle ? a.cycle > b.cycle : a.id > b.id;
    }
  };
  std::vector<Entry> heap_;
};

class ActiveSet {
 public:
  void Reset(std::size_t n) {
    n_ = n;
    words_.assign((n + 63) / 64, 0);
    count_ = 0;
  }

  void Add(std::size_t i) {
    CS_DCHECK(i < n_, "ActiveSet index out of range");
    std::uint64_t& word = words_[i >> 6];
    const std::uint64_t mask = 1ULL << (i & 63);
    if ((word & mask) == 0) {
      word |= mask;
      ++count_;
    }
  }

  [[nodiscard]] bool Contains(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  [[nodiscard]] bool Any() const { return count_ > 0; }
  [[nodiscard]] std::size_t Count() const { return count_; }

  void ClearAll() {
    std::fill(words_.begin(), words_.end(), 0);
    count_ = 0;
  }

  /// Visits active indices in ascending order; `visit(i)` returns true to
  /// keep i active for the next sweep, false to deactivate it. Indices the
  /// callback activates ahead of the cursor are visited in this sweep; each
  /// index is visited at most once per sweep.
  template <typename Visit>
  void Sweep(Visit&& visit) {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t done = 0;
      while (true) {
        // Re-read the word each round: visit() may set bits ahead of us.
        const std::uint64_t pending = words_[wi] & ~done;
        if (pending == 0) break;
        const int bit = std::countr_zero(pending);
        const std::uint64_t mask = 1ULL << bit;
        done |= mask;
        const std::size_t i = (wi << 6) + static_cast<std::size_t>(bit);
        if (!visit(i) && (words_[wi] & mask) != 0) {
          words_[wi] &= ~mask;
          --count_;
        }
      }
    }
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t n_ = 0;
  std::size_t count_ = 0;
};

}  // namespace commsched::sim
