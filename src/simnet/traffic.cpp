#include "simnet/traffic.h"

#include "common/check.h"

namespace commsched::sim {

TrafficPattern::TrafficPattern(const SwitchGraph& graph, const Workload& workload,
                               const ProcessMapping& mapping) {
  CS_CHECK(mapping.host_count() == graph.host_count(), "mapping / graph size mismatch");
  app_of_host_.resize(graph.host_count());
  hosts_of_app_.assign(workload.application_count(), {});
  for (std::size_t h = 0; h < graph.host_count(); ++h) {
    app_of_host_[h] = mapping.AppOfHost(h);
    hosts_of_app_[app_of_host_[h]].push_back(h);
  }
  weight_of_app_.reserve(workload.application_count());
  intercluster_of_app_.reserve(workload.application_count());
  for (const auto& app : workload.applications()) {
    weight_of_app_.push_back(app.traffic_weight);
    intercluster_of_app_.push_back(app.intercluster_fraction);
  }
}

double TrafficPattern::HostWeight(std::size_t host) const {
  CS_CHECK(host < app_of_host_.size(), "host out of range");
  const std::size_t app = app_of_host_[host];
  const bool has_peer = hosts_of_app_[app].size() > 1;
  const bool sends_out = intercluster_of_app_[app] > 0.0 && app_of_host_.size() > 1;
  if (!has_peer && !sends_out) return 0.0;
  return weight_of_app_[app];
}

std::size_t TrafficPattern::SampleDestination(std::size_t src, Rng& rng) const {
  CS_CHECK(src < app_of_host_.size(), "host out of range");
  const std::size_t app = app_of_host_[src];
  const bool intercluster =
      intercluster_of_app_[app] > 0.0 && rng.NextBool(intercluster_of_app_[app]);
  if (!intercluster) {
    const auto& peers = hosts_of_app_[app];
    CS_CHECK(peers.size() > 1, "host ", src, " has no intracluster peer");
    for (;;) {
      const std::size_t dest = peers[static_cast<std::size_t>(rng.NextIndex(peers.size()))];
      if (dest != src) return dest;
    }
  }
  // Intercluster: uniform over hosts of other applications.
  CS_CHECK(hosts_of_app_.size() > 1, "intercluster traffic needs another application");
  for (;;) {
    const std::size_t dest =
        static_cast<std::size_t>(rng.NextIndex(app_of_host_.size()));
    if (app_of_host_[dest] != app) return dest;
  }
}

}  // namespace commsched::sim
