// Estimating communication requirements — the paper's future work #1:
// "the communication requirements of the applications running on the
// machine must be measured or estimated".
//
// Two paths to a switch-level weight matrix for the weighted quality
// functions (quality/weighted.h):
//   * measured  — run the simulator with collect_traffic_matrix and convert
//     the observed per-pair flit rates (MeasureSwitchWeights /
//     WeightsFromTrafficMatrix);
//   * analytic  — expand the workload model (per-application weights,
//     uniform destinations, intercluster fraction) into expected rates
//     (AnalyticSwitchWeights), exact in expectation.
#pragma once

#include "quality/weighted.h"
#include "simnet/simulator.h"

namespace commsched::sim {

/// Converts an observed (or modeled) ordered rate matrix into a symmetric,
/// zero-diagonal, normalized WeightMatrix: w(i,j) = rate(i,j) + rate(j,i).
/// Same-switch traffic is dropped (it never crosses a link).
[[nodiscard]] qual::WeightMatrix WeightsFromTrafficMatrix(
    const std::vector<std::vector<double>>& rates);

/// Runs one simulation at `rate` with traffic collection enabled and
/// returns the measured weights.
[[nodiscard]] qual::WeightMatrix MeasureSwitchWeights(const SwitchGraph& graph,
                                                      const Routing& routing,
                                                      const TrafficPattern& pattern,
                                                      SimConfig config, double rate);

/// Expected switch-pair weights implied by the workload model: every
/// process of application a emits messages at rate ∝ traffic_weight, to a
/// uniform same-application peer with probability 1 - intercluster_fraction
/// and a uniform other-application host otherwise. Normalized.
[[nodiscard]] qual::WeightMatrix AnalyticSwitchWeights(const SwitchGraph& graph,
                                                       const work::Workload& workload,
                                                       const work::ProcessMapping& mapping);

/// Per-application communication intensities from a measured ordered rate
/// matrix and the current (switch-aligned) placement: λ_c is the mean flit
/// rate per intracluster switch pair of cluster c, normalized so the mean
/// intensity is 1. Feed into sched::IntensityTabuSearch to re-place the
/// applications with their measured requirements — the paper's envisioned
/// measure → schedule loop.
[[nodiscard]] std::vector<double> EstimateAppIntensities(
    const std::vector<std::vector<double>>& rates, const qual::Partition& partition);

}  // namespace commsched::sim
