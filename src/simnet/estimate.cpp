#include "simnet/estimate.h"

namespace commsched::sim {

qual::WeightMatrix WeightsFromTrafficMatrix(const std::vector<std::vector<double>>& rates) {
  const std::size_t n = rates.size();
  CS_CHECK(n >= 2, "need at least two switches");
  qual::WeightMatrix weights(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    CS_CHECK(rates[i].size() == n, "rate matrix must be square");
    for (std::size_t j = i + 1; j < n; ++j) {
      weights.Set(i, j, rates[i][j] + rates[j][i]);
    }
  }
  weights.Normalize();
  return weights;
}

qual::WeightMatrix MeasureSwitchWeights(const SwitchGraph& graph, const Routing& routing,
                                        const TrafficPattern& pattern, SimConfig config,
                                        double rate) {
  config.collect_traffic_matrix = true;
  NetworkSimulator simulator(graph, routing, pattern, config);
  const SimMetrics metrics = simulator.Run(rate);
  CS_CHECK(!metrics.switch_pair_flit_rate.empty(), "traffic collection produced nothing");
  return WeightsFromTrafficMatrix(metrics.switch_pair_flit_rate);
}

qual::WeightMatrix AnalyticSwitchWeights(const SwitchGraph& graph,
                                         const work::Workload& workload,
                                         const work::ProcessMapping& mapping) {
  const std::size_t n = graph.switch_count();
  CS_CHECK(n >= 2, "need at least two switches");
  CS_CHECK(mapping.host_count() == graph.host_count(), "mapping / graph mismatch");
  std::vector<std::vector<double>> rates(n, std::vector<double>(n, 0.0));

  const auto& apps = workload.applications();
  for (std::size_t h = 0; h < graph.host_count(); ++h) {
    const std::size_t a = mapping.AppOfHost(h);
    const work::ApplicationSpec& app = apps[a];
    const std::size_t peers = mapping.HostsOfApp(a).size();
    const bool has_peer = peers > 1;
    const bool sends_out = app.intercluster_fraction > 0.0;
    if ((!has_peer && !sends_out) || app.traffic_weight <= 0.0) continue;
    const std::size_t src_switch = graph.SwitchOfHost(h);

    // Intracluster share, uniform over same-app peers.
    if (has_peer) {
      const double intra_rate = app.traffic_weight * (1.0 - app.intercluster_fraction) /
                                static_cast<double>(peers - 1);
      for (std::size_t g : mapping.HostsOfApp(a)) {
        if (g == h) continue;
        rates[src_switch][graph.SwitchOfHost(g)] += intra_rate;
      }
    }
    // Intercluster share, uniform over other-application hosts.
    if (sends_out) {
      std::size_t others = 0;
      for (std::size_t b = 0; b < apps.size(); ++b) {
        if (b != a) others += mapping.HostsOfApp(b).size();
      }
      if (others > 0) {
        const double inter_rate =
            app.traffic_weight * app.intercluster_fraction / static_cast<double>(others);
        for (std::size_t b = 0; b < apps.size(); ++b) {
          if (b == a) continue;
          for (std::size_t g : mapping.HostsOfApp(b)) {
            rates[src_switch][graph.SwitchOfHost(g)] += inter_rate;
          }
        }
      }
    }
  }
  return WeightsFromTrafficMatrix(rates);
}

std::vector<double> EstimateAppIntensities(const std::vector<std::vector<double>>& rates,
                                           const qual::Partition& partition) {
  const std::size_t n = partition.switch_count();
  CS_CHECK(rates.size() == n, "rate matrix size must match the partition");
  std::vector<double> intensity(partition.cluster_count(), 0.0);
  std::vector<double> pair_count(partition.cluster_count(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    CS_CHECK(rates[i].size() == n, "rate matrix must be square");
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::size_t c = partition.ClusterOf(i);
      if (c != partition.ClusterOf(j)) continue;
      intensity[c] += rates[i][j] + rates[j][i];
      pair_count[c] += 1.0;
    }
  }
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t c = 0; c < intensity.size(); ++c) {
    if (pair_count[c] > 0.0) {
      intensity[c] /= pair_count[c];
      sum += intensity[c];
      ++counted;
    }
  }
  CS_CHECK(sum > 0.0, "no intracluster traffic observed");
  const double mean = sum / static_cast<double>(counted);
  for (double& v : intensity) v /= mean;
  return intensity;
}

}  // namespace commsched::sim
