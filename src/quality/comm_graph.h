// Sparse process communication graphs (the sparse-QAP view of §4).
//
// The dense quality functions treat every switch pair as communicating; at
// 10^5+ processes that all-pairs view is both wrong (real exchanges are
// sparse — halo exchanges, rings, near-neighbour stencils) and unaffordable
// (O(N^2) per objective evaluation). CommGraph is the sparse alternative: an
// immutable weighted undirected graph over process vertices, stored both as
// a canonical edge list (u < v, sorted) and in CSR form for O(deg) swap
// deltas. Each vertex carries an integral size — 1 for a plain process,
// larger for the merged super-vertices produced by multilevel coarsening
// (sched/multilevel/coarsen.h).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"

namespace commsched::qual {

/// One weighted undirected edge; FromEdges canonicalizes to u < v.
struct CommEdge {
  std::size_t u = 0;
  std::size_t v = 0;
  double weight = 1.0;

  friend bool operator==(const CommEdge&, const CommEdge&) = default;
};

class CommGraph {
 public:
  /// One CSR adjacency entry.
  struct Neighbor {
    std::size_t vertex = 0;
    double weight = 0.0;
  };

  CommGraph() = default;

  /// Builds from an edge list. Parallel edges (including (u,v)/(v,u)
  /// duplicates) merge by summing weights; self-loops, out-of-range
  /// endpoints and non-positive weights throw ConfigError. All vertex
  /// sizes are 1.
  [[nodiscard]] static CommGraph FromEdges(std::size_t vertex_count,
                                           std::vector<CommEdge> edges);

  /// Same, with explicit per-vertex sizes (multilevel super-vertices).
  [[nodiscard]] static CommGraph FromEdges(std::size_t vertex_count, std::vector<CommEdge> edges,
                                           std::vector<std::size_t> vertex_sizes);

  /// The dense model as a sparse graph: vertices in the same group form a
  /// clique of weight-`weight` edges. This is the bridge the parity tests
  /// use — on a clique-per-cluster graph the sparse cost equals the dense
  /// intracluster quadratic sum exactly.
  [[nodiscard]] static CommGraph CliqueGroups(const std::vector<std::size_t>& group_of_vertex,
                                              double weight = 1.0);

  [[nodiscard]] std::size_t vertex_count() const { return sizes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] std::size_t vertex_size(std::size_t v) const {
    CS_DCHECK(v < sizes_.size(), "vertex id out of range");
    return sizes_[v];
  }
  /// Sum of vertex sizes (the number of finest-level processes represented).
  [[nodiscard]] std::size_t total_vertex_size() const { return total_size_; }

  /// Sum of edge weights over unordered edges. Coarsening conserves
  /// TotalEdgeWeight() + absorbed weight (the multilevel invariant test).
  [[nodiscard]] double TotalEdgeWeight() const { return total_weight_; }

  [[nodiscard]] std::size_t Degree(std::size_t v) const {
    CS_DCHECK(v < sizes_.size(), "vertex id out of range");
    return offsets_[v + 1] - offsets_[v];
  }

  /// CSR neighbors of v (both directions of every incident edge).
  [[nodiscard]] const Neighbor* NeighborsBegin(std::size_t v) const {
    CS_DCHECK(v < sizes_.size(), "vertex id out of range");
    return neighbors_.data() + offsets_[v];
  }
  [[nodiscard]] const Neighbor* NeighborsEnd(std::size_t v) const {
    CS_DCHECK(v < sizes_.size(), "vertex id out of range");
    return neighbors_.data() + offsets_[v + 1];
  }

  /// Canonical merged edge list: u < v, sorted lexicographically.
  [[nodiscard]] const std::vector<CommEdge>& edges() const { return edges_; }

  /// Text round-trip ("commgraph v1" header; used by tools/gen_workload and
  /// the CLI's --comm file input).
  [[nodiscard]] std::string ToText() const;
  [[nodiscard]] static CommGraph FromText(const std::string& text);

 private:
  std::vector<CommEdge> edges_;        // canonical u < v, sorted
  std::vector<std::size_t> offsets_;   // CSR, vertex_count()+1 entries
  std::vector<Neighbor> neighbors_;    // 2 * edge_count() entries
  std::vector<std::size_t> sizes_;     // per-vertex size (>= 1)
  double total_weight_ = 0.0;
  std::size_t total_size_ = 0;
};

}  // namespace commsched::qual
