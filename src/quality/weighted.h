// Weighted quality functions — lifting the paper's "all the processes have
// the same communication requirements" assumption (listed as future work).
//
// A symmetric non-negative weight w(i,j) models the communication intensity
// between the processes mapped on switches i and j. The weighted global
// similarity generalizes eq. (2):
//
//   F_G^w = ( Σ_intra w T² / Σ_intra w ) / ( Σ_all w T² / Σ_all w )
//
// and reduces exactly to F_G when every weight is equal. D_G^w and C_c^w
// follow the same pattern over intercluster pairs.
#pragma once

#include "distance/distance_table.h"
#include "quality/partition.h"

namespace commsched::qual {

using dist::DistanceTable;

/// Symmetric N x N non-negative weights with zero diagonal.
class WeightMatrix {
 public:
  WeightMatrix() = default;

  /// All off-diagonal weights `fill`.
  WeightMatrix(std::size_t n, double fill);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    CS_DCHECK(i < n_ && j < n_, "weight index out of range");
    return values_[i * n_ + j];
  }
  void Set(std::size_t i, std::size_t j, double weight);

  /// Sum of all unordered pair weights.
  [[nodiscard]] double TotalWeight() const;

  /// Scales so TotalWeight() == number of unordered pairs (i.e. the uniform
  /// matrix maps to all-ones); requires a non-zero matrix.
  void Normalize();

 private:
  std::size_t n_ = 0;
  std::vector<double> values_;
};

/// Weighted eq. (2). Requires positive total intracluster weight.
[[nodiscard]] double WeightedGlobalSimilarity(const DistanceTable& table,
                                              const WeightMatrix& weights,
                                              const Partition& partition);

/// Weighted eq. (5). Requires positive total intercluster weight.
[[nodiscard]] double WeightedGlobalDissimilarity(const DistanceTable& table,
                                                 const WeightMatrix& weights,
                                                 const Partition& partition);

/// C_c^w = D_G^w / F_G^w.
[[nodiscard]] double WeightedClusteringCoefficient(const DistanceTable& table,
                                                   const WeightMatrix& weights,
                                                   const Partition& partition);

// ---------------------------------------------------------------------------
// Application-intensity weighting.
//
// When the heterogeneity is *per application* (application c's processes all
// communicate with intensity λ_c — what a traffic monitor reports under the
// paper's uniform-within-application model), the weight of a switch pair
// depends on which cluster currently hosts it, not on the switches
// themselves. The intensity similarity generalizes eq. (2) as
//
//   F_G^λ = ( Σ_c λ_c F_Ac / Σ_c λ_c m_c ) / ( Σ_all T² / m_all )
//
// with m_c the intracluster pair count of cluster c. All λ equal recovers
// F_G exactly, and the denominator is invariant under swaps (sizes fixed),
// so the incremental evaluator stays a scaled sum delta.
// ---------------------------------------------------------------------------

/// F_G^λ; `cluster_intensity` must have one positive-or-zero entry per
/// cluster with a positive weighted pair count overall.
[[nodiscard]] double IntensityGlobalSimilarity(const DistanceTable& table,
                                               const Partition& partition,
                                               const std::vector<double>& cluster_intensity);

/// Incremental evaluator for swap-based search on F_G^λ.
class IntensitySwapEvaluator {
 public:
  IntensitySwapEvaluator(const DistanceTable& table, Partition partition,
                         std::vector<double> cluster_intensity);

  [[nodiscard]] const Partition& partition() const { return partition_; }
  [[nodiscard]] double Fg() const;

  /// Change of the weighted intracluster sum for exchanging a and b
  /// (different clusters); F_G^λ scales by a constant, so ordering by delta
  /// orders by F_G^λ.
  [[nodiscard]] double SwapDelta(std::size_t a, std::size_t b) const;
  [[nodiscard]] double FgAfterDelta(double delta) const;
  void ApplySwap(std::size_t a, std::size_t b);

 private:
  [[nodiscard]] double ComputeWeightedIntraSum() const;

  const DistanceTable* table_;
  Partition partition_;
  std::vector<double> intensity_;
  double weighted_intra_sum_ = 0.0;
  double weighted_pair_count_ = 0.0;  // Σ_c λ_c m_c (swap-invariant)
  double mean_sq_distance_ = 0.0;
};

/// Incremental evaluator for swap-based search on F_G^w. Mirrors
/// qual::SwapEvaluator; additionally maintains the running intracluster
/// weight (the weighted pair count is no longer invariant under swaps).
class WeightedSwapEvaluator {
 public:
  /// table/weights must outlive the evaluator and share the same size.
  WeightedSwapEvaluator(const DistanceTable& table, const WeightMatrix& weights,
                        Partition partition);

  [[nodiscard]] const Partition& partition() const { return partition_; }

  [[nodiscard]] double Fg() const;
  [[nodiscard]] double Dg() const;
  [[nodiscard]] double Cc() const;

  /// F_G^w change if switches a and b (different clusters) were exchanged.
  /// Unlike the unweighted case this is not a simple scaled sum delta, so
  /// the full resulting F_G^w is returned.
  [[nodiscard]] double FgAfterSwap(std::size_t a, std::size_t b) const;

  void ApplySwap(std::size_t a, std::size_t b);

  void Reset(Partition partition);

 private:
  struct Sums {
    double intra_wsq = 0.0;  // Σ_intra w T²
    double intra_w = 0.0;    // Σ_intra w
  };
  [[nodiscard]] Sums ComputeSums() const;
  [[nodiscard]] Sums SwapDeltas(std::size_t a, std::size_t b) const;
  [[nodiscard]] double FgFromSums(const Sums& sums) const;

  const DistanceTable* table_;
  const WeightMatrix* weights_;
  Partition partition_;
  Sums sums_;
  double all_wsq_ = 0.0;  // Σ_all w T²
  double all_w_ = 0.0;    // Σ_all w
};

}  // namespace commsched::qual
