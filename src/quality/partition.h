// Network partitions: the assignment of switches to clusters induced by a
// mapping of logical process clusters onto the network (§4).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"

namespace commsched::qual {

/// A partition of switches 0..N-1 into M disjoint clusters covering all
/// switches. Cluster ids are 0..M-1.
class Partition {
 public:
  Partition() = default;

  /// From a cluster id per switch; ids must form a contiguous range 0..M-1.
  explicit Partition(std::vector<std::size_t> cluster_of_switch);

  /// From explicit clusters; they must be disjoint and cover 0..N-1.
  [[nodiscard]] static Partition FromClusters(const std::vector<std::vector<std::size_t>>& clusters);

  /// Random partition with the given cluster sizes (sum = N), uniform over
  /// assignments. Deterministic in `rng`.
  [[nodiscard]] static Partition Random(const std::vector<std::size_t>& cluster_sizes, Rng& rng);

  /// Blocked partition: cluster c takes switches [offset_c, offset_c+size_c).
  [[nodiscard]] static Partition Blocked(const std::vector<std::size_t>& cluster_sizes);

  [[nodiscard]] std::size_t switch_count() const { return cluster_of_.size(); }
  [[nodiscard]] std::size_t cluster_count() const { return sizes_.size(); }

  [[nodiscard]] std::size_t ClusterOf(std::size_t s) const;
  [[nodiscard]] std::size_t ClusterSize(std::size_t cluster) const;
  [[nodiscard]] const std::vector<std::size_t>& cluster_of_switch() const { return cluster_of_; }

  /// Switches of one cluster, ascending.
  [[nodiscard]] std::vector<std::size_t> Members(std::size_t cluster) const;

  /// Moves switch s into `cluster` (changes cluster sizes).
  void Move(std::size_t s, std::size_t cluster);

  /// Exchanges the clusters of switches a and b (sizes preserved).
  void Swap(std::size_t a, std::size_t b);

  /// Number of unordered intracluster pairs: sum_i x_i (x_i - 1) / 2 (eq. 3).
  [[nodiscard]] std::size_t IntraPairCount() const;

  /// Ordered intercluster pair count: sum_i x_i (N - x_i).
  [[nodiscard]] std::size_t InterPairCountOrdered() const;

  /// "(a,b,c) (d,e) ..." rendering, clusters sorted by smallest member —
  /// the same shape the paper uses in Figs. 2 and 4.
  [[nodiscard]] std::string ToString() const;

  /// Canonical form: relabels clusters by order of first appearance, so that
  /// partitions equal up to cluster renaming compare equal. Only valid for
  /// comparing partitions with equal-size clusters (relabeling preserves the
  /// grouping, not the ids).
  [[nodiscard]] std::vector<std::size_t> CanonicalLabels() const;

  /// True if the two partitions induce the same grouping (ignoring cluster
  /// ids).
  [[nodiscard]] bool SameGrouping(const Partition& other) const;

  friend bool operator==(const Partition&, const Partition&) = default;

 private:
  std::vector<std::size_t> cluster_of_;
  std::vector<std::size_t> sizes_;
};

}  // namespace commsched::qual
