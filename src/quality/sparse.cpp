#include "quality/sparse.h"

namespace commsched::qual {

SparseQapEvaluator::SparseQapEvaluator(const CommGraph& graph, const dist::DistanceTable& table,
                                       std::vector<std::size_t> switch_of_vertex)
    : graph_(&graph), table_(&table), switch_of_(std::move(switch_of_vertex)) {
  CS_CHECK(switch_of_.size() == graph.vertex_count(),
           "assignment length must equal vertex count");
  load_.assign(table.size(), 0);
  for (std::size_t v = 0; v < switch_of_.size(); ++v) {
    CS_CHECK(switch_of_[v] < table.size(), "vertex assigned to out-of-range switch");
    load_[switch_of_[v]] += graph.vertex_size(v);
  }
  contrib_.assign(graph.vertex_count(), 0.0);
  cost_ = 0.0;
  for (const CommEdge& e : graph.edges()) {
    const double c = EdgeCost(e.weight, switch_of_[e.u], switch_of_[e.v]);
    cost_ += c;
    contrib_[e.u] += c;
    contrib_[e.v] += c;
  }
}

double SparseQapEvaluator::NormalizedCost() const {
  const double total_weight = graph_->TotalEdgeWeight();
  if (total_weight <= 0.0) return 0.0;
  const double mean_sq = table_->MeanSquaredDistance();
  CS_CHECK(mean_sq > 0.0, "degenerate distance table (zero mean squared distance)");
  return (cost_ / total_weight) / mean_sq;
}

double SparseQapEvaluator::SwapDelta(std::size_t a, std::size_t b) const {
  CS_DCHECK(a < switch_of_.size() && b < switch_of_.size(), "vertex id out of range");
  const std::size_t sa = switch_of_[a];
  const std::size_t sb = switch_of_[b];
  if (sa == sb) return 0.0;
  double delta = 0.0;
  // The (a, b) edge, if present, keeps its endpoints' switches as a set, so
  // its cost is unchanged — both loops skip the partner.
  for (const CommGraph::Neighbor* it = graph_->NeighborsBegin(a);
       it != graph_->NeighborsEnd(a); ++it) {
    if (it->vertex == b) continue;
    const std::size_t sx = switch_of_[it->vertex];
    delta += EdgeCost(it->weight, sb, sx) - EdgeCost(it->weight, sa, sx);
  }
  for (const CommGraph::Neighbor* it = graph_->NeighborsBegin(b);
       it != graph_->NeighborsEnd(b); ++it) {
    if (it->vertex == a) continue;
    const std::size_t sx = switch_of_[it->vertex];
    delta += EdgeCost(it->weight, sa, sx) - EdgeCost(it->weight, sb, sx);
  }
  return delta;
}

void SparseQapEvaluator::ApplySwap(std::size_t a, std::size_t b) {
  const std::size_t sa = switch_of_[a];
  const std::size_t sb = switch_of_[b];
  if (sa == sb) return;
  ApplyMove(a, sb);
  ApplyMove(b, sa);
}

double SparseQapEvaluator::MoveDelta(std::size_t v, std::size_t s) const {
  CS_DCHECK(v < switch_of_.size(), "vertex id out of range");
  CS_DCHECK(s < load_.size(), "switch id out of range");
  const std::size_t sv = switch_of_[v];
  if (sv == s) return 0.0;
  double delta = 0.0;
  for (const CommGraph::Neighbor* it = graph_->NeighborsBegin(v);
       it != graph_->NeighborsEnd(v); ++it) {
    const std::size_t sx = switch_of_[it->vertex];
    delta += EdgeCost(it->weight, s, sx) - EdgeCost(it->weight, sv, sx);
  }
  return delta;
}

void SparseQapEvaluator::ApplyMove(std::size_t v, std::size_t s) {
  CS_DCHECK(s < load_.size(), "switch id out of range");
  const std::size_t sv = switch_of_[v];
  if (sv == s) return;
  RemoveVertex(v);
  load_[sv] -= graph_->vertex_size(v);
  switch_of_[v] = s;
  load_[s] += graph_->vertex_size(v);
  InsertVertex(v);
}

double SparseQapEvaluator::RecomputeCost() const {
  double cost = 0.0;
  for (const CommEdge& e : graph_->edges()) {
    cost += EdgeCost(e.weight, switch_of_[e.u], switch_of_[e.v]);
  }
  return cost;
}

void SparseQapEvaluator::RemoveVertex(std::size_t v) {
  const std::size_t sv = switch_of_[v];
  for (const CommGraph::Neighbor* it = graph_->NeighborsBegin(v);
       it != graph_->NeighborsEnd(v); ++it) {
    const double c = EdgeCost(it->weight, sv, switch_of_[it->vertex]);
    cost_ -= c;
    contrib_[v] -= c;
    contrib_[it->vertex] -= c;
  }
}

void SparseQapEvaluator::InsertVertex(std::size_t v) {
  const std::size_t sv = switch_of_[v];
  for (const CommGraph::Neighbor* it = graph_->NeighborsBegin(v);
       it != graph_->NeighborsEnd(v); ++it) {
    const double c = EdgeCost(it->weight, sv, switch_of_[it->vertex]);
    cost_ += c;
    contrib_[v] += c;
    contrib_[it->vertex] += c;
  }
}

}  // namespace commsched::qual
