// Sparse-QAP objective over a communication graph (the scalable ΔF_G path).
//
// The dense SwapEvaluator implicitly assumes every intracluster pair
// communicates, so its cost is Σ_{i<j intra} T_ij² and a swap delta is an
// O(N) scan. SparseQapEvaluator keeps the quadratic-distance form of the
// paper's F_G but sums only over the communication graph's edges:
//
//   cost = Σ_{(u,v) ∈ E}  w_uv · T[sw(u)][sw(v)]²
//
// where sw(v) is the switch hosting vertex v. With a clique-per-cluster
// graph of unit weights and one vertex per switch this reduces to the dense
// intracluster sum exactly (the parity property test), but a swap or move
// delta is O(deg) instead of O(N) — the enabler of the multilevel pipeline's
// 10^5-process refinement passes.
//
// A per-vertex gain cache (contrib_) holds each vertex's share of the cost
// (Σ over its incident edges), so refinement heuristics can rank vertices by
// how much they currently pay without rescanning edges.
#pragma once

#include <cstddef>
#include <vector>

#include "distance/distance_table.h"
#include "quality/comm_graph.h"

namespace commsched::qual {

class SparseQapEvaluator {
 public:
  /// `switch_of_vertex` assigns every vertex a switch in
  /// [0, table.size()). Both graph and table must outlive the evaluator.
  SparseQapEvaluator(const CommGraph& graph, const dist::DistanceTable& table,
                     std::vector<std::size_t> switch_of_vertex);

  [[nodiscard]] const CommGraph& graph() const { return *graph_; }
  [[nodiscard]] const dist::DistanceTable& table() const { return *table_; }

  [[nodiscard]] const std::vector<std::size_t>& switch_of_vertex() const { return switch_of_; }
  [[nodiscard]] std::size_t SwitchOf(std::size_t v) const {
    CS_DCHECK(v < switch_of_.size(), "vertex id out of range");
    return switch_of_[v];
  }

  /// Current cost Σ w·T², maintained incrementally.
  [[nodiscard]] double Cost() const { return cost_; }

  /// Cost normalized like F_G (eq. 2): (cost / total edge weight) divided by
  /// the network-wide mean squared distance. ≈ 1 for a random placement,
  /// → 0 when communicating vertices share close switches. Equals the dense
  /// F_G on the clique-per-cluster configuration.
  [[nodiscard]] double NormalizedCost() const;

  /// Gain cache: vertex v's share of the cost (sum over incident edges; the
  /// caches of both endpoints count each edge, so Σ_v VertexCost(v) == 2·Cost).
  [[nodiscard]] double VertexCost(std::size_t v) const {
    CS_DCHECK(v < contrib_.size(), "vertex id out of range");
    return contrib_[v];
  }

  /// Per-switch load: sum of vertex sizes assigned to each switch.
  [[nodiscard]] const std::vector<std::size_t>& load() const { return load_; }

  /// Cost change if vertices a and b exchanged switches. O(deg a + deg b).
  /// Zero when they share a switch.
  [[nodiscard]] double SwapDelta(std::size_t a, std::size_t b) const;

  /// Applies the exchange and updates cost, gain caches, and loads.
  void ApplySwap(std::size_t a, std::size_t b);

  /// Cost change if vertex v moved to switch s. O(deg v).
  [[nodiscard]] double MoveDelta(std::size_t v, std::size_t s) const;

  /// Moves v to s and updates cost, gain caches, and loads.
  void ApplyMove(std::size_t v, std::size_t s);

  /// O(E) reference recompute — tests assert the incremental state drifts
  /// no further than accumulated rounding from this.
  [[nodiscard]] double RecomputeCost() const;

 private:
  [[nodiscard]] double EdgeCost(double weight, std::size_t sa, std::size_t sb) const {
    const double d = (*table_)(sa, sb);
    return weight * d * d;
  }
  /// Detaches/attaches every edge of v from the running sums.
  void RemoveVertex(std::size_t v);
  void InsertVertex(std::size_t v);

  const CommGraph* graph_;
  const dist::DistanceTable* table_;
  std::vector<std::size_t> switch_of_;
  std::vector<double> contrib_;      // per-vertex gain cache
  std::vector<std::size_t> load_;    // per-switch size load
  double cost_ = 0.0;
};

}  // namespace commsched::qual
