#include "quality/quality.h"

namespace commsched::qual {

double ClusterSimilarity(const DistanceTable& table, const Partition& partition,
                         std::size_t cluster) {
  const auto members = partition.Members(cluster);
  double sum = 0.0;
  for (std::size_t k = 0; k < members.size(); ++k) {
    for (std::size_t j = k + 1; j < members.size(); ++j) {
      const double d = table(members[k], members[j]);
      sum += d * d;
    }
  }
  return sum;
}

double ClusterDissimilarity(const DistanceTable& table, const Partition& partition,
                            std::size_t cluster) {
  const auto members = partition.Members(cluster);
  double sum = 0.0;
  for (std::size_t member : members) {
    for (std::size_t other = 0; other < partition.switch_count(); ++other) {
      if (partition.ClusterOf(other) == cluster) continue;
      const double d = table(member, other);
      sum += d * d;
    }
  }
  return sum;
}

double GlobalSimilarity(const DistanceTable& table, const Partition& partition) {
  CS_CHECK(table.size() == partition.switch_count(), "table / partition size mismatch");
  const std::size_t intra_pairs = partition.IntraPairCount();
  CS_CHECK(intra_pairs > 0, "F_G needs at least one cluster with two switches");
  double intra_sum = 0.0;
  for (std::size_t c = 0; c < partition.cluster_count(); ++c) {
    intra_sum += ClusterSimilarity(table, partition, c);
  }
  return (intra_sum / static_cast<double>(intra_pairs)) / table.MeanSquaredDistance();
}

double GlobalDissimilarity(const DistanceTable& table, const Partition& partition) {
  CS_CHECK(table.size() == partition.switch_count(), "table / partition size mismatch");
  CS_CHECK(partition.cluster_count() >= 2, "D_G needs at least two clusters");
  double inter_sum = 0.0;
  for (std::size_t c = 0; c < partition.cluster_count(); ++c) {
    inter_sum += ClusterDissimilarity(table, partition, c);
  }
  const std::size_t inter_pairs = partition.InterPairCountOrdered();
  CS_CHECK(inter_pairs > 0, "no intercluster pairs");
  return (inter_sum / static_cast<double>(inter_pairs)) / table.MeanSquaredDistance();
}

double ClusteringCoefficient(const DistanceTable& table, const Partition& partition) {
  const double fg = GlobalSimilarity(table, partition);
  CS_CHECK(fg > 0.0, "degenerate F_G (all intracluster distances zero)");
  return GlobalDissimilarity(table, partition) / fg;
}

SwapEvaluator::SwapEvaluator(const DistanceTable& table, Partition partition)
    : table_(&table), partition_(std::move(partition)) {
  CS_CHECK(table.size() == partition_.switch_count(), "table / partition size mismatch");
  CS_CHECK(partition_.IntraPairCount() > 0, "evaluator needs a cluster with two switches");
  CS_CHECK(partition_.cluster_count() >= 2, "evaluator needs at least two clusters");
  sum_all_pairs_sq_ = table.SumSquaredAllPairs();
  mean_sq_distance_ = table.MeanSquaredDistance();
  intra_sum_ = ComputeIntraSum();
}

double SwapEvaluator::ComputeIntraSum() const {
  double sum = 0.0;
  const std::size_t n = partition_.switch_count();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (partition_.ClusterOf(i) == partition_.ClusterOf(j)) {
        const double d = (*table_)(i, j);
        sum += d * d;
      }
    }
  }
  return sum;
}

double SwapEvaluator::Fg() const {
  return (intra_sum_ / static_cast<double>(partition_.IntraPairCount())) / mean_sq_distance_;
}

double SwapEvaluator::Dg() const {
  // Ordered intercluster sum = 2 * (all-pairs sum - intracluster sum).
  const double inter_sum = 2.0 * (sum_all_pairs_sq_ - intra_sum_);
  return (inter_sum / static_cast<double>(partition_.InterPairCountOrdered())) /
         mean_sq_distance_;
}

double SwapEvaluator::Cc() const {
  const double fg = Fg();
  CS_CHECK(fg > 0.0, "degenerate F_G");
  return Dg() / fg;
}

double SwapEvaluator::SwapDelta(std::size_t a, std::size_t b) const {
  const std::size_t n = partition_.switch_count();
  CS_CHECK(a < n && b < n, "switch out of range");
  const std::size_t ca = partition_.ClusterOf(a);
  const std::size_t cb = partition_.ClusterOf(b);
  CS_CHECK(ca != cb, "SwapDelta requires switches in different clusters");
  // a leaves ca (remove its intra terms), b joins ca in its place; likewise
  // for b/cb. The (a,b) pair itself stays intercluster on both sides.
  double delta = 0.0;
  for (std::size_t w = 0; w < n; ++w) {
    if (w == a || w == b) continue;
    const std::size_t cw = partition_.ClusterOf(w);
    const double daw = (*table_)(a, w);
    const double dbw = (*table_)(b, w);
    if (cw == ca) {
      delta += dbw * dbw - daw * daw;
    } else if (cw == cb) {
      delta += daw * daw - dbw * dbw;
    }
  }
  return delta;
}

void SwapEvaluator::ApplySwap(std::size_t a, std::size_t b) {
  const double delta = SwapDelta(a, b);
  partition_.Swap(a, b);
  intra_sum_ += delta;
}

void SwapEvaluator::Reset(Partition partition) {
  CS_CHECK(partition.switch_count() == table_->size(), "table / partition size mismatch");
  partition_ = std::move(partition);
  intra_sum_ = ComputeIntraSum();
}

double SwapEvaluator::FgAfterDelta(double delta) const {
  return ((intra_sum_ + delta) / static_cast<double>(partition_.IntraPairCount())) /
         mean_sq_distance_;
}

}  // namespace commsched::qual
