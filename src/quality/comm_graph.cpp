#include "quality/comm_graph.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"

namespace commsched::qual {

CommGraph CommGraph::FromEdges(std::size_t vertex_count, std::vector<CommEdge> edges) {
  return FromEdges(vertex_count, std::move(edges),
                   std::vector<std::size_t>(vertex_count, 1));
}

CommGraph CommGraph::FromEdges(std::size_t vertex_count, std::vector<CommEdge> edges,
                               std::vector<std::size_t> vertex_sizes) {
  if (vertex_count == 0) throw ConfigError("comm graph needs at least one vertex");
  if (vertex_sizes.size() != vertex_count) {
    throw ConfigError("vertex size list length does not match vertex count");
  }
  for (CommEdge& e : edges) {
    if (e.u >= vertex_count || e.v >= vertex_count) {
      throw ConfigError("comm edge endpoint out of range");
    }
    if (e.u == e.v) throw ConfigError("comm graph does not allow self-loops");
    if (!(e.weight > 0.0)) throw ConfigError("comm edge weight must be positive");
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges.begin(), edges.end(), [](const CommEdge& a, const CommEdge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  // Merge parallel edges by summing weights.
  std::vector<CommEdge> merged;
  merged.reserve(edges.size());
  for (const CommEdge& e : edges) {
    if (!merged.empty() && merged.back().u == e.u && merged.back().v == e.v) {
      merged.back().weight += e.weight;
    } else {
      merged.push_back(e);
    }
  }

  CommGraph graph;
  graph.edges_ = std::move(merged);
  graph.sizes_ = std::move(vertex_sizes);
  graph.total_size_ = 0;
  for (std::size_t size : graph.sizes_) {
    if (size == 0) throw ConfigError("vertex size must be >= 1");
    graph.total_size_ += size;
  }
  graph.total_weight_ = 0.0;
  graph.offsets_.assign(vertex_count + 1, 0);
  for (const CommEdge& e : graph.edges_) {
    graph.total_weight_ += e.weight;
    ++graph.offsets_[e.u + 1];
    ++graph.offsets_[e.v + 1];
  }
  for (std::size_t v = 0; v < vertex_count; ++v) {
    graph.offsets_[v + 1] += graph.offsets_[v];
  }
  graph.neighbors_.resize(2 * graph.edges_.size());
  std::vector<std::size_t> cursor(graph.offsets_.begin(), graph.offsets_.end() - 1);
  for (const CommEdge& e : graph.edges_) {
    graph.neighbors_[cursor[e.u]++] = {e.v, e.weight};
    graph.neighbors_[cursor[e.v]++] = {e.u, e.weight};
  }
  return graph;
}

CommGraph CommGraph::CliqueGroups(const std::vector<std::size_t>& group_of_vertex,
                                  double weight) {
  const std::size_t n = group_of_vertex.size();
  std::vector<CommEdge> edges;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (group_of_vertex[u] == group_of_vertex[v]) edges.push_back({u, v, weight});
    }
  }
  return FromEdges(n, std::move(edges));
}

std::string CommGraph::ToText() const {
  std::ostringstream out;
  out << "commgraph v1\n";
  out << "vertices " << vertex_count() << "\n";
  bool nontrivial_sizes = false;
  for (std::size_t size : sizes_) {
    if (size != 1) nontrivial_sizes = true;
  }
  if (nontrivial_sizes) {
    out << "sizes " << Join(sizes_, " ") << "\n";
  }
  for (const CommEdge& e : edges_) {
    out << "edge " << e.u << " " << e.v << " " << e.weight << "\n";
  }
  return out.str();
}

CommGraph CommGraph::FromText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || Trim(line) != "commgraph v1") {
    throw ConfigError("comm graph text must start with 'commgraph v1'");
  }
  std::size_t vertex_count = 0;
  bool have_vertices = false;
  std::vector<std::size_t> sizes;
  std::vector<CommEdge> edges;
  while (std::getline(in, line)) {
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream fields(trimmed);
    std::string tag;
    fields >> tag;
    if (tag == "vertices") {
      if (!(fields >> vertex_count)) throw ConfigError("malformed 'vertices' line");
      have_vertices = true;
    } else if (tag == "sizes") {
      std::size_t size = 0;
      while (fields >> size) sizes.push_back(size);
    } else if (tag == "edge") {
      CommEdge e;
      if (!(fields >> e.u >> e.v >> e.weight)) throw ConfigError("malformed 'edge' line");
      edges.push_back(e);
    } else {
      throw ConfigError("unknown comm graph line '" + tag + "'");
    }
  }
  if (!have_vertices) throw ConfigError("comm graph text missing 'vertices' line");
  if (sizes.empty()) sizes.assign(vertex_count, 1);
  return FromEdges(vertex_count, std::move(edges), std::move(sizes));
}

}  // namespace commsched::qual
