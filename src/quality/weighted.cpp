#include "quality/weighted.h"

#include "quality/quality.h"

namespace commsched::qual {

WeightMatrix::WeightMatrix(std::size_t n, double fill) : n_(n), values_(n * n, fill) {
  CS_CHECK(fill >= 0.0, "weights are non-negative");
  for (std::size_t i = 0; i < n; ++i) {
    values_[i * n + i] = 0.0;
  }
}

void WeightMatrix::Set(std::size_t i, std::size_t j, double weight) {
  CS_CHECK(i < n_ && j < n_, "weight index out of range");
  CS_CHECK(i != j || weight == 0.0, "diagonal weights must stay zero");
  CS_CHECK(weight >= 0.0, "weights are non-negative");
  values_[i * n_ + j] = weight;
  values_[j * n_ + i] = weight;
}

double WeightMatrix::TotalWeight() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      sum += values_[i * n_ + j];
    }
  }
  return sum;
}

void WeightMatrix::Normalize() {
  const double total = TotalWeight();
  CS_CHECK(total > 0.0, "cannot normalize an all-zero weight matrix");
  const double pairs = static_cast<double>(n_) * (n_ - 1) / 2.0;
  const double scale = pairs / total;
  for (double& v : values_) v *= scale;
}

namespace {

struct PairSums {
  double intra_wsq = 0.0;
  double intra_w = 0.0;
  double all_wsq = 0.0;
  double all_w = 0.0;
};

PairSums Accumulate(const DistanceTable& table, const WeightMatrix& weights,
                    const Partition& partition) {
  CS_CHECK(table.size() == weights.size(), "table / weights size mismatch");
  CS_CHECK(table.size() == partition.switch_count(), "table / partition size mismatch");
  PairSums sums;
  const std::size_t n = table.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double w = weights(i, j);
      const double wsq = w * table(i, j) * table(i, j);
      sums.all_w += w;
      sums.all_wsq += wsq;
      if (partition.ClusterOf(i) == partition.ClusterOf(j)) {
        sums.intra_w += w;
        sums.intra_wsq += wsq;
      }
    }
  }
  return sums;
}

}  // namespace

double WeightedGlobalSimilarity(const DistanceTable& table, const WeightMatrix& weights,
                                const Partition& partition) {
  const PairSums sums = Accumulate(table, weights, partition);
  CS_CHECK(sums.intra_w > 0.0, "no intracluster communication weight");
  CS_CHECK(sums.all_w > 0.0, "all-zero weight matrix");
  return (sums.intra_wsq / sums.intra_w) / (sums.all_wsq / sums.all_w);
}

double WeightedGlobalDissimilarity(const DistanceTable& table, const WeightMatrix& weights,
                                   const Partition& partition) {
  const PairSums sums = Accumulate(table, weights, partition);
  const double inter_w = sums.all_w - sums.intra_w;
  const double inter_wsq = sums.all_wsq - sums.intra_wsq;
  CS_CHECK(inter_w > 0.0, "no intercluster communication weight");
  CS_CHECK(sums.all_w > 0.0, "all-zero weight matrix");
  return (inter_wsq / inter_w) / (sums.all_wsq / sums.all_w);
}

double WeightedClusteringCoefficient(const DistanceTable& table, const WeightMatrix& weights,
                                     const Partition& partition) {
  const double fg = WeightedGlobalSimilarity(table, weights, partition);
  CS_CHECK(fg > 0.0, "degenerate weighted F_G");
  return WeightedGlobalDissimilarity(table, weights, partition) / fg;
}

double IntensityGlobalSimilarity(const DistanceTable& table, const Partition& partition,
                                 const std::vector<double>& cluster_intensity) {
  CS_CHECK(table.size() == partition.switch_count(), "table / partition size mismatch");
  CS_CHECK(cluster_intensity.size() == partition.cluster_count(),
           "one intensity per cluster required");
  double weighted_sum = 0.0;
  double weighted_pairs = 0.0;
  for (std::size_t c = 0; c < partition.cluster_count(); ++c) {
    CS_CHECK(cluster_intensity[c] >= 0.0, "intensities are non-negative");
    weighted_sum += cluster_intensity[c] * ClusterSimilarity(table, partition, c);
    const double size = static_cast<double>(partition.ClusterSize(c));
    weighted_pairs += cluster_intensity[c] * size * (size - 1) / 2.0;
  }
  CS_CHECK(weighted_pairs > 0.0, "no weighted intracluster pairs");
  return (weighted_sum / weighted_pairs) / table.MeanSquaredDistance();
}

IntensitySwapEvaluator::IntensitySwapEvaluator(const DistanceTable& table, Partition partition,
                                               std::vector<double> cluster_intensity)
    : table_(&table), partition_(std::move(partition)), intensity_(std::move(cluster_intensity)) {
  CS_CHECK(table.size() == partition_.switch_count(), "table / partition size mismatch");
  CS_CHECK(intensity_.size() == partition_.cluster_count(), "one intensity per cluster");
  for (std::size_t c = 0; c < intensity_.size(); ++c) {
    CS_CHECK(intensity_[c] >= 0.0, "intensities are non-negative");
    const double size = static_cast<double>(partition_.ClusterSize(c));
    weighted_pair_count_ += intensity_[c] * size * (size - 1) / 2.0;
  }
  CS_CHECK(weighted_pair_count_ > 0.0, "no weighted intracluster pairs");
  mean_sq_distance_ = table.MeanSquaredDistance();
  weighted_intra_sum_ = ComputeWeightedIntraSum();
}

double IntensitySwapEvaluator::ComputeWeightedIntraSum() const {
  double sum = 0.0;
  const std::size_t n = partition_.switch_count();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::size_t c = partition_.ClusterOf(i);
      if (c != partition_.ClusterOf(j)) continue;
      const double d = (*table_)(i, j);
      sum += intensity_[c] * d * d;
    }
  }
  return sum;
}

double IntensitySwapEvaluator::Fg() const {
  return (weighted_intra_sum_ / weighted_pair_count_) / mean_sq_distance_;
}

double IntensitySwapEvaluator::SwapDelta(std::size_t a, std::size_t b) const {
  const std::size_t n = partition_.switch_count();
  CS_CHECK(a < n && b < n, "switch out of range");
  const std::size_t ca = partition_.ClusterOf(a);
  const std::size_t cb = partition_.ClusterOf(b);
  CS_CHECK(ca != cb, "swap requires switches in different clusters");
  double delta = 0.0;
  for (std::size_t w = 0; w < n; ++w) {
    if (w == a || w == b) continue;
    const std::size_t cw = partition_.ClusterOf(w);
    const double daw = (*table_)(a, w);
    const double dbw = (*table_)(b, w);
    if (cw == ca) {
      delta += intensity_[ca] * (dbw * dbw - daw * daw);
    } else if (cw == cb) {
      delta += intensity_[cb] * (daw * daw - dbw * dbw);
    }
  }
  return delta;
}

double IntensitySwapEvaluator::FgAfterDelta(double delta) const {
  return ((weighted_intra_sum_ + delta) / weighted_pair_count_) / mean_sq_distance_;
}

void IntensitySwapEvaluator::ApplySwap(std::size_t a, std::size_t b) {
  const double delta = SwapDelta(a, b);
  partition_.Swap(a, b);
  weighted_intra_sum_ += delta;
}

WeightedSwapEvaluator::WeightedSwapEvaluator(const DistanceTable& table,
                                             const WeightMatrix& weights, Partition partition)
    : table_(&table), weights_(&weights), partition_(std::move(partition)) {
  CS_CHECK(table.size() == weights.size(), "table / weights size mismatch");
  CS_CHECK(table.size() == partition_.switch_count(), "table / partition size mismatch");
  CS_CHECK(partition_.cluster_count() >= 2, "evaluator needs at least two clusters");
  const std::size_t n = table.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double w = (*weights_)(i, j);
      all_w_ += w;
      all_wsq_ += w * table(i, j) * table(i, j);
    }
  }
  CS_CHECK(all_w_ > 0.0, "all-zero weight matrix");
  sums_ = ComputeSums();
}

WeightedSwapEvaluator::Sums WeightedSwapEvaluator::ComputeSums() const {
  Sums sums;
  const std::size_t n = partition_.switch_count();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (partition_.ClusterOf(i) != partition_.ClusterOf(j)) continue;
      const double w = (*weights_)(i, j);
      sums.intra_w += w;
      sums.intra_wsq += w * (*table_)(i, j) * (*table_)(i, j);
    }
  }
  return sums;
}

double WeightedSwapEvaluator::FgFromSums(const Sums& sums) const {
  CS_CHECK(sums.intra_w > 0.0, "no intracluster communication weight");
  return (sums.intra_wsq / sums.intra_w) / (all_wsq_ / all_w_);
}

double WeightedSwapEvaluator::Fg() const { return FgFromSums(sums_); }

double WeightedSwapEvaluator::Dg() const {
  const double inter_w = all_w_ - sums_.intra_w;
  const double inter_wsq = all_wsq_ - sums_.intra_wsq;
  CS_CHECK(inter_w > 0.0, "no intercluster communication weight");
  return (inter_wsq / inter_w) / (all_wsq_ / all_w_);
}

double WeightedSwapEvaluator::Cc() const {
  const double fg = Fg();
  CS_CHECK(fg > 0.0, "degenerate weighted F_G");
  return Dg() / fg;
}

WeightedSwapEvaluator::Sums WeightedSwapEvaluator::SwapDeltas(std::size_t a,
                                                              std::size_t b) const {
  const std::size_t n = partition_.switch_count();
  CS_CHECK(a < n && b < n, "switch out of range");
  const std::size_t ca = partition_.ClusterOf(a);
  const std::size_t cb = partition_.ClusterOf(b);
  CS_CHECK(ca != cb, "swap requires switches in different clusters");
  Sums delta;
  for (std::size_t w = 0; w < n; ++w) {
    if (w == a || w == b) continue;
    const std::size_t cw = partition_.ClusterOf(w);
    const double wa = (*weights_)(a, w);
    const double wb = (*weights_)(b, w);
    const double sqa = wa * (*table_)(a, w) * (*table_)(a, w);
    const double sqb = wb * (*table_)(b, w) * (*table_)(b, w);
    if (cw == ca) {
      // a's terms leave, b's enter (b replaces a in cluster ca).
      delta.intra_w += wb - wa;
      delta.intra_wsq += sqb - sqa;
    } else if (cw == cb) {
      delta.intra_w += wa - wb;
      delta.intra_wsq += sqa - sqb;
    }
  }
  return delta;
}

double WeightedSwapEvaluator::FgAfterSwap(std::size_t a, std::size_t b) const {
  const Sums delta = SwapDeltas(a, b);
  return FgFromSums({sums_.intra_wsq + delta.intra_wsq, sums_.intra_w + delta.intra_w});
}

void WeightedSwapEvaluator::ApplySwap(std::size_t a, std::size_t b) {
  const Sums delta = SwapDeltas(a, b);
  partition_.Swap(a, b);
  sums_.intra_wsq += delta.intra_wsq;
  sums_.intra_w += delta.intra_w;
}

void WeightedSwapEvaluator::Reset(Partition partition) {
  CS_CHECK(partition.switch_count() == table_->size(), "table / partition size mismatch");
  partition_ = std::move(partition);
  sums_ = ComputeSums();
}

}  // namespace commsched::qual
