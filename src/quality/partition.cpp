#include "quality/partition.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/check.h"

namespace commsched::qual {

Partition::Partition(std::vector<std::size_t> cluster_of_switch)
    : cluster_of_(std::move(cluster_of_switch)) {
  CS_CHECK(!cluster_of_.empty(), "partition needs at least one switch");
  const std::size_t m = *std::max_element(cluster_of_.begin(), cluster_of_.end()) + 1;
  sizes_.assign(m, 0);
  for (std::size_t c : cluster_of_) {
    ++sizes_[c];
  }
  for (std::size_t c = 0; c < m; ++c) {
    CS_CHECK(sizes_[c] > 0, "cluster ids must be contiguous; cluster ", c, " is empty");
  }
}

Partition Partition::FromClusters(const std::vector<std::vector<std::size_t>>& clusters) {
  CS_CHECK(!clusters.empty(), "need at least one cluster");
  std::size_t n = 0;
  for (const auto& cluster : clusters) n += cluster.size();
  std::vector<std::size_t> cluster_of(n, static_cast<std::size_t>(-1));
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    CS_CHECK(!clusters[c].empty(), "cluster ", c, " is empty");
    for (std::size_t s : clusters[c]) {
      CS_CHECK(s < n, "switch ", s, " out of range");
      CS_CHECK(cluster_of[s] == static_cast<std::size_t>(-1), "switch ", s,
               " appears in two clusters");
      cluster_of[s] = c;
    }
  }
  return Partition(std::move(cluster_of));
}

Partition Partition::Random(const std::vector<std::size_t>& cluster_sizes, Rng& rng) {
  CS_CHECK(!cluster_sizes.empty(), "need at least one cluster");
  const std::size_t n = std::accumulate(cluster_sizes.begin(), cluster_sizes.end(), std::size_t{0});
  CS_CHECK(n > 0, "empty partition");
  const std::vector<std::size_t> perm = RandomPermutation(n, rng);
  std::vector<std::size_t> cluster_of(n);
  std::size_t at = 0;
  for (std::size_t c = 0; c < cluster_sizes.size(); ++c) {
    CS_CHECK(cluster_sizes[c] > 0, "cluster sizes must be positive");
    for (std::size_t k = 0; k < cluster_sizes[c]; ++k) {
      cluster_of[perm[at++]] = c;
    }
  }
  return Partition(std::move(cluster_of));
}

Partition Partition::Blocked(const std::vector<std::size_t>& cluster_sizes) {
  const std::size_t n = std::accumulate(cluster_sizes.begin(), cluster_sizes.end(), std::size_t{0});
  std::vector<std::size_t> cluster_of(n);
  std::size_t at = 0;
  for (std::size_t c = 0; c < cluster_sizes.size(); ++c) {
    CS_CHECK(cluster_sizes[c] > 0, "cluster sizes must be positive");
    for (std::size_t k = 0; k < cluster_sizes[c]; ++k) {
      cluster_of[at++] = c;
    }
  }
  return Partition(std::move(cluster_of));
}

std::size_t Partition::ClusterOf(std::size_t s) const {
  CS_CHECK(s < cluster_of_.size(), "switch out of range");
  return cluster_of_[s];
}

std::size_t Partition::ClusterSize(std::size_t cluster) const {
  CS_CHECK(cluster < sizes_.size(), "cluster out of range");
  return sizes_[cluster];
}

std::vector<std::size_t> Partition::Members(std::size_t cluster) const {
  CS_CHECK(cluster < sizes_.size(), "cluster out of range");
  std::vector<std::size_t> members;
  members.reserve(sizes_[cluster]);
  for (std::size_t s = 0; s < cluster_of_.size(); ++s) {
    if (cluster_of_[s] == cluster) members.push_back(s);
  }
  return members;
}

void Partition::Move(std::size_t s, std::size_t cluster) {
  CS_CHECK(s < cluster_of_.size(), "switch out of range");
  CS_CHECK(cluster < sizes_.size(), "cluster out of range");
  const std::size_t old_cluster = cluster_of_[s];
  if (old_cluster == cluster) return;
  CS_CHECK(sizes_[old_cluster] > 1, "Move would empty cluster ", old_cluster);
  --sizes_[old_cluster];
  ++sizes_[cluster];
  cluster_of_[s] = cluster;
}

void Partition::Swap(std::size_t a, std::size_t b) {
  CS_CHECK(a < cluster_of_.size() && b < cluster_of_.size(), "switch out of range");
  std::swap(cluster_of_[a], cluster_of_[b]);
}

std::size_t Partition::IntraPairCount() const {
  std::size_t count = 0;
  for (std::size_t x : sizes_) {
    count += x * (x - 1) / 2;
  }
  return count;
}

std::size_t Partition::InterPairCountOrdered() const {
  const std::size_t n = cluster_of_.size();
  std::size_t count = 0;
  for (std::size_t x : sizes_) {
    count += x * (n - x);
  }
  return count;
}

std::string Partition::ToString() const {
  std::vector<std::vector<std::size_t>> clusters(sizes_.size());
  for (std::size_t s = 0; s < cluster_of_.size(); ++s) {
    clusters[cluster_of_[s]].push_back(s);
  }
  std::sort(clusters.begin(), clusters.end(),
            [](const auto& x, const auto& y) { return x.front() < y.front(); });
  std::ostringstream oss;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    if (c) oss << ' ';
    oss << '(';
    for (std::size_t k = 0; k < clusters[c].size(); ++k) {
      if (k) oss << ',';
      oss << clusters[c][k];
    }
    oss << ')';
  }
  return oss.str();
}

std::vector<std::size_t> Partition::CanonicalLabels() const {
  std::vector<std::size_t> relabel(sizes_.size(), static_cast<std::size_t>(-1));
  std::vector<std::size_t> labels(cluster_of_.size());
  std::size_t next = 0;
  for (std::size_t s = 0; s < cluster_of_.size(); ++s) {
    std::size_t& mapped = relabel[cluster_of_[s]];
    if (mapped == static_cast<std::size_t>(-1)) {
      mapped = next++;
    }
    labels[s] = mapped;
  }
  return labels;
}

bool Partition::SameGrouping(const Partition& other) const {
  return cluster_of_.size() == other.cluster_of_.size() &&
         CanonicalLabels() == other.CanonicalLabels();
}

}  // namespace commsched::qual
