// The paper's quality functions (§4.1, eqs. 1-5).
//
//   F_Ai (eq. 1): quadratic sum of intracluster equivalent distances.
//   F_G  (eq. 2): mean squared intracluster distance, normalized by the
//                 network-wide mean squared distance. F_G ≈ 1 for a random
//                 mapping; F_G → 0 for tightly packed clusters.
//   D_Ai (eq. 4): quadratic sum of distances from a cluster to all others.
//   D_G  (eq. 5): mean squared intercluster distance, same normalization.
//   C_c = D_G / F_G: the clustering coefficient — the intracluster /
//                 intercluster bandwidth relationship the scheduler maximizes.
#pragma once

#include "distance/distance_table.h"
#include "quality/partition.h"

namespace commsched::qual {

using dist::DistanceTable;

/// Eq. (1): F_Ai for one cluster.
[[nodiscard]] double ClusterSimilarity(const DistanceTable& table, const Partition& partition,
                                       std::size_t cluster);

/// Eq. (4): D_Ai for one cluster.
[[nodiscard]] double ClusterDissimilarity(const DistanceTable& table, const Partition& partition,
                                          std::size_t cluster);

/// Eq. (2): F_G. Requires at least one cluster with >= 2 switches.
[[nodiscard]] double GlobalSimilarity(const DistanceTable& table, const Partition& partition);

/// Eq. (5): D_G. Requires at least two clusters.
[[nodiscard]] double GlobalDissimilarity(const DistanceTable& table, const Partition& partition);

/// C_c = D_G / F_G.
[[nodiscard]] double ClusteringCoefficient(const DistanceTable& table, const Partition& partition);

/// Incremental evaluator for swap-based search. Maintains the intracluster
/// quadratic sum so that evaluating a candidate swap is O(cluster size) and
/// the full F_G / D_G / C_c are O(1) after construction.
///
/// The key identity: the ordered intercluster sum equals
///   2 * (sum over all pairs - intracluster sum),
/// so D_G is derivable from the same running intracluster sum as F_G.
class SwapEvaluator {
 public:
  /// Both `table` and an initial partition; the table must outlive this.
  SwapEvaluator(const DistanceTable& table, Partition partition);

  [[nodiscard]] const Partition& partition() const { return partition_; }
  [[nodiscard]] const DistanceTable& table() const { return *table_; }

  /// Current intracluster quadratic sum (sum of F_Ai).
  [[nodiscard]] double IntraSum() const { return intra_sum_; }

  [[nodiscard]] double Fg() const;
  [[nodiscard]] double Dg() const;
  [[nodiscard]] double Cc() const;

  /// Change of the intracluster sum if switches a and b (in different
  /// clusters) were exchanged. F_G scales by the same constant, so ordering
  /// moves by delta orders them by F_G. Requires different clusters.
  [[nodiscard]] double SwapDelta(std::size_t a, std::size_t b) const;

  /// Applies the swap and updates the running sum in O(N).
  void ApplySwap(std::size_t a, std::size_t b);

  /// Replaces the partition (full O(N^2) recompute).
  void Reset(Partition partition);

  /// F_G that would result from applying delta to the current intra sum.
  [[nodiscard]] double FgAfterDelta(double delta) const;

 private:
  [[nodiscard]] double ComputeIntraSum() const;

  const DistanceTable* table_;
  Partition partition_;
  double intra_sum_ = 0.0;
  double sum_all_pairs_sq_ = 0.0;   // sum_{i<j} T_ij^2
  double mean_sq_distance_ = 0.0;   // normalizer of eqs. (2)/(5)
};

}  // namespace commsched::qual
