#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace commsched {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  CS_CHECK(!header_.empty(), "table needs at least one column");
}

void TextTable::AddRow(std::vector<TableCell> row) {
  CS_CHECK(row.size() == header_.size(), "row width ", row.size(), " != header width ",
           header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::set_precision(int digits) {
  CS_CHECK(digits >= 0 && digits <= 17, "precision out of range");
  precision_ = digits;
}

std::string TextTable::CellText(const TableCell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) {
    return *s;
  }
  if (const auto* i = std::get_if<long long>(&cell)) {
    return std::to_string(*i);
  }
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  return oss.str();
}

std::string TextTable::ToText() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(CellText(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      oss << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    oss << " |\n";
  };
  emit_row(header_);
  oss << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    oss << std::string(widths[c] + 2, '-') << '|';
  }
  oss << '\n';
  for (const auto& cells : rendered) {
    emit_row(cells);
  }
  return oss.str();
}

std::string TextTable::ToCsv() const {
  auto escape = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) {
      return field;
    }
    std::string out = "\"";
    for (char ch : field) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream oss;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    oss << (c ? "," : "") << escape(header_[c]);
  }
  oss << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << (c ? "," : "") << escape(CellText(row[c]));
    }
    oss << '\n';
  }
  return oss.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.ToText();
}

}  // namespace commsched
