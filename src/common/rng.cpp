#include "common/rng.h"

#include <numeric>

namespace commsched {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
  // All-zero state is the one invalid xoshiro state; splitmix64 cannot emit
  // four zeros in a row from any seed, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextIndex(std::uint64_t bound) {
  CS_CHECK(bound > 0, "NextIndex bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) mod bound
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  CS_CHECK(lo <= hi, "NextInt requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  return lo + static_cast<std::int64_t>(NextIndex(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Split() {
  std::uint64_t child_seed = (*this)();
  return Rng(child_seed);
}

std::vector<std::size_t> RandomPermutation(std::size_t n, Rng& rng) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  rng.Shuffle(perm);
  return perm;
}

}  // namespace commsched
