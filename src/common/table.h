// Plain-text and CSV tabular output used by the bench harnesses so that
// every reproduced figure/table prints in a uniform, machine-parseable way.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace commsched {

/// A cell is a string, an integer, or a double (printed with fixed precision).
using TableCell = std::variant<std::string, long long, double>;

/// Row-major table with a header; renders aligned text or CSV.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must match the header width.
  void AddRow(std::vector<TableCell> row);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Digits after the decimal point for double cells (default 4).
  void set_precision(int digits);

  /// Renders an aligned, pipe-separated table.
  [[nodiscard]] std::string ToText() const;

  /// Renders RFC-4180-ish CSV (quotes fields containing comma/quote/newline).
  [[nodiscard]] std::string ToCsv() const;

  /// Writes ToText() to the stream.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& table);

 private:
  [[nodiscard]] std::string CellText(const TableCell& cell) const;

  std::vector<std::string> header_;
  std::vector<std::vector<TableCell>> rows_;
  int precision_ = 4;
};

}  // namespace commsched
