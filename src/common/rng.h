// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component in commsched (topology generation, traffic
// injection, heuristic search seeds) takes an explicit 64-bit seed so that
// experiments are exactly reproducible.  Rng is xoshiro256** seeded through
// splitmix64; Rng::Split() derives an independent stream, which lets
// parallel sweeps give results that do not depend on thread scheduling.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace commsched {

/// splitmix64 step; used for seeding and for deriving child seeds.
[[nodiscard]] std::uint64_t SplitMix64(std::uint64_t& state);

/// xoshiro256** generator with helpers for the distributions commsched needs.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64-bit output (UniformRandomBitGenerator interface).
  [[nodiscard]] std::uint64_t operator()();

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased (rejection).
  [[nodiscard]] std::uint64_t NextIndex(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double NextDouble();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  [[nodiscard]] bool NextBool(double p);

  /// Derives an independent child generator; advances this generator.
  [[nodiscard]] Rng Split();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextIndex(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  [[nodiscard]] const T& Pick(const std::vector<T>& v) {
    CS_CHECK(!v.empty(), "Pick from empty vector");
    return v[static_cast<std::size_t>(NextIndex(v.size()))];
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

/// A random permutation of 0..n-1.
[[nodiscard]] std::vector<std::size_t> RandomPermutation(std::size_t n, Rng& rng);

}  // namespace commsched
