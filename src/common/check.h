// Lightweight runtime-contract checking used across commsched.
//
// CS_CHECK(cond, msg...)   - always-on invariant check; throws ContractError.
// CS_DCHECK(cond, msg...)  - debug-only (compiled out in NDEBUG builds).
// CS_UNREACHABLE(msg)      - marks impossible control flow.
//
// Exceptions (rather than abort) keep the library embeddable: a scheduler
// driving a long simulation campaign can catch a misconfigured experiment
// without taking the process down.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace commsched {

/// Error thrown when a CS_CHECK contract is violated.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

/// Error thrown for invalid user-supplied configuration.
class ConfigError : public std::invalid_argument {
 public:
  explicit ConfigError(const std::string& what) : std::invalid_argument(what) {}
};

namespace detail {

[[noreturn]] void ThrowContractError(std::string_view expr, std::string_view file, int line,
                                     const std::string& message);

// Builds the optional message from streamable arguments.
template <typename... Args>
std::string BuildMessage(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

}  // namespace detail
}  // namespace commsched

#define CS_CHECK(cond, ...)                                                       \
  do {                                                                            \
    if (!(cond)) {                                                                \
      ::commsched::detail::ThrowContractError(#cond, __FILE__, __LINE__,          \
                                              ::commsched::detail::BuildMessage(__VA_ARGS__)); \
    }                                                                             \
  } while (false)

#ifdef NDEBUG
#define CS_DCHECK(cond, ...) \
  do {                       \
  } while (false)
#else
#define CS_DCHECK(cond, ...) CS_CHECK(cond, __VA_ARGS__)
#endif

#define CS_UNREACHABLE(msg)                                                      \
  ::commsched::detail::ThrowContractError("unreachable", __FILE__, __LINE__, msg)
