// Small string helpers shared by serializers and bench harness output.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace commsched {

/// Joins elements with a separator using operator<< rendering.
template <typename Range>
[[nodiscard]] std::string Join(const Range& range, std::string_view sep) {
  std::ostringstream oss;
  bool first = true;
  for (const auto& item : range) {
    if (!first) oss << sep;
    first = false;
    oss << item;
  }
  return oss.str();
}

/// Splits on a single-character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> Split(std::string_view text, char delim);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string Trim(std::string_view text);

/// True if `text` begins with `prefix`.
[[nodiscard]] bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace commsched
