// A small fixed-size thread pool and parallel_for used for embarrassingly
// parallel sweeps: multi-seed heuristic searches and (mapping × load)
// simulation campaigns.
//
// Design notes (per HPC guidance): parallelism is explicit; tasks must not
// share mutable state, and every stochastic task derives its own RNG stream
// before submission so results are independent of the worker count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace commsched {

/// Fixed-size pool of worker threads executing void() tasks FIFO.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  /// Enqueues a task. Must not be called after destruction has begun.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Rethrows the first
  /// exception any task threw (subsequent ones are dropped).
  void Wait();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool shutting_down_ = false;
};

/// Runs body(i) for i in [0, n) across the pool; blocks until complete.
/// Indices are dealt in contiguous blocks for locality. Exceptions from the
/// body are rethrown (first one wins).
void ParallelFor(ThreadPool& pool, std::size_t n, const std::function<void(std::size_t)>& body);

/// Convenience: runs body(i) on a transient pool sized for the machine.
/// For n <= 1 (or single-core machines) runs inline.
void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace commsched
