#include "common/strings.h"

#include <cctype>

namespace commsched {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

}  // namespace commsched
