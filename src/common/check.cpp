#include "common/check.h"

namespace commsched::detail {

void ThrowContractError(std::string_view expr, std::string_view file, int line,
                        const std::string& message) {
  std::ostringstream oss;
  oss << "contract violation: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  throw ContractError(oss.str());
}

}  // namespace commsched::detail
