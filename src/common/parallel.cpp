#include "common/parallel.h"

#include <algorithm>
#include <atomic>

namespace commsched {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    CS_CHECK(!shutting_down_, "Submit after ThreadPool shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::unique_lock lock(mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    {
      std::unique_lock lock(mutex_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ParallelFor(ThreadPool& pool, std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t workers = pool.thread_count();
  const std::size_t blocks = std::min(n, workers * 4);  // a little oversubscription
  const std::size_t block_size = (n + blocks - 1) / blocks;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * block_size;
    const std::size_t hi = std::min(n, lo + block_size);
    if (lo >= hi) break;
    pool.Submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) {
        body(i);
      }
    });
  }
  pool.Wait();
}

void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n <= 1 || std::thread::hardware_concurrency() <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(std::min<std::size_t>(n, std::thread::hardware_concurrency()));
  ParallelFor(pool, n, body);
}

}  // namespace commsched
