// Routing abstraction shared by the distance model and the simulator.
//
// A message carries a routing phase: up*/down* routing (Autonet, [21]) allows
// zero or more "up" traversals followed by zero or more "down" traversals.
// Routing functions that have no phase restriction simply keep every message
// in the Up phase.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "topology/graph.h"

namespace commsched::route {

using topo::LinkId;
using topo::SwitchGraph;
using topo::SwitchId;

/// Routing phase of an in-flight message.
enum class Phase : std::uint8_t {
  kUp = 0,   // may still climb toward the root
  kDown = 1  // committed to descending
};

/// A candidate next traversal for a message.
struct NextHop {
  LinkId link = 0;     // physical link to traverse
  SwitchId next = 0;   // switch at the far end
  Phase phase = Phase::kUp;  // message phase after the traversal

  friend bool operator==(const NextHop&, const NextHop&) = default;
};

/// Interface implemented by every routing function.
///
/// All paths "supplied by the routing algorithm" between s and t are the
/// minimal-length paths that the function permits; LinksOnMinimalPaths
/// returns the union of links appearing on any of them, which is exactly the
/// resistor network of the equivalent-distance model (§3).
class Routing {
 public:
  virtual ~Routing() = default;

  /// The topology this routing function was built for.
  [[nodiscard]] virtual const SwitchGraph& graph() const = 0;

  /// Length (hops) of a minimal permitted path from s to t; 0 when s == t.
  [[nodiscard]] virtual std::size_t MinimalDistance(SwitchId s, SwitchId t) const = 0;

  /// Union of links on every minimal permitted path from s to t (sorted,
  /// deduplicated). Empty when s == t.
  [[nodiscard]] virtual std::vector<LinkId> LinksOnMinimalPaths(SwitchId s, SwitchId t) const = 0;

  /// Candidate next traversals for a message at `current` heading to `dest`
  /// in phase `phase`, restricted to minimal remaining paths. Sorted by link
  /// id (so "deterministic" routing = take the first). Empty when
  /// current == dest, or when no permitted path exists from this phase
  /// (possible only for states no real message ever reaches; probed by the
  /// deadlock analyzer).
  [[nodiscard]] virtual std::vector<NextHop> NextHops(SwitchId current, SwitchId dest,
                                                      Phase phase) const = 0;

  /// Phase a message is in right after traversing `link` into `into`.
  /// Phase-free routing functions return kUp.
  [[nodiscard]] virtual Phase ArrivalPhase(LinkId link, SwitchId into) const = 0;

  /// Human-readable name for reports.
  [[nodiscard]] virtual std::string Name() const = 0;
};

/// Enumerates every minimal permitted path from s to t (as switch sequences).
/// Exponential in the worst case; intended for tests and small networks.
[[nodiscard]] std::vector<std::vector<SwitchId>> EnumerateMinimalPaths(const Routing& routing,
                                                                       SwitchId s, SwitchId t,
                                                                       std::size_t limit = 100000);

}  // namespace commsched::route
