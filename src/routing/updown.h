// Up*/down* routing (Autonet [21]).
//
// A BFS spanning tree is built from a root switch; every link gets an "up"
// end (the end closer to the root, ties broken by lower switch id — the
// standard Autonet ordering). A legal path is zero or more up traversals
// followed by zero or more down traversals; this breaks every cycle in the
// channel dependency graph, making the routing deadlock-free on a single
// virtual channel. The routing function supplies the *minimal-length legal*
// paths, mirroring the paper's setting where some minimal physical paths are
// forbidden and traffic concentrates near the root.
#pragma once

#include <string>
#include <vector>

#include "routing/routing.h"

namespace commsched::route {

/// Thrown when up*/down* routing is asked to cover a disconnected graph.
/// Names the switches unreachable from the chosen root so fault-handling
/// callers can report (or evict) exactly the stranded part of the network.
class DisconnectedGraphError : public commsched::ConfigError {
 public:
  DisconnectedGraphError(const std::string& what, std::vector<SwitchId> unreachable)
      : ConfigError(what), unreachable_(std::move(unreachable)) {}

  [[nodiscard]] const std::vector<SwitchId>& unreachable_switches() const {
    return unreachable_;
  }

 private:
  std::vector<SwitchId> unreachable_;
};

/// How the spanning-tree root is chosen.
enum class RootPolicy {
  kLowestId,         // switch 0
  kMaxDegree,        // highest inter-switch degree, ties to lower id
  kMinEccentricity,  // most central switch, ties to lower id
};

/// The complete precomputed state of an UpDownRouting, detached from any
/// graph: the spanning-tree root, per-switch BFS levels, per-link up ends,
/// and the per-destination legal-hop distance tables. Exported so the
/// service's artifact store can persist a routing to disk and restore it on
/// a later boot without re-running any BFS (DESIGN.md §14).
struct UpDownState {
  SwitchId root = 0;
  std::vector<std::size_t> level;                      // per switch
  std::vector<SwitchId> up_end;                        // per link
  std::vector<std::vector<std::size_t>> dist_to_dest;  // [dest][switch*2+phase]
};

class UpDownRouting final : public Routing {
 public:
  /// Builds the routing function; the graph must stay alive and unchanged
  /// for the lifetime of this object. Requires a connected graph; a
  /// disconnected one raises DisconnectedGraphError naming the stranded
  /// switches.
  UpDownRouting(const SwitchGraph& graph, RootPolicy policy = RootPolicy::kMaxDegree);

  /// Explicit root override.
  UpDownRouting(const SwitchGraph& graph, SwitchId root);

  /// Restores a routing from previously exported state instead of running
  /// the BFS passes — the warm-boot path. Throws ConfigError when the state
  /// shape does not match the graph (wrong switch/link counts).
  UpDownRouting(const SwitchGraph& graph, UpDownState state);

  [[nodiscard]] const SwitchGraph& graph() const override { return *graph_; }
  [[nodiscard]] std::size_t MinimalDistance(SwitchId s, SwitchId t) const override;
  [[nodiscard]] std::vector<LinkId> LinksOnMinimalPaths(SwitchId s, SwitchId t) const override;
  [[nodiscard]] std::vector<NextHop> NextHops(SwitchId current, SwitchId dest,
                                              Phase phase) const override;
  [[nodiscard]] Phase ArrivalPhase(LinkId link, SwitchId into) const override;
  [[nodiscard]] std::string Name() const override { return "up*/down*"; }

  [[nodiscard]] SwitchId root() const { return root_; }

  /// Copies out the full precomputed state (see UpDownState).
  [[nodiscard]] UpDownState ExportState() const;

  /// The "up" end of a link (closer to the root / lower id on ties).
  [[nodiscard]] SwitchId UpEnd(LinkId link) const;

  /// True if traversing `link` out of switch `from` moves up (toward root).
  [[nodiscard]] bool IsUpTraversal(LinkId link, SwitchId from) const;

  /// BFS level of a switch in the spanning tree (root = 0).
  [[nodiscard]] std::size_t Level(SwitchId s) const;

 private:
  void Build();

  // State index in the doubled (switch, phase) graph.
  [[nodiscard]] std::size_t StateIndex(SwitchId s, Phase p) const {
    return s * 2 + static_cast<std::size_t>(p);
  }

  const SwitchGraph* graph_;
  SwitchId root_;
  std::vector<std::size_t> level_;      // BFS level from root
  std::vector<SwitchId> up_end_;        // per link
  // dist_to_dest_[t][state]: minimal legal hops from (switch,phase) to t;
  // SIZE_MAX when t is unreachable in that phase (descent-only dead ends).
  std::vector<std::vector<std::size_t>> dist_to_dest_;
};

/// Picks the root for a graph under a policy (exposed for tests/reports).
[[nodiscard]] SwitchId SelectRoot(const SwitchGraph& graph, RootPolicy policy);

}  // namespace commsched::route
