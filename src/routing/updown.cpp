#include "routing/updown.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace commsched::route {

namespace {
constexpr std::size_t kUnreachable = std::numeric_limits<std::size_t>::max();

// Throws DisconnectedGraphError when some switch cannot be reached from
// `source`, listing the stranded switch ids in the message.
void RequireConnectedFrom(const SwitchGraph& graph, SwitchId source) {
  const auto dist = graph.BfsDistances(source);
  std::vector<SwitchId> unreachable;
  for (SwitchId s = 0; s < dist.size(); ++s) {
    if (dist[s] == kUnreachable) unreachable.push_back(s);
  }
  if (unreachable.empty()) return;
  std::string names;
  for (std::size_t k = 0; k < unreachable.size(); ++k) {
    if (k > 0) names += ", ";
    names += std::to_string(unreachable[k]);
  }
  throw DisconnectedGraphError(
      "up*/down* requires a connected graph: switches {" + names +
          "} are unreachable from switch " + std::to_string(source),
      std::move(unreachable));
}

}  // namespace

SwitchId SelectRoot(const SwitchGraph& graph, RootPolicy policy) {
  const std::size_t n = graph.switch_count();
  switch (policy) {
    case RootPolicy::kLowestId:
      return 0;
    case RootPolicy::kMaxDegree: {
      SwitchId best = 0;
      for (SwitchId s = 1; s < n; ++s) {
        if (graph.Degree(s) > graph.Degree(best)) best = s;
      }
      return best;
    }
    case RootPolicy::kMinEccentricity: {
      SwitchId best = 0;
      std::size_t best_ecc = kUnreachable;
      RequireConnectedFrom(graph, 0);
      for (SwitchId s = 0; s < n; ++s) {
        const auto dist = graph.BfsDistances(s);
        std::size_t ecc = 0;
        for (std::size_t d : dist) ecc = std::max(ecc, d);
        if (ecc < best_ecc) {
          best_ecc = ecc;
          best = s;
        }
      }
      return best;
    }
  }
  CS_UNREACHABLE("unknown root policy");
}

UpDownRouting::UpDownRouting(const SwitchGraph& graph, RootPolicy policy)
    : UpDownRouting(graph, SelectRoot(graph, policy)) {}

UpDownRouting::UpDownRouting(const SwitchGraph& graph, SwitchId root)
    : graph_(&graph), root_(root) {
  CS_CHECK(root < graph.switch_count(), "root out of range");
  RequireConnectedFrom(graph, root);
  Build();
}

UpDownRouting::UpDownRouting(const SwitchGraph& graph, UpDownState state)
    : graph_(&graph), root_(state.root) {
  const std::size_t n = graph.switch_count();
  if (state.root >= n || state.level.size() != n || state.up_end.size() != graph.link_count() ||
      state.dist_to_dest.size() != n) {
    throw ConfigError("up*/down* state does not match the graph shape");
  }
  for (const auto& dist : state.dist_to_dest) {
    if (dist.size() != 2 * n) {
      throw ConfigError("up*/down* state does not match the graph shape");
    }
  }
  level_ = std::move(state.level);
  up_end_ = std::move(state.up_end);
  dist_to_dest_ = std::move(state.dist_to_dest);
}

UpDownState UpDownRouting::ExportState() const {
  UpDownState state;
  state.root = root_;
  state.level = level_;
  state.up_end = up_end_;
  state.dist_to_dest = dist_to_dest_;
  return state;
}

void UpDownRouting::Build() {
  const SwitchGraph& g = *graph_;
  const std::size_t n = g.switch_count();

  level_ = g.BfsDistances(root_);

  // Orient every link: the up end is the endpoint with the smaller BFS
  // level; ties break toward the lower switch id (Autonet ordering).
  up_end_.resize(g.link_count());
  for (LinkId l = 0; l < g.link_count(); ++l) {
    const topo::Link& link = g.link(l);
    const bool a_up = (level_[link.a] != level_[link.b]) ? level_[link.a] < level_[link.b]
                                                         : link.a < link.b;
    up_end_[l] = a_up ? link.a : link.b;
  }

  // Backward BFS per destination over the doubled state graph. A reversed
  // transition into state (u,p) enumerates the forward moves out of (u,p):
  //   (u,kUp)  --up-->   (v,kUp)
  //   (u,kUp)  --down--> (v,kDown)
  //   (u,kDown)--down--> (v,kDown)
  // so dist_to_dest_[t][(u,p)] = 1 + min over forward moves.
  dist_to_dest_.assign(n, {});
  for (SwitchId t = 0; t < n; ++t) {
    auto& dist = dist_to_dest_[t];
    dist.assign(2 * n, kUnreachable);
    std::deque<std::size_t> queue;
    for (Phase p : {Phase::kUp, Phase::kDown}) {
      dist[StateIndex(t, p)] = 0;
      queue.push_back(StateIndex(t, p));
    }
    while (!queue.empty()) {
      const std::size_t state = queue.front();
      queue.pop_front();
      const SwitchId v = state / 2;
      const Phase pv = static_cast<Phase>(state % 2);
      // Find predecessor states (u, pu) with a forward move into (v, pv).
      for (LinkId l : g.incident_links(v)) {
        const SwitchId u = g.OtherEnd(l, v);
        const bool into_v_is_up = (up_end_[l] == v);  // traversal u->v
        if (into_v_is_up) {
          // u->v is an up traversal: only allowed from (u,kUp) into (v,kUp).
          if (pv == Phase::kUp) {
            const std::size_t prev = StateIndex(u, Phase::kUp);
            if (dist[prev] == kUnreachable) {
              dist[prev] = dist[state] + 1;
              queue.push_back(prev);
            }
          }
        } else {
          // u->v is a down traversal: allowed from (u,kUp) and (u,kDown),
          // both arriving in (v,kDown).
          if (pv == Phase::kDown) {
            for (Phase pu : {Phase::kUp, Phase::kDown}) {
              const std::size_t prev = StateIndex(u, pu);
              if (dist[prev] == kUnreachable) {
                dist[prev] = dist[state] + 1;
                queue.push_back(prev);
              }
            }
          }
        }
      }
    }
    CS_CHECK(dist[StateIndex(t == 0 ? (n > 1 ? 1 : 0) : 0, Phase::kUp)] != kUnreachable,
             "up*/down* must connect every pair on a connected graph");
  }
}

std::size_t UpDownRouting::MinimalDistance(SwitchId s, SwitchId t) const {
  CS_CHECK(s < graph_->switch_count() && t < graph_->switch_count(), "switch out of range");
  const std::size_t d = dist_to_dest_[t][StateIndex(s, Phase::kUp)];
  CS_CHECK(d != kUnreachable, "unreachable destination");
  return d;
}

std::vector<NextHop> UpDownRouting::NextHops(SwitchId current, SwitchId dest, Phase phase) const {
  CS_CHECK(current < graph_->switch_count() && dest < graph_->switch_count(),
           "switch out of range");
  std::vector<NextHop> hops;
  if (current == dest) return hops;
  const auto& dist = dist_to_dest_[dest];
  const std::size_t here = dist[StateIndex(current, phase)];
  if (here == kUnreachable) {
    // A message already descending may be unable to reach `dest` at all;
    // such states never occur for real messages (the simulator only follows
    // offered hops) but are probed by the deadlock analyzer.
    return hops;
  }
  for (LinkId l : graph_->incident_links(current)) {
    const SwitchId v = graph_->OtherEnd(l, current);
    const bool up_traversal = (up_end_[l] == v);
    if (up_traversal && phase == Phase::kDown) continue;  // illegal: up after down
    const Phase next_phase = up_traversal ? Phase::kUp : Phase::kDown;
    const std::size_t there = dist[StateIndex(v, next_phase)];
    if (there != kUnreachable && there + 1 == here) {
      hops.push_back({l, v, next_phase});
    }
  }
  std::sort(hops.begin(), hops.end(),
            [](const NextHop& x, const NextHop& y) { return x.link < y.link; });
  CS_CHECK(!hops.empty(), "minimal legal path must have a next hop");
  return hops;
}

std::vector<LinkId> UpDownRouting::LinksOnMinimalPaths(SwitchId s, SwitchId t) const {
  CS_CHECK(s < graph_->switch_count() && t < graph_->switch_count(), "switch out of range");
  std::vector<LinkId> result;
  if (s == t) return result;
  const SwitchGraph& g = *graph_;
  const std::size_t n = g.switch_count();
  const auto& dist_b = dist_to_dest_[t];

  // Forward distances from (s, kUp).
  std::vector<std::size_t> dist_f(2 * n, kUnreachable);
  std::deque<std::size_t> queue;
  dist_f[StateIndex(s, Phase::kUp)] = 0;
  queue.push_back(StateIndex(s, Phase::kUp));
  while (!queue.empty()) {
    const std::size_t state = queue.front();
    queue.pop_front();
    const SwitchId u = state / 2;
    const Phase pu = static_cast<Phase>(state % 2);
    for (LinkId l : g.incident_links(u)) {
      const SwitchId v = g.OtherEnd(l, u);
      const bool up_traversal = (up_end_[l] == v);
      if (up_traversal && pu == Phase::kDown) continue;
      const Phase pv = up_traversal ? Phase::kUp : Phase::kDown;
      const std::size_t nxt = StateIndex(v, pv);
      if (dist_f[nxt] == kUnreachable) {
        dist_f[nxt] = dist_f[state] + 1;
        queue.push_back(nxt);
      }
    }
  }

  const std::size_t total = dist_b[StateIndex(s, Phase::kUp)];
  CS_CHECK(total != kUnreachable, "unreachable destination");

  // A transition (u,pu) -> (v,pv) over link l lies on a minimal legal path
  // iff dist_f(u,pu) + 1 + dist_b(v,pv) == total.
  std::vector<bool> on_path(g.link_count(), false);
  for (SwitchId u = 0; u < n; ++u) {
    for (Phase pu : {Phase::kUp, Phase::kDown}) {
      const std::size_t df = dist_f[StateIndex(u, pu)];
      if (df == kUnreachable) continue;
      for (LinkId l : g.incident_links(u)) {
        const SwitchId v = g.OtherEnd(l, u);
        const bool up_traversal = (up_end_[l] == v);
        if (up_traversal && pu == Phase::kDown) continue;
        const Phase pv = up_traversal ? Phase::kUp : Phase::kDown;
        const std::size_t db = dist_b[StateIndex(v, pv)];
        if (db != kUnreachable && df + 1 + db == total) {
          on_path[l] = true;
        }
      }
    }
  }
  for (LinkId l = 0; l < g.link_count(); ++l) {
    if (on_path[l]) result.push_back(l);
  }
  return result;
}

Phase UpDownRouting::ArrivalPhase(LinkId link, SwitchId into) const {
  CS_CHECK(link < graph_->link_count(), "link out of range");
  return up_end_[link] == into ? Phase::kUp : Phase::kDown;
}

SwitchId UpDownRouting::UpEnd(LinkId link) const {
  CS_CHECK(link < graph_->link_count(), "link out of range");
  return up_end_[link];
}

bool UpDownRouting::IsUpTraversal(LinkId link, SwitchId from) const {
  return graph_->OtherEnd(link, from) == UpEnd(link);
}

std::size_t UpDownRouting::Level(SwitchId s) const {
  CS_CHECK(s < level_.size(), "switch out of range");
  return level_[s];
}

}  // namespace commsched::route
