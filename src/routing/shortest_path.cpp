#include "routing/shortest_path.h"

#include <algorithm>
#include <limits>

namespace commsched::route {

namespace {
constexpr std::size_t kUnreachable = std::numeric_limits<std::size_t>::max();
}  // namespace

ShortestPathRouting::ShortestPathRouting(const SwitchGraph& graph) : graph_(&graph) {
  CS_CHECK(graph.IsConnected(), "routing requires a connected graph");
  dist_.reserve(graph.switch_count());
  for (SwitchId t = 0; t < graph.switch_count(); ++t) {
    dist_.push_back(graph.BfsDistances(t));
  }
}

std::size_t ShortestPathRouting::MinimalDistance(SwitchId s, SwitchId t) const {
  CS_CHECK(s < graph_->switch_count() && t < graph_->switch_count(), "switch out of range");
  return dist_[t][s];
}

std::vector<NextHop> ShortestPathRouting::NextHops(SwitchId current, SwitchId dest,
                                                   Phase /*phase*/) const {
  CS_CHECK(current < graph_->switch_count() && dest < graph_->switch_count(),
           "switch out of range");
  std::vector<NextHop> hops;
  if (current == dest) return hops;
  const auto& dist = dist_[dest];
  for (LinkId l : graph_->incident_links(current)) {
    const SwitchId v = graph_->OtherEnd(l, current);
    if (dist[v] + 1 == dist[current]) {
      hops.push_back({l, v, Phase::kUp});
    }
  }
  std::sort(hops.begin(), hops.end(),
            [](const NextHop& x, const NextHop& y) { return x.link < y.link; });
  CS_CHECK(!hops.empty(), "connected graph must yield a next hop");
  return hops;
}

std::vector<LinkId> ShortestPathRouting::LinksOnMinimalPaths(SwitchId s, SwitchId t) const {
  std::vector<LinkId> result;
  if (s == t) return result;
  const auto& dist_b = dist_[t];
  const auto& dist_f = dist_[s];  // symmetric BFS distances
  const std::size_t total = dist_b[s];
  CS_CHECK(total != kUnreachable, "unreachable destination");
  for (LinkId l = 0; l < graph_->link_count(); ++l) {
    const topo::Link& link = graph_->link(l);
    const bool forward = dist_f[link.a] + 1 + dist_b[link.b] == total;
    const bool backward = dist_f[link.b] + 1 + dist_b[link.a] == total;
    if (forward || backward) {
      result.push_back(l);
    }
  }
  return result;
}

Phase ShortestPathRouting::ArrivalPhase(LinkId /*link*/, SwitchId /*into*/) const {
  return Phase::kUp;
}

}  // namespace commsched::route
