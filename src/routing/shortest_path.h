// Unrestricted minimal-path routing: every physical shortest path is
// permitted. Used for regular topologies (where dimension-ordered or other
// deadlock-free schedules exist) and as the ablation contrast for the
// up*/down* restriction. Note: on topologies with cycles this routing is
// NOT deadlock-free on a single virtual channel — the deadlock checker in
// routing/deadlock.h demonstrates this.
#pragma once

#include "routing/routing.h"

namespace commsched::route {

class ShortestPathRouting final : public Routing {
 public:
  /// Builds all-pairs BFS tables; the graph must stay alive and unchanged.
  explicit ShortestPathRouting(const SwitchGraph& graph);

  [[nodiscard]] const SwitchGraph& graph() const override { return *graph_; }
  [[nodiscard]] std::size_t MinimalDistance(SwitchId s, SwitchId t) const override;
  [[nodiscard]] std::vector<LinkId> LinksOnMinimalPaths(SwitchId s, SwitchId t) const override;
  [[nodiscard]] std::vector<NextHop> NextHops(SwitchId current, SwitchId dest,
                                              Phase phase) const override;
  [[nodiscard]] Phase ArrivalPhase(LinkId link, SwitchId into) const override;
  [[nodiscard]] std::string Name() const override { return "shortest-path"; }

 private:
  const SwitchGraph* graph_;
  std::vector<std::vector<std::size_t>> dist_;  // dist_[t][u]
};

}  // namespace commsched::route
