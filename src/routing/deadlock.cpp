#include "routing/deadlock.h"

#include <algorithm>

namespace commsched::route {

std::vector<Channel> DirectedChannels(const SwitchGraph& graph) {
  std::vector<Channel> channels;
  channels.reserve(2 * graph.link_count());
  for (LinkId l = 0; l < graph.link_count(); ++l) {
    const topo::Link& link = graph.link(l);
    channels.push_back({l, link.a, link.b});
    channels.push_back({l, link.b, link.a});
  }
  return channels;
}

std::size_t ChannelIndex(const SwitchGraph& graph, LinkId link, SwitchId from) {
  const topo::Link& l = graph.link(link);
  CS_CHECK(l.a == from || l.b == from, "switch is not an endpoint of the link");
  return 2 * link + (l.a == from ? 0 : 1);
}

std::vector<std::vector<std::size_t>> BuildChannelDependencyGraph(const Routing& routing) {
  const SwitchGraph& g = routing.graph();
  const std::size_t channel_count = 2 * g.link_count();
  std::vector<std::vector<std::size_t>> adjacency(channel_count);

  // A message that traversed channel c1 = (u -> v) arrives at v in phase
  // ArrivalPhase(c1). For every destination it may then request each
  // candidate channel c2 out of v.
  for (LinkId l = 0; l < g.link_count(); ++l) {
    for (int dir = 0; dir < 2; ++dir) {
      const topo::Link& link = g.link(l);
      const SwitchId u = dir == 0 ? link.a : link.b;
      const SwitchId v = dir == 0 ? link.b : link.a;
      const std::size_t c1 = ChannelIndex(g, l, u);
      const Phase arrival = routing.ArrivalPhase(l, v);

      std::vector<bool> seen(channel_count, false);
      for (SwitchId dest = 0; dest < g.switch_count(); ++dest) {
        if (dest == v) continue;
        // Only destinations for which c1 is actually usable matter; a hop
        // into v is usable toward dest when v lies on some permitted minimal
        // path, i.e. when the routing would have offered c1 from u. Checking
        // the offer keeps the CDG tight (Duato's "routing subfunction").
        bool c1_offered = false;
        for (const NextHop& hop : routing.NextHops(u, dest, Phase::kUp)) {
          if (hop.link == l && hop.next == v) {
            c1_offered = true;
            break;
          }
        }
        if (!c1_offered && arrival == Phase::kDown) {
          for (const NextHop& hop : routing.NextHops(u, dest, Phase::kDown)) {
            if (hop.link == l && hop.next == v) {
              c1_offered = true;
              break;
            }
          }
        }
        if (!c1_offered) continue;
        for (const NextHop& hop : routing.NextHops(v, dest, arrival)) {
          const std::size_t c2 = ChannelIndex(g, hop.link, v);
          if (!seen[c2]) {
            seen[c2] = true;
            adjacency[c1].push_back(c2);
          }
        }
      }
      std::sort(adjacency[c1].begin(), adjacency[c1].end());
    }
  }
  return adjacency;
}

namespace {

// Iterative DFS cycle detection with colors; returns a cycle if found.
std::vector<std::size_t> FindCycle(const std::vector<std::vector<std::size_t>>& adjacency) {
  enum class Color : char { kWhite, kGray, kBlack };
  const std::size_t n = adjacency.size();
  std::vector<Color> color(n, Color::kWhite);
  std::vector<std::size_t> parent(n, static_cast<std::size_t>(-1));

  for (std::size_t start = 0; start < n; ++start) {
    if (color[start] != Color::kWhite) continue;
    // Explicit stack of (node, next-child-index).
    std::vector<std::pair<std::size_t, std::size_t>> stack{{start, 0}};
    color[start] = Color::kGray;
    while (!stack.empty()) {
      auto& [u, child] = stack.back();
      if (child < adjacency[u].size()) {
        const std::size_t v = adjacency[u][child++];
        if (color[v] == Color::kWhite) {
          color[v] = Color::kGray;
          parent[v] = u;
          stack.emplace_back(v, 0);
        } else if (color[v] == Color::kGray) {
          // Found a back edge u -> v: reconstruct the cycle v ... u.
          std::vector<std::size_t> cycle{v};
          for (std::size_t w = u; w != v; w = parent[w]) {
            cycle.push_back(w);
          }
          std::reverse(cycle.begin() + 1, cycle.end());
          return cycle;
        }
      } else {
        color[u] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace

std::vector<std::size_t> FindDependencyCycle(const Routing& routing) {
  return FindCycle(BuildChannelDependencyGraph(routing));
}

bool IsDeadlockFree(const Routing& routing) {
  return FindDependencyCycle(routing).empty();
}

}  // namespace commsched::route
