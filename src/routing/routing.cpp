#include "routing/routing.h"

namespace commsched::route {

std::vector<std::vector<SwitchId>> EnumerateMinimalPaths(const Routing& routing, SwitchId s,
                                                         SwitchId t, std::size_t limit) {
  std::vector<std::vector<SwitchId>> paths;
  if (s == t) {
    paths.push_back({s});
    return paths;
  }
  // DFS over NextHops; every branch stays on a minimal remaining path by
  // construction, so no pruning is needed beyond the enumeration limit.
  struct Frame {
    SwitchId at;
    Phase phase;
    std::vector<NextHop> hops;
    std::size_t next = 0;
  };
  std::vector<SwitchId> current{s};
  std::vector<Frame> stack;
  stack.push_back({s, Phase::kUp, routing.NextHops(s, t, Phase::kUp), 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next >= frame.hops.size()) {
      stack.pop_back();
      current.pop_back();
      continue;
    }
    const NextHop hop = frame.hops[frame.next++];
    current.push_back(hop.next);
    if (hop.next == t) {
      paths.push_back(current);
      CS_CHECK(paths.size() <= limit, "minimal path enumeration limit exceeded");
      current.pop_back();
    } else {
      stack.push_back({hop.next, hop.phase, routing.NextHops(hop.next, t, hop.phase), 0});
    }
  }
  return paths;
}

}  // namespace commsched::route
