// Channel-dependency-graph deadlock analysis (Duato [8]).
//
// Wormhole routing on a single virtual channel is deadlock-free iff the
// channel dependency graph (CDG) of the routing function is acyclic. We use
// this to verify that our up*/down* implementation is safe on one channel and
// to demonstrate that unrestricted shortest-path routing is not.
#pragma once

#include <vector>

#include "routing/routing.h"

namespace commsched::route {

/// A directed channel: one direction of a physical link.
struct Channel {
  LinkId link = 0;
  SwitchId from = 0;
  SwitchId to = 0;

  friend bool operator==(const Channel&, const Channel&) = default;
};

/// All 2 * link_count directed channels of a graph; channel 2*l goes from
/// link(l).a to link(l).b and channel 2*l+1 the reverse.
[[nodiscard]] std::vector<Channel> DirectedChannels(const SwitchGraph& graph);

/// Directed channel id for traversing `link` out of `from`.
[[nodiscard]] std::size_t ChannelIndex(const SwitchGraph& graph, LinkId link, SwitchId from);

/// Builds the CDG: adjacency[c1] contains c2 iff some message that can hold
/// channel c1 may request channel c2 next (over all destinations and phases
/// the routing function can put it in).
[[nodiscard]] std::vector<std::vector<std::size_t>> BuildChannelDependencyGraph(
    const Routing& routing);

/// True iff the CDG is acyclic (routing is deadlock-free on one VC).
[[nodiscard]] bool IsDeadlockFree(const Routing& routing);

/// Returns one cycle of channel ids if the CDG has one, else empty.
[[nodiscard]] std::vector<std::size_t> FindDependencyCycle(const Routing& routing);

}  // namespace commsched::route
