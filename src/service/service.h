// The scheduling service: request execution over topology-keyed caches.
//
// SchedulingService is the daemon's brain, independent of any transport:
// given a parsed Request it materializes (or cache-hits) the network model
// — up*/down* routing plus the O(N²) equivalent-distance table — executes
// the op, and renders the response line. It is safe to call Execute from
// many worker threads; the caches memoize concurrent misses so a burst of
// requests for one topology performs a single resistance solve.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "distance/distance_table.h"
#include "routing/updown.h"
#include "sched/search.h"
#include "service/cache.h"
#include "service/exec.h"
#include "service/protocol.h"
#include "topology/graph.h"

namespace commsched::svc {

/// An immutable cached network model. The routing holds a pointer into
/// `graph`, so the struct is pinned: heap-allocated, never copied or moved.
struct NetworkModel {
  explicit NetworkModel(topo::SwitchGraph g)
      : graph(std::move(g)), routing(graph), table(dist::DistanceTable::Build(routing)) {}

  NetworkModel(const NetworkModel&) = delete;
  NetworkModel& operator=(const NetworkModel&) = delete;

  topo::SwitchGraph graph;
  route::UpDownRouting routing;
  dist::DistanceTable table;
};

/// A memoized finished mapping search: the result plus its canonical CLI
/// rendering.
struct ScheduleOutcome {
  sched::SearchResult result;
  std::string text;
};

struct ServiceOptions {
  /// Cached (topology, routing) -> routing + distance-table models.
  std::size_t topology_cache_capacity = 32;
  /// Memoized (model, workload, knobs, seed) -> mapping results.
  std::size_t result_cache_capacity = 1024;
};

class SchedulingService {
 public:
  explicit SchedulingService(ServiceOptions options = {});

  SchedulingService(const SchedulingService&) = delete;
  SchedulingService& operator=(const SchedulingService&) = delete;

  /// Executes one request and returns the response line (no trailing
  /// newline). Never throws: failures become {"ok":false,...} responses.
  /// Thread-safe.
  [[nodiscard]] std::string Execute(const Request& request);

  /// The cached model for a topology (exposed for the load generator and
  /// tests). `model_hash` receives the content hash used as the cache key;
  /// `model_hit` reports whether this call hit the cache. Either may be
  /// null.
  [[nodiscard]] std::shared_ptr<const NetworkModel> GetModel(const TopologyRequest& topology,
                                                             std::uint64_t* model_hash = nullptr,
                                                             bool* model_hit = nullptr);

  [[nodiscard]] CacheStats TopologyCacheStats() const { return models_.Stats(); }
  [[nodiscard]] CacheStats ResultCacheStats() const { return results_.Stats(); }
  [[nodiscard]] std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] std::string ExecuteOrThrow(const Request& request);
  [[nodiscard]] std::string RunSchedule(const Request& request);
  [[nodiscard]] std::string RunQuality(const Request& request);
  [[nodiscard]] std::string RunSimulate(const Request& request);
  [[nodiscard]] std::string RunStats(const Request& request);

  /// Memoized mapping search on a model (also serves simulate's op
  /// mapping). `result_hit` reports the memo outcome.
  [[nodiscard]] std::shared_ptr<const ScheduleOutcome> SearchOutcome(
      const NetworkModel& model, std::uint64_t model_hash,
      const std::vector<std::size_t>& cluster_sizes, const SearchKnobs& knobs,
      bool* result_hit);

  LruCache<NetworkModel> models_;
  LruCache<ScheduleOutcome> results_;
  std::atomic<std::uint64_t> executed_{0};
};

}  // namespace commsched::svc
