// The scheduling service: request execution over topology-keyed caches.
//
// SchedulingService is the daemon's brain, independent of any transport:
// given a parsed Request it materializes (or cache-hits) the network model
// — up*/down* routing plus the O(N²) equivalent-distance table — executes
// the op, and renders the response line. It is safe to call Execute from
// many worker threads; the caches memoize concurrent misses so a burst of
// requests for one topology performs a single resistance solve.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "distance/distance_table.h"
#include "routing/updown.h"
#include "sched/search.h"
#include "service/cache.h"
#include "service/exec.h"
#include "service/protocol.h"
#include "topology/graph.h"

namespace commsched::svc {

class ArtifactStore;

/// An immutable cached network model. The routing holds a pointer into
/// `graph`, so the struct is pinned: heap-allocated, never copied or moved.
struct NetworkModel {
  explicit NetworkModel(topo::SwitchGraph g)
      : graph(std::move(g)), routing(graph), table(dist::DistanceTable::Build(routing)) {}

  /// Restores a model from persisted parts without re-running the routing
  /// BFS or the resistance solves (the artifact-store warm path). Throws
  /// ConfigError when the state does not match the graph's shape.
  NetworkModel(topo::SwitchGraph g, route::UpDownState state, dist::DistanceTable t)
      : graph(std::move(g)), routing(graph, std::move(state)), table(std::move(t)) {}

  NetworkModel(const NetworkModel&) = delete;
  NetworkModel& operator=(const NetworkModel&) = delete;

  topo::SwitchGraph graph;
  route::UpDownRouting routing;
  dist::DistanceTable table;
};

/// A memoized finished mapping search: the result plus its canonical CLI
/// rendering.
struct ScheduleOutcome {
  sched::SearchResult result;
  std::string text;
};

/// A memoized multilevel mapping (schedule with "multilevel": true).
struct MultilevelOutcome {
  sched::ml::MultilevelResult result;
  std::string text;
};

struct ServiceOptions {
  /// Cached (topology, routing) -> routing + distance-table models.
  std::size_t topology_cache_capacity = 32;
  /// Memoized (model, workload, knobs, seed) -> mapping results.
  std::size_t result_cache_capacity = 1024;
  /// Allows the stats op's {"reset": true} variant (zeroes the registry).
  /// Off by default: a misbehaving client must not erase fleet telemetry.
  bool allow_stats_reset = false;
  /// Non-empty enables the on-disk artifact store (DESIGN.md §14): solved
  /// models are persisted there and every artifact present at construction
  /// is decoded straight into the topology cache, so a restarted daemon
  /// serves previously-seen models without a routing or Laplacian re-solve.
  std::string store_dir;
};

/// Live daemon state surfaced through the stats/health/ready ops and the
/// Prometheus exposition. Produced by the serving Daemon's status provider;
/// `attached` is false when the service runs without one (direct Execute
/// calls in tests).
struct DaemonStatus {
  bool attached = false;
  bool draining = false;
  std::uint64_t queue_depth = 0;  // queued + running
  std::uint64_t running = 0;      // currently executing on a worker
  std::uint64_t workers = 0;
  std::uint64_t served = 0;
  /// Most recent slow-request records (rendered JSONL, oldest first).
  std::vector<std::string> slow_tail;
};

class SchedulingService {
 public:
  explicit SchedulingService(ServiceOptions options = {});
  ~SchedulingService();  // out-of-line: ArtifactStore is incomplete here

  SchedulingService(const SchedulingService&) = delete;
  SchedulingService& operator=(const SchedulingService&) = delete;

  /// Executes one request and returns the response line (no trailing
  /// newline). Never throws: failures become {"ok":false,...} responses.
  /// Thread-safe.
  [[nodiscard]] std::string Execute(const Request& request);

  /// The cached model for a topology (exposed for the load generator and
  /// tests). `model_hash` receives the content hash used as the cache key;
  /// `model_hit` reports whether this call hit the cache. Either may be
  /// null.
  [[nodiscard]] std::shared_ptr<const NetworkModel> GetModel(const TopologyRequest& topology,
                                                             std::uint64_t* model_hash = nullptr,
                                                             bool* model_hit = nullptr);

  [[nodiscard]] CacheStats TopologyCacheStats() const { return models_.Stats(); }
  [[nodiscard]] CacheStats ResultCacheStats() const { return results_.Stats(); }

  /// The artifact store, or nullptr when store_dir was empty.
  [[nodiscard]] const ArtifactStore* store() const { return store_.get(); }
  [[nodiscard]] std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

  /// Installs (or clears, with nullptr) the callback that reports the
  /// serving daemon's live state. The Daemon installs itself on
  /// construction and clears after its final drain.
  void SetStatusProvider(std::function<DaemonStatus()> provider);

  /// The daemon's live status, or a default (attached = false) one.
  [[nodiscard]] DaemonStatus Status() const;

  /// Prometheus text exposition of the global registry plus the rolling
  /// views and (when attached) daemon gauges. Served by the metrics op and
  /// the daemon's HTTP GET /metrics handler.
  [[nodiscard]] std::string MetricsText() const;

 private:
  [[nodiscard]] std::string ExecuteOrThrow(const Request& request);
  [[nodiscard]] std::string RunSchedule(const Request& request);
  [[nodiscard]] std::string RunQuality(const Request& request);
  [[nodiscard]] std::string RunSimulate(const Request& request);
  [[nodiscard]] std::string RunStats(const Request& request);
  [[nodiscard]] std::string RunHealth(const Request& request);
  [[nodiscard]] std::string RunReady(const Request& request);
  [[nodiscard]] std::string RunMetrics(const Request& request);

  /// Executes every batch entry in admission order on the calling worker
  /// (sub-requests must not re-enter the worker pool: a full pool of
  /// batches waiting on their own sub-tasks would deadlock, and the heavy
  /// solves already parallelize internally). OK entries render exactly the
  /// bytes their standalone request would; malformed entries render error
  /// objects carrying the batch id and entry index.
  [[nodiscard]] std::string RunBatch(const Request& request);

  /// Decodes every artifact in the store into the topology cache (no
  /// hit/miss counted): the first request for a persisted model is then a
  /// cache hit with zero re-solves.
  void WarmBootFromStore();

  /// Memoized mapping search on a model (also serves simulate's op
  /// mapping). `result_hit` reports the memo outcome.
  [[nodiscard]] std::shared_ptr<const ScheduleOutcome> SearchOutcome(
      const NetworkModel& model, std::uint64_t model_hash,
      const std::vector<std::size_t>& cluster_sizes, const SearchKnobs& knobs,
      bool* result_hit);

  /// Multilevel variant of RunSchedule (request.multilevel). Memoized in
  /// ml_results_ under the model hash + CanonicalMultilevelKnobs key.
  [[nodiscard]] std::string RunScheduleMultilevel(const Request& request);

  ServiceOptions options_;
  LruCache<NetworkModel> models_;
  LruCache<ScheduleOutcome> results_;
  LruCache<MultilevelOutcome> ml_results_;
  std::unique_ptr<ArtifactStore> store_;  // null when store_dir is empty
  obs::Counter* solve_counter_;           // svc.model.solve: full cold builds
  std::atomic<std::uint64_t> executed_{0};

  mutable std::mutex status_mutex_;
  std::function<DaemonStatus()> status_provider_;
};

}  // namespace commsched::svc
