// The scheduling daemon: admission control and transports around
// SchedulingService (DESIGN.md §10).
//
// Life of a request:
//   reader --Submit--> bounded admission queue --worker pool--> Execute
//          <--backpressure (Submit blocks while the queue is full)
//                                             --> sink(response line)
//
// * Admission is a counting gate over the ThreadPool (common/parallel.h):
//   at most `queue_capacity` requests are queued-or-running; Submit blocks
//   until a slot frees, which propagates backpressure to the transport —
//   a stdio client stops being read, a TCP client's socket buffer fills.
// * Deadlines: a request carrying deadline_ms that is still waiting when
//   the deadline elapses is answered with an error instead of executed
//   (the clock starts at admission).
// * Drain: RequestDrain() (SIGTERM/SIGINT or transport EOF) stops
//   admission; Drain() then waits for every in-flight request, so no
//   accepted request ever loses its response.
//
// Observability: svc.requests / svc.deadline_expired / svc.rejected
// counters, svc.latency_ns and svc.queue.depth_sampled histograms, and
// svc.request / svc.response / svc.drain trace events.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

#include "common/parallel.h"
#include "obs/obs.h"
#include "obs/rolling.h"
#include "service/service.h"

namespace commsched::svc {

struct DaemonOptions {
  /// Worker threads; 0 = hardware concurrency.
  std::size_t workers = 0;
  /// Maximum requests queued or running before Submit blocks.
  std::size_t queue_capacity = 64;
  /// Deadline applied to requests that do not carry their own (0 = none).
  std::uint64_t default_deadline_ms = 0;
  /// Feed the rolling-window views (req/s, windowed latency percentiles,
  /// DESIGN.md §12) on every served request.
  bool windowed_metrics = true;
  /// Requests slower than this end-to-end land in the slow-request log
  /// (0 = disabled).
  std::uint64_t slow_request_ms = 0;
  /// Optional JSONL file the slow-request records are appended to.
  std::string slow_log_path;
  /// In-memory slow-request ring surfaced through stats/top.
  std::size_t slow_log_capacity = 32;
};

class Daemon {
 public:
  Daemon(SchedulingService& service, DaemonOptions options = {});

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Waits for in-flight requests (same as Drain).
  ~Daemon();

  /// Admits one raw request line. Blocks while the admission queue is full
  /// (backpressure). `sink` is invoked exactly once, from a worker thread,
  /// with the response line (no trailing newline). After RequestDrain the
  /// request is rejected immediately with an error response.
  void Submit(std::string line, std::function<void(const std::string&)> sink);

  /// Stops admitting new requests (idempotent, signal-safe callers should
  /// use InstallDrainSignalHandlers instead).
  void RequestDrain();

  [[nodiscard]] bool draining() const;

  /// Blocks until every admitted request has been answered.
  void Drain();

  /// Requests answered so far (including error responses).
  [[nodiscard]] std::uint64_t served() const;

  [[nodiscard]] std::size_t worker_count() const { return pool_.thread_count(); }

  /// The service this daemon executes on (for transports that answer
  /// side-channel probes like HTTP GET /metrics directly).
  [[nodiscard]] SchedulingService& service() const { return service_; }

  /// Live state snapshot (also installed as the service's status provider).
  [[nodiscard]] DaemonStatus StatusSnapshot() const;

 private:
  void Process(const std::string& line, std::chrono::steady_clock::time_point admitted,
               const std::function<void(const std::string&)>& sink);

  /// Appends one rendered slow-request record to the ring and the log file.
  void RecordSlowRequest(const std::string& record);

  SchedulingService& service_;
  DaemonOptions options_;
  ThreadPool pool_;

  mutable std::mutex mutex_;
  std::condition_variable slot_free_;
  std::condition_variable idle_;
  std::size_t pending_ = 0;  // queued + running
  bool draining_ = false;
  std::uint64_t served_ = 0;

  std::atomic<std::uint64_t> running_{0};      // currently inside Process
  std::atomic<std::uint64_t> request_seq_{0};  // generated request ids

  // Instruments resolved once at construction: the per-request hot path
  // must not take the (mutexed) registry lookup locks. References into the
  // registries' node-based maps are stable for the process lifetime.
  obs::Histogram& latency_hist_;
  obs::RollingCounter& rolling_requests_;
  obs::RollingCounter& rolling_errors_;
  obs::RollingHistogram& rolling_latency_;

  mutable std::mutex slow_mutex_;
  std::deque<std::string> slow_tail_;
  std::ofstream slow_log_;
};

/// Installs SIGTERM/SIGINT handlers (without SA_RESTART, so blocking reads
/// return EINTR) that set a process-wide drain flag.
void InstallDrainSignalHandlers();

/// True once a drain signal arrived.
[[nodiscard]] bool DrainSignalled();

/// Clears the latched drain flag so one test binary can run several
/// servers. Production servers never un-drain.
void ResetDrainSignalForTesting();

/// Serves JSONL requests from `in` to `out` until EOF or a drain signal,
/// then drains and returns 0. Response lines may be interleaved out of
/// request order (match them by id).
int RunStdioServer(SchedulingService& service, const DaemonOptions& options, std::istream& in,
                   std::ostream& out);

/// Serves the same protocol over TCP on 127.0.0.1:`port` (0 = ephemeral).
/// Accepts any number of concurrent connections, each with its own JSONL
/// stream, all sharing one daemon (queue, workers, caches). Announces
/// "listening on 127.0.0.1:<port>" on `announce` once bound. Runs until a
/// drain signal, then drains and returns 0.
int RunTcpServer(SchedulingService& service, const DaemonOptions& options, std::uint16_t port,
                 std::ostream& announce);

}  // namespace commsched::svc
