// Content-addressed on-disk artifact store (DESIGN.md §14).
//
// The expensive artifacts behind a served topology — the up*/down* routing
// state and the O(N²) resistance-solve DistanceTable — are pure functions of
// the network, so a daemon restart re-paying them is waste. The store
// persists each NetworkModel under its content hash (the same FNV-1a value
// the LRU cache and the shard ring key on) in a flat directory of
// `model-<16 hex>.csart` files:
//
//   [ header: 40 bytes                      ] [ payload: payload_size bytes ]
//     u64 magic        0x43534152540a0001
//     u64 version      1
//     u64 kind         ArtifactKind
//     u64 payload_size
//     u64 payload_hash FNV-1a over the payload bytes
//
// Fields are native-endian: artifacts are a per-host cache, not an exchange
// format. Writes go to a dot-prefixed temp file in the same directory and
// rename() into place, so readers (and fsck) never observe a half-written
// artifact and a crash leaves at worst an ignorable temp file. Reads mmap
// the file and verify magic/version/kind/size/hash before trusting a byte;
// anything inconsistent counts store.corrupt and reads as a miss — a
// corrupt artifact degrades to a re-solve, never to a wrong answer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace commsched::svc {

struct NetworkModel;

/// First 8 bytes of every artifact file ("CSART" + framing).
inline constexpr std::uint64_t kStoreMagic = 0x43534152540a0001ULL;
inline constexpr std::uint64_t kStoreVersion = 1;

/// What an artifact contains (the header's `kind` field and the filename
/// prefix). Today only whole network models; the u64 leaves room.
enum class ArtifactKind : std::uint64_t {
  kModel = 1,  // topology text + routing state + distance table
};

/// Point-in-time store statistics (mirrored into the registry as
/// store.{hit,miss,write,corrupt}).
struct StoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writes = 0;
  std::uint64_t corrupt = 0;
};

/// Outcome of verifying one artifact file (shared by Get and store_fsck).
struct VerifyResult {
  bool ok = false;
  std::string error;  // empty when ok
  std::uint64_t kind = 0;
  std::uint64_t payload_size = 0;
};

/// A directory of hash-named, hash-verified artifacts. Thread-safe: Put and
/// Get are plain filesystem operations plus atomic counters.
class ArtifactStore {
 public:
  /// Opens (creating if needed) the store directory. Throws ConfigError
  /// when the path exists but is not a directory or cannot be created.
  explicit ArtifactStore(std::string dir);

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// Persists `payload` under (kind, key) via temp-file + rename. Failures
  /// are swallowed (best-effort write-behind: a full disk must not fail the
  /// request whose model was just solved); returns whether the artifact
  /// landed.
  bool Put(ArtifactKind kind, std::uint64_t key, const std::string& payload);

  /// Reads and verifies the artifact for (kind, key). nullopt when absent
  /// (store.miss) or when any header/hash check fails (store.corrupt).
  [[nodiscard]] std::optional<std::string> Get(ArtifactKind kind, std::uint64_t key);

  /// Keys of every artifact of `kind` present on disk (by filename; the
  /// contents are only verified when read). Sorted ascending.
  [[nodiscard]] std::vector<std::uint64_t> ListKeys(ArtifactKind kind) const;

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] StoreStats Stats() const;

  /// Counts an artifact that passed the header/hash checks but failed to
  /// decode or did not match its key — corruption detected above the byte
  /// layer (the warm-boot and GetModel fallback paths).
  void NoteCorrupt();

  /// Full verification of one artifact file: header shape, magic, version,
  /// known kind, size against the file, FNV hash over the payload. The
  /// engine of tools/store_fsck.
  [[nodiscard]] static VerifyResult VerifyFile(const std::string& path);

  /// `model-<16 hex of key>.csart` (no directory).
  [[nodiscard]] static std::string FileName(ArtifactKind kind, std::uint64_t key);

 private:
  std::string dir_;
  obs::Counter* hit_counter_;
  obs::Counter* miss_counter_;
  obs::Counter* write_counter_;
  obs::Counter* corrupt_counter_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> corrupt_{0};
};

/// Serializes a model into an ArtifactKind::kModel payload: the canonical
/// topology text plus the exported routing state plus the raw distance
/// values — everything needed to restore without a BFS or resistance solve.
[[nodiscard]] std::string EncodeModelArtifact(const NetworkModel& model);

/// Rebuilds a model from a kModel payload. Throws ConfigError on a
/// truncated or shape-inconsistent payload (callers fall back to a cold
/// solve).
[[nodiscard]] std::shared_ptr<const NetworkModel> DecodeModelArtifact(const std::string& payload);

}  // namespace commsched::svc
