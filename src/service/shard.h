// Consistent-hash sharding of requests over a daemon fleet (DESIGN.md §14).
//
// The fleet's unit of state is the network model, so the router keys every
// request by its topology's model hash: all requests for one topology land
// on one daemon, shards hold disjoint model caches, and the fleet's
// aggregate cache capacity scales with its size. The map is the classic
// ring of virtual nodes — each daemon address is hashed at `vnodes` points,
// a key is owned by the first ring point clockwise from it — so adding or
// removing one daemon of N remaps only ~1/N of the keys (the property test
// asserts ≤ 2/N) instead of reshuffling every cache.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace commsched::svc {

struct Request;

class ShardRing {
 public:
  /// Builds the ring over daemon addresses (any non-empty, distinct
  /// strings; the router uses "host:port"). Throws ConfigError on an empty
  /// fleet or a duplicate address. `vnodes` trades ring size for balance;
  /// 64 keeps the max/mean shard load under ~1.5x for small fleets.
  explicit ShardRing(std::vector<std::string> nodes, std::size_t vnodes = 64);

  /// The owning node of a key. Deterministic across processes and runs:
  /// the ring hashes with the same FNV-1a the caches key with.
  [[nodiscard]] const std::string& OwnerOf(std::uint64_t key) const {
    return nodes_[NodeIndexOf(key)];
  }

  /// OwnerOf as an index into nodes().
  [[nodiscard]] std::size_t NodeIndexOf(std::uint64_t key) const;

  [[nodiscard]] const std::vector<std::string>& nodes() const { return nodes_; }
  [[nodiscard]] std::size_t vnodes_per_node() const { return vnodes_; }

 private:
  struct Point {
    std::uint64_t hash;
    std::size_t node;
  };

  std::vector<std::string> nodes_;
  std::size_t vnodes_;
  std::vector<Point> ring_;  // sorted by (hash, node)
};

/// The routing key of a parsed request: the topology model hash for ops
/// that resolve a model (schedule/quality/simulate; a batch routes by its
/// first such sub-request, so one frame's shared-topology entries stay on
/// one shard's cache), and an FNV hash of the request id otherwise.
/// Total: a topology spec that fails to build falls back to the id hash —
/// the owning daemon then renders the same error the CLI would.
[[nodiscard]] std::uint64_t ShardKeyOf(const Request& request);

}  // namespace commsched::svc
