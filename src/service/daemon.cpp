#include "service/daemon.h"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <istream>
#include <ostream>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "obs/trace.h"
#include "service/json.h"

namespace commsched::svc {
namespace {

std::atomic<bool> g_drain_signalled{false};

void DrainSignalHandler(int /*signo*/) {
  g_drain_signalled.store(true, std::memory_order_relaxed);
}

}  // namespace

void InstallDrainSignalHandlers() {
  struct sigaction action {};
  action.sa_handler = DrainSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART: blocked reads see EINTR
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  // A TCP client may disappear between request and response; the write
  // error is handled per session, not by process death.
  signal(SIGPIPE, SIG_IGN);
}

bool DrainSignalled() { return g_drain_signalled.load(std::memory_order_relaxed); }

void ResetDrainSignalForTesting() {
  g_drain_signalled.store(false, std::memory_order_relaxed);
}

Daemon::Daemon(SchedulingService& service, DaemonOptions options)
    : service_(service),
      options_(options),
      pool_(options.workers) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
}

Daemon::~Daemon() { Drain(); }

void Daemon::Submit(std::string line, std::function<void(const std::string&)> sink) {
  const auto admitted = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (draining_) {
      served_++;
      obs::Registry::Global().GetCounter("svc.rejected").Add();
      lock.unlock();
      sink(ErrorResponse(SalvageRequestId(line), "service is draining"));
      return;
    }
    // Backpressure: the transport's reader blocks here while the queue is
    // full, so clients see an unread socket/pipe instead of lost requests.
    slot_free_.wait(lock, [this] { return pending_ < options_.queue_capacity; });
    pending_++;
    obs::Registry::Global().GetHistogram("svc.queue.depth").Record(pending_);
  }
  auto shared_line = std::make_shared<std::string>(std::move(line));
  auto shared_sink = std::make_shared<std::function<void(const std::string&)>>(std::move(sink));
  pool_.Submit([this, shared_line, shared_sink, admitted] {
    Process(*shared_line, admitted, *shared_sink);
  });
}

void Daemon::Process(const std::string& line,
                     std::chrono::steady_clock::time_point admitted,
                     const std::function<void(const std::string&)>& sink) {
  obs::Registry::Global().GetCounter("svc.requests").Add();
  std::string response;
  try {
    const Request request = ParseRequest(line);
    if (obs::Tracer* t = obs::ActiveTracer()) {
      t->Emit(obs::TraceEvent("svc.request").F("id", request.id).F("op", OpName(request.op)));
    }
    const std::uint64_t deadline_ms =
        request.deadline_ms != 0 ? request.deadline_ms : options_.default_deadline_ms;
    const auto waited = std::chrono::steady_clock::now() - admitted;
    const auto waited_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(waited).count();
    if (deadline_ms != 0 && static_cast<std::uint64_t>(waited_ms) > deadline_ms) {
      obs::Registry::Global().GetCounter("svc.deadline_expired").Add();
      response = ErrorResponse(request.id, "deadline of " + std::to_string(deadline_ms) +
                                               " ms expired after " +
                                               std::to_string(waited_ms) + " ms in queue");
    } else {
      response = service_.Execute(request);
    }
  } catch (const std::exception& e) {
    obs::Registry::Global().GetCounter("svc.errors").Add();
    response = ErrorResponse(SalvageRequestId(line), e.what());
  }
  sink(response);
  const auto elapsed = std::chrono::steady_clock::now() - admitted;
  const auto elapsed_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  obs::Registry::Global().GetHistogram("svc.latency_ns").Record(
      static_cast<std::uint64_t>(elapsed_ns));
  if (obs::Tracer* t = obs::ActiveTracer()) {
    t->Emit(obs::TraceEvent("svc.response")
                .F("id", SalvageRequestId(line))
                .F("micros", static_cast<std::uint64_t>(elapsed_ns / 1000)));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_--;
    served_++;
    slot_free_.notify_one();
    if (pending_ == 0) idle_.notify_all();
  }
}

void Daemon::RequestDrain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

bool Daemon::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

void Daemon::Drain() {
  RequestDrain();
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return pending_ == 0; });
}

std::uint64_t Daemon::served() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return served_;
}

int RunStdioServer(SchedulingService& service, const DaemonOptions& options, std::istream& in,
                   std::ostream& out) {
  InstallDrainSignalHandlers();
  Daemon daemon(service, options);
  std::mutex out_mutex;
  std::string line;
  while (!DrainSignalled() && std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    daemon.Submit(line, [&out, &out_mutex](const std::string& response) {
      std::lock_guard<std::mutex> lock(out_mutex);
      out << response << "\n";
      out.flush();
    });
  }
  daemon.Drain();
  if (obs::Tracer* t = obs::ActiveTracer()) {
    t->Emit(obs::TraceEvent("svc.drain").F("served", daemon.served()));
  }
  {
    std::lock_guard<std::mutex> lock(out_mutex);
    out.flush();
  }
  return 0;
}

namespace {

/// Buffered line reader over a file descriptor. EINTR is retried unless a
/// drain was signalled (then it reads as EOF, mirroring stdio behaviour).
class FdLineReader {
 public:
  explicit FdLineReader(int fd) : fd_(fd) {}

  bool NextLine(std::string& line) {
    line.clear();
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
      if (got > 0) {
        buffer_.append(chunk, static_cast<std::size_t>(got));
        continue;
      }
      if (got < 0 && errno == EINTR && !DrainSignalled()) continue;
      // EOF (or drain): serve any unterminated trailing line.
      if (!buffer_.empty()) {
        line.swap(buffer_);
        return true;
      }
      return false;
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

/// Writes the whole buffer, retrying partial writes and EINTR.
bool WriteAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t wrote = ::write(fd, data.data() + sent, data.size() - sent);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;  // client went away; its responses are undeliverable
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

/// One TCP connection: reads JSONL requests, writes responses; waits for
/// its own in-flight requests before closing so a client that half-closes
/// still receives every answer.
class TcpSession {
 public:
  TcpSession(int fd, Daemon& daemon) : fd_(fd), daemon_(&daemon) {}

  void Run() {
    FdLineReader reader(fd_);
    std::string line;
    while (reader.NextLine(line)) {
      if (Trim(line).empty()) continue;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        outstanding_++;
      }
      daemon_->Submit(line, [this](const std::string& response) {
        {
          std::lock_guard<std::mutex> lock(write_mutex_);
          WriteAll(fd_, response + "\n");
        }
        std::lock_guard<std::mutex> lock(mutex_);
        outstanding_--;
        if (outstanding_ == 0) idle_.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return outstanding_ == 0; });
    lock.unlock();
    ::close(fd_);
  }

  /// Forces the reader to EOF (used at drain); responses still flow.
  void ShutdownRead() { ::shutdown(fd_, SHUT_RD); }

 private:
  int fd_;
  Daemon* daemon_;
  std::mutex write_mutex_;
  std::mutex mutex_;
  std::condition_variable idle_;
  std::size_t outstanding_ = 0;
};

}  // namespace

int RunTcpServer(SchedulingService& service, const DaemonOptions& options, std::uint16_t port,
                 std::ostream& announce) {
  InstallDrainSignalHandlers();
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) throw ConfigError("cannot create listening socket");
  const int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd);
    throw ConfigError("cannot bind 127.0.0.1:" + std::to_string(port) + ": " +
                      std::strerror(errno));
  }
  if (::listen(listen_fd, 64) != 0) {
    ::close(listen_fd);
    throw ConfigError("cannot listen on 127.0.0.1:" + std::to_string(port));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  announce << "listening on 127.0.0.1:" << ntohs(addr.sin_port) << "\n" << std::flush;

  Daemon daemon(service, options);
  std::mutex sessions_mutex;
  std::vector<std::shared_ptr<TcpSession>> sessions;
  std::vector<std::thread> session_threads;

  while (!DrainSignalled()) {
    const int client_fd = ::accept(listen_fd, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks the drain flag
      break;
    }
    auto session = std::make_shared<TcpSession>(client_fd, daemon);
    {
      std::lock_guard<std::mutex> lock(sessions_mutex);
      sessions.push_back(session);
    }
    session_threads.emplace_back([session] { session->Run(); });
  }
  ::close(listen_fd);

  // Drain: no new connections, force open readers to EOF, let every session
  // flush its outstanding responses, then wait for the pool.
  {
    std::lock_guard<std::mutex> lock(sessions_mutex);
    for (auto& session : sessions) session->ShutdownRead();
  }
  for (std::thread& thread : session_threads) thread.join();
  daemon.Drain();
  if (obs::Tracer* t = obs::ActiveTracer()) {
    t->Emit(obs::TraceEvent("svc.drain").F("served", daemon.served()));
  }
  return 0;
}

}  // namespace commsched::svc
