#include "service/daemon.h"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <istream>
#include <ostream>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "obs/request.h"
#include "obs/rolling.h"
#include "obs/trace.h"
#include "service/json.h"

namespace commsched::svc {
namespace {

std::atomic<bool> g_drain_signalled{false};

void DrainSignalHandler(int /*signo*/) {
  g_drain_signalled.store(true, std::memory_order_relaxed);
}

std::uint64_t ElapsedNanos(std::chrono::steady_clock::time_point from,
                           std::chrono::steady_clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

/// Splices `,"req":"<id>","timings":{...}` into a finished response line,
/// just before its closing brace. The reported stages (including the
/// "other_ns" remainder) sum exactly to total_ns.
std::string SpliceTimings(std::string response, const obs::RequestContext& context,
                          std::uint64_t total_ns) {
  if (response.empty() || response.back() != '}') return response;
  const std::uint64_t instrumented = context.InstrumentedNanos();
  std::string extra = ",\"req\":\"" + JsonEscape(context.id()) + "\",\"timings\":{";
  extra += "\"total_ns\":" + std::to_string(total_ns);
  for (std::size_t s = 0; s < obs::kRequestStageCount; ++s) {
    const auto stage = static_cast<obs::RequestStage>(s);
    const std::uint64_t ns = stage == obs::RequestStage::kOther
                                 ? (total_ns > instrumented ? total_ns - instrumented : 0)
                                 : context.stage_ns(stage);
    extra += ",\"" + std::string(obs::RequestStageName(stage)) + "\":" + std::to_string(ns);
  }
  extra += "}";
  response.insert(response.size() - 1, extra);
  return response;
}

}  // namespace

void InstallDrainSignalHandlers() {
  struct sigaction action {};
  action.sa_handler = DrainSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART: blocked reads see EINTR
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  // A TCP client may disappear between request and response; the write
  // error is handled per session, not by process death.
  signal(SIGPIPE, SIG_IGN);
}

bool DrainSignalled() { return g_drain_signalled.load(std::memory_order_relaxed); }

void ResetDrainSignalForTesting() {
  g_drain_signalled.store(false, std::memory_order_relaxed);
}

Daemon::Daemon(SchedulingService& service, DaemonOptions options)
    : service_(service),
      options_(options),
      pool_(options.workers),
      latency_hist_(obs::Registry::Global().GetHistogram("svc.latency_ns")),
      rolling_requests_(obs::RollingRegistry::Global().GetCounter("svc.requests")),
      rolling_errors_(obs::RollingRegistry::Global().GetCounter("svc.errors")),
      rolling_latency_(obs::RollingRegistry::Global().GetHistogram("svc.latency_ns")) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.slow_log_capacity == 0) options_.slow_log_capacity = 1;
  if (!options_.slow_log_path.empty()) {
    slow_log_.open(options_.slow_log_path, std::ios::app);
    if (!slow_log_) {
      throw ConfigError("cannot open slow-request log '" + options_.slow_log_path + "'");
    }
  }
  service_.SetStatusProvider([this] { return StatusSnapshot(); });
}

Daemon::~Daemon() {
  Drain();
  // After the final drain no worker can touch `this`; detach from the
  // service so stats/health on a daemon-less service report unattached.
  service_.SetStatusProvider(nullptr);
}

DaemonStatus Daemon::StatusSnapshot() const {
  DaemonStatus status;
  status.attached = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    status.draining = draining_;
    status.queue_depth = pending_;
    status.served = served_;
  }
  status.running = running_.load(std::memory_order_relaxed);
  status.workers = pool_.thread_count();
  {
    std::lock_guard<std::mutex> lock(slow_mutex_);
    status.slow_tail.assign(slow_tail_.begin(), slow_tail_.end());
  }
  return status;
}

void Daemon::RecordSlowRequest(const std::string& record) {
  std::lock_guard<std::mutex> lock(slow_mutex_);
  slow_tail_.push_back(record);
  while (slow_tail_.size() > options_.slow_log_capacity) slow_tail_.pop_front();
  if (slow_log_.is_open()) {
    slow_log_ << record << "\n";
    slow_log_.flush();
  }
}

void Daemon::Submit(std::string line, std::function<void(const std::string&)> sink) {
  const auto admitted = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (draining_) {
      served_++;
      obs::Registry::Global().GetCounter("svc.rejected").Add();
      lock.unlock();
      sink(ErrorResponse(SalvageRequestId(line), "service is draining"));
      return;
    }
    // Backpressure: the transport's reader blocks here while the queue is
    // full, so clients see an unread socket/pipe instead of lost requests.
    slot_free_.wait(lock, [this] { return pending_ < options_.queue_capacity; });
    pending_++;
    obs::Registry::Global().GetHistogram("svc.queue.depth_sampled").Record(pending_);
  }
  auto shared_line = std::make_shared<std::string>(std::move(line));
  auto shared_sink = std::make_shared<std::function<void(const std::string&)>>(std::move(sink));
  pool_.Submit([this, shared_line, shared_sink, admitted] {
    Process(*shared_line, admitted, *shared_sink);
  });
}

void Daemon::Process(const std::string& line,
                     std::chrono::steady_clock::time_point admitted,
                     const std::function<void(const std::string&)>& sink) {
  running_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::Global().GetCounter("svc.requests").Add();
  const auto started = std::chrono::steady_clock::now();
  const std::uint64_t queue_ns = ElapsedNanos(admitted, started);

  std::string response;
  std::string op_name = "?";
  std::string request_id;
  std::uint64_t total_ns = 0;
  auto finished = started;
  try {
    const Request request = ParseRequest(line);
    const std::uint64_t parse_ns = ElapsedNanos(started, std::chrono::steady_clock::now());
    op_name = OpName(request.op);

    // Every served request gets a request id — the client's, or a generated
    // one — that tags its trace events, spans and slow-log record.
    request_id =
        request.id.empty()
            ? "r-" + std::to_string(request_seq_.fetch_add(1, std::memory_order_relaxed) + 1)
            : request.id;
    obs::RequestContext context(request_id);
    context.AddStageNanos(obs::RequestStage::kQueue, queue_ns);
    context.AddStageNanos(obs::RequestStage::kParse, parse_ns);
    const obs::ScopedRequestContext scope(context);

    if (obs::Tracer* t = obs::ActiveTracer()) {
      t->Emit(obs::TraceEvent("svc.request").F("id", request.id).F("op", op_name));
    }
    const std::uint64_t deadline_ms =
        request.deadline_ms != 0 ? request.deadline_ms : options_.default_deadline_ms;
    const std::uint64_t waited_ms = queue_ns / 1'000'000;
    if (deadline_ms != 0 && waited_ms > deadline_ms) {
      obs::Registry::Global().GetCounter("svc.deadline_expired").Add();
      response = ErrorResponse(request.id, "deadline of " + std::to_string(deadline_ms) +
                                               " ms expired after " +
                                               std::to_string(waited_ms) + " ms in queue");
    } else {
      response = service_.Execute(request);
    }
    finished = std::chrono::steady_clock::now();
    total_ns = ElapsedNanos(admitted, finished);
    if (request.want_timings) response = SpliceTimings(std::move(response), context, total_ns);
  } catch (const std::exception& e) {
    obs::Registry::Global().GetCounter("svc.errors").Add();
    response = ErrorResponse(SalvageRequestId(line), e.what());
    finished = std::chrono::steady_clock::now();
    total_ns = ElapsedNanos(admitted, finished);
    if (request_id.empty()) request_id = SalvageRequestId(line);
  }
  // Record before the response leaves: once a client has seen its reply, a
  // scrape must already reflect that request (the e2e tests rely on this).
  const bool failed = response.find("\"ok\":false") != std::string::npos;
  latency_hist_.Record(total_ns);
  if (options_.windowed_metrics) {
    // Reuse the completion timestamp instead of a second clock read — the
    // steady_clock epoch is exactly what obs::NowNanos() reports.
    const std::uint64_t now_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(finished.time_since_epoch())
            .count());
    rolling_requests_.Add(1, now_ns);
    if (failed) rolling_errors_.Add(1, now_ns);
    rolling_latency_.Record(total_ns, now_ns);
  }
  const std::uint64_t total_ms = total_ns / 1'000'000;
  if (options_.slow_request_ms != 0 && total_ms >= options_.slow_request_ms) {
    obs::Registry::Global().GetCounter("svc.slow_requests").Add();
    JsonObjectWriter record;
    record.Field("req", request_id);
    record.Field("op", op_name);
    record.Field("ms", total_ms);
    record.Field("queue_ms", queue_ns / 1'000'000);
    record.Field("ok", !failed);
    RecordSlowRequest(record.Finish());
  }
  sink(response);
  if (obs::Tracer* t = obs::ActiveTracer()) {
    t->Emit(obs::TraceEvent("svc.response")
                .F("id", SalvageRequestId(line))
                .F("micros", total_ns / 1000));
  }
  running_.fetch_sub(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_--;
    served_++;
    slot_free_.notify_one();
    if (pending_ == 0) idle_.notify_all();
  }
}

void Daemon::RequestDrain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

bool Daemon::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

void Daemon::Drain() {
  RequestDrain();
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return pending_ == 0; });
}

std::uint64_t Daemon::served() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return served_;
}

int RunStdioServer(SchedulingService& service, const DaemonOptions& options, std::istream& in,
                   std::ostream& out) {
  InstallDrainSignalHandlers();
  Daemon daemon(service, options);
  std::mutex out_mutex;
  std::string line;
  while (!DrainSignalled() && std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    daemon.Submit(line, [&out, &out_mutex](const std::string& response) {
      std::lock_guard<std::mutex> lock(out_mutex);
      out << response << "\n";
      out.flush();
    });
  }
  daemon.Drain();
  if (obs::Tracer* t = obs::ActiveTracer()) {
    t->Emit(obs::TraceEvent("svc.drain").F("served", daemon.served()));
  }
  {
    std::lock_guard<std::mutex> lock(out_mutex);
    out.flush();
  }
  return 0;
}

namespace {

/// Buffered line reader over a file descriptor. EINTR is retried unless a
/// drain was signalled (then it reads as EOF, mirroring stdio behaviour).
class FdLineReader {
 public:
  explicit FdLineReader(int fd) : fd_(fd) {}

  bool NextLine(std::string& line) {
    line.clear();
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
      if (got > 0) {
        buffer_.append(chunk, static_cast<std::size_t>(got));
        continue;
      }
      if (got < 0 && errno == EINTR && !DrainSignalled()) continue;
      // EOF (or drain): serve any unterminated trailing line.
      if (!buffer_.empty()) {
        line.swap(buffer_);
        return true;
      }
      return false;
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

/// Writes the whole buffer, retrying partial writes and EINTR.
bool WriteAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t wrote = ::write(fd, data.data() + sent, data.size() - sent);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;  // client went away; its responses are undeliverable
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

/// One TCP connection: reads JSONL requests, writes responses; waits for
/// its own in-flight requests before closing so a client that half-closes
/// still receives every answer.
///
/// A connection whose first line is an HTTP GET is served as a one-shot
/// HTTP exchange instead (GET /metrics for Prometheus scrapers, /health and
/// /ready for probes) — the same port speaks both protocols, so operating
/// the daemon needs no second listener.
class TcpSession {
 public:
  TcpSession(int fd, Daemon& daemon) : fd_(fd), daemon_(&daemon) {}

  void Run() {
    FdLineReader reader(fd_);
    std::string line;
    while (reader.NextLine(line)) {
      if (Trim(line).empty()) continue;
      if (StartsWith(line, "GET ")) {
        ServeHttp(Trim(line), reader);
        break;  // Connection: close
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        outstanding_++;
      }
      daemon_->Submit(line, [this](const std::string& response) {
        {
          std::lock_guard<std::mutex> lock(write_mutex_);
          WriteAll(fd_, response + "\n");
        }
        std::lock_guard<std::mutex> lock(mutex_);
        outstanding_--;
        if (outstanding_ == 0) idle_.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return outstanding_ == 0; });
    lock.unlock();
    ::close(fd_);
  }

  /// Forces the reader to EOF (used at drain); responses still flow.
  void ShutdownRead() { ::shutdown(fd_, SHUT_RD); }

 private:
  /// Answers one HTTP GET (request line already read; headers are drained
  /// and ignored) and leaves the connection ready to close.
  void ServeHttp(const std::string& request_line, FdLineReader& reader) {
    std::string header;
    while (reader.NextLine(header) && !Trim(header).empty()) {
    }
    const std::vector<std::string> parts = Split(request_line, ' ');
    const std::string path = parts.size() > 1 ? parts[1] : "/";
    obs::Registry::Global().GetCounter("svc.http.gets").Add();

    std::string status = "200 OK";
    std::string content_type = "application/json";
    std::string body;
    if (path == "/metrics") {
      content_type = "text/plain; version=0.0.4; charset=utf-8";
      body = daemon_->service().MetricsText();
    } else if (path == "/health") {
      Request request;
      request.op = RequestOp::kHealth;
      body = daemon_->service().Execute(request) + "\n";
    } else if (path == "/ready") {
      Request request;
      request.op = RequestOp::kReady;
      body = daemon_->service().Execute(request) + "\n";
      if (daemon_->draining()) status = "503 Service Unavailable";
    } else {
      status = "404 Not Found";
      content_type = "text/plain; charset=utf-8";
      body = "not found (try /metrics, /health, /ready)\n";
    }
    const std::string response = "HTTP/1.1 " + status + "\r\nContent-Type: " + content_type +
                                 "\r\nContent-Length: " + std::to_string(body.size()) +
                                 "\r\nConnection: close\r\n\r\n" + body;
    std::lock_guard<std::mutex> lock(write_mutex_);
    WriteAll(fd_, response);
  }

  int fd_;
  Daemon* daemon_;
  std::mutex write_mutex_;
  std::mutex mutex_;
  std::condition_variable idle_;
  std::size_t outstanding_ = 0;
};

}  // namespace

int RunTcpServer(SchedulingService& service, const DaemonOptions& options, std::uint16_t port,
                 std::ostream& announce) {
  InstallDrainSignalHandlers();
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) throw ConfigError("cannot create listening socket");
  const int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd);
    throw ConfigError("cannot bind 127.0.0.1:" + std::to_string(port) + ": " +
                      std::strerror(errno));
  }
  if (::listen(listen_fd, 64) != 0) {
    ::close(listen_fd);
    throw ConfigError("cannot listen on 127.0.0.1:" + std::to_string(port));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  announce << "listening on 127.0.0.1:" << ntohs(addr.sin_port) << "\n" << std::flush;

  Daemon daemon(service, options);
  std::mutex sessions_mutex;
  std::vector<std::shared_ptr<TcpSession>> sessions;
  std::vector<std::thread> session_threads;

  while (!DrainSignalled()) {
    const int client_fd = ::accept(listen_fd, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks the drain flag
      break;
    }
    auto session = std::make_shared<TcpSession>(client_fd, daemon);
    {
      std::lock_guard<std::mutex> lock(sessions_mutex);
      sessions.push_back(session);
    }
    session_threads.emplace_back([session] { session->Run(); });
  }
  ::close(listen_fd);

  // Drain: no new connections, force open readers to EOF, let every session
  // flush its outstanding responses, then wait for the pool.
  {
    std::lock_guard<std::mutex> lock(sessions_mutex);
    for (auto& session : sessions) session->ShutdownRead();
  }
  for (std::thread& thread : session_threads) thread.join();
  daemon.Drain();
  if (obs::Tracer* t = obs::ActiveTracer()) {
    t->Emit(obs::TraceEvent("svc.drain").F("served", daemon.served()));
  }
  return 0;
}

}  // namespace commsched::svc
