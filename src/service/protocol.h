// The scheduling service's JSONL wire protocol (DESIGN.md §10).
//
// One request per line, one response line per request. Every request is a
// JSON object with an "op" plus op-specific fields; responses echo the
// request "id" (an opaque client string) and carry either the result fields
// or {"ok":false,"error":...}. Unknown keys are rejected — a typoed knob
// silently falling back to a default is worse than an error.
//
//   {"id":"1","op":"schedule","topology":{"kind":"random","switches":16,
//    "seed":1},"apps":4,"algo":"tabu","seeds":10,"iters":20,"search_seed":1}
//   {"id":"2","op":"quality","topology":{"kind":"rings"},
//    "partition":[0,0,0,0,0,0,1,1,1,1,1,1,2,2,2,2,2,2,3,3,3,3,3,3]}
//   {"id":"3","op":"simulate","topology":{"kind":"mixed"},"apps":4,
//    "mapping":"blocked","points":2,"max_rate":0.4,"warmup":500,
//    "measure":1500}
//   {"id":"4","op":"stats"}   {"id":"5","op":"ping"}
//
// Field defaults deliberately mirror the one-shot CLI flags so a request
// with the same knobs returns byte-identical result text (the e2e test
// enforces this).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "topology/graph.h"

namespace commsched::svc {

enum class RequestOp {
  kPing,      // liveness probe
  kStats,     // cache hit/miss/eviction + served-request counts + live views
  kSleep,     // testing/bench aid: hold a worker for sleep_ms
  kSchedule,  // mapping search (§4.2) over a cached distance table
  kQuality,   // F_G / D_G / C_c of an explicit partition (§4.1)
  kSimulate,  // flit-level load sweep (§5) for a mapping
  kHealth,    // liveness + drain state of the serving daemon
  kReady,     // readiness: true until the daemon starts draining
  kMetrics,   // Prometheus text exposition of the registry
  kBatch,     // many sub-requests in one frame (one response array)
};

/// Number of RequestOp values (for op-indexed lookup tables).
inline constexpr std::size_t kRequestOpCount =
    static_cast<std::size_t>(RequestOp::kBatch) + 1;

[[nodiscard]] const char* OpName(RequestOp op);

/// Topology selector, mirroring the CLI's --kind family. "text" carries an
/// inline topology in topology/serialize.h's format; all kinds canonicalize
/// to the same cache key, so a generator spec and its serialized text hit
/// the same cache entry.
struct TopologyRequest {
  // random|rings|mixed|mesh|torus|torus3d|fattree|hypercube|text
  std::string kind = "random";
  std::size_t switches = 16;
  std::size_t hosts = 4;
  std::size_t degree = 3;
  std::uint64_t seed = 1;
  std::size_t rows = 4;
  std::size_t cols = 4;
  std::size_t dim = 4;
  std::size_t x = 4;  // torus3d dimensions
  std::size_t y = 4;
  std::size_t z = 4;
  std::size_t k = 4;  // fat-tree arity (even)
  std::string text;
};

/// Materializes the requested topology (throws ConfigError on bad specs).
[[nodiscard]] topo::SwitchGraph BuildTopology(const TopologyRequest& request);

struct BatchEntry;

/// One parsed protocol request. Defaults match the CLI.
struct Request {
  std::string id;
  RequestOp op = RequestOp::kPing;
  TopologyRequest topology;
  std::size_t apps = 4;

  // schedule knobs (nullopt = the CLI's default for that algorithm,
  // resolved against the topology by exec.h).
  std::string algo = "tabu";  // tabu|sd|random|sa|gsa
  std::optional<std::size_t> seeds;
  std::optional<std::size_t> iterations;
  std::optional<std::size_t> samples;
  std::uint64_t search_seed = 1;
  bool parallel_seeds = false;

  // multilevel schedule knobs (DESIGN.md §13). "multilevel": true switches
  // the schedule op to the coarsen/map/uncoarsen pipeline over a generated
  // process communication graph.
  bool multilevel = false;
  std::size_t procs = 0;             // process count (required when multilevel)
  std::string pattern = "grid";      // ring|grid|random
  std::uint64_t pattern_seed = 1;
  std::size_t coarsen_target = 0;    // 0 = auto
  std::size_t refine_budget = 0;     // 0 = auto
  std::string distance = "resistance";  // resistance|hops

  // quality: cluster id per switch.
  std::vector<std::size_t> partition;

  // simulate knobs.
  std::string mapping = "op";  // op|random|blocked
  std::uint64_t mapping_seed = 2000;
  std::size_t points = 9;
  double min_rate = 0.08;
  double max_rate = 1.4;
  std::size_t warmup = 5000;
  std::size_t measure = 15000;
  std::size_t vcs = 1;

  // sleep
  std::uint64_t sleep_ms = 0;

  /// 0 = no deadline. A request still queued when its deadline elapses is
  /// answered with an error instead of being executed.
  std::uint64_t deadline_ms = 0;

  /// "timings": true asks the daemon to append a per-stage wall-clock
  /// breakdown (queue/parse/model/search/serialize/other, DESIGN.md §12) to
  /// the response.
  bool want_timings = false;

  /// stats op only: "reset": true zeroes the registry after snapshotting
  /// (guarded by ServiceOptions::allow_stats_reset).
  bool stats_reset = false;

  /// batch op only: the parsed "requests" array. Entries that failed to
  /// parse are kept in place (BatchEntry::error non-empty) so the response
  /// array stays index-aligned with the request array — per-entry error
  /// isolation, never a dropped batch.
  std::vector<BatchEntry> batch;
};

/// One sub-request of a batch frame. Exactly one of the two states holds:
/// `error` empty and `request` valid, or `error` carrying the parse failure
/// with `salvaged_id` holding whatever "id" the malformed entry carried.
struct BatchEntry {
  Request request;
  std::string error;
  std::string salvaged_id;
};

/// Parses one request line. Throws ConfigError on malformed JSON, unknown
/// ops/keys, or type mismatches; the daemon converts that into an error
/// response carrying whatever "id" could be salvaged.
[[nodiscard]] Request ParseRequest(const std::string& line);

/// Best-effort extraction of "id" from a possibly malformed request line,
/// for error responses ("" when unavailable).
[[nodiscard]] std::string SalvageRequestId(const std::string& line);

/// {"id":...,"ok":false,"error":...} (id omitted when empty).
[[nodiscard]] std::string ErrorResponse(const std::string& id, const std::string& error);

/// Error response for one batch sub-request: echoes the enclosing batch id
/// and the entry's position ("batch" and "index" fields) so clients can
/// correlate partial failures inside a batch.
[[nodiscard]] std::string BatchEntryErrorResponse(const std::string& id,
                                                  const std::string& batch_id,
                                                  std::size_t index,
                                                  const std::string& error);

/// The model-cache hash of an already-built graph: FNV-1a over the canonical
/// key text (serialized graph + routing scheme), so two requests describing
/// the same network differently share one entry. The single source of truth
/// for model identity — the service's cache, the artifact store's filenames,
/// and the shard router all key on this value.
[[nodiscard]] std::uint64_t ModelHashOfGraph(const topo::SwitchGraph& graph);

/// Builds the topology and hashes it (the router's path: it never keeps the
/// graph). Throws ConfigError on bad specs, like BuildTopology.
[[nodiscard]] std::uint64_t TopologyModelHash(const TopologyRequest& topology);

}  // namespace commsched::svc
