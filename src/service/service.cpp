#include "service/service.h"

#include <chrono>
#include <sstream>
#include <thread>

#include "common/strings.h"
#include "quality/quality.h"
#include "service/json.h"
#include "simnet/sweep.h"
#include "simnet/traffic.h"
#include "topology/serialize.h"
#include "workload/workload.h"

namespace commsched::svc {
namespace {

/// Canonical cache-key text of a topology: the serialized graph plus the
/// routing scheme. Two requests describing the same network differently
/// (generator spec vs. inline text) canonicalize to the same key.
std::string CanonicalModelKey(const topo::SwitchGraph& graph) {
  return "updown:maxdegree|" + topo::ToText(graph);
}

std::string RenderCacheStats(const CacheStats& stats) {
  JsonObjectWriter writer;
  writer.Field("hits", stats.hits);
  writer.Field("misses", stats.misses);
  writer.Field("evictions", stats.evictions);
  writer.Field("size", static_cast<std::uint64_t>(stats.size));
  writer.Field("capacity", static_cast<std::uint64_t>(stats.capacity));
  return writer.Finish();
}

JsonObjectWriter ResponseHead(const Request& request) {
  JsonObjectWriter writer;
  if (!request.id.empty()) writer.Field("id", request.id);
  writer.Field("ok", true);
  writer.Field("op", OpName(request.op));
  return writer;
}

}  // namespace

SchedulingService::SchedulingService(ServiceOptions options)
    : models_("topology", options.topology_cache_capacity),
      results_("result", options.result_cache_capacity) {}

std::string SchedulingService::Execute(const Request& request) {
  executed_.fetch_add(1, std::memory_order_relaxed);
  try {
    return ExecuteOrThrow(request);
  } catch (const std::exception& e) {
    obs::Registry::Global().GetCounter("svc.errors").Add();
    return ErrorResponse(request.id, e.what());
  }
}

std::string SchedulingService::ExecuteOrThrow(const Request& request) {
  switch (request.op) {
    case RequestOp::kPing:
      return ResponseHead(request).Finish();
    case RequestOp::kSleep: {
      std::this_thread::sleep_for(std::chrono::milliseconds(request.sleep_ms));
      JsonObjectWriter writer = ResponseHead(request);
      writer.Field("slept_ms", request.sleep_ms);
      return writer.Finish();
    }
    case RequestOp::kStats:
      return RunStats(request);
    case RequestOp::kSchedule:
      return RunSchedule(request);
    case RequestOp::kQuality:
      return RunQuality(request);
    case RequestOp::kSimulate:
      return RunSimulate(request);
  }
  CS_UNREACHABLE("bad RequestOp");
}

std::shared_ptr<const NetworkModel> SchedulingService::GetModel(
    const TopologyRequest& topology, std::uint64_t* model_hash, bool* model_hit) {
  // Building the graph itself is cheap (generators and text parsing); the
  // cache exists for the routing construction and the O(N²) resistance
  // solves behind DistanceTable::Build.
  topo::SwitchGraph graph = BuildTopology(topology);
  const std::uint64_t hash = HashBytes(CanonicalModelKey(graph));
  if (model_hash != nullptr) *model_hash = hash;
  bool hit = true;
  auto model = models_.GetOrCompute(hash, [&graph, &hit]() {
    hit = false;
    return std::make_shared<const NetworkModel>(std::move(graph));
  });
  if (model_hit != nullptr) *model_hit = hit;
  return model;
}

std::shared_ptr<const ScheduleOutcome> SchedulingService::SearchOutcome(
    const NetworkModel& model, std::uint64_t model_hash,
    const std::vector<std::size_t>& cluster_sizes, const SearchKnobs& knobs,
    bool* result_hit) {
  std::ostringstream key;
  key << "model=" << model_hash << "|sizes=" << Join(cluster_sizes, ",") << "|"
      << CanonicalSearchKnobs(knobs, model.graph.switch_count());
  bool hit = true;
  auto outcome =
      results_.GetOrCompute(HashBytes(key.str()), [&model, &cluster_sizes, &knobs, &hit]() {
        hit = false;
        auto computed = std::make_shared<ScheduleOutcome>();
        computed->result = RunMappingSearch(model.table, cluster_sizes, knobs);
        computed->text = sched::FormatSearchResult(computed->result);
        return std::shared_ptr<const ScheduleOutcome>(std::move(computed));
      });
  if (result_hit != nullptr) *result_hit = hit;
  return outcome;
}

std::string SchedulingService::RunSchedule(const Request& request) {
  std::uint64_t model_hash = 0;
  bool model_hit = false;
  auto model = GetModel(request.topology, &model_hash, &model_hit);
  const std::vector<std::size_t> sizes =
      EvenClusterSizes(model->graph.switch_count(), request.apps);

  SearchKnobs knobs;
  knobs.algo = request.algo;
  knobs.seeds = request.seeds;
  knobs.iterations = request.iterations;
  knobs.samples = request.samples;
  knobs.rng_seed = request.search_seed;
  knobs.parallel_seeds = request.parallel_seeds;

  bool result_hit = false;
  auto outcome = SearchOutcome(*model, model_hash, sizes, knobs, &result_hit);

  JsonObjectWriter writer = ResponseHead(request);
  writer.Field("partition", outcome->result.best.ToString());
  writer.Field("fg", outcome->result.best_fg);
  writer.Field("dg", outcome->result.best_dg);
  writer.Field("cc", outcome->result.best_cc);
  writer.Field("moves", static_cast<std::uint64_t>(outcome->result.iterations));
  writer.Field("evaluations", static_cast<std::uint64_t>(outcome->result.evaluations));
  writer.Field("model_cache", model_hit ? "hit" : "miss");
  writer.Field("result_cache", result_hit ? "hit" : "miss");
  writer.Field("text", outcome->text);
  return writer.Finish();
}

std::string SchedulingService::RunQuality(const Request& request) {
  bool model_hit = false;
  auto model = GetModel(request.topology, nullptr, &model_hit);
  if (request.partition.size() != model->graph.switch_count()) {
    throw ConfigError("partition names " + std::to_string(request.partition.size()) +
                      " switches, topology has " +
                      std::to_string(model->graph.switch_count()));
  }
  const qual::Partition partition(request.partition);  // validates contiguity
  const double fg = qual::GlobalSimilarity(model->table, partition);
  const double dg = qual::GlobalDissimilarity(model->table, partition);

  JsonObjectWriter writer = ResponseHead(request);
  writer.Field("partition", partition.ToString());
  writer.Field("fg", fg);
  writer.Field("dg", dg);
  writer.Field("cc", dg / fg);
  writer.Field("model_cache", model_hit ? "hit" : "miss");
  return writer.Finish();
}

std::string SchedulingService::RunSimulate(const Request& request) {
  std::uint64_t model_hash = 0;
  bool model_hit = false;
  auto model = GetModel(request.topology, &model_hash, &model_hit);
  const topo::SwitchGraph& graph = model->graph;
  const std::vector<std::size_t> sizes = EvenClusterSizes(graph.switch_count(), request.apps);
  const work::Workload workload =
      work::Workload::Uniform(request.apps, graph.host_count() / request.apps);

  // The "op" mapping reuses the memoized default search — a repeat simulate
  // on a known topology skips both the resistance solve and the search.
  qual::Partition partition = [&] {
    if (request.mapping == "op") {
      return SearchOutcome(*model, model_hash, sizes, SearchKnobs{}, nullptr)->result.best;
    }
    return ChooseMappingPartition(request.mapping, &model->table, sizes,
                                  request.mapping_seed, request.parallel_seeds);
  }();

  const auto mapping = work::ProcessMapping::FromPartition(graph, workload, partition);
  const sim::TrafficPattern pattern(graph, workload, mapping);

  sim::SweepOptions sweep;
  sweep.points = request.points;
  sweep.min_rate = request.min_rate;
  sweep.max_rate = request.max_rate;
  sweep.config.virtual_channels = request.vcs;
  sweep.config.warmup_cycles = request.warmup;
  sweep.config.measure_cycles = request.measure;
  const sim::SweepResult result = sim::RunLoadSweep(graph, model->routing, pattern, sweep);

  std::string points;
  for (const sim::SweepPoint& p : result.points) {
    JsonObjectWriter point;
    point.Field("offered", p.offered_rate);
    point.Field("accepted", p.metrics.accepted_flits_per_switch_cycle);
    point.Field("latency", p.metrics.avg_latency_cycles);
    point.Field("saturated", p.metrics.Saturated());
    if (!points.empty()) points += ",";
    points += point.Finish();
  }

  JsonObjectWriter writer = ResponseHead(request);
  writer.Field("mapping", partition.ToString());
  writer.Field("throughput", result.Throughput());
  writer.Raw("points", "[" + points + "]");
  writer.Field("model_cache", model_hit ? "hit" : "miss");
  writer.Field("text", FormatSimulateText(partition, result));
  return writer.Finish();
}

std::string SchedulingService::RunStats(const Request& request) {
  JsonObjectWriter writer = ResponseHead(request);
  writer.Field("executed", executed());
  writer.Raw("topology_cache", RenderCacheStats(models_.Stats()));
  writer.Raw("result_cache", RenderCacheStats(results_.Stats()));
  return writer.Finish();
}

}  // namespace commsched::svc
