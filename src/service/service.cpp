#include "service/service.h"

#include <array>
#include <chrono>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "common/strings.h"
#include "obs/prometheus.h"
#include "obs/request.h"
#include "obs/rolling.h"
#include "quality/quality.h"
#include "service/json.h"
#include "service/store.h"
#include "simnet/sweep.h"
#include "simnet/traffic.h"
#include "topology/serialize.h"
#include "workload/workload.h"

namespace commsched::svc {
namespace {

std::string RenderCacheStats(const CacheStats& stats) {
  JsonObjectWriter writer;
  writer.Field("hits", stats.hits);
  writer.Field("misses", stats.misses);
  writer.Field("evictions", stats.evictions);
  writer.Field("size", static_cast<std::uint64_t>(stats.size));
  writer.Field("capacity", static_cast<std::uint64_t>(stats.capacity));
  return writer.Finish();
}

/// Per-op served counters, resolved once: the per-request hot path must not
/// pay a locked registry lookup (Registry::GetCounter takes a mutex).
obs::Counter& OpCounter(RequestOp op) {
  static const auto table = [] {
    std::array<obs::Counter*, kRequestOpCount> counters{};
    for (std::size_t i = 0; i < kRequestOpCount; ++i) {
      counters[i] = &obs::Registry::Global().GetCounter(
          std::string("svc.op.") + OpName(static_cast<RequestOp>(i)));
    }
    return counters;
  }();
  return *table[static_cast<std::size_t>(op)];
}

JsonObjectWriter ResponseHead(const Request& request) {
  JsonObjectWriter writer;
  if (!request.id.empty()) writer.Field("id", request.id);
  writer.Field("ok", true);
  writer.Field("op", OpName(request.op));
  return writer;
}

}  // namespace

SchedulingService::SchedulingService(ServiceOptions options)
    : options_(std::move(options)),
      models_("topology", options_.topology_cache_capacity),
      results_("result", options_.result_cache_capacity),
      ml_results_("ml_result", options_.result_cache_capacity),
      solve_counter_(&obs::Registry::Global().GetCounter("svc.model.solve")) {
  if (!options_.store_dir.empty()) {
    store_ = std::make_unique<ArtifactStore>(options_.store_dir);
    WarmBootFromStore();
  }
}

SchedulingService::~SchedulingService() = default;

void SchedulingService::WarmBootFromStore() {
  for (const std::uint64_t key : store_->ListKeys(ArtifactKind::kModel)) {
    // Get() counts a store.hit per loaded artifact and already screens
    // header/hash corruption; decode failures and key mismatches (a renamed
    // file) are screened here so they never poison the cache.
    std::optional<std::string> payload = store_->Get(ArtifactKind::kModel, key);
    if (!payload.has_value()) continue;
    try {
      std::shared_ptr<const NetworkModel> model = DecodeModelArtifact(*payload);
      if (ModelHashOfGraph(model->graph) != key) {
        store_->NoteCorrupt();
        continue;
      }
      models_.Insert(key, std::move(model));
    } catch (const std::exception&) {
      store_->NoteCorrupt();
    }
  }
}

void SchedulingService::SetStatusProvider(std::function<DaemonStatus()> provider) {
  const std::lock_guard<std::mutex> lock(status_mutex_);
  status_provider_ = std::move(provider);
}

DaemonStatus SchedulingService::Status() const {
  std::function<DaemonStatus()> provider;
  {
    const std::lock_guard<std::mutex> lock(status_mutex_);
    provider = status_provider_;
  }
  return provider ? provider() : DaemonStatus{};
}

std::string SchedulingService::Execute(const Request& request) {
  executed_.fetch_add(1, std::memory_order_relaxed);
  OpCounter(request.op).Add();
  try {
    return ExecuteOrThrow(request);
  } catch (const std::exception& e) {
    obs::Registry::Global().GetCounter("svc.errors").Add();
    return ErrorResponse(request.id, e.what());
  }
}

std::string SchedulingService::ExecuteOrThrow(const Request& request) {
  switch (request.op) {
    case RequestOp::kPing:
      return ResponseHead(request).Finish();
    case RequestOp::kSleep: {
      std::this_thread::sleep_for(std::chrono::milliseconds(request.sleep_ms));
      JsonObjectWriter writer = ResponseHead(request);
      writer.Field("slept_ms", request.sleep_ms);
      return writer.Finish();
    }
    case RequestOp::kStats:
      return RunStats(request);
    case RequestOp::kSchedule:
      return RunSchedule(request);
    case RequestOp::kQuality:
      return RunQuality(request);
    case RequestOp::kSimulate:
      return RunSimulate(request);
    case RequestOp::kHealth:
      return RunHealth(request);
    case RequestOp::kReady:
      return RunReady(request);
    case RequestOp::kMetrics:
      return RunMetrics(request);
    case RequestOp::kBatch:
      return RunBatch(request);
  }
  CS_UNREACHABLE("bad RequestOp");
}

namespace {

/// Frame-scoped model memo, active while RunBatch executes on its worker.
/// Keyed by the raw topology spelling — not the canonical graph text — so
/// repeated sub-requests for one topology skip even the graph construction
/// and canonical-text hashing a standalone request pays on every call.
/// Thread-local because a batch runs sequentially on one worker; the memo
/// dies with the frame, so it never needs eviction or invalidation.
struct BatchModelMemo {
  std::map<std::string, std::pair<std::uint64_t, std::shared_ptr<const NetworkModel>>> models;
  /// Rendered schedule responses minus their id head, keyed by the full
  /// schedule body (ScheduleBodyKey). Only hit/hit responses land here — see
  /// RunSchedule — so a memo copy is byte-for-byte what re-executing the
  /// repeat would render, id aside.
  std::map<std::string, std::string> schedule_responses;
};

thread_local BatchModelMemo* t_batch_memo = nullptr;

std::string TopologySpecKey(const TopologyRequest& t) {
  std::string key = t.kind;
  key += '|';
  for (const std::size_t v : {t.switches, t.hosts, t.degree, t.rows, t.cols, t.dim, t.x, t.y,
                              t.z, t.k}) {
    key += std::to_string(v);
    key += ',';
  }
  key += std::to_string(t.seed);
  key += '|';
  key += t.text;
  return key;
}

/// Everything RunSchedule's output depends on except the request id.
std::string ScheduleBodyKey(const Request& r) {
  std::string key = TopologySpecKey(r.topology);
  key += '|';
  key += std::to_string(r.apps);
  key += '|';
  key += r.algo;
  key += '|';
  key += r.seeds ? std::to_string(*r.seeds) : "-";
  key += '|';
  key += r.iterations ? std::to_string(*r.iterations) : "-";
  key += '|';
  key += r.samples ? std::to_string(*r.samples) : "-";
  key += '|';
  key += std::to_string(r.search_seed);
  key += r.parallel_seeds ? "|p" : "|s";
  return key;
}

/// The exact bytes ResponseHead renders for a non-empty id.
std::string ResponseIdHead(const std::string& id) {
  return "{\"id\":\"" + JsonEscape(id) + "\"";
}

}  // namespace

std::string SchedulingService::RunBatch(const Request& request) {
  // Arm the frame-scoped model memo for the sub-requests below (nested
  // batches are rejected at parse time, so the memo is never re-entered).
  BatchModelMemo memo;
  t_batch_memo = &memo;
  std::string responses;
  std::uint64_t failed = 0;
  for (std::size_t i = 0; i < request.batch.size(); ++i) {
    const BatchEntry& entry = request.batch[i];
    std::string line;
    if (!entry.error.empty()) {
      ++failed;
      obs::Registry::Global().GetCounter("svc.errors").Add();
      line = BatchEntryErrorResponse(entry.salvaged_id, request.id, i, entry.error);
    } else {
      // Execute (not ExecuteOrThrow): an entry that fails mid-execution
      // becomes its standalone error response, and the batch carries on.
      line = Execute(entry.request);
    }
    if (!responses.empty()) responses += ",";
    responses += line;
  }
  t_batch_memo = nullptr;
  JsonObjectWriter writer = ResponseHead(request);
  writer.Field("count", static_cast<std::uint64_t>(request.batch.size()));
  writer.Field("failed", failed);
  writer.Raw("responses", "[" + responses + "]");
  return writer.Finish();
}

std::shared_ptr<const NetworkModel> SchedulingService::GetModel(
    const TopologyRequest& topology, std::uint64_t* model_hash, bool* model_hit) {
  // Inside a batch frame, repeats of one topology spelling resolve from the
  // frame memo: no graph build, no canonical-text hash, and the marker
  // reads "hit" exactly as the standalone repeat's LRU hit would.
  std::string spec_key;
  if (t_batch_memo != nullptr) {
    spec_key = TopologySpecKey(topology);
    const auto memoized = t_batch_memo->models.find(spec_key);
    if (memoized != t_batch_memo->models.end()) {
      if (model_hash != nullptr) *model_hash = memoized->second.first;
      if (model_hit != nullptr) *model_hit = true;
      // Still touch the LRU by hash: the hit/miss counters stay truthful for
      // stats consumers, the entry's recency refreshes, and a model evicted
      // mid-frame re-seats without a re-solve. The memo's saving is the
      // skipped graph build + canonical-text hash, not this lookup.
      std::shared_ptr<const NetworkModel> kept = memoized->second.second;
      return models_.GetOrCompute(memoized->second.first,
                                  [&kept]() { return kept; });
    }
  }
  // Building the graph itself is cheap (generators and text parsing); the
  // cache exists for the routing construction and the O(N²) resistance
  // solves behind DistanceTable::Build.
  topo::SwitchGraph graph = BuildTopology(topology);
  const std::uint64_t hash = ModelHashOfGraph(graph);
  if (model_hash != nullptr) *model_hash = hash;
  bool hit = true;
  auto model = models_.GetOrCompute(
      hash, [this, &graph, hash, &hit]() -> std::shared_ptr<const NetworkModel> {
        hit = false;
        if (store_ != nullptr) {
          // Cache miss but maybe a store hit: a model evicted (or solved by
          // a previous incarnation of this daemon) restores from disk
          // without re-solving.
          if (std::optional<std::string> payload = store_->Get(ArtifactKind::kModel, hash)) {
            try {
              return DecodeModelArtifact(*payload);
            } catch (const std::exception&) {
              store_->NoteCorrupt();  // fall through to a cold solve
            }
          }
        }
        solve_counter_->Add();
        auto built = std::make_shared<const NetworkModel>(std::move(graph));
        if (store_ != nullptr) {
          store_->Put(ArtifactKind::kModel, hash, EncodeModelArtifact(*built));
        }
        return built;
      });
  if (model_hit != nullptr) *model_hit = hit;
  if (t_batch_memo != nullptr) {
    t_batch_memo->models.emplace(std::move(spec_key), std::make_pair(hash, model));
  }
  return model;
}

std::shared_ptr<const ScheduleOutcome> SchedulingService::SearchOutcome(
    const NetworkModel& model, std::uint64_t model_hash,
    const std::vector<std::size_t>& cluster_sizes, const SearchKnobs& knobs,
    bool* result_hit) {
  std::ostringstream key;
  key << "model=" << model_hash << "|sizes=" << Join(cluster_sizes, ",") << "|"
      << CanonicalSearchKnobs(knobs, model.graph.switch_count());
  bool hit = true;
  auto outcome =
      results_.GetOrCompute(HashBytes(key.str()), [&model, &cluster_sizes, &knobs, &hit]() {
        hit = false;
        auto computed = std::make_shared<ScheduleOutcome>();
        computed->result = RunMappingSearch(model.table, cluster_sizes, knobs);
        computed->text = sched::FormatSearchResult(computed->result);
        return std::shared_ptr<const ScheduleOutcome>(std::move(computed));
      });
  if (result_hit != nullptr) *result_hit = hit;
  return outcome;
}

std::string SchedulingService::RunSchedule(const Request& request) {
  if (request.multilevel) return RunScheduleMultilevel(request);
  // Frame-scoped response memo: inside a batch, a repeat of a schedule body
  // that already rendered as a pure cache read (model AND result hit) only
  // re-renders the id head. A hit/hit response is a deterministic function
  // of the body, so the memo copy is byte-identical to re-executing the
  // repeat — the markers a standalone repeat would render are hit/hit too.
  std::string memo_key;
  if (t_batch_memo != nullptr && !request.id.empty() && !request.want_timings) {
    memo_key = ScheduleBodyKey(request);
    const auto memoized = t_batch_memo->schedule_responses.find(memo_key);
    if (memoized != t_batch_memo->schedule_responses.end()) {
      return ResponseIdHead(request.id) + memoized->second;
    }
  }
  std::uint64_t model_hash = 0;
  bool model_hit = false;
  std::shared_ptr<const NetworkModel> model;
  {
    const obs::StageTimer stage(obs::RequestStage::kModel);
    model = GetModel(request.topology, &model_hash, &model_hit);
  }
  const std::vector<std::size_t> sizes =
      EvenClusterSizes(model->graph.switch_count(), request.apps);

  SearchKnobs knobs;
  knobs.algo = request.algo;
  knobs.seeds = request.seeds;
  knobs.iterations = request.iterations;
  knobs.samples = request.samples;
  knobs.rng_seed = request.search_seed;
  knobs.parallel_seeds = request.parallel_seeds;

  bool result_hit = false;
  std::shared_ptr<const ScheduleOutcome> outcome;
  {
    const obs::StageTimer stage(obs::RequestStage::kSearch);
    outcome = SearchOutcome(*model, model_hash, sizes, knobs, &result_hit);
  }

  const obs::StageTimer serialize_stage(obs::RequestStage::kSerialize);
  JsonObjectWriter writer = ResponseHead(request);
  writer.Field("partition", outcome->result.best.ToString());
  writer.Field("fg", outcome->result.best_fg);
  writer.Field("dg", outcome->result.best_dg);
  writer.Field("cc", outcome->result.best_cc);
  writer.Field("moves", static_cast<std::uint64_t>(outcome->result.iterations));
  writer.Field("evaluations", static_cast<std::uint64_t>(outcome->result.evaluations));
  writer.Field("model_cache", model_hit ? "hit" : "miss");
  writer.Field("result_cache", result_hit ? "hit" : "miss");
  writer.Field("text", outcome->text);
  std::string line = writer.Finish();
  if (!memo_key.empty() && model_hit && result_hit) {
    const std::string head = ResponseIdHead(request.id);
    if (line.compare(0, head.size(), head) == 0) {
      t_batch_memo->schedule_responses.emplace(std::move(memo_key),
                                               line.substr(head.size()));
    }
  }
  return line;
}

std::string SchedulingService::RunScheduleMultilevel(const Request& request) {
  MultilevelKnobs knobs;
  knobs.processes = request.procs;
  knobs.pattern = request.pattern;
  knobs.pattern_seed = request.pattern_seed;
  knobs.coarsen_target = request.coarsen_target;
  knobs.refine_budget = request.refine_budget;
  knobs.seeds = request.seeds;
  knobs.iterations = request.iterations;
  knobs.rng_seed = request.search_seed;
  knobs.distance = request.distance;
  const std::string canonical = CanonicalMultilevelKnobs(knobs);  // validates

  std::uint64_t model_hash = 0;
  bool model_hit = false;
  std::shared_ptr<const NetworkModel> model;
  {
    const obs::StageTimer stage(obs::RequestStage::kModel);
    model = GetModel(request.topology, &model_hash, &model_hit);
  }

  bool result_hit = true;
  std::shared_ptr<const MultilevelOutcome> outcome;
  {
    const obs::StageTimer stage(obs::RequestStage::kSearch);
    const std::string key = "model=" + std::to_string(model_hash) + "|" + canonical;
    outcome = ml_results_.GetOrCompute(HashBytes(key), [&model, &knobs, &result_hit]() {
      result_hit = false;
      auto computed = std::make_shared<MultilevelOutcome>();
      // "hops" skips the model's resistance table for a per-compute BFS
      // table — the memo makes repeats free either way.
      const dist::DistanceTable hops = knobs.distance == "hops"
                                           ? dist::DistanceTable::BuildGraphHops(model->graph)
                                           : dist::DistanceTable();
      const dist::DistanceTable& table = knobs.distance == "hops" ? hops : model->table;
      computed->result =
          svc::RunMultilevelSchedule(table, model->graph.hosts_per_switch(), knobs);
      computed->text = FormatMultilevelText(computed->result, model->graph.switch_count(),
                                            model->graph.hosts_per_switch());
      return std::shared_ptr<const MultilevelOutcome>(std::move(computed));
    });
  }

  const obs::StageTimer serialize_stage(obs::RequestStage::kSerialize);
  JsonObjectWriter writer = ResponseHead(request);
  writer.Field("multilevel", true);
  writer.Field("procs", static_cast<std::uint64_t>(outcome->result.switch_of_process.size()));
  writer.Field("cost", outcome->result.cost);
  writer.Field("normalized", outcome->result.normalized);
  writer.Field("levels", static_cast<std::uint64_t>(outcome->result.levels));
  writer.Field("coarsest", static_cast<std::uint64_t>(outcome->result.coarsest_vertices));
  writer.Field("max_load", static_cast<std::uint64_t>(outcome->result.max_load));
  writer.Field("model_cache", model_hit ? "hit" : "miss");
  writer.Field("result_cache", result_hit ? "hit" : "miss");
  writer.Field("text", outcome->text);
  return writer.Finish();
}

std::string SchedulingService::RunQuality(const Request& request) {
  bool model_hit = false;
  std::shared_ptr<const NetworkModel> model;
  {
    const obs::StageTimer stage(obs::RequestStage::kModel);
    model = GetModel(request.topology, nullptr, &model_hit);
  }
  if (request.partition.size() != model->graph.switch_count()) {
    throw ConfigError("partition names " + std::to_string(request.partition.size()) +
                      " switches, topology has " +
                      std::to_string(model->graph.switch_count()));
  }
  const qual::Partition partition(request.partition);  // validates contiguity
  double fg = 0.0;
  double dg = 0.0;
  {
    const obs::StageTimer stage(obs::RequestStage::kSearch);
    fg = qual::GlobalSimilarity(model->table, partition);
    dg = qual::GlobalDissimilarity(model->table, partition);
  }

  const obs::StageTimer serialize_stage(obs::RequestStage::kSerialize);
  JsonObjectWriter writer = ResponseHead(request);
  writer.Field("partition", partition.ToString());
  writer.Field("fg", fg);
  writer.Field("dg", dg);
  writer.Field("cc", dg / fg);
  writer.Field("model_cache", model_hit ? "hit" : "miss");
  return writer.Finish();
}

std::string SchedulingService::RunSimulate(const Request& request) {
  std::uint64_t model_hash = 0;
  bool model_hit = false;
  std::shared_ptr<const NetworkModel> model;
  {
    const obs::StageTimer stage(obs::RequestStage::kModel);
    model = GetModel(request.topology, &model_hash, &model_hit);
  }
  const topo::SwitchGraph& graph = model->graph;
  const std::vector<std::size_t> sizes = EvenClusterSizes(graph.switch_count(), request.apps);
  const work::Workload workload =
      work::Workload::Uniform(request.apps, graph.host_count() / request.apps);

  // The "op" mapping reuses the memoized default search — a repeat simulate
  // on a known topology skips both the resistance solve and the search. The
  // search stage covers mapping choice plus the sweep itself.
  const auto [partition, result] = [&] {
    const obs::StageTimer stage(obs::RequestStage::kSearch);
    qual::Partition chosen = [&] {
      if (request.mapping == "op") {
        return SearchOutcome(*model, model_hash, sizes, SearchKnobs{}, nullptr)->result.best;
      }
      return ChooseMappingPartition(request.mapping, &model->table, sizes,
                                    request.mapping_seed, request.parallel_seeds);
    }();
    const auto mapping = work::ProcessMapping::FromPartition(graph, workload, chosen);
    const sim::TrafficPattern pattern(graph, workload, mapping);

    sim::SweepOptions sweep;
    sweep.points = request.points;
    sweep.min_rate = request.min_rate;
    sweep.max_rate = request.max_rate;
    sweep.config.virtual_channels = request.vcs;
    sweep.config.warmup_cycles = request.warmup;
    sweep.config.measure_cycles = request.measure;
    sim::SweepResult swept = sim::RunLoadSweep(graph, model->routing, pattern, sweep);
    return std::make_pair(std::move(chosen), std::move(swept));
  }();

  const obs::StageTimer serialize_stage(obs::RequestStage::kSerialize);
  std::string points;
  for (const sim::SweepPoint& p : result.points) {
    JsonObjectWriter point;
    point.Field("offered", p.offered_rate);
    point.Field("accepted", p.metrics.accepted_flits_per_switch_cycle);
    point.Field("latency", p.metrics.avg_latency_cycles);
    point.Field("saturated", p.metrics.Saturated());
    if (!points.empty()) points += ",";
    points += point.Finish();
  }

  JsonObjectWriter writer = ResponseHead(request);
  writer.Field("mapping", partition.ToString());
  writer.Field("throughput", result.Throughput());
  writer.Raw("points", "[" + points + "]");
  writer.Field("model_cache", model_hit ? "hit" : "miss");
  writer.Field("text", FormatSimulateText(partition, result));
  return writer.Finish();
}

std::string SchedulingService::RunStats(const Request& request) {
  if (request.stats_reset && !options_.allow_stats_reset) {
    throw ConfigError("stats reset is disabled (start with --allow-stats-reset)");
  }
  JsonObjectWriter writer = ResponseHead(request);
  writer.Field("executed", executed());
  writer.Raw("topology_cache", RenderCacheStats(models_.Stats()));
  writer.Raw("result_cache", RenderCacheStats(results_.Stats()));

  if (store_ != nullptr) {
    const StoreStats store = store_->Stats();
    JsonObjectWriter section;
    section.Field("dir", store_->dir());
    section.Field("hits", store.hits);
    section.Field("misses", store.misses);
    section.Field("writes", store.writes);
    section.Field("corrupt", store.corrupt);
    writer.Raw("store", section.Finish());
  }

  {
    // Per-op request counts ("hottest ops" in the top dashboard).
    JsonObjectWriter ops;
    for (const auto& [name, value] : obs::Registry::Global().CounterValues()) {
      if (StartsWith(name, "svc.op.")) ops.Field(name.substr(7), value);
    }
    writer.Raw("ops", ops.Finish());
  }

  {
    JsonObjectWriter histograms;
    for (const auto& [name, snap] : obs::Registry::Global().HistogramValues()) {
      JsonObjectWriter entry;
      entry.Field("count", snap.count);
      entry.Field("min", snap.min);
      entry.Field("max", snap.max);
      entry.Field("mean", snap.Mean());
      entry.Field("p50", snap.Percentile(0.50));
      entry.Field("p90", snap.Percentile(0.90));
      entry.Field("p99", snap.Percentile(0.99));
      histograms.Raw(name, entry.Finish());
    }
    writer.Raw("histograms", histograms.Finish());
  }

  {
    const std::uint64_t now_ns = obs::NowNanos();
    const obs::RollingRegistry& rolling = obs::RollingRegistry::Global();
    JsonObjectWriter rates;
    for (const auto& [name, rate] : rolling.CounterRates(now_ns)) {
      rates.Field(name, rate);
    }
    JsonObjectWriter windows;
    for (const auto& [name, snap] : rolling.HistogramWindows(now_ns)) {
      JsonObjectWriter window;
      window.Field("count", snap.count);
      window.Field("p50", snap.Percentile(0.50));
      window.Field("p99", snap.Percentile(0.99));
      windows.Raw(name, window.Finish());
    }
    JsonObjectWriter views;
    views.Raw("rates", rates.Finish());
    views.Raw("windows", windows.Finish());
    writer.Raw("rolling", views.Finish());
  }

  const DaemonStatus status = Status();
  if (status.attached) {
    JsonObjectWriter queue;
    queue.Field("depth", status.queue_depth);
    queue.Field("running", status.running);
    queue.Field("workers", status.workers);
    queue.Field("draining", status.draining);
    writer.Raw("queue", queue.Finish());
    std::string slow;
    for (const std::string& record : status.slow_tail) {
      if (!slow.empty()) slow += ",";
      slow += record;
    }
    writer.Raw("slow", "[" + slow + "]");
  }

  if (request.stats_reset) {
    // The snapshot above was rendered first: the reset response is the last
    // complete view of the counters it zeroes.
    obs::Registry::Global().ResetAll();
    writer.Field("reset", true);
  }
  return writer.Finish();
}

std::string SchedulingService::RunHealth(const Request& request) {
  const DaemonStatus status = Status();
  JsonObjectWriter writer = ResponseHead(request);
  writer.Field("status", status.draining ? "draining" : "ok");
  writer.Field("executed", executed());
  if (status.attached) writer.Field("served", status.served);
  return writer.Finish();
}

std::string SchedulingService::RunReady(const Request& request) {
  const DaemonStatus status = Status();
  JsonObjectWriter writer = ResponseHead(request);
  writer.Field("ready", status.attached ? !status.draining : true);
  writer.Field("draining", status.draining);
  return writer.Finish();
}

std::string SchedulingService::MetricsText() const {
  obs::PrometheusOptions options;
  options.rolling = &obs::RollingRegistry::Global();
  const DaemonStatus status = Status();
  if (status.attached) {
    options.extra_gauges["svc.queue_depth"] = static_cast<double>(status.queue_depth);
    options.extra_gauges["svc.running"] = static_cast<double>(status.running);
    options.extra_gauges["svc.workers"] = static_cast<double>(status.workers);
    options.extra_gauges["svc.draining"] = status.draining ? 1.0 : 0.0;
    options.extra_gauges["svc.served"] = static_cast<double>(status.served);
  }
  return obs::RenderPrometheus(obs::Registry::Global(), options);
}

std::string SchedulingService::RunMetrics(const Request& request) {
  JsonObjectWriter writer = ResponseHead(request);
  writer.Field("format", "prometheus");
  writer.Field("text", MetricsText());
  return writer.Finish();
}

}  // namespace commsched::svc
