#include "service/shard.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "service/cache.h"
#include "service/protocol.h"

namespace commsched::svc {

namespace {

/// FNV-1a of the short, similar strings the ring hashes ("host:port#v")
/// clusters in the upper bits, which skews ring-arc lengths badly enough to
/// overload one shard ~2x. splitmix64's finalizer avalanche fixes both the
/// point placement and the key lookup side; it is a fixed bijection, so
/// ownership stays deterministic across processes.
std::uint64_t MixHash(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace

ShardRing::ShardRing(std::vector<std::string> nodes, std::size_t vnodes)
    : nodes_(std::move(nodes)), vnodes_(vnodes == 0 ? 1 : vnodes) {
  if (nodes_.empty()) throw ConfigError("shard ring needs at least one node");
  std::set<std::string> seen;
  for (const std::string& node : nodes_) {
    if (node.empty()) throw ConfigError("shard ring node addresses must not be empty");
    if (!seen.insert(node).second) {
      throw ConfigError("duplicate shard ring node '" + node + "'");
    }
  }
  ring_.reserve(nodes_.size() * vnodes_);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t v = 0; v < vnodes_; ++v) {
      ring_.push_back({MixHash(HashBytes(nodes_[i] + "#" + std::to_string(v))), i});
    }
  }
  // Ties (64-bit collisions) break by node index so the ring is a pure
  // function of the node list, never of construction order.
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
  });
}

std::size_t ShardRing::NodeIndexOf(std::uint64_t key) const {
  const std::uint64_t mixed = MixHash(key);
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(), mixed,
      [](std::uint64_t k, const Point& point) { return k < point.hash; });
  if (it == ring_.end()) it = ring_.begin();  // wrap past the highest point
  return it->node;
}

std::uint64_t ShardKeyOf(const Request& request) {
  const auto model_op = [](RequestOp op) {
    return op == RequestOp::kSchedule || op == RequestOp::kQuality || op == RequestOp::kSimulate;
  };
  const TopologyRequest* topology = nullptr;
  if (model_op(request.op)) {
    topology = &request.topology;
  } else if (request.op == RequestOp::kBatch) {
    for (const BatchEntry& entry : request.batch) {
      if (entry.error.empty() && model_op(entry.request.op)) {
        topology = &entry.request.topology;
        break;
      }
    }
  }
  if (topology != nullptr) {
    try {
      return TopologyModelHash(*topology);
    } catch (const ConfigError&) {
      // Unbuildable spec: route by id; the owner renders the build error.
    }
  }
  return HashBytes("id:" + request.id);
}

}  // namespace commsched::svc
