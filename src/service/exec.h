// Shared execution paths between the one-shot CLI and the scheduling
// service daemon.
//
// Both front ends must produce bit-identical results for the same knobs —
// the service e2e test byte-compares served responses against one-shot CLI
// stdout — so the algorithm dispatch, default resolution (e.g. the
// switch-count-dependent tabu iteration budget) and result rendering live
// here exactly once.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "distance/distance_table.h"
#include "quality/partition.h"
#include "sched/multilevel/multilevel.h"
#include "sched/search.h"
#include "simnet/sweep.h"
#include "topology/graph.h"

namespace commsched::svc {

/// Even cluster sizes for `apps` applications over `switch_count` switches;
/// throws ConfigError when the counts do not divide.
[[nodiscard]] std::vector<std::size_t> EvenClusterSizes(std::size_t switch_count,
                                                        std::size_t apps);

/// Mapping-search knobs, normalized across the five searchers. nullopt
/// fields resolve to the CLI defaults (seeds 10 for tabu/sd, tabu iteration
/// budget 60 for >= 20 switches else 20, ...).
struct SearchKnobs {
  std::string algo = "tabu";  // tabu|sd|random|sa|gsa
  std::optional<std::size_t> seeds;
  std::optional<std::size_t> iterations;
  std::optional<std::size_t> samples;
  std::uint64_t rng_seed = 1;
  /// Runs restarts on a thread pool. By the engine's determinism contract
  /// (sched/engine.h) this never changes the result, so cached results are
  /// shared across the flag.
  bool parallel_seeds = false;
};

/// Throws ConfigError when an explicitly-set knob is degenerate (seeds,
/// iterations, or samples == 0 — formerly a silent no-op search). Called by
/// both front ends at parse time and again by RunMappingSearch.
void ValidateSearchKnobs(const SearchKnobs& knobs);

/// A stable, human-readable encoding of the knobs that affect the result —
/// the mapping-memo cache key component. parallel_seeds is deliberately
/// excluded (see above).
[[nodiscard]] std::string CanonicalSearchKnobs(const SearchKnobs& knobs,
                                               std::size_t switch_count);

/// Dispatches to the searcher named by knobs.algo with the CLI's defaults.
/// Throws ConfigError for unknown algorithms.
[[nodiscard]] sched::SearchResult RunMappingSearch(const dist::DistanceTable& table,
                                                   const std::vector<std::size_t>& cluster_sizes,
                                                   const SearchKnobs& knobs);

/// Picks the partition to simulate, mirroring the CLI's --mapping flag:
/// "op" runs the default tabu search over `table` (which must be non-null
/// for this kind only), "random" draws from `mapping_seed`, "blocked" packs
/// clusters by switch id.
[[nodiscard]] qual::Partition ChooseMappingPartition(
    const std::string& mapping, const dist::DistanceTable* table,
    const std::vector<std::size_t>& cluster_sizes, std::uint64_t mapping_seed,
    bool parallel_seeds);

/// The canonical rendering of a simulate run — exactly what the CLI prints
/// before any fault summary: the mapping line, the per-point sweep table,
/// and the throughput line.
[[nodiscard]] std::string FormatSimulateText(const qual::Partition& partition,
                                             const sim::SweepResult& result);

// ---------------------------------------------------------------------------
// Multilevel mapping (schedule --multilevel; DESIGN.md §13). Shared between
// the CLI and the service's schedule op so results stay byte-identical.
// ---------------------------------------------------------------------------

/// Knobs of a multilevel schedule request, normalized across front ends.
struct MultilevelKnobs {
  std::size_t processes = 0;        // process count (pattern generators)
  std::string pattern = "grid";     // ring|grid|random
  std::uint64_t pattern_seed = 1;
  std::size_t coarsen_target = 0;   // 0 = auto
  std::size_t refine_budget = 0;    // 0 = auto
  std::optional<std::size_t> seeds;       // coarsest engine seeds (default 4)
  std::optional<std::size_t> iterations;  // coarsest engine iterations (0 = auto)
  std::uint64_t rng_seed = 1;
  std::string distance = "resistance";  // resistance|hops
};

/// Throws ConfigError on degenerate knobs (processes == 0, explicit zero
/// seeds/iterations, unknown pattern or distance kind).
void ValidateMultilevelKnobs(const MultilevelKnobs& knobs);

/// Memo-key component of a multilevel schedule (see CanonicalSearchKnobs).
[[nodiscard]] std::string CanonicalMultilevelKnobs(const MultilevelKnobs& knobs);

/// Builds the process communication graph named by knobs.pattern
/// (work::MakePatternComm) and maps it onto `table`'s switches.
[[nodiscard]] sched::ml::MultilevelResult RunMultilevelSchedule(const dist::DistanceTable& table,
                                                                std::size_t hosts_per_switch,
                                                                const MultilevelKnobs& knobs);

/// The canonical rendering of a multilevel schedule — exactly what the CLI
/// prints and the service's "text" field carries. The full assignment is
/// listed only for <= 64 processes (byte-identity stays cheap at scale).
[[nodiscard]] std::string FormatMultilevelText(const sched::ml::MultilevelResult& result,
                                               std::size_t switch_count,
                                               std::size_t hosts_per_switch);

}  // namespace commsched::svc
