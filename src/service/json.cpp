#include "service/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace commsched::svc {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue value = ParseValue();
    SkipSpace();
    if (pos_ != text_.size()) Fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) const {
    throw ConfigError("json: " + why + " (at byte " + std::to_string(pos_) + ")");
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] char PeekChar() {
    SkipSpace();
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (PeekChar() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void ExpectWord(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) Fail("invalid literal");
    pos_ += word.size();
  }

  JsonValue ParseValue() {
    const char c = PeekChar();
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return JsonValue::MakeString(ParseString());
      case 't':
        ExpectWord("true");
        return JsonValue::MakeBool(true);
      case 'f':
        ExpectWord("false");
        return JsonValue::MakeBool(false);
      case 'n':
        ExpectWord("null");
        return JsonValue();
      default: return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    std::map<std::string, JsonValue> members;
    if (Consume('}')) return JsonValue::MakeObject(std::move(members));
    while (true) {
      std::string key = ParseString();
      Expect(':');
      members[std::move(key)] = ParseValue();
      if (Consume(',')) continue;
      Expect('}');
      return JsonValue::MakeObject(std::move(members));
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    std::vector<JsonValue> items;
    if (Consume(']')) return JsonValue::MakeArray(std::move(items));
    while (true) {
      items.push_back(ParseValue());
      if (Consume(',')) continue;
      Expect(']');
      return JsonValue::MakeArray(std::move(items));
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': out += ParseUnicodeEscape(); break;
        default: Fail("unknown escape sequence");
      }
    }
  }

  std::string ParseUnicodeEscape() {
    if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
    unsigned code = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = text_[pos_++];
      code <<= 4U;
      if (c >= '0' && c <= '9') {
        code += static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code += static_cast<unsigned>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        code += static_cast<unsigned>(c - 'A') + 10;
      } else {
        Fail("invalid \\u escape digit");
      }
    }
    // UTF-8 encode the BMP code point (surrogate pairs are not needed by
    // the protocol; reject them rather than mis-encode).
    if (code >= 0xD800 && code <= 0xDFFF) Fail("surrogate pairs are not supported");
    std::string out;
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6U)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3FU)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12U)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6U) & 0x3FU)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3FU)));
    }
    return out;
  }

  JsonValue ParseNumber() {
    SkipSpace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    try {
      std::size_t used = 0;
      const double value = std::stod(token, &used);
      if (used != token.size()) Fail("malformed number '" + token + "'");
      return JsonValue::MakeNumber(value);
    } catch (const std::logic_error&) {
      Fail("malformed number '" + token + "'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void KindError(const std::string& context, const char* wanted) {
  throw ConfigError(context + ": expected " + wanted);
}

}  // namespace

JsonValue JsonValue::MakeBool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::MakeNumber(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::MakeString(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

bool JsonValue::AsBool(const std::string& context) const {
  if (kind_ != Kind::kBool) KindError(context, "a boolean");
  return bool_;
}

double JsonValue::AsDouble(const std::string& context) const {
  if (kind_ != Kind::kNumber) KindError(context, "a number");
  return number_;
}

std::uint64_t JsonValue::AsUint(const std::string& context) const {
  if (kind_ != Kind::kNumber) KindError(context, "a non-negative integer");
  if (number_ < 0 || std::floor(number_) != number_ ||
      number_ > 9.007199254740992e15) {  // 2^53: exact integer range
    throw ConfigError(context + ": expected a non-negative integer, got " +
                      FormatJsonNumber(number_));
  }
  return static_cast<std::uint64_t>(number_);
}

const std::string& JsonValue::AsString(const std::string& context) const {
  if (kind_ != Kind::kString) KindError(context, "a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray(const std::string& context) const {
  if (kind_ != Kind::kArray) KindError(context, "an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::AsObject(
    const std::string& context) const {
  if (kind_ != Kind::kObject) KindError(context, "an object");
  return object_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue ParseJson(const std::string& text) { return Parser(text).Parse(); }

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string FormatJsonNumber(double value) {
  std::ostringstream oss;
  oss << value;  // default 6-significant-digit formatting, like the CLI
  return oss.str();
}

JsonObjectWriter& JsonObjectWriter::Key(const std::string& key) {
  if (!body_.empty()) body_ += ",";
  body_ += '"';
  body_ += JsonEscape(key);
  body_ += "\":";
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Field(const std::string& key, const std::string& value) {
  Key(key);
  body_ += '"';
  body_ += JsonEscape(value);
  body_ += '"';
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Field(const std::string& key, const char* value) {
  return Field(key, std::string(value));
}

JsonObjectWriter& JsonObjectWriter::Field(const std::string& key, bool value) {
  Key(key).body_ += value ? "true" : "false";
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Field(const std::string& key, double value) {
  Key(key).body_ += FormatJsonNumber(value);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Field(const std::string& key, std::uint64_t value) {
  Key(key).body_ += std::to_string(value);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Raw(const std::string& key, const std::string& json) {
  Key(key).body_ += json;
  return *this;
}

}  // namespace commsched::svc
