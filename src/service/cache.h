// Content-hashed LRU caching for the scheduling service.
//
// The expensive artifacts of the paper's pipeline are reusable across
// requests that share a topology:
//   * the up*/down* routing function and the O(N²) resistance-solve
//     DistanceTable — cached per (canonical topology text, routing policy);
//   * finished mapping searches — memoized per (model hash, cluster sizes,
//     algorithm, knobs, seed).
// Keys are content hashes (FNV-1a over a canonical key string), so two
// requests describing the same network differently (generator spec vs.
// inline text) still share one entry.
//
// Concurrency: entries are memoized futures. The first requester of a key
// computes the value while later requesters of the same key wait on the
// shared future instead of duplicating the solve — under a 64-request burst
// on one topology, exactly one resistance solve runs. Eviction is LRU over
// completed entries once `capacity` is exceeded. Hits/misses/evictions are
// counted locally (for the protocol's `stats` op) and mirrored into the
// global obs::Registry as cache.<name>.{hit,miss,evict}.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/check.h"
#include "obs/obs.h"

namespace commsched::svc {

/// FNV-1a 64-bit content hash (stable across platforms and runs — cache
/// keys may be logged and compared across processes).
[[nodiscard]] constexpr std::uint64_t HashBytes(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Point-in-time cache statistics (also the `stats` response payload).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;
};

/// Thread-safe LRU cache of shared immutable values keyed by uint64 content
/// hashes, with memoized in-flight computation.
template <typename Value>
class LruCache {
 public:
  /// `name` prefixes the registry counters (cache.<name>.hit/miss/evict).
  LruCache(std::string name, std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity),
        hit_counter_(&obs::Registry::Global().GetCounter("cache." + name + ".hit")),
        miss_counter_(&obs::Registry::Global().GetCounter("cache." + name + ".miss")),
        evict_counter_(&obs::Registry::Global().GetCounter("cache." + name + ".evict")) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Returns the cached value for `key`, computing it with `build` on a
  /// miss. Concurrent callers with the same key share one build; exceptions
  /// from `build` propagate to every waiter and the entry is dropped so a
  /// later request can retry.
  std::shared_ptr<const Value> GetOrCompute(
      std::uint64_t key, const std::function<std::shared_ptr<const Value>()>& build) {
    std::shared_future<std::shared_ptr<const Value>> future;
    std::shared_ptr<std::promise<std::shared_ptr<const Value>>> promise;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        Touch(it->second);
        hits_++;
        hit_counter_->Add();
        future = it->second.future;
      } else {
        misses_++;
        miss_counter_->Add();
        promise = std::make_shared<std::promise<std::shared_ptr<const Value>>>();
        Entry entry;
        entry.future = promise->get_future().share();
        lru_.push_front(key);
        entry.lru_pos = lru_.begin();
        future = entry.future;
        entries_.emplace(key, std::move(entry));
      }
    }
    if (promise != nullptr) {
      try {
        promise->set_value(build());
        std::lock_guard<std::mutex> lock(mutex_);
        EvictOverCapacity();
      } catch (...) {
        promise->set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(mutex_);
        Erase(key);
      }
    }
    return future.get();
  }

  /// Seeds the cache with an already-computed value (the warm-boot path:
  /// models decoded from the artifact store are ready, not built). Counts
  /// neither a hit nor a miss — the first real request for the key then
  /// registers as a hit, which is what "warm" means. A key already present
  /// is left untouched.
  void Insert(std::uint64_t key, std::shared_ptr<const Value> value) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.find(key) != entries_.end()) return;
    std::promise<std::shared_ptr<const Value>> promise;
    promise.set_value(std::move(value));
    Entry entry;
    entry.future = promise.get_future().share();
    lru_.push_front(key);
    entry.lru_pos = lru_.begin();
    entries_.emplace(key, std::move(entry));
    EvictOverCapacity();
  }

  [[nodiscard]] CacheStats Stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    CacheStats stats;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.evictions = evictions_;
    stats.size = entries_.size();
    stats.capacity = capacity_;
    return stats;
  }

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const Value>> future;
    std::list<std::uint64_t>::iterator lru_pos;
  };

  void Touch(Entry& entry) {
    lru_.splice(lru_.begin(), lru_, entry.lru_pos);
    entry.lru_pos = lru_.begin();
  }

  void Erase(std::uint64_t key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) return;
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }

  void EvictOverCapacity() {
    while (entries_.size() > capacity_) {
      // Oldest first; never evict an entry still being computed (its future
      // is not ready) — skip past it. In-flight entries are transient, so
      // the scan terminates.
      auto pos = std::prev(lru_.end());
      while (true) {
        auto it = entries_.find(*pos);
        CS_CHECK(it != entries_.end(), "LRU list out of sync with entry map");
        const bool ready = it->second.future.wait_for(std::chrono::seconds(0)) ==
                           std::future_status::ready;
        if (ready) {
          lru_.erase(it->second.lru_pos);
          entries_.erase(it);
          evictions_++;
          evict_counter_->Add();
          break;
        }
        if (pos == lru_.begin()) return;  // everything older is in flight
        --pos;
      }
    }
  }

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  obs::Counter* hit_counter_;
  obs::Counter* miss_counter_;
  obs::Counter* evict_counter_;
};

}  // namespace commsched::svc
