// Minimal JSON support for the scheduling service protocol and the bench
// tooling.
//
// The service speaks one JSON object per line (JSONL); requests are small
// and flat, google-benchmark output files are one nested object. This is a
// deliberately small recursive-descent parser over the full JSON grammar
// (objects, arrays, strings with escapes, numbers, true/false/null) — unlike
// the fault-plan parser it is schema-free, because protocol requests carry
// optional fields in any order and bench JSON is produced by an external
// library. Malformed input throws ConfigError with a byte offset.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"

namespace commsched::svc {

/// A parsed JSON value. Object member order is not preserved (protocol
/// semantics never depend on it); duplicate keys keep the last value.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] static JsonValue MakeBool(bool value);
  [[nodiscard]] static JsonValue MakeNumber(double value);
  [[nodiscard]] static JsonValue MakeString(std::string value);
  [[nodiscard]] static JsonValue MakeArray(std::vector<JsonValue> items);
  [[nodiscard]] static JsonValue MakeObject(std::map<std::string, JsonValue> members);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }

  /// Typed accessors; throw ConfigError naming `context` on kind mismatch.
  [[nodiscard]] bool AsBool(const std::string& context) const;
  [[nodiscard]] double AsDouble(const std::string& context) const;
  /// Number that must be a non-negative integer (ids, sizes, cycle counts).
  [[nodiscard]] std::uint64_t AsUint(const std::string& context) const;
  [[nodiscard]] const std::string& AsString(const std::string& context) const;
  [[nodiscard]] const std::vector<JsonValue>& AsArray(const std::string& context) const;
  [[nodiscard]] const std::map<std::string, JsonValue>& AsObject(
      const std::string& context) const;

  /// Object member, or nullptr when absent (requires kObject).
  [[nodiscard]] const JsonValue* Find(const std::string& key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one complete JSON document; trailing garbage is an error.
/// Throws ConfigError ("json: ... (at byte N)") on malformed input.
[[nodiscard]] JsonValue ParseJson(const std::string& text);

/// Escapes a string for embedding between double quotes in JSON output
/// (backslash, quote, and control characters; UTF-8 passes through).
[[nodiscard]] std::string JsonEscape(const std::string& text);

/// Incremental writer for one flat-ish JSON object rendered in insertion
/// order — the response side of the protocol. Values added via Raw() must
/// already be valid JSON (used for nested objects).
class JsonObjectWriter {
 public:
  JsonObjectWriter& Field(const std::string& key, const std::string& value);
  JsonObjectWriter& Field(const std::string& key, const char* value);
  JsonObjectWriter& Field(const std::string& key, bool value);
  JsonObjectWriter& Field(const std::string& key, double value);
  JsonObjectWriter& Field(const std::string& key, std::uint64_t value);
  JsonObjectWriter& Raw(const std::string& key, const std::string& json);

  /// The finished object, braces included.
  [[nodiscard]] std::string Finish() const { return "{" + body_ + "}"; }

 private:
  JsonObjectWriter& Key(const std::string& key);

  std::string body_;
};

/// Renders a double the way the rest of the codebase does (ostream default
/// formatting, 6 significant digits) so JSON numbers match CLI text output.
[[nodiscard]] std::string FormatJsonNumber(double value);

}  // namespace commsched::svc
