#include "service/protocol.h"

#include <set>

#include "service/cache.h"
#include "service/json.h"
#include "topology/generator.h"
#include "topology/library.h"
#include "topology/serialize.h"

namespace commsched::svc {
namespace {

RequestOp ParseOp(const std::string& name) {
  if (name == "ping") return RequestOp::kPing;
  if (name == "stats") return RequestOp::kStats;
  if (name == "sleep") return RequestOp::kSleep;
  if (name == "schedule") return RequestOp::kSchedule;
  if (name == "quality") return RequestOp::kQuality;
  if (name == "simulate") return RequestOp::kSimulate;
  if (name == "health") return RequestOp::kHealth;
  if (name == "ready") return RequestOp::kReady;
  if (name == "metrics") return RequestOp::kMetrics;
  if (name == "batch") return RequestOp::kBatch;
  throw ConfigError("unknown op '" + name +
                    "' (ping|stats|sleep|schedule|quality|simulate|health|ready|metrics|batch)");
}

TopologyRequest ParseTopology(const JsonValue& value) {
  TopologyRequest topology;
  for (const auto& [key, member] : value.AsObject("topology")) {
    const std::string context = "topology." + key;
    if (key == "kind") {
      topology.kind = member.AsString(context);
    } else if (key == "switches") {
      topology.switches = member.AsUint(context);
    } else if (key == "hosts") {
      topology.hosts = member.AsUint(context);
    } else if (key == "degree") {
      topology.degree = member.AsUint(context);
    } else if (key == "seed") {
      topology.seed = member.AsUint(context);
    } else if (key == "rows") {
      topology.rows = member.AsUint(context);
    } else if (key == "cols") {
      topology.cols = member.AsUint(context);
    } else if (key == "dim") {
      topology.dim = member.AsUint(context);
    } else if (key == "x") {
      topology.x = member.AsUint(context);
    } else if (key == "y") {
      topology.y = member.AsUint(context);
    } else if (key == "z") {
      topology.z = member.AsUint(context);
    } else if (key == "k") {
      topology.k = member.AsUint(context);
    } else if (key == "text") {
      topology.text = member.AsString(context);
    } else {
      throw ConfigError("unknown topology key '" + key + "'");
    }
  }
  return topology;
}

std::vector<std::size_t> ParsePartition(const JsonValue& value) {
  std::vector<std::size_t> clusters;
  for (const JsonValue& item : value.AsArray("partition")) {
    clusters.push_back(item.AsUint("partition entry"));
  }
  return clusters;
}

}  // namespace

const char* OpName(RequestOp op) {
  switch (op) {
    case RequestOp::kPing: return "ping";
    case RequestOp::kStats: return "stats";
    case RequestOp::kSleep: return "sleep";
    case RequestOp::kSchedule: return "schedule";
    case RequestOp::kQuality: return "quality";
    case RequestOp::kSimulate: return "simulate";
    case RequestOp::kHealth: return "health";
    case RequestOp::kReady: return "ready";
    case RequestOp::kMetrics: return "metrics";
    case RequestOp::kBatch: return "batch";
  }
  CS_UNREACHABLE("bad RequestOp");
}

topo::SwitchGraph BuildTopology(const TopologyRequest& request) {
  const std::string& kind = request.kind;
  if (kind == "random") {
    topo::IrregularTopologyOptions options;
    options.switch_count = request.switches;
    options.hosts_per_switch = request.hosts;
    options.interswitch_degree = request.degree;
    options.seed = request.seed;
    return topo::GenerateIrregularTopology(options);
  }
  if (kind == "rings") return topo::MakeFourRingsOfSix(request.hosts);
  if (kind == "mixed") return topo::MakeMixedDensity16(request.hosts);
  if (kind == "mesh") return topo::MakeMesh2D(request.rows, request.cols, request.hosts);
  if (kind == "torus") return topo::MakeTorus2D(request.rows, request.cols, request.hosts);
  if (kind == "torus3d") {
    if (request.x < 3 || request.y < 3 || request.z < 3) {
      throw ConfigError("torus3d dimensions must all be >= 3");
    }
    return topo::MakeTorus3D(request.x, request.y, request.z, request.hosts);
  }
  if (kind == "fattree") {
    if (request.k < 2 || request.k % 2 != 0) {
      throw ConfigError("fattree arity k must be even and >= 2");
    }
    return topo::MakeFatTree(request.k, request.hosts);
  }
  if (kind == "hypercube") return topo::MakeHypercube(request.dim, request.hosts);
  if (kind == "text") {
    if (request.text.empty()) throw ConfigError("topology kind 'text' requires \"text\"");
    return topo::FromText(request.text);
  }
  throw ConfigError("unknown topology kind '" + kind + "'");
}

namespace {

/// Best-effort "id" of a (possibly malformed) sub-request object — the
/// per-entry analogue of SalvageRequestId, used to label batch-entry error
/// responses.
std::string SalvageEntryId(const JsonValue& entry) {
  if (!entry.is_object()) return "";
  const JsonValue* id = entry.Find("id");
  if (id != nullptr && id->is_string()) return id->AsString("id");
  return "";
}

Request ParseRequestObject(const JsonValue& root, bool allow_batch);

/// Parses the batch "requests" array with per-entry error isolation: a
/// malformed entry becomes a BatchEntry carrying the error (and any
/// salvageable sub-id) instead of failing the whole frame. Batch-shape
/// errors — missing/empty array, nested batch — still throw: there is no
/// meaningful partial response for those.
std::vector<BatchEntry> ParseBatchEntries(const JsonValue& value) {
  std::vector<BatchEntry> entries;
  for (const JsonValue& item : value.AsArray("requests")) {
    BatchEntry entry;
    try {
      entry.request = ParseRequestObject(item, /*allow_batch=*/false);
    } catch (const std::exception& e) {
      entry.error = e.what();
      entry.salvaged_id = SalvageEntryId(item);
    }
    entries.push_back(std::move(entry));
  }
  if (entries.empty()) {
    throw ConfigError("batch \"requests\" must be a non-empty array");
  }
  return entries;
}

Request ParseRequestObject(const JsonValue& root, bool allow_batch) {
  const JsonValue* op = root.Find("op");
  if (!root.is_object() || op == nullptr) {
    throw ConfigError("request must be a JSON object with an \"op\"");
  }
  Request request;
  request.op = ParseOp(op->AsString("op"));
  if (request.op == RequestOp::kBatch && !allow_batch) {
    throw ConfigError("batch entries must not themselves be batches");
  }
  bool saw_requests = false;
  for (const auto& [key, member] : root.AsObject("request")) {
    if (key == "op") continue;
    if (key == "requests") {
      if (request.op != RequestOp::kBatch) {
        throw ConfigError("\"requests\" is only valid for op batch");
      }
      request.batch = ParseBatchEntries(member);
      saw_requests = true;
    } else if (key == "id") {
      request.id = member.AsString("id");
    } else if (key == "topology") {
      request.topology = ParseTopology(member);
    } else if (key == "apps") {
      request.apps = member.AsUint("apps");
    } else if (key == "algo") {
      request.algo = member.AsString("algo");
    } else if (key == "seeds") {
      request.seeds = member.AsUint("seeds");
      if (*request.seeds == 0) throw ConfigError("search seeds must be >= 1 (got 0)");
    } else if (key == "iters") {
      request.iterations = member.AsUint("iters");
      if (*request.iterations == 0) throw ConfigError("search iterations must be >= 1 (got 0)");
    } else if (key == "samples") {
      request.samples = member.AsUint("samples");
      if (*request.samples == 0) throw ConfigError("search samples must be >= 1 (got 0)");
    } else if (key == "multilevel") {
      request.multilevel = member.AsBool("multilevel");
    } else if (key == "procs") {
      request.procs = member.AsUint("procs");
    } else if (key == "pattern") {
      request.pattern = member.AsString("pattern");
    } else if (key == "pattern_seed") {
      request.pattern_seed = member.AsUint("pattern_seed");
    } else if (key == "coarsen_target") {
      request.coarsen_target = member.AsUint("coarsen_target");
    } else if (key == "refine_budget") {
      request.refine_budget = member.AsUint("refine_budget");
    } else if (key == "distance") {
      request.distance = member.AsString("distance");
    } else if (key == "search_seed") {
      request.search_seed = member.AsUint("search_seed");
    } else if (key == "parallel_seeds") {
      request.parallel_seeds = member.AsBool("parallel_seeds");
    } else if (key == "partition") {
      request.partition = ParsePartition(member);
    } else if (key == "mapping") {
      request.mapping = member.AsString("mapping");
    } else if (key == "mapping_seed") {
      request.mapping_seed = member.AsUint("mapping_seed");
    } else if (key == "points") {
      request.points = member.AsUint("points");
    } else if (key == "min_rate") {
      request.min_rate = member.AsDouble("min_rate");
    } else if (key == "max_rate") {
      request.max_rate = member.AsDouble("max_rate");
    } else if (key == "warmup") {
      request.warmup = member.AsUint("warmup");
    } else if (key == "measure") {
      request.measure = member.AsUint("measure");
    } else if (key == "vcs") {
      request.vcs = member.AsUint("vcs");
    } else if (key == "ms") {
      request.sleep_ms = member.AsUint("ms");
    } else if (key == "deadline_ms") {
      request.deadline_ms = member.AsUint("deadline_ms");
    } else if (key == "timings") {
      request.want_timings = member.AsBool("timings");
    } else if (key == "reset") {
      request.stats_reset = member.AsBool("reset");
    } else {
      throw ConfigError("unknown request key '" + key + "'");
    }
  }
  if (request.op == RequestOp::kBatch && !saw_requests) {
    throw ConfigError("op batch requires a \"requests\" array");
  }
  return request;
}

}  // namespace

Request ParseRequest(const std::string& line) {
  return ParseRequestObject(ParseJson(line), /*allow_batch=*/true);
}

std::string SalvageRequestId(const std::string& line) {
  try {
    const JsonValue root = ParseJson(line);
    return SalvageEntryId(root);
  } catch (const std::exception&) {
    // Malformed line: respond without an id.
  }
  return "";
}

std::string ErrorResponse(const std::string& id, const std::string& error) {
  JsonObjectWriter writer;
  if (!id.empty()) writer.Field("id", id);
  writer.Field("ok", false);
  writer.Field("error", error);
  return writer.Finish();
}

std::string BatchEntryErrorResponse(const std::string& id, const std::string& batch_id,
                                    std::size_t index, const std::string& error) {
  JsonObjectWriter writer;
  if (!id.empty()) writer.Field("id", id);
  if (!batch_id.empty()) writer.Field("batch", batch_id);
  writer.Field("index", static_cast<std::uint64_t>(index));
  writer.Field("ok", false);
  writer.Field("error", error);
  return writer.Finish();
}

std::uint64_t ModelHashOfGraph(const topo::SwitchGraph& graph) {
  return HashBytes("updown:maxdegree|" + topo::ToText(graph));
}

std::uint64_t TopologyModelHash(const TopologyRequest& topology) {
  return ModelHashOfGraph(BuildTopology(topology));
}

}  // namespace commsched::svc
