#include "service/store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string_view>

#include "common/check.h"
#include "service/cache.h"
#include "service/service.h"
#include "topology/serialize.h"

namespace commsched::svc {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kHeaderSize = 40;

struct Header {
  std::uint64_t magic;
  std::uint64_t version;
  std::uint64_t kind;
  std::uint64_t payload_size;
  std::uint64_t payload_hash;
};
static_assert(sizeof(Header) == kHeaderSize, "artifact header is 5 packed u64s");

const char* KindPrefix(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kModel:
      return "model";
  }
  CS_UNREACHABLE("bad ArtifactKind");
}

/// Read-only mmap of a whole file, unmapped on destruction.
class Mapping {
 public:
  Mapping() = default;
  Mapping(const char* data, std::size_t size) : data_(data), size_(size) {}
  Mapping(Mapping&& other) noexcept : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  Mapping& operator=(Mapping&&) = delete;
  ~Mapping() {
    if (data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
  }

  [[nodiscard]] const char* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
};

/// nullopt when the file cannot be opened or mapped; a zero-byte file maps
/// to an empty Mapping (rejected later as a truncated header).
std::optional<Mapping> MapFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;
  struct stat st {};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return std::nullopt;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Mapping();
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (data == MAP_FAILED) return std::nullopt;
  return Mapping(static_cast<const char*>(data), size);
}

VerifyResult VerifyMapped(const Mapping& mapping) {
  VerifyResult result;
  if (mapping.size() < kHeaderSize) {
    result.error = "truncated header: file holds " + std::to_string(mapping.size()) +
                   " bytes, header needs " + std::to_string(kHeaderSize);
    return result;
  }
  Header header{};
  std::memcpy(&header, mapping.data(), kHeaderSize);
  result.kind = header.kind;
  result.payload_size = header.payload_size;
  if (header.magic != kStoreMagic) {
    result.error = "bad magic (not a commsched artifact)";
    return result;
  }
  if (header.version != kStoreVersion) {
    result.error = "unsupported version " + std::to_string(header.version);
    return result;
  }
  if (header.kind != static_cast<std::uint64_t>(ArtifactKind::kModel)) {
    result.error = "unknown artifact kind " + std::to_string(header.kind);
    return result;
  }
  const std::size_t actual = mapping.size() - kHeaderSize;
  if (header.payload_size != actual) {
    result.error = "payload size mismatch: header says " + std::to_string(header.payload_size) +
                   ", file holds " + std::to_string(actual);
    return result;
  }
  const std::string_view payload(mapping.data() + kHeaderSize, actual);
  if (HashBytes(payload) != header.payload_hash) {
    result.error = "payload hash mismatch (corrupted contents)";
    return result;
  }
  result.ok = true;
  return result;
}

bool WriteAll(int fd, const void* data, std::size_t size) {
  const char* cursor = static_cast<const char*>(data);
  std::size_t left = size;
  while (left > 0) {
    const ssize_t wrote = ::write(fd, cursor, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    cursor += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
  return true;
}

std::string HexKey(std::uint64_t key) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx", static_cast<unsigned long long>(key));
  return buffer;
}

}  // namespace

ArtifactStore::ArtifactStore(std::string dir)
    : dir_(std::move(dir)),
      hit_counter_(&obs::Registry::Global().GetCounter("store.hit")),
      miss_counter_(&obs::Registry::Global().GetCounter("store.miss")),
      write_counter_(&obs::Registry::Global().GetCounter("store.write")),
      corrupt_counter_(&obs::Registry::Global().GetCounter("store.corrupt")) {
  if (dir_.empty()) throw ConfigError("store directory must not be empty");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw ConfigError("cannot open store directory '" + dir_ + "'" +
                      (ec ? ": " + ec.message() : ""));
  }
}

std::string ArtifactStore::FileName(ArtifactKind kind, std::uint64_t key) {
  return std::string(KindPrefix(kind)) + "-" + HexKey(key) + ".csart";
}

bool ArtifactStore::Put(ArtifactKind kind, std::uint64_t key, const std::string& payload) {
  Header header{};
  header.magic = kStoreMagic;
  header.version = kStoreVersion;
  header.kind = static_cast<std::uint64_t>(kind);
  header.payload_size = payload.size();
  header.payload_hash = HashBytes(payload);

  const std::string name = FileName(kind, key);
  // Dot-prefixed so ListKeys and fsck skip half-written files; pid-suffixed
  // so daemons sharing a store directory never clobber each other's temps.
  const std::string tmp = dir_ + "/." + name + ".tmp" + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  bool ok = WriteAll(fd, &header, kHeaderSize) && WriteAll(fd, payload.data(), payload.size()) &&
            ::fsync(fd) == 0;
  ok = (::close(fd) == 0) && ok;
  if (ok) ok = ::rename(tmp.c_str(), (dir_ + "/" + name).c_str()) == 0;
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  write_counter_->Add();
  return true;
}

std::optional<std::string> ArtifactStore::Get(ArtifactKind kind, std::uint64_t key) {
  const std::string path = dir_ + "/" + FileName(kind, key);
  std::optional<Mapping> mapping = MapFile(path);
  if (!mapping.has_value()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    miss_counter_->Add();
    return std::nullopt;
  }
  const VerifyResult verdict = VerifyMapped(*mapping);
  if (!verdict.ok || verdict.kind != static_cast<std::uint64_t>(kind)) {
    NoteCorrupt();
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  hit_counter_->Add();
  return std::string(mapping->data() + kHeaderSize, mapping->size() - kHeaderSize);
}

std::vector<std::uint64_t> ArtifactStore::ListKeys(ArtifactKind kind) const {
  const std::string prefix = std::string(KindPrefix(kind)) + "-";
  const std::string suffix = ".csart";
  std::vector<std::uint64_t> keys;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() != prefix.size() + 16 + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) continue;
    const std::string hex = name.substr(prefix.size(), 16);
    char* end = nullptr;
    const std::uint64_t key = std::strtoull(hex.c_str(), &end, 16);
    if (end != hex.c_str() + hex.size()) continue;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void ArtifactStore::NoteCorrupt() {
  corrupt_.fetch_add(1, std::memory_order_relaxed);
  corrupt_counter_->Add();
}

StoreStats ArtifactStore::Stats() const {
  StoreStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.writes = writes_.load(std::memory_order_relaxed);
  stats.corrupt = corrupt_.load(std::memory_order_relaxed);
  return stats;
}

VerifyResult ArtifactStore::VerifyFile(const std::string& path) {
  std::optional<Mapping> mapping = MapFile(path);
  if (!mapping.has_value()) {
    VerifyResult result;
    result.error = "cannot open or map file";
    return result;
  }
  return VerifyMapped(*mapping);
}

namespace {

void AppendU64(std::string* out, std::uint64_t value) {
  char bytes[8];
  std::memcpy(bytes, &value, 8);
  out->append(bytes, 8);
}

/// Bounds-checked cursor over a payload; every over-read throws ConfigError
/// so a truncated artifact degrades to a cold solve.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& data) : data_(data) {}

  std::uint64_t U64() {
    Require(8);
    std::uint64_t value = 0;
    std::memcpy(&value, data_.data() + pos_, 8);
    pos_ += 8;
    return value;
  }

  std::string Bytes(std::size_t count) {
    Require(count);
    std::string bytes = data_.substr(pos_, count);
    pos_ += count;
    return bytes;
  }

  std::vector<std::uint64_t> U64Vector() {
    const std::uint64_t count = U64();
    RequireCount(count);
    std::vector<std::uint64_t> values(count);
    if (count > 0) std::memcpy(values.data(), data_.data() + pos_, count * 8);
    pos_ += count * 8;
    return values;
  }

  std::vector<double> Doubles(std::uint64_t count) {
    RequireCount(count);
    std::vector<double> values(count);
    if (count > 0) std::memcpy(values.data(), data_.data() + pos_, count * 8);
    pos_ += count * 8;
    return values;
  }

  [[nodiscard]] bool AtEnd() const { return pos_ == data_.size(); }

 private:
  void Require(std::uint64_t bytes) {
    if (bytes > data_.size() - pos_) {
      throw ConfigError("model artifact payload is truncated");
    }
  }

  /// Count-of-u64 variant of Require: compares against remaining/8 so a
  /// hostile count near 2^64 cannot wrap `count * 8` past the bound.
  void RequireCount(std::uint64_t count) {
    if (count > (data_.size() - pos_) / 8) {
      throw ConfigError("model artifact payload is truncated");
    }
  }

  const std::string& data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string EncodeModelArtifact(const NetworkModel& model) {
  const std::string topo_text = topo::ToText(model.graph);
  const route::UpDownState state = model.routing.ExportState();
  std::string out;
  AppendU64(&out, topo_text.size());
  out += topo_text;
  AppendU64(&out, state.root);
  AppendU64(&out, state.level.size());
  for (const std::size_t level : state.level) AppendU64(&out, level);
  AppendU64(&out, state.up_end.size());
  for (const topo::SwitchId end : state.up_end) AppendU64(&out, end);
  AppendU64(&out, state.dist_to_dest.size());
  for (const auto& dist : state.dist_to_dest) {
    AppendU64(&out, dist.size());
    for (const std::size_t d : dist) AppendU64(&out, d);
  }
  const dist::DistanceTable& table = model.table;
  AppendU64(&out, table.size());
  for (const double value : table.values()) {
    char bytes[8];
    std::memcpy(bytes, &value, 8);
    out.append(bytes, 8);
  }
  return out;
}

std::shared_ptr<const NetworkModel> DecodeModelArtifact(const std::string& payload) {
  PayloadReader reader(payload);
  const std::uint64_t text_size = reader.U64();
  topo::SwitchGraph graph = topo::FromText(reader.Bytes(text_size));

  route::UpDownState state;
  state.root = reader.U64();
  {
    const std::vector<std::uint64_t> level = reader.U64Vector();
    state.level.assign(level.begin(), level.end());
  }
  {
    const std::vector<std::uint64_t> up_end = reader.U64Vector();
    state.up_end.assign(up_end.begin(), up_end.end());
  }
  const std::uint64_t rows = reader.U64();
  if (rows > payload.size()) throw ConfigError("model artifact payload is truncated");
  state.dist_to_dest.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    const std::vector<std::uint64_t> dist = reader.U64Vector();
    state.dist_to_dest.emplace_back(dist.begin(), dist.end());
  }

  const std::uint64_t n = reader.U64();
  // 2^24 switches is far beyond any real fabric and keeps n*n from wrapping.
  if (n > (1ULL << 24)) throw ConfigError("model artifact payload is truncated");
  std::vector<double> values = reader.Doubles(n * n);
  if (!reader.AtEnd()) throw ConfigError("model artifact has trailing bytes");

  // NetworkModel's restore constructor re-validates every shape against the
  // parsed graph, so a payload that is internally consistent but lies about
  // the topology still fails here rather than serving wrong routes.
  return std::make_shared<const NetworkModel>(
      std::move(graph), std::move(state),
      dist::DistanceTable::FromValues(static_cast<std::size_t>(n), std::move(values)));
}

}  // namespace commsched::svc
