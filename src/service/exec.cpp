#include "service/exec.h"

#include <sstream>

#include "common/rng.h"
#include "common/table.h"
#include "sched/annealing.h"
#include "sched/local_search.h"
#include "sched/tabu.h"

namespace commsched::svc {
namespace {

/// The CLI's historical iteration default for the tabu family: a larger
/// budget on the paper's 24-switch networks than on the 16-switch ones.
std::size_t DefaultTabuIterations(std::size_t switch_count) {
  return switch_count >= 20 ? 60 : 20;
}

}  // namespace

std::vector<std::size_t> EvenClusterSizes(std::size_t switch_count, std::size_t apps) {
  if (apps == 0) throw ConfigError("application count must be positive");
  if (switch_count % apps != 0) {
    throw ConfigError("switch count " + std::to_string(switch_count) +
                      " not divisible by " + std::to_string(apps) + " applications");
  }
  return std::vector<std::size_t>(apps, switch_count / apps);
}

std::string CanonicalSearchKnobs(const SearchKnobs& knobs, std::size_t switch_count) {
  std::ostringstream key;
  key << "algo=" << knobs.algo;
  if (knobs.algo == "tabu") {
    key << ";seeds=" << knobs.seeds.value_or(10)
        << ";iters=" << knobs.iterations.value_or(DefaultTabuIterations(switch_count));
  } else if (knobs.algo == "sd") {
    key << ";seeds=" << knobs.seeds.value_or(10)
        << ";iters=" << knobs.iterations.value_or(1000);
  } else if (knobs.algo == "random") {
    key << ";samples=" << knobs.samples.value_or(1000);
  } else if (knobs.algo == "sa") {
    key << ";seeds=" << knobs.seeds.value_or(1)
        << ";iters=" << knobs.iterations.value_or(20000);
  } else if (knobs.algo == "gsa") {
    key << ";seeds=" << knobs.seeds.value_or(1)
        << ";iters=" << knobs.iterations.value_or(200);
  } else {
    throw ConfigError("unknown algo '" + knobs.algo + "' (tabu|sd|random|sa|gsa)");
  }
  key << ";rng=" << knobs.rng_seed;
  return key.str();
}

sched::SearchResult RunMappingSearch(const dist::DistanceTable& table,
                                     const std::vector<std::size_t>& cluster_sizes,
                                     const SearchKnobs& knobs) {
  if (knobs.algo == "tabu") {
    sched::TabuOptions options;
    options.seeds = knobs.seeds.value_or(10);
    options.max_iterations_per_seed =
        knobs.iterations.value_or(DefaultTabuIterations(table.size()));
    options.rng_seed = knobs.rng_seed;
    options.parallel_seeds = knobs.parallel_seeds;
    return sched::TabuSearch(table, cluster_sizes, options);
  }
  if (knobs.algo == "sd") {
    sched::SteepestDescentOptions options;
    options.restarts = knobs.seeds.value_or(10);
    options.max_iterations_per_restart = knobs.iterations.value_or(1000);
    options.rng_seed = knobs.rng_seed;
    options.parallel_seeds = knobs.parallel_seeds;
    return sched::SteepestDescent(table, cluster_sizes, options);
  }
  if (knobs.algo == "random") {
    sched::RandomSearchOptions options;
    options.samples = knobs.samples.value_or(1000);
    options.rng_seed = knobs.rng_seed;
    options.parallel_seeds = knobs.parallel_seeds;
    return sched::RandomSearch(table, cluster_sizes, options);
  }
  if (knobs.algo == "sa") {
    sched::AnnealingOptions options;
    options.iterations = knobs.iterations.value_or(20000);
    options.restarts = knobs.seeds.value_or(1);
    options.rng_seed = knobs.rng_seed;
    options.parallel_seeds = knobs.parallel_seeds;
    return sched::SimulatedAnnealing(table, cluster_sizes, options);
  }
  if (knobs.algo == "gsa") {
    sched::GeneticAnnealingOptions options;
    options.generations = knobs.iterations.value_or(200);
    options.restarts = knobs.seeds.value_or(1);
    options.rng_seed = knobs.rng_seed;
    options.parallel_seeds = knobs.parallel_seeds;
    return sched::GeneticSimulatedAnnealing(table, cluster_sizes, options);
  }
  throw ConfigError("unknown --algo '" + knobs.algo + "' (tabu|sd|random|sa|gsa)");
}

qual::Partition ChooseMappingPartition(const std::string& mapping,
                                       const dist::DistanceTable* table,
                                       const std::vector<std::size_t>& cluster_sizes,
                                       std::uint64_t mapping_seed, bool parallel_seeds) {
  if (mapping == "op") {
    CS_CHECK(table != nullptr, "op mapping needs a distance table");
    SearchKnobs knobs;
    knobs.parallel_seeds = parallel_seeds;
    return RunMappingSearch(*table, cluster_sizes, knobs).best;
  }
  if (mapping == "random") {
    Rng rng(mapping_seed);
    return qual::Partition::Random(cluster_sizes, rng);
  }
  if (mapping == "blocked") {
    return qual::Partition::Blocked(cluster_sizes);
  }
  throw ConfigError("unknown --mapping '" + mapping + "' (op|random|blocked)");
}

std::string FormatSimulateText(const qual::Partition& partition,
                               const sim::SweepResult& result) {
  std::ostringstream out;
  out << "mapping: " << partition.ToString() << "\n";
  TextTable table({"offered", "accepted", "latency", "saturated"});
  table.set_precision(4);
  for (const sim::SweepPoint& p : result.points) {
    table.AddRow({p.offered_rate, p.metrics.accepted_flits_per_switch_cycle,
                  p.metrics.avg_latency_cycles,
                  std::string(p.metrics.Saturated() ? "yes" : "no")});
  }
  out << table;
  out << "throughput: " << result.Throughput() << " flits/switch/cycle\n";
  return out.str();
}

}  // namespace commsched::svc
