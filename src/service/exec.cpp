#include "service/exec.h"

#include <sstream>

#include "common/rng.h"
#include "common/table.h"
#include "sched/annealing.h"
#include "sched/local_search.h"
#include "sched/tabu.h"
#include "workload/procgen.h"

namespace commsched::svc {
namespace {

/// The CLI's historical iteration default for the tabu family: a larger
/// budget on the paper's 24-switch networks than on the 16-switch ones.
std::size_t DefaultTabuIterations(std::size_t switch_count) {
  return switch_count >= 20 ? 60 : 20;
}

}  // namespace

std::vector<std::size_t> EvenClusterSizes(std::size_t switch_count, std::size_t apps) {
  if (apps == 0) throw ConfigError("application count must be positive");
  if (switch_count % apps != 0) {
    throw ConfigError("switch count " + std::to_string(switch_count) +
                      " not divisible by " + std::to_string(apps) + " applications");
  }
  return std::vector<std::size_t>(apps, switch_count / apps);
}

void ValidateSearchKnobs(const SearchKnobs& knobs) {
  if (knobs.seeds == std::size_t{0}) {
    throw ConfigError("search seeds must be >= 1 (got 0)");
  }
  if (knobs.iterations == std::size_t{0}) {
    throw ConfigError("search iterations must be >= 1 (got 0)");
  }
  if (knobs.samples == std::size_t{0}) {
    throw ConfigError("search samples must be >= 1 (got 0)");
  }
}

std::string CanonicalSearchKnobs(const SearchKnobs& knobs, std::size_t switch_count) {
  ValidateSearchKnobs(knobs);
  std::ostringstream key;
  key << "algo=" << knobs.algo;
  if (knobs.algo == "tabu") {
    key << ";seeds=" << knobs.seeds.value_or(10)
        << ";iters=" << knobs.iterations.value_or(DefaultTabuIterations(switch_count));
  } else if (knobs.algo == "sd") {
    key << ";seeds=" << knobs.seeds.value_or(10)
        << ";iters=" << knobs.iterations.value_or(1000);
  } else if (knobs.algo == "random") {
    key << ";samples=" << knobs.samples.value_or(1000);
  } else if (knobs.algo == "sa") {
    key << ";seeds=" << knobs.seeds.value_or(1)
        << ";iters=" << knobs.iterations.value_or(20000);
  } else if (knobs.algo == "gsa") {
    key << ";seeds=" << knobs.seeds.value_or(1)
        << ";iters=" << knobs.iterations.value_or(200);
  } else {
    throw ConfigError("unknown algo '" + knobs.algo + "' (tabu|sd|random|sa|gsa)");
  }
  key << ";rng=" << knobs.rng_seed;
  return key.str();
}

sched::SearchResult RunMappingSearch(const dist::DistanceTable& table,
                                     const std::vector<std::size_t>& cluster_sizes,
                                     const SearchKnobs& knobs) {
  ValidateSearchKnobs(knobs);
  if (knobs.algo == "tabu") {
    sched::TabuOptions options;
    options.seeds = knobs.seeds.value_or(10);
    options.max_iterations_per_seed =
        knobs.iterations.value_or(DefaultTabuIterations(table.size()));
    options.rng_seed = knobs.rng_seed;
    options.parallel_seeds = knobs.parallel_seeds;
    return sched::TabuSearch(table, cluster_sizes, options);
  }
  if (knobs.algo == "sd") {
    sched::SteepestDescentOptions options;
    options.restarts = knobs.seeds.value_or(10);
    options.max_iterations_per_restart = knobs.iterations.value_or(1000);
    options.rng_seed = knobs.rng_seed;
    options.parallel_seeds = knobs.parallel_seeds;
    return sched::SteepestDescent(table, cluster_sizes, options);
  }
  if (knobs.algo == "random") {
    sched::RandomSearchOptions options;
    options.samples = knobs.samples.value_or(1000);
    options.rng_seed = knobs.rng_seed;
    options.parallel_seeds = knobs.parallel_seeds;
    return sched::RandomSearch(table, cluster_sizes, options);
  }
  if (knobs.algo == "sa") {
    sched::AnnealingOptions options;
    options.iterations = knobs.iterations.value_or(20000);
    options.restarts = knobs.seeds.value_or(1);
    options.rng_seed = knobs.rng_seed;
    options.parallel_seeds = knobs.parallel_seeds;
    return sched::SimulatedAnnealing(table, cluster_sizes, options);
  }
  if (knobs.algo == "gsa") {
    sched::GeneticAnnealingOptions options;
    options.generations = knobs.iterations.value_or(200);
    options.restarts = knobs.seeds.value_or(1);
    options.rng_seed = knobs.rng_seed;
    options.parallel_seeds = knobs.parallel_seeds;
    return sched::GeneticSimulatedAnnealing(table, cluster_sizes, options);
  }
  throw ConfigError("unknown --algo '" + knobs.algo + "' (tabu|sd|random|sa|gsa)");
}

qual::Partition ChooseMappingPartition(const std::string& mapping,
                                       const dist::DistanceTable* table,
                                       const std::vector<std::size_t>& cluster_sizes,
                                       std::uint64_t mapping_seed, bool parallel_seeds) {
  if (mapping == "op") {
    CS_CHECK(table != nullptr, "op mapping needs a distance table");
    SearchKnobs knobs;
    knobs.parallel_seeds = parallel_seeds;
    return RunMappingSearch(*table, cluster_sizes, knobs).best;
  }
  if (mapping == "random") {
    Rng rng(mapping_seed);
    return qual::Partition::Random(cluster_sizes, rng);
  }
  if (mapping == "blocked") {
    return qual::Partition::Blocked(cluster_sizes);
  }
  throw ConfigError("unknown --mapping '" + mapping + "' (op|random|blocked)");
}

std::string FormatSimulateText(const qual::Partition& partition,
                               const sim::SweepResult& result) {
  std::ostringstream out;
  out << "mapping: " << partition.ToString() << "\n";
  TextTable table({"offered", "accepted", "latency", "saturated"});
  table.set_precision(4);
  for (const sim::SweepPoint& p : result.points) {
    table.AddRow({p.offered_rate, p.metrics.accepted_flits_per_switch_cycle,
                  p.metrics.avg_latency_cycles,
                  std::string(p.metrics.Saturated() ? "yes" : "no")});
  }
  out << table;
  out << "throughput: " << result.Throughput() << " flits/switch/cycle\n";
  return out.str();
}

void ValidateMultilevelKnobs(const MultilevelKnobs& knobs) {
  if (knobs.processes == 0) throw ConfigError("multilevel requires a process count >= 1");
  if (knobs.seeds == std::size_t{0}) {
    throw ConfigError("search seeds must be >= 1 (got 0)");
  }
  if (knobs.iterations == std::size_t{0}) {
    throw ConfigError("search iterations must be >= 1 (got 0)");
  }
  if (knobs.pattern != "ring" && knobs.pattern != "grid" && knobs.pattern != "random") {
    throw ConfigError("unknown comm pattern '" + knobs.pattern + "' (ring|grid|random)");
  }
  if (knobs.distance != "resistance" && knobs.distance != "hops") {
    throw ConfigError("unknown distance kind '" + knobs.distance + "' (resistance|hops)");
  }
}

std::string CanonicalMultilevelKnobs(const MultilevelKnobs& knobs) {
  ValidateMultilevelKnobs(knobs);
  std::ostringstream key;
  key << "ml=1;procs=" << knobs.processes << ";pattern=" << knobs.pattern
      << ";pattern_seed=" << knobs.pattern_seed << ";coarsen=" << knobs.coarsen_target
      << ";budget=" << knobs.refine_budget << ";seeds=" << knobs.seeds.value_or(4)
      << ";iters=" << knobs.iterations.value_or(0) << ";rng=" << knobs.rng_seed
      << ";distance=" << knobs.distance;
  return key.str();
}

sched::ml::MultilevelResult RunMultilevelSchedule(const dist::DistanceTable& table,
                                                  std::size_t hosts_per_switch,
                                                  const MultilevelKnobs& knobs) {
  ValidateMultilevelKnobs(knobs);
  const qual::CommGraph graph =
      work::MakePatternComm(knobs.pattern, knobs.processes, knobs.pattern_seed);
  sched::ml::MultilevelOptions options;
  options.coarsen_target = knobs.coarsen_target;
  options.refine_budget = knobs.refine_budget;
  options.seeds = knobs.seeds.value_or(4);
  options.engine_iterations = knobs.iterations.value_or(0);
  options.rng_seed = knobs.rng_seed;
  return sched::ml::MapMultilevel(graph, table, hosts_per_switch, options);
}

std::string FormatMultilevelText(const sched::ml::MultilevelResult& result,
                                 std::size_t switch_count, std::size_t hosts_per_switch) {
  std::ostringstream out;
  out << "multilevel: procs=" << result.switch_of_process.size()
      << " switches=" << switch_count << " hosts=" << hosts_per_switch
      << " levels=" << result.levels << " coarsest=" << result.coarsest_vertices << "\n";
  out << "level vertices edges before after moves\n";
  for (std::size_t i = 0; i < result.level_stats.size(); ++i) {
    const sched::ml::LevelStats& stats = result.level_stats[i];
    out << i << " " << stats.vertices << " " << stats.edges << " " << stats.cost_before
        << " " << stats.cost_after << " " << stats.moves << "\n";
  }
  out << "final: cost=" << result.cost << " normalized=" << result.normalized
      << " max_load=" << result.max_load << "\n";
  if (result.switch_of_process.size() <= 64) {
    out << "assignment:";
    for (std::size_t s : result.switch_of_process) out << " " << s;
    out << "\n";
  }
  return out.str();
}

}  // namespace commsched::svc
