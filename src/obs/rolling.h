// Rolling-window views of counters and histograms (DESIGN.md §12).
//
// A long-lived daemon needs "requests per second over the last ten seconds"
// and "p99 latency right now", which cumulative instruments (obs.h) cannot
// answer. RollingCounter and RollingHistogram keep a ring of time buckets
// (default: 10 buckets of 1 s); each bucket is tagged with the epoch (bucket
// index since the steady-clock origin) it belongs to, and writers lazily
// recycle a slot the first time they touch it in a new epoch.
//
// Concurrency model — everything is relaxed atomics, no locks, TSan-clean:
//   * Writers CAS the slot's epoch from stale to current; the CAS winner
//     zeroes the slot, then every writer adds. A writer that lost the CAS
//     immediately after publishing into the stale epoch can leak its delta
//     into the recycled bucket (or lose it to the winner's zeroing) — a
//     bounded, transient error of one sample at a bucket boundary, which is
//     acceptable for monitoring views and keeps the hot path at ~3 relaxed
//     atomic ops.
//   * Readers sum only slots whose epoch lies inside the window; a slot
//     mid-recycle either still carries its (now out-of-window) old epoch or
//     the new one, so windows advance monotonically.
//
// Every method takes an explicit now_ns so tests can drive bucket rotation
// deterministically; the NowNanos() default reads steady_clock.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "obs/obs.h"

namespace commsched::obs {

/// Nanoseconds since the steady-clock epoch (the default time source for
/// the rolling instruments).
[[nodiscard]] std::uint64_t NowNanos();

/// Windowed event counter: Add() lands in the current time bucket,
/// WindowTotal()/RatePerSecond() cover the last kSlots buckets.
class RollingCounter {
 public:
  static constexpr std::size_t kSlots = 10;
  static constexpr std::uint64_t kDefaultBucketNs = 1'000'000'000;  // 1 s

  explicit RollingCounter(std::uint64_t bucket_ns = kDefaultBucketNs)
      : bucket_ns_(bucket_ns == 0 ? kDefaultBucketNs : bucket_ns) {}

  RollingCounter(const RollingCounter&) = delete;
  RollingCounter& operator=(const RollingCounter&) = delete;

  void Add(std::uint64_t delta, std::uint64_t now_ns) noexcept {
    Slot& slot = Touch(now_ns);
    slot.value.fetch_add(delta, std::memory_order_relaxed);
  }

  void Add(std::uint64_t delta = 1) noexcept { Add(delta, NowNanos()); }

  /// Sum of the events recorded in the window ending at now_ns: the current
  /// (partial) bucket plus the kSlots-1 completed buckets before it.
  [[nodiscard]] std::uint64_t WindowTotal(std::uint64_t now_ns) const noexcept;

  /// WindowTotal divided by the wall-clock span the window actually covers
  /// (kSlots-1 full buckets plus the elapsed part of the current one).
  [[nodiscard]] double RatePerSecond(std::uint64_t now_ns) const noexcept;

  [[nodiscard]] std::uint64_t bucket_ns() const noexcept { return bucket_ns_; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> epoch{~std::uint64_t{0}};  // never a real epoch
    std::atomic<std::uint64_t> value{0};
  };

  Slot& Touch(std::uint64_t now_ns) noexcept {
    const std::uint64_t epoch = now_ns / bucket_ns_;
    Slot& slot = slots_[epoch % kSlots];
    std::uint64_t seen = slot.epoch.load(std::memory_order_relaxed);
    if (seen != epoch &&
        slot.epoch.compare_exchange_strong(seen, epoch, std::memory_order_relaxed)) {
      slot.value.store(0, std::memory_order_relaxed);  // CAS winner recycles
    }
    return slot;
  }

  std::uint64_t bucket_ns_;
  std::array<Slot, kSlots> slots_{};
};

/// Windowed distribution: one log2 Histogram per time bucket, merged into a
/// single HistogramSnapshot on read. Same recycling protocol as
/// RollingCounter. Percentiles over the window come from the merged
/// snapshot's Percentile().
class RollingHistogram {
 public:
  static constexpr std::size_t kSlots = RollingCounter::kSlots;

  explicit RollingHistogram(std::uint64_t bucket_ns = RollingCounter::kDefaultBucketNs)
      : bucket_ns_(bucket_ns == 0 ? RollingCounter::kDefaultBucketNs : bucket_ns) {}

  RollingHistogram(const RollingHistogram&) = delete;
  RollingHistogram& operator=(const RollingHistogram&) = delete;

  void Record(std::uint64_t value, std::uint64_t now_ns) noexcept {
    const std::uint64_t epoch = now_ns / bucket_ns_;
    Slot& slot = slots_[epoch % kSlots];
    std::uint64_t seen = slot.epoch.load(std::memory_order_relaxed);
    if (seen != epoch &&
        slot.epoch.compare_exchange_strong(seen, epoch, std::memory_order_relaxed)) {
      slot.hist.Reset();
    }
    slot.hist.Record(value);
  }

  void Record(std::uint64_t value) noexcept { Record(value, NowNanos()); }

  /// Merged snapshot of every in-window bucket (min/max combined across
  /// buckets; empty window -> zeroed snapshot).
  [[nodiscard]] HistogramSnapshot WindowSnapshot(std::uint64_t now_ns) const noexcept;

  [[nodiscard]] std::uint64_t bucket_ns() const noexcept { return bucket_ns_; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> epoch{~std::uint64_t{0}};
    Histogram hist;
  };

  std::uint64_t bucket_ns_;
  std::array<Slot, kSlots> slots_{};
};

/// Named rolling instruments, mirroring Registry's lookup idiom (create on
/// demand, node-stable references, mutex-guarded lookup only). Kept separate
/// from Registry so the cumulative dump format (ToJson) is untouched.
class RollingRegistry {
 public:
  RollingRegistry() = default;
  RollingRegistry(const RollingRegistry&) = delete;
  RollingRegistry& operator=(const RollingRegistry&) = delete;

  /// The process-wide rolling registry (the daemon's live views).
  static RollingRegistry& Global();

  RollingCounter& GetCounter(const std::string& name);
  RollingHistogram& GetHistogram(const std::string& name);

  /// Snapshot of every rolling counter's windowed rate (name -> events/s).
  [[nodiscard]] std::map<std::string, double> CounterRates(std::uint64_t now_ns) const;

  /// Snapshot of every rolling histogram's merged window.
  [[nodiscard]] std::map<std::string, HistogramSnapshot> HistogramWindows(
      std::uint64_t now_ns) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, RollingCounter> counters_;
  std::map<std::string, RollingHistogram> histograms_;
};

}  // namespace commsched::obs
