#include "obs/obs.h"

#include <sstream>

namespace commsched::obs {

Registry& Registry::Global() {
  static Registry registry;
  return registry;
}

Counter& Registry::GetCounter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];
}

Timer& Registry::GetTimer(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return timers_[name];
}

std::map<std::string, std::uint64_t> Registry::CounterValues() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> values;
  for (const auto& [name, counter] : counters_) {
    values[name] = counter.value();
  }
  return values;
}

std::map<std::string, TimerSnapshot> Registry::TimerValues() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, TimerSnapshot> values;
  for (const auto& [name, timer] : timers_) {
    values[name] = TimerSnapshot{timer.total_ns(), timer.count()};
  }
  return values;
}

void Registry::ResetAll() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter.Reset();
  for (auto& [name, timer] : timers_) timer.Reset();
}

std::string Registry::ToJson() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << counter.value();
  }
  out << "},\"timers\":{";
  first = true;
  for (const auto& [name, timer] : timers_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":{\"total_ns\":" << timer.total_ns()
        << ",\"count\":" << timer.count() << "}";
  }
  out << "}}";
  return out.str();
}

}  // namespace commsched::obs
