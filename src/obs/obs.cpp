#include "obs/obs.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>

namespace commsched::obs {

namespace {

/// Shortest round-trip rendering for JSON number output (no NaN/Inf input
/// here: percentiles and means of uint64 samples are always finite).
void AppendJsonDouble(std::ostream& out, double value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) {
    out << "null";
    return;
  }
  out.write(buf, ptr - buf);
}

/// Inclusive value range of histogram bucket `b` (see HistogramSnapshot).
std::pair<double, double> BucketRange(std::size_t b) {
  if (b == 0) return {0.0, 0.0};
  const double lo = std::ldexp(1.0, static_cast<int>(b) - 1);  // 2^(b-1)
  return {lo, 2.0 * lo - 1.0};
}

}  // namespace

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested sample, 1-based: q = 0 -> first, q = 1 -> last.
  const double rank = 1.0 + q * static_cast<double>(count - 1);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double in_bucket = static_cast<double>(buckets[b]);
    if (rank <= cumulative + in_bucket) {
      const auto [lo, hi] = BucketRange(b);
      // Linear interpolation inside the bucket, clamped to the observed
      // extremes (makes single-valued and boundary cases exact).
      const double frac = std::clamp((rank - cumulative) / in_bucket, 0.0, 1.0);
      const double estimate = lo + frac * (hi - lo);
      return std::clamp(estimate, static_cast<double>(min), static_cast<double>(max));
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max);
}

Registry& Registry::Global() {
  static Registry registry;
  return registry;
}

Counter& Registry::GetCounter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];
}

Timer& Registry::GetTimer(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return timers_[name];
}

Histogram& Registry::GetHistogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return histograms_[name];
}

std::map<std::string, std::uint64_t> Registry::CounterValues() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> values;
  for (const auto& [name, counter] : counters_) {
    values[name] = counter.value();
  }
  return values;
}

std::map<std::string, TimerSnapshot> Registry::TimerValues() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, TimerSnapshot> values;
  for (const auto& [name, timer] : timers_) {
    values[name] = TimerSnapshot{timer.total_ns(), timer.count()};
  }
  return values;
}

std::map<std::string, HistogramSnapshot> Registry::HistogramValues() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, HistogramSnapshot> values;
  for (const auto& [name, histogram] : histograms_) {
    values[name] = histogram.Snapshot();
  }
  return values;
}

void Registry::ResetAll() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter.Reset();
  for (auto& [name, timer] : timers_) timer.Reset();
  for (auto& [name, histogram] : histograms_) histogram.Reset();
}

std::string Registry::ToJson() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << counter.value();
  }
  out << "},\"timers\":{";
  first = true;
  for (const auto& [name, timer] : timers_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":{\"total_ns\":" << timer.total_ns()
        << ",\"count\":" << timer.count() << "}";
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot snap = histogram.Snapshot();
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":{\"count\":" << snap.count << ",\"sum\":" << snap.sum
        << ",\"min\":" << snap.min << ",\"max\":" << snap.max << ",\"mean\":";
    AppendJsonDouble(out, snap.Mean());
    out << ",\"p50\":";
    AppendJsonDouble(out, snap.Percentile(0.50));
    out << ",\"p90\":";
    AppendJsonDouble(out, snap.Percentile(0.90));
    out << ",\"p99\":";
    AppendJsonDouble(out, snap.Percentile(0.99));
    out << ",\"buckets\":{";
    bool first_bucket = true;
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      if (snap.buckets[b] == 0) continue;
      if (!first_bucket) out << ",";
      first_bucket = false;
      out << "\"" << b << "\":" << snap.buckets[b];
    }
    out << "}}";
  }
  out << "}}";
  return out.str();
}

}  // namespace commsched::obs
