#include "obs/trace.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <system_error>

#include "common/check.h"
#include "obs/request.h"

namespace commsched::obs {

namespace {

void AppendEscaped(std::string& out, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Shortest round-trip rendering; JSON has no NaN/Inf, those become null.
void AppendDouble(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) {
    out += "null";
    return;
  }
  out.append(buf, ptr);
}

}  // namespace

TraceEvent::TraceEvent(std::string_view type) {
  body_ += "\"type\":\"";
  AppendEscaped(body_, type);
  body_ += "\"";
  // Request attribution: while a daemon worker has a RequestContext
  // installed, every event it emits names the request. Non-daemon paths
  // (CLI, tests) have no context, so their traces are byte-unchanged.
  if (const RequestContext* context = RequestContext::Current()) {
    body_ += ",\"req\":\"";
    AppendEscaped(body_, context->id());
    body_ += "\"";
  }
}

TraceEvent& TraceEvent::AppendUint(std::string_view key, std::uint64_t value) {
  body_ += ",\"";
  body_.append(key);
  body_ += "\":";
  body_ += std::to_string(value);
  return *this;
}

TraceEvent& TraceEvent::AppendInt(std::string_view key, std::int64_t value) {
  body_ += ",\"";
  body_.append(key);
  body_ += "\":";
  body_ += std::to_string(value);
  return *this;
}

TraceEvent& TraceEvent::F(std::string_view key, double value) {
  body_ += ",\"";
  body_.append(key);
  body_ += "\":";
  AppendDouble(body_, value);
  return *this;
}

TraceEvent& TraceEvent::F(std::string_view key, bool value) {
  body_ += ",\"";
  body_.append(key);
  body_ += "\":";
  body_ += value ? "true" : "false";
  return *this;
}

TraceEvent& TraceEvent::F(std::string_view key, std::string_view value) {
  body_ += ",\"";
  body_.append(key);
  body_ += "\":\"";
  AppendEscaped(body_, value);
  body_ += "\"";
  return *this;
}

TraceEvent& TraceEvent::F(std::string_view key, const char* value) {
  return F(key, std::string_view(value));
}

Tracer::Tracer(std::ostream& out) : out_(&out) {}

std::unique_ptr<Tracer> Tracer::OpenFile(const std::string& path) {
  std::unique_ptr<Tracer> tracer(new Tracer());
  tracer->owned_.open(path, std::ios::out | std::ios::trunc);
  if (!tracer->owned_) {
    throw ConfigError("cannot open trace file '" + path + "'");
  }
  tracer->out_ = &tracer->owned_;
  return tracer;
}

void Tracer::Emit(const TraceEvent& event) {
  std::string line;
  line.reserve(event.body().size() + 24);
  const std::lock_guard<std::mutex> lock(mutex_);
  line += "{\"seq\":";
  line += std::to_string(sequence_.fetch_add(1, std::memory_order_relaxed));
  line += ",";
  line += event.body();
  line += "}\n";
  *out_ << line;
}

void Tracer::Flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  out_->flush();
}

namespace internal {
std::atomic<Tracer*> g_tracer{nullptr};
}  // namespace internal

void SetTracer(Tracer* tracer) {
  internal::g_tracer.store(tracer, std::memory_order_release);
}

}  // namespace commsched::obs
