// Observability primitives: counters, wall-clock timers and the Registry
// that aggregates them.
//
// Design constraints (these run inside the Tabu swap loop and the flit-level
// simulator, possibly under common/parallel.h's ThreadPool):
//   * Counter/Timer updates are lock-free relaxed atomics — safe to call
//     concurrently from pool workers, and cheap enough that hot loops batch
//     into a local integer and flush once per run anyway.
//   * Registry lookups take a mutex (name -> slot), so code paths resolve a
//     Counter& once (per run / per scope) and hold the reference; std::map
//     nodes give the references stable addresses for the Registry's lifetime.
//   * Nothing here allocates on the update path.
//
// Reading: Registry::CounterValues()/TimerValues() snapshot everything, and
// ToJson() renders the single-line metrics dump the CLI's --metrics flag and
// the bench harness consume (see DESIGN.md §"Observability").
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace commsched::obs {

/// Monotonic event counter. Relaxed atomics: totals are exact, ordering
/// between different counters is not guaranteed mid-run.
class Counter {
 public:
  void Add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void Reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Accumulated wall-clock time plus a sample count (mean = total / count).
class Timer {
 public:
  void RecordNanos(std::uint64_t ns) noexcept {
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  void Reset() noexcept {
    total_ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// RAII scope that records its lifetime into a Timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer)
      : timer_(&timer), start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    timer_->RecordNanos(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Read-side snapshot of one Timer.
struct TimerSnapshot {
  std::uint64_t total_ns = 0;
  std::uint64_t count = 0;
};

/// Named counters and timers. Lookup creates on demand; returned references
/// stay valid for the Registry's lifetime. All methods are thread-safe.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every instrumented subsystem reports into.
  static Registry& Global();

  Counter& GetCounter(const std::string& name);
  Timer& GetTimer(const std::string& name);

  /// Snapshot of every counter (name -> value).
  [[nodiscard]] std::map<std::string, std::uint64_t> CounterValues() const;

  /// Snapshot of every timer (name -> total/count).
  [[nodiscard]] std::map<std::string, TimerSnapshot> TimerValues() const;

  /// Zeroes every counter and timer (names stay registered).
  void ResetAll();

  /// Single-line JSON dump:
  ///   {"counters":{"name":N,...},"timers":{"name":{"total_ns":N,"count":N},...}}
  /// Keys are sorted, so output is deterministic given equal values.
  [[nodiscard]] std::string ToJson() const;

 private:
  mutable std::mutex mutex_;
  // std::map: node-based, so Counter/Timer addresses are stable across
  // inserts (required — callers hold references while others register).
  std::map<std::string, Counter> counters_;
  std::map<std::string, Timer> timers_;
};

}  // namespace commsched::obs
