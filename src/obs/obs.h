// Observability primitives: counters, wall-clock timers, distribution
// histograms and the Registry that aggregates them.
//
// Design constraints (these run inside the Tabu swap loop and the flit-level
// simulator, possibly under common/parallel.h's ThreadPool):
//   * Counter/Timer/Histogram updates are lock-free relaxed atomics — safe
//     to call concurrently from pool workers, and cheap enough that hot
//     loops batch into locals and flush once per run anyway.
//   * Registry lookups take a mutex (name -> slot), so code paths resolve a
//     Counter& once (per run / per scope) and hold the reference; std::map
//     nodes give the references stable addresses for the Registry's lifetime.
//   * Nothing here allocates on the update path.
//
// Reading: Registry::CounterValues()/TimerValues()/HistogramValues()
// snapshot everything, and ToJson() renders the single-line metrics dump the
// CLI's --metrics/--metrics-out flags and the bench harness consume (see
// DESIGN.md §"Observability").
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace commsched::obs {

/// Monotonic event counter. Relaxed atomics: totals are exact, ordering
/// between different counters is not guaranteed mid-run.
class Counter {
 public:
  void Add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void Reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Accumulated wall-clock time plus a sample count (mean = total / count).
class Timer {
 public:
  void RecordNanos(std::uint64_t ns) noexcept {
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  void Reset() noexcept {
    total_ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// RAII scope that records its lifetime into a Timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer)
      : timer_(&timer), start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    timer_->RecordNanos(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Read-side snapshot of one Timer.
struct TimerSnapshot {
  std::uint64_t total_ns = 0;
  std::uint64_t count = 0;
};

/// Read-side snapshot of one Histogram, with the estimation logic: report
/// renderers and benches derive p50/p90/p99 from the same code path.
struct HistogramSnapshot {
  /// Bucket b holds values whose bit width is b: bucket 0 is exactly {0},
  /// bucket b >= 1 covers [2^(b-1), 2^b - 1].
  static constexpr std::size_t kBuckets = 65;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  // wraps mod 2^64 for astronomically large inputs
  std::uint64_t min = 0;  // 0 when empty
  std::uint64_t max = 0;

  /// Estimated q-quantile (q in [0, 1]): locates the bucket holding the
  /// rank-q sample and interpolates linearly inside it, clamped to the
  /// observed [min, max]. Error is bounded by the bucket width (< 2x the
  /// true value); exact for single-valued distributions. 0 when empty.
  [[nodiscard]] double Percentile(double q) const;

  [[nodiscard]] double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Lock-free log2-bucketed distribution of uint64 samples (latencies in
/// cycles, queue occupancies, iteration counts). Fixed 65 buckets — one per
/// possible bit width — so Record() is two relaxed atomic adds plus bounded
/// CAS loops for min/max; no allocation, safe from any thread.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

  /// Bucket index of `value`: its bit width (0 for value 0).
  [[nodiscard]] static std::size_t BucketOf(std::uint64_t value) noexcept {
    return static_cast<std::size_t>(std::bit_width(value));
  }

  /// Records `count` occurrences of `value`.
  void Record(std::uint64_t value, std::uint64_t count = 1) noexcept {
    buckets_[BucketOf(value)].fetch_add(count, std::memory_order_relaxed);
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(value * count, std::memory_order_relaxed);
    std::uint64_t seen_min = min_.load(std::memory_order_relaxed);
    while (value < seen_min &&
           !min_.compare_exchange_weak(seen_min, value, std::memory_order_relaxed)) {
    }
    std::uint64_t seen_max = max_.load(std::memory_order_relaxed);
    while (value > seen_max &&
           !max_.compare_exchange_weak(seen_max, value, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  /// Consistent-enough snapshot: buckets are read one by one, so a snapshot
  /// taken while writers are active may be mid-update; totals are exact once
  /// writers have quiesced (the registry idiom: flush, then read).
  [[nodiscard]] HistogramSnapshot Snapshot() const noexcept {
    HistogramSnapshot snap;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    const std::uint64_t seen_min = min_.load(std::memory_order_relaxed);
    snap.min = snap.count == 0 ? 0 : seen_min;
    snap.max = max_.load(std::memory_order_relaxed);
    return snap;
  }

  void Reset() noexcept {
    for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// Named counters, timers and histograms. Lookup creates on demand; returned
/// references stay valid for the Registry's lifetime. All methods are
/// thread-safe.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every instrumented subsystem reports into.
  static Registry& Global();

  Counter& GetCounter(const std::string& name);
  Timer& GetTimer(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Snapshot of every counter (name -> value).
  [[nodiscard]] std::map<std::string, std::uint64_t> CounterValues() const;

  /// Snapshot of every timer (name -> total/count).
  [[nodiscard]] std::map<std::string, TimerSnapshot> TimerValues() const;

  /// Snapshot of every histogram (name -> buckets/count/sum/min/max).
  [[nodiscard]] std::map<std::string, HistogramSnapshot> HistogramValues() const;

  /// Zeroes every counter, timer and histogram (names stay registered).
  void ResetAll();

  /// Single-line JSON dump:
  ///   {"counters":{"name":N,...},
  ///    "timers":{"name":{"total_ns":N,"count":N},...},
  ///    "histograms":{"name":{"count":N,"sum":N,"min":N,"max":N,
  ///                          "mean":X,"p50":X,"p90":X,"p99":X,
  ///                          "buckets":{"B":N,...}},...}}
  /// Histogram "buckets" lists only non-empty buckets (key = bucket index).
  /// Keys are sorted, so output is deterministic given equal values.
  [[nodiscard]] std::string ToJson() const;

 private:
  mutable std::mutex mutex_;
  // std::map: node-based, so Counter/Timer/Histogram addresses are stable
  // across inserts (required — callers hold references while others
  // register).
  std::map<std::string, Counter> counters_;
  std::map<std::string, Timer> timers_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace commsched::obs
