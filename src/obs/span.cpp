#include "obs/span.h"

#include <algorithm>
#include <sstream>

#include "obs/request.h"

namespace commsched::obs {

namespace {

/// Per-thread nesting depth of open spans. Collector-agnostic: nested scopes
/// on one thread always open/close in LIFO order, so a plain counter is
/// enough even if collectors are swapped mid-run.
thread_local std::uint32_t t_span_depth = 0;

void AppendEscaped(std::string& out, std::string_view value) {
  for (const char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

SpanCollector::SpanCollector() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t SpanCollector::NowMicros() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

std::uint32_t SpanCollector::ThreadIndex() {
  const std::thread::id id = std::this_thread::get_id();
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] =
      thread_index_.emplace(id, static_cast<std::uint32_t>(thread_index_.size()));
  return it->second;
}

void SpanCollector::Record(SpanRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(std::move(record));
}

std::size_t SpanCollector::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::vector<SpanRecord> SpanCollector::Records() const {
  std::vector<SpanRecord> records;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    records = records_;
  }
  // Spans complete (and are appended) innermost-first; sort into begin order
  // with enclosing spans before their children so the export is stable and
  // reads top-down.
  std::stable_sort(records.begin(), records.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.start_us != b.start_us) return a.start_us < b.start_us;
                     if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
                     return a.tid < b.tid;
                   });
  return records;
}

void SpanCollector::WriteChromeTrace(std::ostream& out) const {
  const std::vector<SpanRecord> records = Records();
  out << "[\n";
  for (std::size_t k = 0; k < records.size(); ++k) {
    const SpanRecord& r = records[k];
    std::string line = "{\"name\":\"";
    AppendEscaped(line, r.name);
    line += "\",\"cat\":\"commsched\",\"ph\":\"X\",\"ts\":";
    line += std::to_string(r.start_us);
    line += ",\"dur\":";
    line += std::to_string(r.dur_us);
    line += ",\"pid\":1,\"tid\":";
    line += std::to_string(r.tid);
    line += ",\"args\":{\"depth\":";
    line += std::to_string(r.depth);
    if (!r.req.empty()) {
      line += ",\"req\":\"";
      AppendEscaped(line, r.req);
      line += "\"";
    }
    if (!r.arg_key.empty()) {
      line += ",\"";
      AppendEscaped(line, r.arg_key);
      line += "\":";
      line += std::to_string(r.arg);
    }
    line += "}}";
    if (k + 1 < records.size()) line += ",";
    out << line << "\n";
  }
  out << "]\n";
}

std::string SpanCollector::ToChromeTraceJson() const {
  std::ostringstream out;
  WriteChromeTrace(out);
  return out.str();
}

namespace internal {
std::atomic<SpanCollector*> g_span_collector{nullptr};
}  // namespace internal

void SetSpanCollector(SpanCollector* collector) {
  internal::g_span_collector.store(collector, std::memory_order_release);
}

Span::Span(std::string_view name, std::string_view arg_key, std::uint64_t arg)
    : collector_(ActiveSpanCollector()) {
  if (collector_ == nullptr) return;
  record_.name.assign(name);
  record_.arg_key.assign(arg_key);
  if (const RequestContext* context = RequestContext::Current()) {
    record_.req = context->id();
  }
  record_.arg = arg;
  record_.tid = collector_->ThreadIndex();
  record_.depth = t_span_depth++;
  record_.start_us = collector_->NowMicros();
}

Span::~Span() {
  if (collector_ == nullptr) return;
  record_.dur_us = collector_->NowMicros() - record_.start_us;
  --t_span_depth;
  collector_->Record(std::move(record_));
}

void Span::SetArg(std::string_view arg_key, std::uint64_t arg) {
  if (collector_ == nullptr) return;
  record_.arg_key.assign(arg_key);
  record_.arg = arg;
}

}  // namespace commsched::obs
