#include "obs/request.h"

namespace commsched::obs {

namespace {

thread_local RequestContext* t_request_context = nullptr;

}  // namespace

const char* RequestStageName(RequestStage stage) {
  switch (stage) {
    case RequestStage::kQueue: return "queue_ns";
    case RequestStage::kParse: return "parse_ns";
    case RequestStage::kModel: return "model_ns";
    case RequestStage::kSearch: return "search_ns";
    case RequestStage::kSerialize: return "serialize_ns";
    case RequestStage::kOther: return "other_ns";
  }
  return "unknown_ns";
}

std::uint64_t RequestContext::InstrumentedNanos() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < kRequestStageCount; ++s) {
    if (s == static_cast<std::size_t>(RequestStage::kOther)) continue;
    total += stage_ns_[s];
  }
  return total;
}

RequestContext* RequestContext::Current() { return t_request_context; }

ScopedRequestContext::ScopedRequestContext(RequestContext& context)
    : previous_(t_request_context) {
  t_request_context = &context;
}

ScopedRequestContext::~ScopedRequestContext() { t_request_context = previous_; }

}  // namespace commsched::obs
