#include "obs/rolling.h"

#include <algorithm>
#include <chrono>

namespace commsched::obs {

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

std::uint64_t RollingCounter::WindowTotal(std::uint64_t now_ns) const noexcept {
  const std::uint64_t current = now_ns / bucket_ns_;
  const std::uint64_t oldest = current >= kSlots - 1 ? current - (kSlots - 1) : 0;
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) {
    const std::uint64_t epoch = slot.epoch.load(std::memory_order_relaxed);
    if (epoch >= oldest && epoch <= current) {
      total += slot.value.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double RollingCounter::RatePerSecond(std::uint64_t now_ns) const noexcept {
  // The window spans kSlots-1 completed buckets plus the elapsed fraction of
  // the current one. Early in process life fewer buckets have existed, but
  // they are empty, so the denominator only pessimizes the first seconds.
  const std::uint64_t in_bucket = now_ns % bucket_ns_;
  const std::uint64_t window_ns =
      std::min(now_ns, (kSlots - 1) * bucket_ns_ + in_bucket);
  if (window_ns == 0) return 0.0;
  return static_cast<double>(WindowTotal(now_ns)) * 1e9 / static_cast<double>(window_ns);
}

HistogramSnapshot RollingHistogram::WindowSnapshot(std::uint64_t now_ns) const noexcept {
  const std::uint64_t current = now_ns / bucket_ns_;
  const std::uint64_t oldest = current >= kSlots - 1 ? current - (kSlots - 1) : 0;
  HistogramSnapshot merged;
  bool any = false;
  for (const Slot& slot : slots_) {
    const std::uint64_t epoch = slot.epoch.load(std::memory_order_relaxed);
    if (epoch < oldest || epoch > current) continue;
    const HistogramSnapshot snap = slot.hist.Snapshot();
    if (snap.count == 0) continue;
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      merged.buckets[b] += snap.buckets[b];
    }
    merged.count += snap.count;
    merged.sum += snap.sum;
    merged.min = any ? std::min(merged.min, snap.min) : snap.min;
    merged.max = std::max(merged.max, snap.max);
    any = true;
  }
  return merged;
}

RollingRegistry& RollingRegistry::Global() {
  static RollingRegistry registry;
  return registry;
}

RollingCounter& RollingRegistry::GetCounter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];
}

RollingHistogram& RollingRegistry::GetHistogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return histograms_[name];
}

std::map<std::string, double> RollingRegistry::CounterRates(std::uint64_t now_ns) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, double> rates;
  for (const auto& [name, counter] : counters_) {
    rates[name] = counter.RatePerSecond(now_ns);
  }
  return rates;
}

std::map<std::string, HistogramSnapshot> RollingRegistry::HistogramWindows(
    std::uint64_t now_ns) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, HistogramSnapshot> windows;
  for (const auto& [name, histogram] : histograms_) {
    windows[name] = histogram.WindowSnapshot(now_ns);
  }
  return windows;
}

}  // namespace commsched::obs
