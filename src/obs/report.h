// Trace/metrics analysis behind the `commsched_cli report` subcommand.
//
// Consumes the two artifacts a traced run produces —
//   * the JSONL event trace written by --trace (one JSON object per line,
//     see trace.h), and
//   * the registry dump written by --metrics/--metrics-out (one JSON object
//     with "counters"/"timers"/"histograms", see obs.h) —
// and renders a human-readable summary: packet-latency percentiles, the
// top-k hottest links (from the link.util.<from>.<to> counters), per-seed
// final F_G / C_c convergence, and the load-sweep curve. WriteSweepCsv
// emits the sweep as CSV suitable for regenerating the paper's Fig. 3/5
// latency-vs-accepted-traffic curves.
//
// Parsing is intentionally limited to the flat-ish JSON the obs layer
// emits; unknown event types and keys are counted but otherwise ignored, so
// reports stay forward-compatible with new instrumentation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace commsched::obs {

/// Everything the report renderer knows about one run.
struct TraceSummary {
  std::size_t events = 0;
  std::map<std::string, std::size_t> events_by_type;

  /// One Tabu seed's walk (from search.restart / search.seed_done events).
  struct SeedSummary {
    std::uint64_t seed = 0;
    std::string algo;
    std::uint64_t iters = 0;
    std::uint64_t evals = 0;
    double start_fg = 0.0;  // F_G of the random start (search.restart)
    double best_fg = 0.0;
    double best_cc = 0.0;
    bool has_start = false;
    bool has_done = false;
  };
  std::vector<SeedSummary> seeds;  // sorted by (algo, seed)

  /// One load-sweep point (from sweep.point events).
  struct SweepPointSummary {
    std::uint64_t point = 0;
    double rate = 0.0;
    double accepted = 0.0;
    double avg_latency = 0.0;
    bool saturated = false;
  };
  std::vector<SweepPointSummary> sweep;  // sorted by point

  std::size_t net_samples = 0;  // net.sample telemetry events seen

  /// One fault-plan event observed in the trace (fault.link_down, ...).
  struct FaultEventSummary {
    std::string kind;     // "link_down", "switch_up", ...
    std::uint64_t cycle = 0;
    std::string target;   // "0--1" for links, "switch 3" for switches
  };
  std::vector<FaultEventSummary> faults;  // in stream order

  /// One reconfiguration window (fault.reconfig_start .. reconfig_done).
  struct ReconfigSummary {
    std::uint64_t start_cycle = 0;
    std::uint64_t done_cycle = 0;
    std::uint64_t surviving_switches = 0;
    std::uint64_t dead_switches = 0;
    std::uint64_t evicted_switches = 0;
    std::uint64_t dropped_flits = 0;   // cumulative at completion
    std::uint64_t messages_lost = 0;   // cumulative at completion
    bool has_done = false;
  };
  std::vector<ReconfigSummary> reconfigs;

  /// Raw net.sample points (cycle + windowed delivered flits), kept so the
  /// renderer can split delivery into before/during/after-degradation
  /// phases.
  struct NetSample {
    std::uint64_t cycle = 0;
    std::uint64_t win_flits = 0;
  };
  std::vector<NetSample> samples;

  std::map<std::string, std::size_t> remap_actions;  // sched.remap, by action
  std::optional<std::uint64_t> measure_start_cycle;  // sim.start's warmup

  // ---- from the metrics dump ---------------------------------------------
  bool has_metrics = false;

  /// One directed link's measured traffic (link.util.<from>.<to> counters).
  struct LinkTraffic {
    std::size_t from = 0;
    std::size_t to = 0;
    std::uint64_t flits = 0;
  };
  std::vector<LinkTraffic> links;  // sorted by flits, descending

  /// Summary of one dumped histogram (fields as rendered by
  /// Registry::ToJson; buckets are not re-read).
  struct HistogramSummary {
    std::uint64_t count = 0;
    std::uint64_t max = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  std::map<std::string, HistogramSummary> histograms;

  std::map<std::string, std::uint64_t> counters;
};

/// Parses a JSONL trace stream. Lines that fail to parse are skipped (and
/// counted in the returned summary's "unparseable" type); a metrics-shaped
/// line (an object with "counters" and no "type") is folded in as if passed
/// to LoadMetrics, so a file holding trace + appended metrics works.
[[nodiscard]] TraceSummary SummarizeTrace(std::istream& trace);

/// Merges a --metrics/--metrics-out dump (single JSON object) into an
/// existing summary. Returns false when the text does not parse.
bool LoadMetrics(const std::string& metrics_json, TraceSummary& summary);

/// Renders the human-readable report. `top_links` bounds the hottest-links
/// table (default used by the CLI: 5).
void RenderReport(const TraceSummary& summary, std::ostream& out,
                  std::size_t top_links = 5);

/// Writes the sweep curve as CSV: offered,accepted,avg_latency,saturated.
void WriteSweepCsv(const TraceSummary& summary, std::ostream& out);

}  // namespace commsched::obs
