// Prometheus text-format exposition of the Registry (DESIGN.md §12).
//
// Naming conventions:
//   * Every family is prefixed "commsched_" and dots/dashes in registry
//     names become underscores: svc.latency_ns -> commsched_svc_latency_ns.
//   * Counters are suffixed "_total".
//   * The per-link simnet utilization counters link.util.<from>.<to>
//     collapse into one labeled family:
//       commsched_link_util_flits_total{src="<from>",dst="<to>"}.
//   * Timers render as a summary: <name>_seconds_sum / <name>_seconds_count.
//   * Histograms render cumulatively with le = the inclusive upper bound of
//     each non-empty log2 bucket (2^b - 1; bucket 0 is le="0") plus +Inf,
//     then _sum and _count.
//   * Rolling views (rolling.h) render as gauges: <name>_rate (events/s over
//     the window) for counters and <name>_window{q="0.5"|"0.99"} plus
//     <name>_window_count for histograms.
//   * extra_gauges entries are emitted verbatim as gauges after mangling
//     (daemon state: queue depth, inflight, draining, ...).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/obs.h"
#include "obs/rolling.h"

namespace commsched::obs {

struct PrometheusOptions {
  /// Prepended to every family name.
  std::string prefix = "commsched_";
  /// Clock for the rolling views; 0 = read NowNanos().
  std::uint64_t now_ns = 0;
  /// Additional gauge samples (unmangled name -> value).
  std::map<std::string, double> extra_gauges;
  /// Include rolling-window views from `rolling` (skipped when null).
  const RollingRegistry* rolling = nullptr;
};

/// Mangles one registry name into a Prometheus metric name (prefix applied,
/// every character outside [a-zA-Z0-9_] replaced with '_').
[[nodiscard]] std::string PrometheusName(const std::string& prefix, const std::string& name);

/// Renders the full registry (plus options.rolling and options.extra_gauges)
/// as Prometheus text exposition format, trailing newline included.
[[nodiscard]] std::string RenderPrometheus(const Registry& registry,
                                           const PrometheusOptions& options = {});

}  // namespace commsched::obs
