// Request-scoped observability context (DESIGN.md §12).
//
// The service daemon installs one RequestContext per request on the worker
// thread that executes it. While installed:
//   * every TraceEvent automatically carries a "req":"<id>" field, so JSONL
//     trace lines of a served request are attributable to it;
//   * every Span records the request id, so the span tree of one request
//     can be reassembled from a SpanCollector;
//   * StageTimer scopes accumulate a per-stage wall-clock breakdown (queue
//     wait, parse, model materialization, search, serialize) that the
//     daemon returns in the response's optional "timings" field.
//
// The context is thread-local: it covers the synchronous execution chain on
// the worker thread (service -> exec -> sched -> simnet). Work fanned out to
// ThreadPool workers (parallel_seeds) is not tagged — stage timing is
// measured around the fan-out on the owning thread, which is what the
// latency breakdown needs.
//
// With no context installed (every non-daemon path: the one-shot CLI, unit
// tests, benches) all hooks are a thread-local pointer load and a branch, and
// emitted bytes are unchanged — golden traces stay byte-identical.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace commsched::obs {

/// Stages of one served request, in breakdown-rendering order. kOther is
/// the remainder (total minus the instrumented stages), so the reported
/// stages always sum exactly to the reported total.
enum class RequestStage : std::size_t {
  kQueue = 0,   // admission-queue wait before a worker picked the request up
  kParse,       // protocol parse
  kModel,       // topology build + routing + distance-table (or cache hit)
  kSearch,      // mapping search / quality evaluation / simulation sweep
  kSerialize,   // response rendering
  kOther,       // everything not covered above (dispatch, bookkeeping)
};

inline constexpr std::size_t kRequestStageCount = 6;

[[nodiscard]] const char* RequestStageName(RequestStage stage);

/// Per-request accumulator. Owned by the daemon for the lifetime of one
/// request; only touched from the worker thread executing that request.
class RequestContext {
 public:
  explicit RequestContext(std::string request_id) : id_(std::move(request_id)) {}

  RequestContext(const RequestContext&) = delete;
  RequestContext& operator=(const RequestContext&) = delete;

  [[nodiscard]] const std::string& id() const { return id_; }

  void AddStageNanos(RequestStage stage, std::uint64_t ns) {
    stage_ns_[static_cast<std::size_t>(stage)] += ns;
  }

  [[nodiscard]] std::uint64_t stage_ns(RequestStage stage) const {
    return stage_ns_[static_cast<std::size_t>(stage)];
  }

  /// Sum of every instrumented stage (excluding kOther).
  [[nodiscard]] std::uint64_t InstrumentedNanos() const;

  /// The context installed on the calling thread, or nullptr.
  [[nodiscard]] static RequestContext* Current();

 private:
  friend class ScopedRequestContext;

  std::string id_;
  std::array<std::uint64_t, kRequestStageCount> stage_ns_{};
};

/// RAII installation of a RequestContext as the calling thread's current
/// context. Scopes nest (the previous context is restored), though the
/// daemon uses exactly one per request.
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(RequestContext& context);
  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;
  ~ScopedRequestContext();

 private:
  RequestContext* previous_;
};

/// RAII stage timer: adds its lifetime to `stage` of the current context.
/// A no-op (no clock reads) when no context is installed.
class StageTimer {
 public:
  explicit StageTimer(RequestStage stage)
      : context_(RequestContext::Current()), stage_(stage) {
    if (context_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  ~StageTimer() {
    if (context_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    context_->AddStageNanos(
        stage_, static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }

 private:
  RequestContext* context_;
  RequestStage stage_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace commsched::obs
