#include "obs/prometheus.h"

#include <charconv>
#include <cmath>

#include "common/strings.h"

namespace commsched::obs {

namespace {

void AppendDouble(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += value > 0 ? "+Inf" : (value < 0 ? "-Inf" : "NaN");
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) {
    out += "0";
    return;
  }
  out.append(buf, ptr);
}

/// Inclusive upper bound of log2 bucket `b` (see HistogramSnapshot).
std::uint64_t BucketUpperBound(std::size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

void TypeLine(std::string& out, const std::string& family, const char* type) {
  out += "# TYPE ";
  out += family;
  out += " ";
  out += type;
  out += "\n";
}

/// Splits "link.util.<from>.<to>" into its endpoints ("" pair = not a link
/// counter). Same shape report.cpp's ParseLinkKey accepts.
std::pair<std::string, std::string> LinkEndpoints(const std::string& name) {
  if (!StartsWith(name, "link.util.")) return {};
  const std::vector<std::string> parts = Split(name.substr(10), '.');
  if (parts.size() != 2 || parts[0].empty() || parts[1].empty()) return {};
  for (const std::string& part : parts) {
    if (part.find_first_not_of("0123456789") != std::string::npos) return {};
  }
  return {parts[0], parts[1]};
}

}  // namespace

std::string PrometheusName(const std::string& prefix, const std::string& name) {
  std::string mangled = prefix;
  mangled.reserve(prefix.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    mangled += ok ? c : '_';
  }
  return mangled;
}

std::string RenderPrometheus(const Registry& registry, const PrometheusOptions& options) {
  const std::uint64_t now_ns = options.now_ns != 0 ? options.now_ns : NowNanos();
  std::string out;

  // Counters: per-link traffic collapses into one labeled family, rendered
  // after the scalar counters so its TYPE header appears exactly once.
  std::string links;
  bool links_typed = false;
  for (const auto& [name, value] : registry.CounterValues()) {
    const auto [src, dst] = LinkEndpoints(name);
    if (!src.empty()) {
      const std::string family = options.prefix + "link_util_flits_total";
      if (!links_typed) {
        TypeLine(links, family, "counter");
        links_typed = true;
      }
      links += family + "{src=\"" + src + "\",dst=\"" + dst + "\"} " +
               std::to_string(value) + "\n";
      continue;
    }
    const std::string family = PrometheusName(options.prefix, name) + "_total";
    TypeLine(out, family, "counter");
    out += family + " " + std::to_string(value) + "\n";
  }
  out += links;

  // Timers: accumulated seconds + sample count as a summary.
  for (const auto& [name, snap] : registry.TimerValues()) {
    const std::string family = PrometheusName(options.prefix, name) + "_seconds";
    TypeLine(out, family, "summary");
    out += family + "_sum ";
    AppendDouble(out, static_cast<double>(snap.total_ns) / 1e9);
    out += "\n" + family + "_count " + std::to_string(snap.count) + "\n";
  }

  // Histograms: cumulative le buckets over the non-empty log2 buckets.
  for (const auto& [name, snap] : registry.HistogramValues()) {
    const std::string family = PrometheusName(options.prefix, name);
    TypeLine(out, family, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      if (snap.buckets[b] == 0) continue;
      cumulative += snap.buckets[b];
      out += family + "_bucket{le=\"" + std::to_string(BucketUpperBound(b)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += family + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) + "\n";
    out += family + "_sum " + std::to_string(snap.sum) + "\n";
    out += family + "_count " + std::to_string(snap.count) + "\n";
  }

  // Rolling-window views: gauges, since they move both ways.
  if (options.rolling != nullptr) {
    for (const auto& [name, rate] : options.rolling->CounterRates(now_ns)) {
      const std::string family = PrometheusName(options.prefix, name) + "_rate";
      TypeLine(out, family, "gauge");
      out += family + " ";
      AppendDouble(out, rate);
      out += "\n";
    }
    for (const auto& [name, snap] : options.rolling->HistogramWindows(now_ns)) {
      const std::string family = PrometheusName(options.prefix, name) + "_window";
      TypeLine(out, family, "gauge");
      out += family + "{q=\"0.5\"} ";
      AppendDouble(out, snap.Percentile(0.50));
      out += "\n" + family + "{q=\"0.99\"} ";
      AppendDouble(out, snap.Percentile(0.99));
      out += "\n";
      const std::string count_family = family + "_count";
      TypeLine(out, count_family, "gauge");
      out += count_family + " " + std::to_string(snap.count) + "\n";
    }
  }

  for (const auto& [name, value] : options.extra_gauges) {
    const std::string family = PrometheusName(options.prefix, name);
    TypeLine(out, family, "gauge");
    out += family + " ";
    AppendDouble(out, value);
    out += "\n";
  }
  return out;
}

}  // namespace commsched::obs
