// Structured event tracing: JSON-Lines emission with a near-zero-cost
// disabled path.
//
// One Tracer writes one JSONL stream; every event is a single line
//   {"seq":12,"type":"search.move","seed":0,"iter":3,"a":2,"b":9,...}
// with a process-assigned monotone sequence number. Events carry no
// wall-clock timestamps, so a trace of a seeded run is byte-reproducible —
// the golden-trace test relies on this (timings belong in Registry timers).
//
// Instrumented code guards every emission on the *installed* tracer:
//
//   if (obs::Tracer* t = obs::ActiveTracer()) {
//     t->Emit(obs::TraceEvent("search.move").F("iter", i).F("fg", fg));
//   }
//
// With no tracer installed the guard is a single relaxed atomic load and a
// predictable branch; no TraceEvent is built. Emit() itself serializes under
// a mutex, so concurrent emitters (ThreadPool workers) never interleave
// partial lines; cross-thread event order is arbitrary, which is why events
// identify their stream (e.g. the tabu seed index) instead of relying on
// sequence order.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>

namespace commsched::obs {

/// One trace event under construction: a type tag plus typed fields,
/// rendered straight into a JSON object body. Field order is insertion
/// order. Keys must be plain identifiers (no escaping is applied to keys);
/// string values are escaped.
class TraceEvent {
 public:
  explicit TraceEvent(std::string_view type);

  /// Any integer type except bool (size_t, uint64_t, int, ... — kept a
  /// template so the overload set is platform-independent).
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  TraceEvent& F(std::string_view key, T value) {
    if constexpr (std::is_signed_v<T>) {
      return AppendInt(key, static_cast<std::int64_t>(value));
    } else {
      return AppendUint(key, static_cast<std::uint64_t>(value));
    }
  }

  TraceEvent& F(std::string_view key, double value);
  TraceEvent& F(std::string_view key, bool value);
  TraceEvent& F(std::string_view key, std::string_view value);
  TraceEvent& F(std::string_view key, const char* value);

  /// The partial body: `"type":"...",...` (no braces, no seq).
  [[nodiscard]] const std::string& body() const { return body_; }

 private:
  TraceEvent& AppendUint(std::string_view key, std::uint64_t value);
  TraceEvent& AppendInt(std::string_view key, std::int64_t value);

  std::string body_;
};

/// Serializes TraceEvents to an output stream, one JSON object per line.
class Tracer {
 public:
  /// Writes to a caller-owned stream (must outlive the tracer).
  explicit Tracer(std::ostream& out);

  /// Opens `path` for writing; throws ConfigError (common/check.h) if the
  /// file cannot be created.
  [[nodiscard]] static std::unique_ptr<Tracer> OpenFile(const std::string& path);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Writes the event as one line; thread-safe, lines never interleave.
  void Emit(const TraceEvent& event);

  /// Events emitted so far.
  [[nodiscard]] std::uint64_t emitted() const {
    return sequence_.load(std::memory_order_relaxed);
  }

  /// Flushes the underlying stream.
  void Flush();

 private:
  Tracer() = default;

  std::mutex mutex_;
  std::ofstream owned_;    // used by OpenFile
  std::ostream* out_ = nullptr;
  std::atomic<std::uint64_t> sequence_{0};
};

namespace internal {
extern std::atomic<Tracer*> g_tracer;
}  // namespace internal

/// Installs `tracer` as the process-wide tracer (nullptr disables tracing).
/// The tracer must outlive its installation; not synchronized with in-flight
/// Emit calls — install before starting work, uninstall after joining it.
void SetTracer(Tracer* tracer);

/// The installed tracer, or nullptr when tracing is disabled. This is the
/// hot-path guard: one relaxed load.
[[nodiscard]] inline Tracer* ActiveTracer() {
  return internal::g_tracer.load(std::memory_order_acquire);
}

[[nodiscard]] inline bool TraceEnabled() { return ActiveTracer() != nullptr; }

/// RAII installation for scoped tracing (tests, CLI commands). Restores the
/// previously installed tracer on destruction, so scopes nest.
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer& tracer) : previous_(ActiveTracer()) { SetTracer(&tracer); }
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;
  ~ScopedTracer() { SetTracer(previous_); }

 private:
  Tracer* previous_;
};

}  // namespace commsched::obs
