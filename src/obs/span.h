// Span profiling: RAII wall-clock intervals with thread ids and nesting,
// exported as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing).
//
// Spans are deliberately separate from the JSONL Tracer (trace.h): JSONL
// events carry no timestamps so seeded traces stay byte-reproducible,
// whereas spans exist to show where wall-clock time goes. A SpanCollector
// accumulates completed SpanRecords in memory; instrumented code opens
// spans with
//
//   obs::Span span("tabu.seed", "seed", seed_index);
//
// With no collector installed (the default) constructing a Span is a single
// relaxed atomic load and a branch — same cost model as the Tracer guard.
// With a collector installed the begin/end timestamps come from
// steady_clock, nesting depth is tracked per thread, and the destructor
// appends one record under the collector's mutex (safe from ThreadPool
// workers).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace commsched::obs {

/// One completed span.
struct SpanRecord {
  std::string name;
  std::string arg_key;       // "" when the span carries no argument
  std::string req;           // request id when opened under a RequestContext
  std::uint64_t arg = 0;
  std::uint64_t start_us = 0;  // microseconds since the collector's epoch
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;    // dense per-collector thread index (0 = first)
  std::uint32_t depth = 0;  // nesting depth on its thread at begin time
};

/// Accumulates SpanRecords and renders them as a Chrome trace-event JSON
/// array of complete ("ph":"X") events. Thread-safe.
class SpanCollector {
 public:
  SpanCollector();
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// Microseconds since this collector was constructed.
  [[nodiscard]] std::uint64_t NowMicros() const;

  /// Dense index of the calling thread (registers it on first use).
  std::uint32_t ThreadIndex();

  void Record(SpanRecord record);

  [[nodiscard]] std::size_t size() const;

  /// Completed records sorted by (start, longest-first, tid) — the stable
  /// order the exporter uses.
  [[nodiscard]] std::vector<SpanRecord> Records() const;

  /// Writes the records as one Chrome trace-event JSON array, one event per
  /// line: [\n{...},\n{...}\n]\n. Loadable in Perfetto / chrome://tracing.
  void WriteChromeTrace(std::ostream& out) const;

  [[nodiscard]] std::string ToChromeTraceJson() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> records_;
  std::map<std::thread::id, std::uint32_t> thread_index_;
};

namespace internal {
extern std::atomic<SpanCollector*> g_span_collector;
}  // namespace internal

/// Installs `collector` as the process-wide span sink (nullptr disables
/// span profiling). The collector must outlive both its installation and
/// any Span that latched it — install before starting work, uninstall after
/// joining it.
void SetSpanCollector(SpanCollector* collector);

/// The installed collector, or nullptr when span profiling is disabled.
/// This is the hot-path guard: one atomic load.
[[nodiscard]] inline SpanCollector* ActiveSpanCollector() {
  return internal::g_span_collector.load(std::memory_order_acquire);
}

/// RAII span. Latches the active collector at construction; a disabled span
/// (no collector) does nothing further.
class Span {
 public:
  explicit Span(std::string_view name) : Span(name, {}, 0) {}

  /// A span carrying one named integer argument (seed index, sweep point,
  /// cycle count) that lands in the Chrome event's "args" object.
  Span(std::string_view name, std::string_view arg_key, std::uint64_t arg);

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span();

  /// Sets/overwrites the argument after construction (for outcomes only
  /// known at scope end, e.g. whether a Tabu iteration escaped).
  void SetArg(std::string_view arg_key, std::uint64_t arg);

 private:
  SpanCollector* collector_;  // nullptr = disabled
  SpanRecord record_;
};

/// RAII installation for scoped profiling (tests, CLI commands). Restores
/// the previously installed collector on destruction.
class ScopedSpanCollector {
 public:
  explicit ScopedSpanCollector(SpanCollector& collector)
      : previous_(ActiveSpanCollector()) {
    SetSpanCollector(&collector);
  }
  ScopedSpanCollector(const ScopedSpanCollector&) = delete;
  ScopedSpanCollector& operator=(const ScopedSpanCollector&) = delete;
  ~ScopedSpanCollector() { SetSpanCollector(previous_); }

 private:
  SpanCollector* previous_;
};

}  // namespace commsched::obs
