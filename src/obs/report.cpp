#include "obs/report.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/strings.h"
#include "common/table.h"

namespace commsched::obs {

namespace {

/// Flat JSON-object scan: key -> raw value text (nested objects keep their
/// braces, strings keep their quotes). Mirrors the shape Registry::ToJson
/// and Tracer emit; returns nullopt on malformed input. Raw nested values
/// re-parse with the same function, which is how the metrics dump's
/// counters/histograms sections are read.
std::optional<std::map<std::string, std::string>> ParseObject(const std::string& text) {
  std::map<std::string, std::string> fields;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') return std::nullopt;
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == '}') return fields;
  for (;;) {
    skip_ws();
    if (i >= text.size() || text[i] != '"') return std::nullopt;
    const std::size_t key_start = ++i;
    while (i < text.size() && text[i] != '"') ++i;
    if (i >= text.size()) return std::nullopt;
    const std::string key = text.substr(key_start, i - key_start);
    ++i;
    skip_ws();
    if (i >= text.size() || text[i] != ':') return std::nullopt;
    ++i;
    skip_ws();
    const std::size_t value_start = i;
    int depth = 0;
    bool in_string = false;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) break;
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
    }
    if (i >= text.size() || depth != 0 || in_string) return std::nullopt;
    std::string value = text.substr(value_start, i - value_start);
    while (!value.empty() && std::isspace(static_cast<unsigned char>(value.back()))) {
      value.pop_back();
    }
    if (value.empty()) return std::nullopt;
    fields[key] = std::move(value);
    if (text[i] == '}') return fields;
    ++i;  // consume ','
  }
}

using Fields = std::map<std::string, std::string>;

std::string Raw(const Fields& fields, const std::string& key) {
  const auto it = fields.find(key);
  return it == fields.end() ? std::string() : it->second;
}

std::string Str(const Fields& fields, const std::string& key) {
  const std::string raw = Raw(fields, key);
  if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"') return "";
  return raw.substr(1, raw.size() - 2);
}

double Num(const Fields& fields, const std::string& key, double fallback = 0.0) {
  const std::string raw = Raw(fields, key);
  if (raw.empty()) return fallback;
  double value = fallback;
  const auto [ptr, ec] = std::from_chars(raw.data(), raw.data() + raw.size(), value);
  if (ec != std::errc{} || ptr != raw.data() + raw.size()) return fallback;
  return value;
}

std::uint64_t Uint(const Fields& fields, const std::string& key, std::uint64_t fallback = 0) {
  const std::string raw = Raw(fields, key);
  if (raw.empty() || raw.find_first_not_of("0123456789") != std::string::npos) {
    return fallback;
  }
  std::uint64_t value = fallback;
  const auto [ptr, ec] = std::from_chars(raw.data(), raw.data() + raw.size(), value);
  return ec == std::errc{} ? value : fallback;
}

bool Bool(const Fields& fields, const std::string& key) {
  return Raw(fields, key) == "true";
}

/// Seed summaries are keyed by (algo, seed); restart and seed_done events
/// for the same walk merge into one row.
TraceSummary::SeedSummary& SeedRow(TraceSummary& summary, const std::string& algo,
                                   std::uint64_t seed) {
  for (auto& row : summary.seeds) {
    if (row.algo == algo && row.seed == seed) return row;
  }
  summary.seeds.push_back({});
  summary.seeds.back().algo = algo;
  summary.seeds.back().seed = seed;
  return summary.seeds.back();
}

void FoldTraceEvent(TraceSummary& summary, const Fields& fields) {
  const std::string type = Str(fields, "type");
  ++summary.events;
  ++summary.events_by_type[type.empty() ? "(untyped)" : type];
  if (type == "search.restart") {
    TraceSummary::SeedSummary& row =
        SeedRow(summary, Str(fields, "algo"), Uint(fields, "seed"));
    row.start_fg = Num(fields, "fg");
    row.has_start = true;
  } else if (type == "search.seed_done") {
    TraceSummary::SeedSummary& row =
        SeedRow(summary, Str(fields, "algo"), Uint(fields, "seed"));
    row.iters = Uint(fields, "iters");
    row.evals = Uint(fields, "evals");
    row.best_fg = Num(fields, "best_fg");
    row.best_cc = Num(fields, "best_cc");
    row.has_done = true;
  } else if (type == "sweep.point") {
    TraceSummary::SweepPointSummary point;
    point.point = Uint(fields, "point");
    point.rate = Num(fields, "rate");
    point.accepted = Num(fields, "accepted");
    point.avg_latency = Num(fields, "avg_latency");
    point.saturated = Bool(fields, "saturated");
    summary.sweep.push_back(point);
  } else if (type == "net.sample") {
    ++summary.net_samples;
    summary.samples.push_back({Uint(fields, "cycle"), Uint(fields, "win_flits")});
  } else if (type == "sim.start") {
    summary.measure_start_cycle = Uint(fields, "warmup");
  } else if (type == "sched.remap") {
    ++summary.remap_actions[Str(fields, "action")];
  } else if (type == "fault.reconfig_start") {
    TraceSummary::ReconfigSummary window;
    window.start_cycle = Uint(fields, "cycle");
    summary.reconfigs.push_back(window);
  } else if (type == "fault.reconfig_done") {
    if (summary.reconfigs.empty() || summary.reconfigs.back().has_done) {
      summary.reconfigs.push_back({});
      summary.reconfigs.back().start_cycle = Uint(fields, "cycle");
    }
    TraceSummary::ReconfigSummary& window = summary.reconfigs.back();
    window.done_cycle = Uint(fields, "cycle");
    window.surviving_switches = Uint(fields, "surviving_switches");
    window.dead_switches = Uint(fields, "dead_switches");
    window.evicted_switches = Uint(fields, "evicted_switches");
    window.dropped_flits = Uint(fields, "dropped_flits");
    window.messages_lost = Uint(fields, "messages_lost");
    window.has_done = true;
  } else if (StartsWith(type, "fault.")) {
    TraceSummary::FaultEventSummary fault;
    fault.kind = type.substr(6);
    fault.cycle = Uint(fields, "cycle");
    if (fields.count("switch") > 0) {
      fault.target = "switch " + Raw(fields, "switch");
    } else {
      fault.target = Raw(fields, "a") + "--" + Raw(fields, "b");
    }
    summary.faults.push_back(fault);
  }
}

void SortSummary(TraceSummary& summary) {
  std::sort(summary.seeds.begin(), summary.seeds.end(),
            [](const TraceSummary::SeedSummary& a, const TraceSummary::SeedSummary& b) {
              if (a.algo != b.algo) return a.algo < b.algo;
              return a.seed < b.seed;
            });
  std::sort(summary.sweep.begin(), summary.sweep.end(),
            [](const TraceSummary::SweepPointSummary& a,
               const TraceSummary::SweepPointSummary& b) { return a.point < b.point; });
}

/// Parses "link.util.<from>.<to>" into its endpoints.
std::optional<std::pair<std::size_t, std::size_t>> ParseLinkKey(const std::string& name) {
  if (!StartsWith(name, "link.util.")) return std::nullopt;
  const std::vector<std::string> parts = Split(name.substr(10), '.');
  if (parts.size() != 2 || parts[0].empty() || parts[1].empty()) return std::nullopt;
  for (const std::string& part : parts) {
    if (part.find_first_not_of("0123456789") != std::string::npos) return std::nullopt;
  }
  return std::make_pair(static_cast<std::size_t>(std::stoull(parts[0])),
                        static_cast<std::size_t>(std::stoull(parts[1])));
}

void FoldMetrics(TraceSummary& summary, const Fields& fields) {
  summary.has_metrics = true;
  if (const auto counters = ParseObject(Raw(fields, "counters")); counters.has_value()) {
    for (const auto& [name, raw] : *counters) {
      const std::uint64_t value = Uint(*counters, name);
      summary.counters[name] = value;
      if (const auto link = ParseLinkKey(name); link.has_value()) {
        summary.links.push_back({link->first, link->second, value});
      }
    }
  }
  if (const auto hists = ParseObject(Raw(fields, "histograms")); hists.has_value()) {
    for (const auto& [name, raw] : *hists) {
      const auto hist = ParseObject(raw);
      if (!hist.has_value()) continue;
      TraceSummary::HistogramSummary& row = summary.histograms[name];
      row.count = Uint(*hist, "count");
      row.max = Uint(*hist, "max");
      row.mean = Num(*hist, "mean");
      row.p50 = Num(*hist, "p50");
      row.p90 = Num(*hist, "p90");
      row.p99 = Num(*hist, "p99");
    }
  }
  std::stable_sort(summary.links.begin(), summary.links.end(),
                   [](const TraceSummary::LinkTraffic& a, const TraceSummary::LinkTraffic& b) {
                     return a.flits > b.flits;
                   });
}

}  // namespace

TraceSummary SummarizeTrace(std::istream& trace) {
  TraceSummary summary;
  std::string line;
  while (std::getline(trace, line)) {
    if (Trim(line).empty()) continue;
    const auto fields = ParseObject(line);
    if (!fields.has_value()) {
      ++summary.events;
      ++summary.events_by_type["(unparseable)"];
      continue;
    }
    if (fields->count("type") == 0 && fields->count("counters") > 0) {
      FoldMetrics(summary, *fields);  // appended metrics dump
      continue;
    }
    FoldTraceEvent(summary, *fields);
  }
  SortSummary(summary);
  return summary;
}

bool LoadMetrics(const std::string& metrics_json, TraceSummary& summary) {
  const auto fields = ParseObject(metrics_json);
  if (!fields.has_value() || fields->count("counters") == 0) return false;
  FoldMetrics(summary, *fields);
  return true;
}

void RenderReport(const TraceSummary& summary, std::ostream& out, std::size_t top_links) {
  out << "== commsched report ==\n";
  out << "events: " << summary.events << " across " << summary.events_by_type.size()
      << " types\n";
  for (const auto& [type, count] : summary.events_by_type) {
    out << "  " << type << ": " << count << "\n";
  }

  if (!summary.seeds.empty()) {
    out << "\nSearch convergence (" << summary.seeds.size() << " seeds):\n";
    TextTable table({"algo", "seed", "iters", "evals", "start F_G", "final F_G", "C_c"});
    table.set_precision(4);
    const TraceSummary::SeedSummary* best = nullptr;
    for (const TraceSummary::SeedSummary& row : summary.seeds) {
      table.AddRow({row.algo, static_cast<long long>(row.seed),
                    static_cast<long long>(row.iters), static_cast<long long>(row.evals),
                    row.has_start ? TableCell(row.start_fg) : TableCell(std::string("-")),
                    row.has_done ? TableCell(row.best_fg) : TableCell(std::string("-")),
                    row.has_done ? TableCell(row.best_cc) : TableCell(std::string("-"))});
      if (row.has_done && (best == nullptr || row.best_fg < best->best_fg)) {
        best = &row;
      }
    }
    out << table;
    if (best != nullptr) {
      out << "best F_G: " << best->best_fg << " (C_c " << best->best_cc << ", seed "
          << best->seed << ")\n";
    }
  }

  // Engine tabu pressure per algorithm, from the unified per-seed counters
  // (search.<algo>.{tabu_hits,aspirations,escapes}) in the metrics dump.
  {
    struct TabuPressure {
      std::uint64_t tabu_hits = 0;
      std::uint64_t aspirations = 0;
      std::uint64_t escapes = 0;
    };
    std::map<std::string, TabuPressure> pressure;
    for (const auto& [name, value] : summary.counters) {
      if (!StartsWith(name, "search.")) continue;
      const std::size_t dot = name.find('.', 7);
      if (dot == std::string::npos) continue;
      const std::string algo = name.substr(7, dot - 7);
      const std::string field = name.substr(dot + 1);
      if (field == "tabu_hits") {
        pressure[algo].tabu_hits = value;
      } else if (field == "aspirations") {
        pressure[algo].aspirations = value;
      } else if (field == "escapes") {
        pressure[algo].escapes = value;
      }
    }
    bool any = false;
    for (const auto& [algo, row] : pressure) {
      if (row.tabu_hits + row.aspirations + row.escapes > 0) any = true;
    }
    if (any) {
      out << "\nSearch engine tabu pressure:\n";
      TextTable table({"algo", "tabu_hits", "aspirations", "escapes"});
      for (const auto& [algo, row] : pressure) {
        table.AddRow({algo, static_cast<long long>(row.tabu_hits),
                      static_cast<long long>(row.aspirations),
                      static_cast<long long>(row.escapes)});
      }
      out << table;
    }
  }

  // Execution engines: simulated vs stepped (wall) cycles, and the event
  // engine's idle-skip efficiency, from the sim.* counters in the metrics
  // dump. The skip counters only exist for event-mode runs.
  {
    const auto counter = [&summary](const char* name) -> std::uint64_t {
      const auto it = summary.counters.find(name);
      return it == summary.counters.end() ? 0 : it->second;
    };
    const std::uint64_t simulated = counter("sim.cycles");
    if (simulated > 0) {
      out << "\nExecution (" << counter("sim.runs") << " simulator runs):\n";
      out << "  simulated cycles: " << simulated << " (measured "
          << counter("sim.measured_cycles") << ")\n";
      const std::uint64_t skipped = counter("sim.event.skipped_cycles");
      const std::uint64_t skips = counter("sim.event.skips");
      if (skipped > 0 || skips > 0) {
        const std::uint64_t stepped = simulated >= skipped ? simulated - skipped : 0;
        const double efficiency =
            100.0 * static_cast<double>(skipped) / static_cast<double>(simulated);
        out << "  event engine: skipped " << skipped << " idle cycles across " << skips
            << " spans; stepped " << stepped << " wall cycles (skip efficiency "
            << efficiency << "%)\n";
      }
    }
  }

  const auto latency = summary.histograms.find("net.latency");
  if (latency != summary.histograms.end() && latency->second.count > 0) {
    const TraceSummary::HistogramSummary& h = latency->second;
    out << "\nPacket latency (cycles, " << h.count << " messages): p50=" << h.p50
        << " p90=" << h.p90 << " p99=" << h.p99 << " max=" << h.max << " mean=" << h.mean
        << "\n";
  }
  const auto occupancy = summary.histograms.find("net.vc.occupancy");
  if (occupancy != summary.histograms.end() && occupancy->second.count > 0) {
    const TraceSummary::HistogramSummary& h = occupancy->second;
    out << "VC buffer occupancy (flits, " << h.count << " samples): p50=" << h.p50
        << " p99=" << h.p99 << " max=" << h.max << "\n";
  }

  if (!summary.links.empty()) {
    std::uint64_t total = 0;
    for (const TraceSummary::LinkTraffic& link : summary.links) total += link.flits;
    const std::size_t shown = std::min(top_links, summary.links.size());
    out << "\nTop-" << shown << " hottest links (of " << summary.links.size()
        << " directed links):\n";
    TextTable table({"link", "flits", "share"});
    table.set_precision(1);
    for (std::size_t k = 0; k < shown; ++k) {
      const TraceSummary::LinkTraffic& link = summary.links[k];
      const double share =
          total == 0 ? 0.0
                     : 100.0 * static_cast<double>(link.flits) / static_cast<double>(total);
      table.AddRow({std::to_string(link.from) + " -> " + std::to_string(link.to),
                    static_cast<long long>(link.flits), share});
    }
    out << table;
  }

  if (!summary.sweep.empty()) {
    out << "\nLoad sweep (" << summary.sweep.size() << " points):\n";
    TextTable table({"offered", "accepted", "avg_latency", "saturated"});
    table.set_precision(4);
    double throughput = 0.0;
    for (const TraceSummary::SweepPointSummary& point : summary.sweep) {
      table.AddRow({point.rate, point.accepted, point.avg_latency,
                    std::string(point.saturated ? "yes" : "no")});
      throughput = std::max(throughput, point.accepted);
    }
    out << table;
    out << "throughput: " << throughput << " flits/switch/cycle\n";
  }

  if (!summary.faults.empty() || !summary.reconfigs.empty()) {
    out << "\nFault & reconfiguration:\n";
    for (const TraceSummary::FaultEventSummary& fault : summary.faults) {
      out << "  cycle " << fault.cycle << ": " << fault.kind << " " << fault.target << "\n";
    }
    if (!summary.reconfigs.empty()) {
      TextTable table({"start", "done", "downtime", "alive", "dead", "evicted",
                       "dropped flits", "msgs lost"});
      for (const TraceSummary::ReconfigSummary& window : summary.reconfigs) {
        table.AddRow(
            {static_cast<long long>(window.start_cycle),
             window.has_done ? TableCell(static_cast<long long>(window.done_cycle))
                             : TableCell(std::string("-")),
             window.has_done
                 ? TableCell(static_cast<long long>(window.done_cycle - window.start_cycle))
                 : TableCell(std::string("-")),
             static_cast<long long>(window.surviving_switches),
             static_cast<long long>(window.dead_switches),
             static_cast<long long>(window.evicted_switches),
             static_cast<long long>(window.dropped_flits),
             static_cast<long long>(window.messages_lost)});
      }
      out << table;
    }
    if (!summary.remap_actions.empty()) {
      out << "  sched.remap actions:";
      for (const auto& [action, count] : summary.remap_actions) {
        out << " " << action << "=" << count;
      }
      out << "\n";
    }

    // Delivery rate before / during / after the degradation window, from
    // the net.sample telemetry windows. The degradation window spans the
    // first fault event to the last completed reconfiguration.
    if (summary.samples.size() >= 2 || summary.measure_start_cycle.has_value()) {
      std::uint64_t fault_begin = UINT64_MAX;
      for (const TraceSummary::FaultEventSummary& fault : summary.faults) {
        fault_begin = std::min(fault_begin, fault.cycle);
      }
      for (const TraceSummary::ReconfigSummary& window : summary.reconfigs) {
        fault_begin = std::min(fault_begin, window.start_cycle);
      }
      std::uint64_t fault_end = 0;
      bool any_done = false;
      for (const TraceSummary::ReconfigSummary& window : summary.reconfigs) {
        if (window.has_done) {
          fault_end = std::max(fault_end, window.done_cycle);
          any_done = true;
        }
      }
      std::uint64_t flits[3] = {0, 0, 0};   // before, during, after
      std::uint64_t cycles[3] = {0, 0, 0};
      std::uint64_t prev = summary.measure_start_cycle.value_or(0);
      bool have_prev = summary.measure_start_cycle.has_value();
      for (const TraceSummary::NetSample& sample : summary.samples) {
        if (have_prev && sample.cycle > prev) {
          std::size_t phase = 1;  // during
          if (sample.cycle <= fault_begin) {
            phase = 0;  // window ended before the first fault
          } else if (any_done && prev >= fault_end) {
            phase = 2;  // window started after the last reconfiguration
          }
          flits[phase] += sample.win_flits;
          cycles[phase] += sample.cycle - prev;
        }
        prev = sample.cycle;
        have_prev = true;
      }
      const auto rate = [&](std::size_t phase) -> double {
        return cycles[phase] == 0 ? 0.0
                                  : static_cast<double>(flits[phase]) /
                                        static_cast<double>(cycles[phase]);
      };
      if (cycles[0] + cycles[1] + cycles[2] > 0) {
        out << "  delivered flits/cycle: before=" << rate(0) << " during=" << rate(1)
            << " after=" << rate(2) << "\n";
        if (cycles[0] > 0 && cycles[2] > 0 && rate(0) > 0.0) {
          out << "  recovery: " << 100.0 * rate(2) / rate(0)
              << "% of pre-fault delivery rate\n";
        }
      }
    }
  }

  if (summary.net_samples > 0) {
    out << "\nnet.sample telemetry events: " << summary.net_samples << "\n";
  }
  if (!summary.has_metrics) {
    out << "\n(no metrics dump loaded: pass --metrics-file, or append the --metrics line "
           "to the trace; latency percentiles and link tables need it)\n";
  }
}

void WriteSweepCsv(const TraceSummary& summary, std::ostream& out) {
  out << "offered,accepted,avg_latency,saturated\n";
  for (const TraceSummary::SweepPointSummary& point : summary.sweep) {
    out << point.rate << "," << point.accepted << "," << point.avg_latency << ","
        << (point.saturated ? 1 : 0) << "\n";
  }
}

}  // namespace commsched::obs
