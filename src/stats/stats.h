// Statistics helpers for the bench harnesses: Pearson correlation (Fig. 6),
// linear fits, summaries.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace commsched::stats {

/// Pearson correlation coefficient of two equal-length samples (>= 3 points,
/// non-degenerate). Returns a value in [-1, 1].
[[nodiscard]] double PearsonCorrelation(std::span<const double> x, std::span<const double> y);

/// Least-squares line y = a + b x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] LinearFit FitLine(std::span<const double> x, std::span<const double> y);

/// Order statistics / moments of one sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};
[[nodiscard]] Summary Summarize(std::span<const double> values);

/// Spearman rank correlation (ties get average ranks).
[[nodiscard]] double SpearmanCorrelation(std::span<const double> x, std::span<const double> y);

}  // namespace commsched::stats
