#include "stats/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace commsched::stats {

namespace {

struct Moments {
  double mean_x = 0.0;
  double mean_y = 0.0;
  double cov = 0.0;
  double var_x = 0.0;
  double var_y = 0.0;
};

Moments ComputeMoments(std::span<const double> x, std::span<const double> y) {
  CS_CHECK(x.size() == y.size(), "sample size mismatch");
  CS_CHECK(x.size() >= 2, "need at least two points");
  Moments m;
  const double n = static_cast<double>(x.size());
  m.mean_x = std::accumulate(x.begin(), x.end(), 0.0) / n;
  m.mean_y = std::accumulate(y.begin(), y.end(), 0.0) / n;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - m.mean_x;
    const double dy = y[i] - m.mean_y;
    m.cov += dx * dy;
    m.var_x += dx * dx;
    m.var_y += dy * dy;
  }
  return m;
}

std::vector<double> AverageRanks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      ranks[order[k]] = avg_rank;
    }
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double PearsonCorrelation(std::span<const double> x, std::span<const double> y) {
  CS_CHECK(x.size() >= 3, "correlation needs at least 3 points");
  const Moments m = ComputeMoments(x, y);
  CS_CHECK(m.var_x > 0.0 && m.var_y > 0.0, "degenerate sample in correlation");
  return m.cov / std::sqrt(m.var_x * m.var_y);
}

LinearFit FitLine(std::span<const double> x, std::span<const double> y) {
  const Moments m = ComputeMoments(x, y);
  CS_CHECK(m.var_x > 0.0, "degenerate x in linear fit");
  LinearFit fit;
  fit.slope = m.cov / m.var_x;
  fit.intercept = m.mean_y - fit.slope * m.mean_x;
  fit.r_squared = m.var_y > 0.0 ? (m.cov * m.cov) / (m.var_x * m.var_y) : 1.0;
  return fit;
}

Summary Summarize(std::span<const double> values) {
  CS_CHECK(!values.empty(), "cannot summarize an empty sample");
  Summary s;
  s.count = values.size();
  s.mean = std::accumulate(values.begin(), values.end(), 0.0) / static_cast<double>(s.count);
  double ss = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    ss += (v - s.mean) * (v - s.mean);
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.stddev = s.count > 1 ? std::sqrt(ss / static_cast<double>(s.count - 1)) : 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.median = sorted.size() % 2 == 1
                 ? sorted[sorted.size() / 2]
                 : 0.5 * (sorted[sorted.size() / 2 - 1] + sorted[sorted.size() / 2]);
  return s;
}

double SpearmanCorrelation(std::span<const double> x, std::span<const double> y) {
  CS_CHECK(x.size() == y.size(), "sample size mismatch");
  const std::vector<double> rx = AverageRanks(x);
  const std::vector<double> ry = AverageRanks(y);
  return PearsonCorrelation(rx, ry);
}

}  // namespace commsched::stats
