#include "faults/fault_plan.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace commsched::faults {
namespace {

// Minimal recursive-descent parser for the subset of JSON a fault plan
// uses: objects, arrays, strings, and unsigned integers.  Anything else
// (floats, nesting surprises, trailing garbage) is a ConfigError with a
// byte offset, which is all a hand-written chaos plan needs for debugging.
class PlanParser {
 public:
  explicit PlanParser(const std::string& text) : text_(text) {}

  std::vector<FaultEvent> Parse() {
    SkipSpace();
    Expect('{');
    ExpectKey("events");
    std::vector<FaultEvent> events = ParseEvents();
    SkipSpace();
    Expect('}');
    SkipSpace();
    if (pos_ != text_.size()) Fail("trailing characters after fault plan");
    return events;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) const {
    throw ConfigError("fault plan: " + why + " (at byte " + std::to_string(pos_) + ")");
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  void Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      const char c = text_[pos_++];
      if (c == '\\') Fail("escape sequences are not supported in fault plans");
      out.push_back(c);
    }
    if (pos_ >= text_.size()) Fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  void ExpectKey(const std::string& key) {
    const std::string got = ParseString();
    if (got != key) Fail("expected key \"" + key + "\", got \"" + got + "\"");
    Expect(':');
  }

  std::size_t ParseUnsigned() {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '-') {
      Fail("negative numbers are not valid cycle counts or ids");
    }
    if (pos_ >= text_.size() ||
        std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
      Fail("expected a non-negative integer");
    }
    std::size_t value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      const std::size_t digit = static_cast<std::size_t>(text_[pos_] - '0');
      if (value > (SIZE_MAX - digit) / 10) Fail("integer overflows");
      value = value * 10 + digit;
      ++pos_;
    }
    return value;
  }

  std::vector<FaultEvent> ParseEvents() {
    Expect('[');
    std::vector<FaultEvent> events;
    if (Peek(']')) {
      ++pos_;
      return events;
    }
    while (true) {
      events.push_back(ParseEvent());
      SkipSpace();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      Expect(']');
      return events;
    }
  }

  FaultEvent ParseEvent() {
    Expect('{');
    FaultEvent event;
    bool saw_at = false, saw_kind = false, saw_a = false, saw_b = false, saw_switch = false;
    while (true) {
      const std::string key = ParseString();
      Expect(':');
      if (key == "at") {
        event.at_cycle = ParseUnsigned();
        saw_at = true;
      } else if (key == "kind") {
        event.kind = ParseKind(ParseString());
        saw_kind = true;
      } else if (key == "a") {
        event.a = ParseUnsigned();
        saw_a = true;
      } else if (key == "b") {
        event.b = ParseUnsigned();
        saw_b = true;
      } else if (key == "switch") {
        event.switch_id = ParseUnsigned();
        saw_switch = true;
      } else {
        Fail("unknown event key \"" + key + "\"");
      }
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      Expect('}');
      break;
    }
    if (!saw_at) Fail("event is missing \"at\"");
    if (!saw_kind) Fail("event is missing \"kind\"");
    const bool link_kind =
        event.kind == FaultKind::kLinkDown || event.kind == FaultKind::kLinkUp;
    if (link_kind) {
      if (!saw_a || !saw_b) Fail("link event needs both \"a\" and \"b\"");
      if (saw_switch) Fail("link event must not name a \"switch\"");
      if (event.a == event.b) Fail("link event endpoints must differ");
    } else {
      if (!saw_switch) Fail("switch event needs \"switch\"");
      if (saw_a || saw_b) Fail("switch event must not name \"a\"/\"b\"");
    }
    return event;
  }

  FaultKind ParseKind(const std::string& name) const {
    if (name == "link_down") return FaultKind::kLinkDown;
    if (name == "link_up") return FaultKind::kLinkUp;
    if (name == "switch_down") return FaultKind::kSwitchDown;
    if (name == "switch_up") return FaultKind::kSwitchUp;
    Fail("unknown event kind \"" + name + "\"");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

FaultPlan FaultPlan::FromEvents(std::vector<FaultEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at_cycle < y.at_cycle;
                   });
  FaultPlan plan;
  plan.events_ = std::move(events);
  return plan;
}

FaultPlan FaultPlan::FromJson(const std::string& text) {
  return FromEvents(PlanParser(text).Parse());
}

std::string FaultPlan::ToJson() const {
  std::ostringstream out;
  out << "{\"events\": [";
  for (std::size_t k = 0; k < events_.size(); ++k) {
    const FaultEvent& e = events_[k];
    if (k > 0) out << ", ";
    out << "{\"at\": " << e.at_cycle << ", \"kind\": \"" << KindName(e.kind) << "\"";
    if (e.kind == FaultKind::kLinkDown || e.kind == FaultKind::kLinkUp) {
      out << ", \"a\": " << e.a << ", \"b\": " << e.b;
    } else {
      out << ", \"switch\": " << e.switch_id;
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

void FaultPlan::ValidateFor(const topo::SwitchGraph& graph) const {
  for (std::size_t k = 0; k < events_.size(); ++k) {
    const FaultEvent& e = events_[k];
    const std::string where = "fault plan event " + std::to_string(k) + ": ";
    if (e.kind == FaultKind::kLinkDown || e.kind == FaultKind::kLinkUp) {
      if (e.a >= graph.switch_count() || e.b >= graph.switch_count()) {
        throw ConfigError(where + "link endpoint out of range (topology has " +
                          std::to_string(graph.switch_count()) + " switches)");
      }
      if (!graph.HasLink(e.a, e.b)) {
        throw ConfigError(where + "no link " + std::to_string(e.a) + "--" +
                          std::to_string(e.b) + " in the topology");
      }
    } else if (e.switch_id >= graph.switch_count()) {
      throw ConfigError(where + "switch " + std::to_string(e.switch_id) +
                        " out of range (topology has " +
                        std::to_string(graph.switch_count()) + " switches)");
    }
  }
}

const char* FaultPlan::KindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kSwitchDown: return "switch_down";
    case FaultKind::kSwitchUp: return "switch_up";
  }
  CS_UNREACHABLE("bad FaultKind");
}

}  // namespace commsched::faults
