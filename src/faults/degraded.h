// Degraded topology view and up*/down* reconfiguration (ISSUE 3 tentpole,
// part 2).
//
// A DegradedView sits over an immutable base SwitchGraph and tracks which
// links and switches are currently failed.  Reconfigure() extracts the
// largest surviving connected component as a compact SwitchGraph (re-indexed
// switches and links) plus both directions of the id mapping, so the
// existing UpDownRouting / DistanceTable builders — which require a
// connected graph — can be reused unchanged on the surviving hardware.
//
// DegradedRouting then adapts the compact routing back into base switch/link
// ids, so consumers that key state by base ids (the flit simulator's buffer
// arrays, the scheduler's cluster numbering) keep working across a
// reconfiguration without reindexing anything.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/check.h"
#include "faults/fault_plan.h"
#include "routing/updown.h"
#include "topology/graph.h"

namespace commsched::faults {

/// Thrown when a reconfiguration is asked to produce a fully connected
/// surviving topology but the failures have partitioned the network.
/// Carries the switches that would have to be evicted (alive but cut off
/// from the largest surviving component).
class PartitionedNetworkError : public commsched::ConfigError {
 public:
  PartitionedNetworkError(const std::string& what, std::vector<topo::SwitchId> evicted)
      : ConfigError(what), evicted_(std::move(evicted)) {}

  [[nodiscard]] const std::vector<topo::SwitchId>& evicted_switches() const { return evicted_; }

 private:
  std::vector<topo::SwitchId> evicted_;
};

/// The result of rebuilding the surviving topology: a compact connected
/// graph plus the base<->compact id mappings and the casualty lists.
struct Reconfiguration {
  topo::SwitchGraph graph;  // compact graph over the largest alive component

  // Switch id mappings.  to_base[c] is the base id of compact switch c;
  // to_compact[s] is nullopt when base switch s is dead or evicted.
  std::vector<topo::SwitchId> to_base;
  std::vector<std::optional<std::size_t>> to_compact;

  // Link id mappings, same convention (order-preserving over base links).
  std::vector<topo::LinkId> link_to_base;
  std::vector<std::optional<topo::LinkId>> link_to_compact;

  std::vector<topo::SwitchId> dead;     // switches currently failed
  std::vector<topo::SwitchId> evicted;  // alive, but outside the largest component

  [[nodiscard]] bool Covers(topo::SwitchId base_switch) const {
    return to_compact[base_switch].has_value();
  }
};

/// Mutable failure mask over an immutable base graph.
class DegradedView {
 public:
  explicit DegradedView(const topo::SwitchGraph& base);

  /// Applies one fault event (validated against the base graph).
  void Apply(const FaultEvent& event);

  void FailLink(topo::SwitchId a, topo::SwitchId b);
  void RestoreLink(topo::SwitchId a, topo::SwitchId b);
  void FailSwitch(topo::SwitchId s);
  void RestoreSwitch(topo::SwitchId s);

  [[nodiscard]] const topo::SwitchGraph& base() const { return *base_; }
  [[nodiscard]] bool SwitchAlive(topo::SwitchId s) const { return !switch_down_[s]; }

  /// A link is alive when it has not itself failed and both endpoints are
  /// alive switches.
  [[nodiscard]] bool LinkAlive(topo::LinkId l) const;

  /// Switch ids of the largest connected component of the alive subgraph,
  /// sorted ascending.  Ties break toward the component with the lowest
  /// switch id (deterministic).  Empty when every switch is down.
  [[nodiscard]] std::vector<topo::SwitchId> LargestAliveComponent() const;

  /// Rebuilds the surviving topology.  With `allow_partition` (the graceful
  /// path), alive-but-disconnected switches are evicted into
  /// Reconfiguration::evicted; otherwise a partition throws
  /// PartitionedNetworkError.  Throws ConfigError when no switch survives.
  [[nodiscard]] Reconfiguration Reconfigure(bool allow_partition = true) const;

 private:
  const topo::SwitchGraph* base_;
  std::vector<bool> link_down_;
  std::vector<bool> switch_down_;
};

/// Routing over the surviving topology, exposed in *base* switch/link ids.
///
/// graph() returns the base graph; MinimalDistance/NextHops answer in base
/// ids by translating through the Reconfiguration mapping into an inner
/// UpDownRouting built on the compact graph.  Queries touching a dead or
/// evicted switch return "unreachable": MinimalDistance = SIZE_MAX,
/// NextHops = {} — the simulator treats such messages as lost.
class DegradedRouting final : public route::Routing {
 public:
  DegradedRouting(const topo::SwitchGraph& base, Reconfiguration reconfig,
                  route::RootPolicy policy = route::RootPolicy::kMaxDegree);

  DegradedRouting(const DegradedRouting&) = delete;
  DegradedRouting& operator=(const DegradedRouting&) = delete;

  [[nodiscard]] const topo::SwitchGraph& graph() const override { return *base_; }
  [[nodiscard]] std::size_t MinimalDistance(topo::SwitchId s, topo::SwitchId t) const override;
  [[nodiscard]] std::vector<topo::LinkId> LinksOnMinimalPaths(topo::SwitchId s,
                                                              topo::SwitchId t) const override;
  [[nodiscard]] std::vector<route::NextHop> NextHops(topo::SwitchId current, topo::SwitchId dest,
                                                     route::Phase phase) const override;
  [[nodiscard]] route::Phase ArrivalPhase(topo::LinkId link, topo::SwitchId into) const override;
  [[nodiscard]] std::string Name() const override { return "up*/down* (degraded)"; }

  /// True when `base_switch` is part of the surviving routed component.
  [[nodiscard]] bool Covers(topo::SwitchId base_switch) const {
    return reconfig_.Covers(base_switch);
  }

  [[nodiscard]] const Reconfiguration& reconfig() const { return reconfig_; }

  /// The inner routing over the compact surviving graph — feed this to
  /// DistanceTable::Build to get the degraded equivalent-distance table.
  [[nodiscard]] const route::UpDownRouting& compact_routing() const { return *compact_routing_; }

 private:
  const topo::SwitchGraph* base_;
  Reconfiguration reconfig_;
  // Heap-held so the compact graph inside reconfig_ has a stable address
  // for the inner routing regardless of how this object was constructed.
  std::unique_ptr<route::UpDownRouting> compact_routing_;
};

}  // namespace commsched::faults
