#include "faults/degraded.h"

#include <algorithm>
#include <sstream>

namespace commsched::faults {
namespace {

std::string JoinIds(const std::vector<topo::SwitchId>& ids) {
  std::ostringstream out;
  for (std::size_t k = 0; k < ids.size(); ++k) {
    if (k > 0) out << ", ";
    out << ids[k];
  }
  return out.str();
}

}  // namespace

DegradedView::DegradedView(const topo::SwitchGraph& base)
    : base_(&base),
      link_down_(base.link_count(), false),
      switch_down_(base.switch_count(), false) {}

void DegradedView::Apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kLinkDown: FailLink(event.a, event.b); return;
    case FaultKind::kLinkUp: RestoreLink(event.a, event.b); return;
    case FaultKind::kSwitchDown: FailSwitch(event.switch_id); return;
    case FaultKind::kSwitchUp: RestoreSwitch(event.switch_id); return;
  }
  CS_UNREACHABLE("bad FaultKind");
}

void DegradedView::FailLink(topo::SwitchId a, topo::SwitchId b) {
  const auto link = base_->FindLink(a, b);
  if (!link.has_value()) {
    throw ConfigError("cannot fail link " + std::to_string(a) + "--" + std::to_string(b) +
                      ": no such link");
  }
  link_down_[*link] = true;
}

void DegradedView::RestoreLink(topo::SwitchId a, topo::SwitchId b) {
  const auto link = base_->FindLink(a, b);
  if (!link.has_value()) {
    throw ConfigError("cannot restore link " + std::to_string(a) + "--" + std::to_string(b) +
                      ": no such link");
  }
  link_down_[*link] = false;
}

void DegradedView::FailSwitch(topo::SwitchId s) {
  if (s >= switch_down_.size()) {
    throw ConfigError("cannot fail switch " + std::to_string(s) + ": out of range");
  }
  switch_down_[s] = true;
}

void DegradedView::RestoreSwitch(topo::SwitchId s) {
  if (s >= switch_down_.size()) {
    throw ConfigError("cannot restore switch " + std::to_string(s) + ": out of range");
  }
  switch_down_[s] = false;
}

bool DegradedView::LinkAlive(topo::LinkId l) const {
  if (link_down_[l]) return false;
  const topo::Link& link = base_->link(l);
  return !switch_down_[link.a] && !switch_down_[link.b];
}

std::vector<topo::SwitchId> DegradedView::LargestAliveComponent() const {
  const std::size_t n = base_->switch_count();
  std::vector<std::size_t> component(n, SIZE_MAX);
  std::vector<std::vector<topo::SwitchId>> members;
  std::vector<topo::SwitchId> stack;
  for (topo::SwitchId seed = 0; seed < n; ++seed) {
    if (switch_down_[seed] || component[seed] != SIZE_MAX) continue;
    const std::size_t id = members.size();
    members.emplace_back();
    component[seed] = id;
    stack.push_back(seed);
    while (!stack.empty()) {
      const topo::SwitchId s = stack.back();
      stack.pop_back();
      members[id].push_back(s);
      for (const topo::LinkId l : base_->incident_links(s)) {
        if (!LinkAlive(l)) continue;
        const topo::SwitchId t = base_->OtherEnd(l, s);
        if (component[t] == SIZE_MAX) {
          component[t] = id;
          stack.push_back(t);
        }
      }
    }
  }
  // Largest component; components were seeded in ascending switch order, so
  // taking the first maximum breaks ties toward the lowest-id component.
  std::size_t best = SIZE_MAX;
  for (std::size_t k = 0; k < members.size(); ++k) {
    if (best == SIZE_MAX || members[k].size() > members[best].size()) best = k;
  }
  if (best == SIZE_MAX) return {};
  std::vector<topo::SwitchId> result = members[best];
  std::sort(result.begin(), result.end());
  return result;
}

Reconfiguration DegradedView::Reconfigure(bool allow_partition) const {
  const std::size_t n = base_->switch_count();
  const std::vector<topo::SwitchId> survivors = LargestAliveComponent();
  if (survivors.empty()) {
    throw ConfigError("reconfiguration impossible: every switch has failed");
  }

  std::vector<std::optional<std::size_t>> to_compact(n);
  for (std::size_t c = 0; c < survivors.size(); ++c) to_compact[survivors[c]] = c;

  std::vector<topo::SwitchId> dead;
  std::vector<topo::SwitchId> evicted;
  for (topo::SwitchId s = 0; s < n; ++s) {
    if (switch_down_[s]) {
      dead.push_back(s);
    } else if (!to_compact[s].has_value()) {
      evicted.push_back(s);
    }
  }
  if (!evicted.empty() && !allow_partition) {
    throw PartitionedNetworkError(
        "network partitioned: switches {" + JoinIds(evicted) +
            "} are alive but disconnected from the largest surviving component",
        evicted);
  }

  topo::SwitchGraph compact(survivors.size(), base_->hosts_per_switch());
  std::vector<topo::LinkId> link_to_base;
  std::vector<std::optional<topo::LinkId>> link_to_compact(base_->link_count());
  for (topo::LinkId l = 0; l < base_->link_count(); ++l) {
    if (!LinkAlive(l)) continue;
    const topo::Link& link = base_->link(l);
    if (!to_compact[link.a].has_value() || !to_compact[link.b].has_value()) continue;
    const topo::LinkId cl = compact.AddLink(*to_compact[link.a], *to_compact[link.b]);
    CS_DCHECK(cl == link_to_base.size(), "compact link ids must be dense");
    link_to_base.push_back(l);
    link_to_compact[l] = cl;
  }

  return Reconfiguration{std::move(compact), survivors,          std::move(to_compact),
                         std::move(link_to_base), std::move(link_to_compact),
                         std::move(dead),     std::move(evicted)};
}

DegradedRouting::DegradedRouting(const topo::SwitchGraph& base, Reconfiguration reconfig,
                                 route::RootPolicy policy)
    : base_(&base), reconfig_(std::move(reconfig)) {
  CS_CHECK(reconfig_.to_compact.size() == base.switch_count(),
           "reconfiguration was built for a different base graph");
  compact_routing_ = std::make_unique<route::UpDownRouting>(reconfig_.graph, policy);
}

std::size_t DegradedRouting::MinimalDistance(topo::SwitchId s, topo::SwitchId t) const {
  if (s == t) return 0;
  const auto cs = reconfig_.to_compact[s];
  const auto ct = reconfig_.to_compact[t];
  if (!cs.has_value() || !ct.has_value()) return SIZE_MAX;
  return compact_routing_->MinimalDistance(*cs, *ct);
}

std::vector<topo::LinkId> DegradedRouting::LinksOnMinimalPaths(topo::SwitchId s,
                                                               topo::SwitchId t) const {
  const auto cs = reconfig_.to_compact[s];
  const auto ct = reconfig_.to_compact[t];
  if (!cs.has_value() || !ct.has_value()) return {};
  std::vector<topo::LinkId> links = compact_routing_->LinksOnMinimalPaths(*cs, *ct);
  for (topo::LinkId& l : links) l = reconfig_.link_to_base[l];
  std::sort(links.begin(), links.end());
  return links;
}

std::vector<route::NextHop> DegradedRouting::NextHops(topo::SwitchId current, topo::SwitchId dest,
                                                      route::Phase phase) const {
  const auto cc = reconfig_.to_compact[current];
  const auto cd = reconfig_.to_compact[dest];
  if (!cc.has_value() || !cd.has_value()) return {};
  std::vector<route::NextHop> hops = compact_routing_->NextHops(*cc, *cd, phase);
  for (route::NextHop& hop : hops) {
    hop.link = reconfig_.link_to_base[hop.link];
    hop.next = reconfig_.to_base[hop.next];
  }
  // Compact link ids are order-preserving over base ids, so the Routing
  // contract's sorted-by-link-id order survives the translation.
  return hops;
}

route::Phase DegradedRouting::ArrivalPhase(topo::LinkId link, topo::SwitchId into) const {
  const auto cl = reconfig_.link_to_compact[link];
  const auto ci = reconfig_.to_compact[into];
  if (!cl.has_value() || !ci.has_value()) return route::Phase::kUp;
  return compact_routing_->ArrivalPhase(*cl, *ci);
}

}  // namespace commsched::faults
