// Declarative fault schedules (ISSUE 3 tentpole, part 1).
//
// A FaultPlan is an ordered list of component failure/repair events pinned
// to simulation cycles, mirroring the Autonet setting (paper §5) where the
// network self-reconfigures after link or switch failures.  Plans are
// loadable from a small JSON document so chaos scenarios can be described
// next to the experiment that runs them:
//
//   {"events": [
//     {"at": 6000,  "kind": "link_down",   "a": 0, "b": 1},
//     {"at": 6000,  "kind": "switch_down", "switch": 3},
//     {"at": 20000, "kind": "link_up",     "a": 0, "b": 1}
//   ]}
//
// All malformed input is reported as ConfigError — a fault plan is user
// configuration, never a programming contract.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"
#include "topology/graph.h"

namespace commsched::faults {

/// What happens to the network at a fault event.
enum class FaultKind {
  kLinkDown,    // an undirected link a--b fails
  kLinkUp,      // a previously failed link a--b is repaired
  kSwitchDown,  // a switch (and every incident link + attached hosts) fails
  kSwitchUp,    // a previously failed switch is repaired
};

/// One scheduled event.  `a`/`b` are used by link events, `switch_id` by
/// switch events; the unused fields are zero.
struct FaultEvent {
  std::size_t at_cycle = 0;
  FaultKind kind = FaultKind::kLinkDown;
  topo::SwitchId a = 0;
  topo::SwitchId b = 0;
  topo::SwitchId switch_id = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// An immutable, cycle-ordered schedule of fault events.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Builds a plan from events; sorts them by cycle (stable, so same-cycle
  /// events keep their declaration order).
  static FaultPlan FromEvents(std::vector<FaultEvent> events);

  /// Parses the JSON document format shown in the header comment.
  /// Throws ConfigError on any malformed input.
  static FaultPlan FromJson(const std::string& text);

  /// Serializes back to the JSON document format (round-trips FromJson).
  [[nodiscard]] std::string ToJson() const;

  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Checks every event references a switch/link that exists in `graph`;
  /// throws ConfigError naming the offending event otherwise.  Link events
  /// must name a link present in the base topology (a link can only fail if
  /// it was built in the first place).
  void ValidateFor(const topo::SwitchGraph& graph) const;

  /// Stable short name for a kind ("link_down", ...), used in JSON and in
  /// fault.* trace events.
  [[nodiscard]] static const char* KindName(FaultKind kind);

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace commsched::faults
