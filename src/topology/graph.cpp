#include "topology/graph.h"

#include <algorithm>
#include <deque>

namespace commsched::topo {

SwitchGraph::SwitchGraph(std::size_t switch_count, std::size_t hosts_per_switch)
    : hosts_per_switch_(hosts_per_switch), adjacency_(switch_count) {
  CS_CHECK(switch_count >= 1, "graph needs at least one switch");
}

LinkId SwitchGraph::AddLink(SwitchId a, SwitchId b) {
  CS_CHECK(a < switch_count() && b < switch_count(), "link endpoint out of range");
  CS_CHECK(a != b, "self-loop links are not allowed");
  CS_CHECK(!HasLink(a, b), "duplicate link ", a, "-", b);
  const LinkId id = links_.size();
  links_.push_back({std::min(a, b), std::max(a, b)});
  adjacency_[a].push_back(id);
  adjacency_[b].push_back(id);
  return id;
}

std::vector<SwitchId> SwitchGraph::Neighbors(SwitchId s) const {
  std::vector<SwitchId> result;
  result.reserve(incident_links(s).size());
  for (LinkId id : incident_links(s)) {
    result.push_back(OtherEnd(id, s));
  }
  return result;
}

SwitchId SwitchGraph::OtherEnd(LinkId link_id, SwitchId from) const {
  const Link& l = link(link_id);
  CS_DCHECK(l.a == from || l.b == from, "switch ", from, " is not an endpoint of link ", link_id);
  return l.a == from ? l.b : l.a;
}

std::optional<LinkId> SwitchGraph::FindLink(SwitchId a, SwitchId b) const {
  CS_CHECK(a < switch_count() && b < switch_count(), "switch id out of range");
  if (a == b) return std::nullopt;
  // Scan the smaller adjacency list.
  const SwitchId probe = adjacency_[a].size() <= adjacency_[b].size() ? a : b;
  const SwitchId other = probe == a ? b : a;
  for (LinkId id : adjacency_[probe]) {
    if (OtherEnd(id, probe) == other) {
      return id;
    }
  }
  return std::nullopt;
}

bool SwitchGraph::IsConnected() const {
  const auto dist = BfsDistances(0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::size_t d) { return d == static_cast<std::size_t>(-1); });
}

std::vector<std::size_t> SwitchGraph::BfsDistances(SwitchId source) const {
  CS_CHECK(source < switch_count(), "BFS source out of range");
  std::vector<std::size_t> dist(switch_count(), static_cast<std::size_t>(-1));
  std::deque<SwitchId> queue{source};
  dist[source] = 0;
  while (!queue.empty()) {
    const SwitchId u = queue.front();
    queue.pop_front();
    for (LinkId id : adjacency_[u]) {
      const SwitchId v = OtherEnd(id, u);
      if (dist[v] == static_cast<std::size_t>(-1)) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<std::vector<std::size_t>> SwitchGraph::AllPairsHopDistance() const {
  std::vector<std::vector<std::size_t>> result;
  result.reserve(switch_count());
  for (SwitchId s = 0; s < switch_count(); ++s) {
    result.push_back(BfsDistances(s));
  }
  return result;
}

SwitchId SwitchGraph::SwitchOfHost(std::size_t host) const {
  CS_CHECK(host < host_count(), "host id out of range");
  CS_CHECK(hosts_per_switch_ > 0, "graph has no hosts");
  return host / hosts_per_switch_;
}

std::size_t SwitchGraph::FirstHostOfSwitch(SwitchId s) const {
  CS_CHECK(s < switch_count(), "switch id out of range");
  return s * hosts_per_switch_;
}

SwitchGraph SwitchGraph::WithoutLink(LinkId link) const {
  CS_CHECK(link < links_.size(), "link id out of range");
  SwitchGraph g(switch_count(), hosts_per_switch_);
  for (LinkId l = 0; l < links_.size(); ++l) {
    if (l == link) continue;
    g.AddLink(links_[l].a, links_[l].b);
  }
  return g;
}

}  // namespace commsched::topo
