#include "topology/serialize.h"

#include <array>
#include <optional>
#include <sstream>

#include "common/strings.h"

namespace commsched::topo {

std::string ToText(const SwitchGraph& graph) {
  std::ostringstream oss;
  oss << "switches " << graph.switch_count() << '\n';
  oss << "hosts_per_switch " << graph.hosts_per_switch() << '\n';
  for (const Link& l : graph.links()) {
    oss << "link " << l.a << ' ' << l.b << '\n';
  }
  return oss.str();
}

SwitchGraph FromText(const std::string& text) {
  std::optional<std::size_t> switches;
  std::size_t hosts = 0;
  std::vector<std::pair<std::size_t, std::size_t>> links;

  std::istringstream iss(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(iss, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream ls(trimmed);
    std::string keyword;
    ls >> keyword;
    auto fail = [&](const std::string& why) {
      throw ConfigError("topology text line " + std::to_string(line_no) + ": " + why);
    };
    if (keyword == "switches") {
      std::size_t n = 0;
      if (!(ls >> n) || n == 0) fail("expected positive switch count");
      switches = n;
    } else if (keyword == "hosts_per_switch") {
      if (!(ls >> hosts)) fail("expected host count");
    } else if (keyword == "link") {
      std::size_t a = 0;
      std::size_t b = 0;
      if (!(ls >> a >> b)) fail("expected two endpoints");
      links.emplace_back(a, b);
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }
  if (!switches) {
    throw ConfigError("topology text missing 'switches' line");
  }
  SwitchGraph graph(*switches, hosts);
  for (auto [a, b] : links) {
    if (a >= *switches || b >= *switches) {
      throw ConfigError("topology text: link endpoint out of range");
    }
    graph.AddLink(a, b);
  }
  return graph;
}

std::string ToDot(const SwitchGraph& graph, const std::vector<std::size_t>& cluster_of_switch) {
  CS_CHECK(cluster_of_switch.empty() || cluster_of_switch.size() == graph.switch_count(),
           "cluster map must cover every switch");
  static constexpr std::array<const char*, 8> kPalette = {
      "#66c2a5", "#fc8d62", "#8da0cb", "#e78ac3", "#a6d854", "#ffd92f", "#e5c494", "#b3b3b3"};
  std::ostringstream oss;
  oss << "graph topology {\n  node [shape=circle, style=filled];\n";
  for (SwitchId s = 0; s < graph.switch_count(); ++s) {
    oss << "  n" << s << " [label=\"" << s << "\"";
    if (!cluster_of_switch.empty()) {
      oss << ", fillcolor=\"" << kPalette[cluster_of_switch[s] % kPalette.size()] << "\"";
    } else {
      oss << ", fillcolor=\"#dddddd\"";
    }
    oss << "];\n";
  }
  for (const Link& l : graph.links()) {
    oss << "  n" << l.a << " -- n" << l.b << ";\n";
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace commsched::topo
