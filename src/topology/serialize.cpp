#include "topology/serialize.h"

#include <array>
#include <optional>
#include <sstream>

#include "common/strings.h"

namespace commsched::topo {

std::string ToText(const SwitchGraph& graph) {
  std::ostringstream oss;
  oss << "switches " << graph.switch_count() << '\n';
  oss << "hosts_per_switch " << graph.hosts_per_switch() << '\n';
  for (const Link& l : graph.links()) {
    oss << "link " << l.a << ' ' << l.b << '\n';
  }
  return oss.str();
}

namespace {

// Sanity ceilings for user-supplied topology text.  Way above anything the
// paper's NOW setting needs, but low enough that a corrupted or hostile
// count (e.g. "-1" wrapping to SIZE_MAX through an unsigned parse) is a
// clean ConfigError instead of an allocation bomb.
constexpr std::size_t kMaxSwitches = 1'000'000;
constexpr std::size_t kMaxHostsPerSwitch = 4096;

// Parses a strictly non-negative decimal integer token.  istream's size_t
// extraction accepts "-1" by wrapping it modulo 2^64, so negative input is
// rejected explicitly here.
std::optional<std::size_t> ParseCount(std::istringstream& ls) {
  std::string token;
  if (!(ls >> token)) return std::nullopt;
  if (token.empty() || token.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  std::size_t value = 0;
  for (const char c : token) {
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (value > (SIZE_MAX - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace

SwitchGraph FromText(const std::string& text) {
  std::optional<std::size_t> switches;
  std::optional<std::size_t> hosts;
  std::vector<std::pair<std::size_t, std::size_t>> links;
  std::vector<std::size_t> link_lines;

  std::istringstream iss(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(iss, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream ls(trimmed);
    std::string keyword;
    ls >> keyword;
    auto fail = [&](const std::string& why) {
      throw ConfigError("topology text line " + std::to_string(line_no) + ": " + why);
    };
    auto require_line_end = [&] {
      std::string extra;
      if (ls >> extra) fail("unexpected trailing token '" + extra + "'");
    };
    if (keyword == "switches") {
      if (switches) fail("duplicate 'switches' line");
      const auto n = ParseCount(ls);
      if (!n || *n == 0) fail("expected positive switch count");
      if (*n > kMaxSwitches) {
        fail("switch count " + std::to_string(*n) + " exceeds the sanity cap of " +
             std::to_string(kMaxSwitches));
      }
      switches = *n;
      require_line_end();
    } else if (keyword == "hosts_per_switch") {
      if (hosts) fail("duplicate 'hosts_per_switch' line");
      const auto n = ParseCount(ls);
      if (!n) fail("expected non-negative host count");
      if (*n > kMaxHostsPerSwitch) {
        fail("hosts_per_switch " + std::to_string(*n) + " exceeds the sanity cap of " +
             std::to_string(kMaxHostsPerSwitch));
      }
      hosts = *n;
      require_line_end();
    } else if (keyword == "link") {
      const auto a = ParseCount(ls);
      const auto b = ParseCount(ls);
      if (!a || !b) fail("expected two non-negative endpoints");
      links.emplace_back(*a, *b);
      link_lines.push_back(line_no);
      require_line_end();
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }
  if (!switches) {
    throw ConfigError("topology text missing 'switches' line");
  }
  SwitchGraph graph(*switches, hosts.value_or(0));
  for (std::size_t k = 0; k < links.size(); ++k) {
    const auto [a, b] = links[k];
    auto fail = [&](const std::string& why) {
      throw ConfigError("topology text line " + std::to_string(link_lines[k]) + ": " + why);
    };
    // Pre-validate so user-input problems surface as ConfigError instead of
    // tripping AddLink's programming contracts.
    if (a >= *switches || b >= *switches) fail("link endpoint out of range");
    if (a == b) fail("self-loop link " + std::to_string(a) + "--" + std::to_string(b));
    if (graph.HasLink(a, b)) {
      fail("duplicate link " + std::to_string(a) + "--" + std::to_string(b));
    }
    graph.AddLink(a, b);
  }
  return graph;
}

std::string ToDot(const SwitchGraph& graph, const std::vector<std::size_t>& cluster_of_switch) {
  CS_CHECK(cluster_of_switch.empty() || cluster_of_switch.size() == graph.switch_count(),
           "cluster map must cover every switch");
  static constexpr std::array<const char*, 8> kPalette = {
      "#66c2a5", "#fc8d62", "#8da0cb", "#e78ac3", "#a6d854", "#ffd92f", "#e5c494", "#b3b3b3"};
  std::ostringstream oss;
  oss << "graph topology {\n  node [shape=circle, style=filled];\n";
  for (SwitchId s = 0; s < graph.switch_count(); ++s) {
    oss << "  n" << s << " [label=\"" << s << "\"";
    if (!cluster_of_switch.empty()) {
      oss << ", fillcolor=\"" << kPalette[cluster_of_switch[s] % kPalette.size()] << "\"";
    } else {
      oss << ", fillcolor=\"#dddddd\"";
    }
    oss << "];\n";
  }
  for (const Link& l : graph.links()) {
    oss << "  n" << l.a << " -- n" << l.b << ";\n";
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace commsched::topo
