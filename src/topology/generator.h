// Random irregular topology generation with the paper's constraints (§5.1):
//   * fixed number of workstations per switch (4 in the paper),
//   * single link between neighbouring switches,
//   * every switch uses the same number of ports for inter-switch links
//     (8-port switches, 4 host ports, 3 inter-switch links, 1 port open),
//   * connected.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "topology/graph.h"

namespace commsched::topo {

/// Parameters of the paper's random irregular network model.
struct IrregularTopologyOptions {
  std::size_t switch_count = 16;
  std::size_t hosts_per_switch = 4;   // workstations per switch
  std::size_t interswitch_degree = 3; // inter-switch links per switch
  std::uint64_t seed = 1;
  /// Generation restarts allowed before giving up (stuck pairings).
  std::size_t max_attempts = 1000;
};

/// Generates a connected random topology where every switch has exactly
/// `interswitch_degree` inter-switch links (one switch may end one short if
/// switch_count * degree is odd — the paper's configurations are all even).
/// Deterministic in `options.seed`. Throws ConfigError for infeasible
/// parameters (degree >= switch_count, etc.).
[[nodiscard]] SwitchGraph GenerateIrregularTopology(const IrregularTopologyOptions& options);

/// Generates a uniformly random spanning tree skeleton with the given degree
/// cap (used as the first stage of GenerateIrregularTopology; exposed for
/// tests and for sparser-than-regular topologies).
[[nodiscard]] SwitchGraph GenerateRandomTree(std::size_t switch_count,
                                             std::size_t hosts_per_switch,
                                             std::size_t max_degree, Rng& rng);

}  // namespace commsched::topo
