// Switch-level network topology.
//
// Following the paper's network model (§5.1): the network is a set of
// switches joined by bidirectional point-to-point links, with a fixed number
// of workstations (hosts) attached to every switch.  A "node" in the paper
// is a switch; processes run on the hosts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/check.h"

namespace commsched::topo {

using SwitchId = std::size_t;
using LinkId = std::size_t;

/// An undirected link between two distinct switches.
struct Link {
  SwitchId a = 0;
  SwitchId b = 0;

  friend bool operator==(const Link&, const Link&) = default;
};

/// Immutable-after-build undirected simple graph of switches, each carrying
/// `hosts_per_switch` workstations.
class SwitchGraph {
 public:
  /// Graph with `switch_count` switches, no links yet.
  SwitchGraph(std::size_t switch_count, std::size_t hosts_per_switch);

  /// Adds an undirected link. Rejects self-loops, duplicate links, and
  /// out-of-range endpoints. Returns the new link's id.
  LinkId AddLink(SwitchId a, SwitchId b);

  [[nodiscard]] std::size_t switch_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] std::size_t hosts_per_switch() const { return hosts_per_switch_; }
  [[nodiscard]] std::size_t host_count() const { return switch_count() * hosts_per_switch_; }

  [[nodiscard]] const Link& link(LinkId id) const {
    CS_DCHECK(id < links_.size(), "link id out of range");
    return links_[id];
  }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  /// Link ids incident to switch `s`.
  [[nodiscard]] const std::vector<LinkId>& incident_links(SwitchId s) const {
    CS_DCHECK(s < adjacency_.size(), "switch id out of range");
    return adjacency_[s];
  }

  /// Switches adjacent to `s` (one entry per incident link).
  [[nodiscard]] std::vector<SwitchId> Neighbors(SwitchId s) const;

  /// The switch at the other end of `link` from `from`.
  [[nodiscard]] SwitchId OtherEnd(LinkId link, SwitchId from) const;

  /// Inter-switch degree of `s`.
  [[nodiscard]] std::size_t Degree(SwitchId s) const { return incident_links(s).size(); }

  /// Link id joining a and b, if present.
  [[nodiscard]] std::optional<LinkId> FindLink(SwitchId a, SwitchId b) const;

  [[nodiscard]] bool HasLink(SwitchId a, SwitchId b) const { return FindLink(a, b).has_value(); }

  /// True if every switch can reach every other via links.
  [[nodiscard]] bool IsConnected() const;

  /// Hop distances from `source` to every switch by BFS.
  /// Unreachable switches get SIZE_MAX.
  [[nodiscard]] std::vector<std::size_t> BfsDistances(SwitchId source) const;

  /// Hop-count shortest-path matrix (all pairs, BFS per source).
  [[nodiscard]] std::vector<std::vector<std::size_t>> AllPairsHopDistance() const;

  /// Host numbering: hosts are 0..host_count()-1, grouped by switch.
  [[nodiscard]] SwitchId SwitchOfHost(std::size_t host) const;
  [[nodiscard]] std::size_t FirstHostOfSwitch(SwitchId s) const;

  /// Copy of this graph without link `link` (link ids above it shift down
  /// by one). Models a link failure; the result may be disconnected —
  /// check IsConnected() before building routing on it.
  [[nodiscard]] SwitchGraph WithoutLink(LinkId link) const;

 private:
  std::size_t hosts_per_switch_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;
};

}  // namespace commsched::topo
