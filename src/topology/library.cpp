#include "topology/library.h"

#include <algorithm>
#include <vector>

namespace commsched::topo {

SwitchGraph MakeRing(std::size_t n, std::size_t hosts_per_switch) {
  CS_CHECK(n >= 3, "ring needs at least 3 switches");
  SwitchGraph g(n, hosts_per_switch);
  for (std::size_t i = 0; i < n; ++i) {
    g.AddLink(i, (i + 1) % n);
  }
  return g;
}

SwitchGraph MakeMesh2D(std::size_t rows, std::size_t cols, std::size_t hosts_per_switch) {
  CS_CHECK(rows >= 1 && cols >= 1, "mesh needs positive dimensions");
  SwitchGraph g(rows * cols, hosts_per_switch);
  auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.AddLink(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.AddLink(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

SwitchGraph MakeTorus2D(std::size_t rows, std::size_t cols, std::size_t hosts_per_switch) {
  CS_CHECK(rows >= 3 && cols >= 3, "torus needs dimensions >= 3 to stay a simple graph");
  SwitchGraph g(rows * cols, hosts_per_switch);
  auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      g.AddLink(id(r, c), id(r, (c + 1) % cols));
      g.AddLink(id(r, c), id((r + 1) % rows, c));
    }
  }
  return g;
}

SwitchGraph MakeHypercube(std::size_t dim, std::size_t hosts_per_switch) {
  CS_CHECK(dim >= 1 && dim <= 20, "hypercube dimension out of range");
  const std::size_t n = std::size_t{1} << dim;
  SwitchGraph g(n, hosts_per_switch);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t b = 0; b < dim; ++b) {
      const std::size_t v = u ^ (std::size_t{1} << b);
      if (u < v) g.AddLink(u, v);
    }
  }
  return g;
}

SwitchGraph MakeTorus3D(std::size_t x, std::size_t y, std::size_t z,
                        std::size_t hosts_per_switch) {
  CS_CHECK(x >= 3 && y >= 3 && z >= 3, "3-D torus needs dimensions >= 3 to stay a simple graph");
  SwitchGraph g(x * y * z, hosts_per_switch);
  auto id = [y, z](std::size_t i, std::size_t j, std::size_t k) { return (i * y + j) * z + k; };
  for (std::size_t i = 0; i < x; ++i) {
    for (std::size_t j = 0; j < y; ++j) {
      for (std::size_t k = 0; k < z; ++k) {
        g.AddLink(id(i, j, k), id((i + 1) % x, j, k));
        g.AddLink(id(i, j, k), id(i, (j + 1) % y, k));
        g.AddLink(id(i, j, k), id(i, j, (k + 1) % z));
      }
    }
  }
  return g;
}

SwitchGraph MakeFatTree(std::size_t k, std::size_t hosts_per_switch) {
  CS_CHECK(k >= 2 && k % 2 == 0, "fat-tree arity must be even and >= 2");
  const std::size_t half = k / 2;
  const std::size_t pod_switches = k;        // k/2 edge + k/2 aggregation
  const std::size_t core_base = k * pod_switches;
  SwitchGraph g(core_base + half * half, hosts_per_switch);
  for (std::size_t pod = 0; pod < k; ++pod) {
    const std::size_t edge_base = pod * pod_switches;
    const std::size_t agg_base = edge_base + half;
    for (std::size_t e = 0; e < half; ++e) {
      for (std::size_t a = 0; a < half; ++a) {
        g.AddLink(edge_base + e, agg_base + a);
      }
    }
    for (std::size_t a = 0; a < half; ++a) {
      for (std::size_t c = 0; c < half; ++c) {
        g.AddLink(agg_base + a, core_base + a * half + c);
      }
    }
  }
  return g;
}

SwitchGraph MakeStar(std::size_t leaves, std::size_t hosts_per_switch) {
  CS_CHECK(leaves >= 1, "star needs at least one leaf");
  SwitchGraph g(leaves + 1, hosts_per_switch);
  for (std::size_t i = 1; i <= leaves; ++i) {
    g.AddLink(0, i);
  }
  return g;
}

SwitchGraph MakeComplete(std::size_t n, std::size_t hosts_per_switch) {
  CS_CHECK(n >= 2, "complete graph needs at least 2 switches");
  SwitchGraph g(n, hosts_per_switch);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      g.AddLink(i, j);
    }
  }
  return g;
}

SwitchGraph MakeFourRingsOfSix(std::size_t hosts_per_switch) {
  return MakeRingsOfRings(4, 6, 1, hosts_per_switch);
}

SwitchGraph MakeRingsOfRings(std::size_t ring_count, std::size_t ring_size,
                             std::size_t bridges_per_pair, std::size_t hosts_per_switch) {
  CS_CHECK(ring_count >= 2, "need at least two rings");
  CS_CHECK(ring_size >= 3, "each ring needs at least 3 switches");
  CS_CHECK(bridges_per_pair >= 1 && bridges_per_pair <= ring_size,
           "bridges_per_pair out of range");
  SwitchGraph g(ring_count * ring_size, hosts_per_switch);
  auto id = [ring_size](std::size_t ring, std::size_t pos) { return ring * ring_size + pos; };
  for (std::size_t r = 0; r < ring_count; ++r) {
    for (std::size_t p = 0; p < ring_size; ++p) {
      g.AddLink(id(r, p), id(r, (p + 1) % ring_size));
    }
  }
  // Bridge consecutive rings (rings form a cycle). Bridge endpoints are
  // spread around the ring so no switch exceeds 4 inter-switch links.
  for (std::size_t r = 0; r < ring_count; ++r) {
    const std::size_t next = (r + 1) % ring_count;
    if (ring_count == 2 && r == 1) break;  // avoid doubling the single pair
    for (std::size_t b = 0; b < bridges_per_pair; ++b) {
      const std::size_t pos = (b * ring_size) / bridges_per_pair;
      // Offset the far endpoint so bridges from both sides of a ring do not
      // land on the same switch.
      const std::size_t far = (pos + ring_size / 2) % ring_size;
      g.AddLink(id(r, pos), id(next, far));
    }
  }
  return g;
}

SwitchGraph MakeMixedDensity16(std::size_t hosts_per_switch) {
  SwitchGraph g(16, hosts_per_switch);
  // Group 0: complete K4 over switches 0..3.
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      g.AddLink(i, j);
    }
  }
  // Groups 1..3: paths 4k .. 4k+3.
  for (std::size_t group = 1; group < 4; ++group) {
    for (std::size_t p = 0; p < 3; ++p) {
      g.AddLink(4 * group + p, 4 * group + p + 1);
    }
  }
  // One link between consecutive groups (ring of groups); endpoints chosen
  // to keep every switch within the 4 inter-switch ports of an 8-port
  // switch (K4 members have degree 3 internally).
  g.AddLink(3, 4);
  g.AddLink(7, 8);
  g.AddLink(11, 12);
  g.AddLink(15, 0);
  return g;
}

SwitchGraph MakeClusteredRandom(std::size_t cluster_count, std::size_t cluster_size,
                                std::size_t intra_degree, std::size_t inter_links, Rng& rng,
                                std::size_t hosts_per_switch) {
  CS_CHECK(cluster_count >= 2, "need at least two clusters");
  CS_CHECK(cluster_size >= 3, "clusters need at least 3 switches");
  CS_CHECK(intra_degree >= 2 && intra_degree < cluster_size, "infeasible intra_degree");
  CS_CHECK(inter_links >= 1, "clusters must be connected");
  const std::size_t n = cluster_count * cluster_size;
  SwitchGraph g(n, hosts_per_switch);
  auto id = [cluster_size](std::size_t cluster, std::size_t pos) {
    return cluster * cluster_size + pos;
  };

  // Inside each cluster: ring skeleton (connectivity), then random chords up
  // to intra_degree. Getting stuck is fine: we simply stop adding chords.
  for (std::size_t c = 0; c < cluster_count; ++c) {
    for (std::size_t p = 0; p < cluster_size; ++p) {
      g.AddLink(id(c, p), id(c, (p + 1) % cluster_size));
    }
    for (std::size_t tries = 0; tries < cluster_size * cluster_size; ++tries) {
      std::vector<std::size_t> open;
      for (std::size_t p = 0; p < cluster_size; ++p) {
        if (g.Degree(id(c, p)) < intra_degree) open.push_back(p);
      }
      if (open.size() < 2) break;
      const std::size_t a = rng.Pick(open);
      const std::size_t b = rng.Pick(open);
      if (a == b || g.HasLink(id(c, a), id(c, b))) continue;
      g.AddLink(id(c, a), id(c, b));
    }
  }
  // Between consecutive clusters (cycle): `inter_links` random links.
  for (std::size_t c = 0; c < cluster_count; ++c) {
    const std::size_t next = (c + 1) % cluster_count;
    if (cluster_count == 2 && c == 1) break;
    std::size_t added = 0;
    std::size_t guard = 0;
    while (added < inter_links && guard++ < 1000) {
      const std::size_t a = static_cast<std::size_t>(rng.NextIndex(cluster_size));
      const std::size_t b = static_cast<std::size_t>(rng.NextIndex(cluster_size));
      if (g.HasLink(id(c, a), id(next, b))) continue;
      g.AddLink(id(c, a), id(next, b));
      ++added;
    }
    CS_CHECK(added >= 1, "failed to connect consecutive clusters");
  }
  return g;
}

}  // namespace commsched::topo
