// Named topologies: regular families (the technique "is applicable to both
// regular and irregular topologies", §2) plus the specially designed
// 24-switch network of §5.2 — four interconnected rings of six switches.
#pragma once

#include "common/rng.h"
#include "topology/graph.h"

namespace commsched::topo {

/// Cycle of n switches (n >= 3).
[[nodiscard]] SwitchGraph MakeRing(std::size_t n, std::size_t hosts_per_switch = 4);

/// rows x cols mesh (no wraparound).
[[nodiscard]] SwitchGraph MakeMesh2D(std::size_t rows, std::size_t cols,
                                     std::size_t hosts_per_switch = 4);

/// rows x cols torus (wraparound both dimensions; rows, cols >= 3 to keep
/// the graph simple).
[[nodiscard]] SwitchGraph MakeTorus2D(std::size_t rows, std::size_t cols,
                                      std::size_t hosts_per_switch = 4);

/// dim-dimensional hypercube (2^dim switches).
[[nodiscard]] SwitchGraph MakeHypercube(std::size_t dim, std::size_t hosts_per_switch = 4);

/// x * y * z torus (wraparound in all three dimensions; every dim >= 3 to
/// keep the graph simple). 10x10x10 gives the 1k-switch fabric of the
/// multilevel scale bench.
[[nodiscard]] SwitchGraph MakeTorus3D(std::size_t x, std::size_t y, std::size_t z,
                                      std::size_t hosts_per_switch = 4);

/// k-ary fat-tree-like fabric (k even): k pods of k/2 edge + k/2 aggregation
/// switches, (k/2)^2 core switches — 5k^2/4 switches total. Edge switch e of
/// a pod links to all k/2 aggregations of its pod; aggregation j of every
/// pod links to cores [j*k/2, (j+1)*k/2). Unlike a real fat-tree, hosts
/// attach uniformly to every switch (the SwitchGraph model), so treat it as
/// a fat-tree-*like* hierarchical fabric. Switch order: pod 0 edges, pod 0
/// aggregations, pod 1 edges, ..., then cores.
[[nodiscard]] SwitchGraph MakeFatTree(std::size_t k, std::size_t hosts_per_switch = 4);

/// Star: switch 0 is the hub.
[[nodiscard]] SwitchGraph MakeStar(std::size_t leaves, std::size_t hosts_per_switch = 4);

/// Fully connected graph on n switches.
[[nodiscard]] SwitchGraph MakeComplete(std::size_t n, std::size_t hosts_per_switch = 4);

/// The paper's specially designed 24-switch network (§5.2, Fig. 4): four
/// rings of six switches, consecutive rings joined by a single link, rings
/// forming a cycle. Ring r owns switches [6r, 6r+5].
[[nodiscard]] SwitchGraph MakeFourRingsOfSix(std::size_t hosts_per_switch = 4);

/// Generalization: `ring_count` rings of `ring_size` switches; consecutive
/// rings joined by `bridges_per_pair` links spread around each ring.
[[nodiscard]] SwitchGraph MakeRingsOfRings(std::size_t ring_count, std::size_t ring_size,
                                           std::size_t bridges_per_pair = 1,
                                           std::size_t hosts_per_switch = 4);

/// A designed 16-switch network with heterogeneous region density: group 0
/// (switches 0-3) is a complete K4 — high internal bandwidth, short
/// equivalent distances; groups 1-3 (switches 4k..4k+3) are sparse paths;
/// consecutive groups are joined by one link (groups form a ring). Used to
/// study placements when some network regions are genuinely better than
/// others (the weighted-requirements extension).
[[nodiscard]] SwitchGraph MakeMixedDensity16(std::size_t hosts_per_switch = 4);

/// Clustered random topology: `cluster_count` groups of `cluster_size`
/// switches, dense random links inside each group (each switch gets
/// `intra_degree` intra-group links where feasible) and exactly
/// `inter_links` random links between consecutive groups. Produces networks
/// with "well defined clusters" of tunable sharpness.
[[nodiscard]] SwitchGraph MakeClusteredRandom(std::size_t cluster_count, std::size_t cluster_size,
                                              std::size_t intra_degree, std::size_t inter_links,
                                              Rng& rng, std::size_t hosts_per_switch = 4);

}  // namespace commsched::topo
