#include "topology/generator.h"

#include <algorithm>
#include <optional>
#include <vector>

namespace commsched::topo {

namespace {

/// One attempt: random degree-capped spanning tree, then pair free ports of
/// non-adjacent switches until every switch reaches the target degree.
std::optional<SwitchGraph> TryGenerate(const IrregularTopologyOptions& options, Rng& rng) {
  const std::size_t n = options.switch_count;
  const std::size_t target = options.interswitch_degree;

  SwitchGraph graph = GenerateRandomTree(n, options.hosts_per_switch, target, rng);

  // Pair up free ports. When n * target is odd one switch must stay exactly
  // one link short; otherwise every switch must reach the target degree.
  const bool odd_ports = (n * target) % 2 == 1;
  for (;;) {
    std::vector<SwitchId> open;
    std::size_t deficit = 0;
    for (SwitchId s = 0; s < n; ++s) {
      if (graph.Degree(s) < target) {
        open.push_back(s);
        deficit += target - graph.Degree(s);
      }
    }
    if (open.empty()) {
      return graph;
    }
    if (deficit == 1) {
      // Exactly one port left open: acceptable only for odd parity.
      if (odd_ports) return graph;
      return std::nullopt;  // parity says this cannot happen; defensive
    }
    if (open.size() == 1) {
      return std::nullopt;  // one switch still needs >= 2 links: stuck
    }
    // Collect candidate pairs among open switches that are not yet adjacent.
    std::vector<std::pair<SwitchId, SwitchId>> candidates;
    for (std::size_t i = 0; i < open.size(); ++i) {
      for (std::size_t j = i + 1; j < open.size(); ++j) {
        if (!graph.HasLink(open[i], open[j])) {
          candidates.emplace_back(open[i], open[j]);
        }
      }
    }
    if (candidates.empty()) {
      return std::nullopt;  // stuck: remaining open switches pairwise adjacent
    }
    const auto [a, b] = candidates[static_cast<std::size_t>(rng.NextIndex(candidates.size()))];
    graph.AddLink(a, b);
  }
}

}  // namespace

SwitchGraph GenerateRandomTree(std::size_t switch_count, std::size_t hosts_per_switch,
                               std::size_t max_degree, Rng& rng) {
  CS_CHECK(switch_count >= 1, "need at least one switch");
  if (switch_count > 1) {
    CS_CHECK(max_degree >= 2 || switch_count == 2,
             "degree cap must be >= 2 to build a tree over more than 2 switches");
  }
  SwitchGraph graph(switch_count, hosts_per_switch);
  // Random insertion order; attach each new switch to a random switch that
  // still has a free port. With max_degree >= 2 a chain always fits, so this
  // cannot get stuck.
  std::vector<std::size_t> order = RandomPermutation(switch_count, rng);
  std::vector<SwitchId> attached{static_cast<SwitchId>(order[0])};
  for (std::size_t i = 1; i < order.size(); ++i) {
    std::vector<SwitchId> hosts_with_port;
    for (SwitchId s : attached) {
      if (graph.Degree(s) < max_degree) hosts_with_port.push_back(s);
    }
    CS_CHECK(!hosts_with_port.empty(), "tree generation stuck; degree cap too tight");
    const SwitchId parent = hosts_with_port[static_cast<std::size_t>(
        rng.NextIndex(hosts_with_port.size()))];
    graph.AddLink(parent, order[i]);
    attached.push_back(order[i]);
  }
  return graph;
}

SwitchGraph GenerateIrregularTopology(const IrregularTopologyOptions& options) {
  const std::size_t n = options.switch_count;
  if (n == 0) {
    throw ConfigError("switch_count must be positive");
  }
  if (n > 1 && options.interswitch_degree >= n) {
    throw ConfigError("interswitch_degree must be < switch_count for a simple graph");
  }
  if (n > 1 && options.interswitch_degree < 1) {
    throw ConfigError("interswitch_degree must be >= 1 to connect the network");
  }
  if (n == 1) {
    return SwitchGraph(1, options.hosts_per_switch);
  }

  Rng rng(options.seed);
  for (std::size_t attempt = 0; attempt < options.max_attempts; ++attempt) {
    Rng attempt_rng = rng.Split();
    if (auto graph = TryGenerate(options, attempt_rng)) {
      CS_CHECK(graph->IsConnected(), "generated topology must be connected");
      return std::move(*graph);
    }
  }
  throw ConfigError("could not generate a topology with the requested parameters (" +
                    std::to_string(n) + " switches, degree " +
                    std::to_string(options.interswitch_degree) + ")");
}

}  // namespace commsched::topo
