// Text and Graphviz serialization of topologies, so experiments can be
// archived and inspected.
//
// Text format:
//   switches <N>
//   hosts_per_switch <H>
//   link <a> <b>        (one line per link)
#pragma once

#include <string>

#include "topology/graph.h"

namespace commsched::topo {

/// Serializes to the text format above.
[[nodiscard]] std::string ToText(const SwitchGraph& graph);

/// Parses the text format; throws ConfigError on malformed input.
[[nodiscard]] SwitchGraph FromText(const std::string& text);

/// Graphviz DOT rendering; if `cluster_of_switch` is non-empty it must have
/// one entry per switch and switches are colored by cluster.
[[nodiscard]] std::string ToDot(const SwitchGraph& graph,
                                const std::vector<std::size_t>& cluster_of_switch = {});

}  // namespace commsched::topo
