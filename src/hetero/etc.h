// Expected-Time-to-Compute (ETC) matrices for heterogeneous meta-task
// scheduling, following the range-based model of Braun & Siegel's
// comparison study [6] (the paper's §2 cites this line of work: OLB, UDA,
// Fast Greedy, Min-min, Max-min over heterogeneous machines).
//
// etc(t, m) is the execution time of task t on machine m:
//   etc(t, m) = U(1, task_heterogeneity) * U(1, machine_heterogeneity)
// with per-row consistency options:
//   * consistent      — machines have a global speed order (rows sorted);
//   * semi-consistent — even-indexed machines are consistent, odd are not;
//   * inconsistent    — no structure.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace commsched::hetero {

enum class EtcConsistency {
  kConsistent,
  kSemiConsistent,
  kInconsistent,
};

struct EtcOptions {
  std::size_t tasks = 128;
  std::size_t machines = 8;
  /// "High" heterogeneity in the literature: ~3000 tasks / ~1000 machines;
  /// "low": ~100 / ~10. Any value > 1 works.
  double task_heterogeneity = 100.0;
  double machine_heterogeneity = 10.0;
  EtcConsistency consistency = EtcConsistency::kInconsistent;
  std::uint64_t seed = 1;
};

/// Dense tasks x machines execution-time matrix.
class EtcMatrix {
 public:
  EtcMatrix(std::size_t tasks, std::size_t machines, double fill = 0.0);

  [[nodiscard]] static EtcMatrix Generate(const EtcOptions& options);

  [[nodiscard]] std::size_t task_count() const { return tasks_; }
  [[nodiscard]] std::size_t machine_count() const { return machines_; }

  [[nodiscard]] double operator()(std::size_t task, std::size_t machine) const {
    CS_DCHECK(task < tasks_ && machine < machines_, "ETC index out of range");
    return values_[task * machines_ + machine];
  }
  void Set(std::size_t task, std::size_t machine, double value);

  /// Machine with the smallest execution time for `task` (lowest id wins ties).
  [[nodiscard]] std::size_t BestMachine(std::size_t task) const;

  /// True if every row ranks the machines identically (consistent ETC).
  [[nodiscard]] bool IsConsistent() const;

 private:
  std::size_t tasks_;
  std::size_t machines_;
  std::vector<double> values_;
};

}  // namespace commsched::hetero
