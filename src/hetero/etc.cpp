#include "hetero/etc.h"

#include <algorithm>
#include <numeric>

namespace commsched::hetero {

EtcMatrix::EtcMatrix(std::size_t tasks, std::size_t machines, double fill)
    : tasks_(tasks), machines_(machines), values_(tasks * machines, fill) {
  CS_CHECK(tasks >= 1 && machines >= 1, "ETC matrix needs at least one task and machine");
}

void EtcMatrix::Set(std::size_t task, std::size_t machine, double value) {
  CS_CHECK(task < tasks_ && machine < machines_, "ETC index out of range");
  CS_CHECK(value > 0.0, "execution times must be positive");
  values_[task * machines_ + machine] = value;
}

EtcMatrix EtcMatrix::Generate(const EtcOptions& options) {
  CS_CHECK(options.task_heterogeneity >= 1.0 && options.machine_heterogeneity >= 1.0,
           "heterogeneity factors must be >= 1");
  EtcMatrix etc(options.tasks, options.machines);
  Rng rng(options.seed);
  for (std::size_t t = 0; t < options.tasks; ++t) {
    const double base = 1.0 + rng.NextDouble() * (options.task_heterogeneity - 1.0);
    std::vector<double> row(options.machines);
    for (double& v : row) {
      v = base * (1.0 + rng.NextDouble() * (options.machine_heterogeneity - 1.0));
    }
    switch (options.consistency) {
      case EtcConsistency::kConsistent:
        std::sort(row.begin(), row.end());
        break;
      case EtcConsistency::kSemiConsistent: {
        // Sort the even-indexed machine entries; odd stay unordered.
        std::vector<double> evens;
        for (std::size_t m = 0; m < row.size(); m += 2) evens.push_back(row[m]);
        std::sort(evens.begin(), evens.end());
        for (std::size_t k = 0; k < evens.size(); ++k) row[2 * k] = evens[k];
        break;
      }
      case EtcConsistency::kInconsistent:
        break;
    }
    for (std::size_t m = 0; m < options.machines; ++m) {
      etc.Set(t, m, row[m]);
    }
  }
  return etc;
}

std::size_t EtcMatrix::BestMachine(std::size_t task) const {
  CS_CHECK(task < tasks_, "task out of range");
  std::size_t best = 0;
  for (std::size_t m = 1; m < machines_; ++m) {
    if ((*this)(task, m) < (*this)(task, best)) best = m;
  }
  return best;
}

bool EtcMatrix::IsConsistent() const {
  // Rank machines by the first row; every other row must agree.
  std::vector<std::size_t> order(machines_);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return (*this)(0, a) < (*this)(0, b); });
  for (std::size_t t = 1; t < tasks_; ++t) {
    for (std::size_t k = 0; k + 1 < machines_; ++k) {
      if ((*this)(t, order[k]) > (*this)(t, order[k + 1])) return false;
    }
  }
  return true;
}

}  // namespace commsched::hetero
