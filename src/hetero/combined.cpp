#include "hetero/combined.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/parallel.h"
#include "common/rng.h"
#include "sched/tabu.h"

namespace commsched::hetero {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void Validate(const HeteroSystem& system, const std::vector<ApplicationDemand>& apps) {
  CS_CHECK(system.graph != nullptr && system.table != nullptr, "system wiring incomplete");
  CS_CHECK(system.switch_speed.size() == system.graph->switch_count(),
           "need one speed per switch");
  for (double speed : system.switch_speed) {
    CS_CHECK(speed > 0.0, "switch speeds must be positive");
  }
  CS_CHECK(system.table->size() == system.graph->switch_count(), "table / graph mismatch");
  CS_CHECK(!apps.empty(), "need at least one application");
  std::size_t total = 0;
  for (const ApplicationDemand& app : apps) {
    CS_CHECK(app.cluster_switches >= 1, "application '", app.name, "' occupies no switches");
    CS_CHECK(app.compute_work >= 0.0 && app.comm_intensity >= 0.0,
             "negative demand for '", app.name, "'");
    total += app.cluster_switches;
  }
  CS_CHECK(total == system.graph->switch_count(),
           "applications occupy ", total, " switches but the network has ",
           system.graph->switch_count());
}

std::vector<std::size_t> ClusterSizes(const std::vector<ApplicationDemand>& apps) {
  std::vector<std::size_t> sizes;
  sizes.reserve(apps.size());
  for (const ApplicationDemand& app : apps) sizes.push_back(app.cluster_switches);
  return sizes;
}

}  // namespace

std::vector<AppEstimate> EstimateApps(const HeteroSystem& system,
                                      const std::vector<ApplicationDemand>& apps,
                                      const qual::Partition& partition) {
  Validate(system, apps);
  CS_CHECK(partition.cluster_count() == apps.size(), "one cluster per application required");
  const double mean_sq = system.table->MeanSquaredDistance();
  std::vector<AppEstimate> estimates(apps.size());
  for (std::size_t a = 0; a < apps.size(); ++a) {
    CS_CHECK(partition.ClusterSize(a) == apps[a].cluster_switches,
             "cluster ", a, " size mismatch for '", apps[a].name, "'");
    const auto members = partition.Members(a);
    double speed = 0.0;
    for (std::size_t s : members) speed += system.switch_speed[s];
    estimates[a].compute_time = apps[a].compute_work / speed;
    if (members.size() >= 2) {
      double sq = 0.0;
      for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
          const double d = (*system.table)(members[i], members[j]);
          sq += d * d;
        }
      }
      const double pairs = static_cast<double>(members.size() * (members.size() - 1) / 2);
      estimates[a].comm_time = apps[a].comm_intensity * (sq / pairs) / mean_sq;
    } else {
      estimates[a].comm_time = 0.0;  // single-switch: traffic stays local
    }
  }
  return estimates;
}

double EstimateMakespan(const HeteroSystem& system, const std::vector<ApplicationDemand>& apps,
                        const qual::Partition& partition) {
  double makespan = 0.0;
  for (const AppEstimate& e : EstimateApps(system, apps, partition)) {
    makespan = std::max(makespan, e.Time());
  }
  return makespan;
}

namespace {

/// Heaviest applications (by compute work per switch) get the fastest
/// switches, compute-only style (ignores distance entirely).
qual::Partition ComputeOnlyPartition(const HeteroSystem& system,
                                     const std::vector<ApplicationDemand>& apps) {
  const std::size_t n = system.graph->switch_count();
  std::vector<std::size_t> switch_order(n);
  std::iota(switch_order.begin(), switch_order.end(), std::size_t{0});
  std::sort(switch_order.begin(), switch_order.end(), [&](std::size_t a, std::size_t b) {
    return system.switch_speed[a] > system.switch_speed[b];
  });
  std::vector<std::size_t> app_order(apps.size());
  std::iota(app_order.begin(), app_order.end(), std::size_t{0});
  std::sort(app_order.begin(), app_order.end(), [&](std::size_t a, std::size_t b) {
    const double da = apps[a].compute_work / static_cast<double>(apps[a].cluster_switches);
    const double db = apps[b].compute_work / static_cast<double>(apps[b].cluster_switches);
    return da > db;
  });
  std::vector<std::size_t> cluster_of(n, 0);
  std::size_t at = 0;
  for (std::size_t app : app_order) {
    for (std::size_t k = 0; k < apps[app].cluster_switches; ++k) {
      cluster_of[switch_order[at++]] = app;
    }
  }
  return qual::Partition(std::move(cluster_of));
}

/// The paper's partition: Tabu on F_G, clusters sized per application.
qual::Partition CommOnlyPartition(const HeteroSystem& system,
                                  const std::vector<ApplicationDemand>& apps,
                                  std::uint64_t seed) {
  sched::TabuOptions options;
  options.rng_seed = seed;
  options.max_iterations_per_seed = system.graph->switch_count() >= 20 ? 60 : 20;
  return sched::TabuSearch(*system.table, ClusterSizes(apps), options).best;
}

/// Steepest descent on the estimated makespan over inter-cluster swaps.
qual::Partition DescendMakespan(const HeteroSystem& system,
                                const std::vector<ApplicationDemand>& apps,
                                qual::Partition partition, std::size_t max_iterations) {
  const std::size_t n = partition.switch_count();
  double current = EstimateMakespan(system, apps, partition);
  for (std::size_t it = 0; it < max_iterations; ++it) {
    double best = current;
    std::pair<std::size_t, std::size_t> move{n, n};
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (partition.ClusterOf(a) == partition.ClusterOf(b)) continue;
        partition.Swap(a, b);
        const double candidate = EstimateMakespan(system, apps, partition);
        partition.Swap(a, b);
        if (candidate < best - 1e-12) {
          best = candidate;
          move = {a, b};
        }
      }
    }
    if (move.first >= n) break;
    partition.Swap(move.first, move.second);
    current = best;
  }
  return partition;
}

/// Descends every start (optionally on a thread pool) and returns the best
/// local minimum. Starts must be fully derived before the call; results are
/// combined sequentially in start order, so parallel and sequential
/// execution pick the same winner.
qual::Partition BestDescent(const HeteroSystem& system,
                            const std::vector<ApplicationDemand>& apps,
                            std::vector<qual::Partition> starts, const HeteroOptions& options) {
  std::vector<double> makespan(starts.size(), 0.0);
  auto descend_one = [&](std::size_t i) {
    starts[i] = DescendMakespan(system, apps, std::move(starts[i]), options.max_iterations);
    makespan[i] = EstimateMakespan(system, apps, starts[i]);
  };
  if (options.parallel_seeds && starts.size() > 1) {
    ParallelFor(starts.size(), descend_one);
  } else {
    for (std::size_t i = 0; i < starts.size(); ++i) descend_one(i);
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < starts.size(); ++i) {
    if (makespan[i] < makespan[best] - 1e-12) best = i;
  }
  return std::move(starts[best]);
}

}  // namespace

HeteroOutcome ScheduleHetero(const HeteroSystem& system,
                             const std::vector<ApplicationDemand>& apps,
                             HeteroStrategy strategy, const HeteroOptions& options) {
  Validate(system, apps);

  qual::Partition partition = [&] {
    switch (strategy) {
      case HeteroStrategy::kComputeOnly: {
        // Communication-blind: optimize the compute makespan only (greedy
        // speed packing refined by descent with comm demands zeroed — plain
        // greedy is poor when demands are uniform and fast switches scarce).
        std::vector<ApplicationDemand> compute_apps = apps;
        for (ApplicationDemand& app : compute_apps) app.comm_intensity = 0.0;
        std::vector<qual::Partition> starts;
        starts.reserve(options.restarts + 1);
        starts.push_back(ComputeOnlyPartition(system, apps));
        Rng rng(options.rng_seed);
        for (std::size_t r = 0; r < options.restarts; ++r) {
          starts.push_back(qual::Partition::Random(ClusterSizes(apps), rng));
        }
        return BestDescent(system, compute_apps, std::move(starts), options);
      }
      case HeteroStrategy::kCommunicationOnly:
        return CommOnlyPartition(system, apps, options.rng_seed);
      case HeteroStrategy::kCombined: {
        // Seed the makespan descent from both single-objective solutions
        // plus random restarts; keep the best local minimum.
        std::vector<qual::Partition> starts;
        starts.reserve(options.restarts + 2);
        starts.push_back(ComputeOnlyPartition(system, apps));
        starts.push_back(CommOnlyPartition(system, apps, options.rng_seed));
        Rng rng(options.rng_seed);
        for (std::size_t r = 0; r < options.restarts; ++r) {
          starts.push_back(qual::Partition::Random(ClusterSizes(apps), rng));
        }
        return BestDescent(system, apps, std::move(starts), options);
      }
    }
    CS_UNREACHABLE("unknown strategy");
  }();

  HeteroOutcome outcome{std::move(partition), {}, 0.0};
  outcome.per_app = EstimateApps(system, apps, outcome.partition);
  for (const AppEstimate& e : outcome.per_app) {
    outcome.makespan = std::max(outcome.makespan, e.Time());
  }
  return outcome;
}

std::string ToString(HeteroStrategy strategy) {
  switch (strategy) {
    case HeteroStrategy::kComputeOnly:
      return "compute-only";
    case HeteroStrategy::kCommunicationOnly:
      return "communication-only";
    case HeteroStrategy::kCombined:
      return "combined";
  }
  CS_UNREACHABLE("unknown strategy");
}

}  // namespace commsched::hetero
