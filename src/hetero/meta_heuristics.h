// Static mapping heuristics for independent meta-tasks on heterogeneous
// machines — the computation-side schedulers the paper's §2 surveys
// (OLB, UDA/MET, Fast Greedy/MCT, Min-min, Max-min [1, 12, 16, 18]).
// These complement the communication-aware technique: the paper's ideal
// scheduler picks whichever side is the bottleneck.
#pragma once

#include <string>
#include <vector>

#include "hetero/etc.h"

namespace commsched::hetero {

/// A complete assignment of tasks to machines.
struct MetaSchedule {
  std::vector<std::size_t> machine_of_task;
  std::vector<double> machine_finish;  // per-machine completion time
  double makespan = 0.0;

  /// Recomputes machine_finish/makespan from the assignment; used to verify
  /// heuristic outputs and by local search.
  static MetaSchedule FromAssignment(const EtcMatrix& etc,
                                     std::vector<std::size_t> machine_of_task);
};

/// Opportunistic Load Balancing: tasks in arrival order to the machine that
/// becomes available earliest, ignoring execution times.
[[nodiscard]] MetaSchedule Olb(const EtcMatrix& etc);

/// Minimum Execution Time (User-Directed Assignment): each task to its
/// fastest machine, ignoring load.
[[nodiscard]] MetaSchedule Met(const EtcMatrix& etc);

/// Minimum Completion Time ("Fast Greedy"): tasks in arrival order to the
/// machine minimizing that task's completion time.
[[nodiscard]] MetaSchedule Mct(const EtcMatrix& etc);

/// Min-min: repeatedly commit the (task, machine) pair whose completion
/// time is globally smallest.
[[nodiscard]] MetaSchedule MinMin(const EtcMatrix& etc);

/// Max-min: repeatedly commit the task whose best completion time is
/// largest (front-loads the big tasks).
[[nodiscard]] MetaSchedule MaxMin(const EtcMatrix& etc);

/// Sufferage: repeatedly commit the task that would suffer most if denied
/// its best machine (largest second-best minus best completion) [18].
[[nodiscard]] MetaSchedule Sufferage(const EtcMatrix& etc);

struct MakespanSearchOptions {
  std::size_t max_iterations = 2000;
  std::uint64_t rng_seed = 1;
  /// Descent restarts. Restart 0 always descends the given seed schedule
  /// (bit-identical to the single-restart search); extra restarts perturb
  /// the seed with a few random task reassignments (per-restart RNG streams
  /// from sched's DeriveSeedStream) before descending, and the best local
  /// minimum wins.
  std::size_t restarts = 1;
  bool parallel_seeds = false;  // descend restarts on a thread pool
};

/// Local search on top of a seed schedule: steepest-descent over single-task
/// moves and pairwise swaps until a local minimum of the makespan.
[[nodiscard]] MetaSchedule ImproveByLocalSearch(const EtcMatrix& etc, MetaSchedule seed,
                                                const MakespanSearchOptions& options = {});

/// Runs every heuristic and returns (name, schedule) pairs — the §2 survey
/// table in code form.
[[nodiscard]] std::vector<std::pair<std::string, MetaSchedule>> RunAllHeuristics(
    const EtcMatrix& etc);

}  // namespace commsched::hetero
