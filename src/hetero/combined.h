// Combined computation/communication scheduling — the paper's stated goal:
// "an ideal scheduling strategy would map the processes to processors
// taking into account both the computational and the communication
// requirements … choosing either a computation-aware or a
// communication-aware strategy depending on the kind of requirements that
// leads to the system performance bottleneck" (§1).
//
// Model: applications demand `compute_work` (normalized operations) and
// `comm_intensity` (normalized bytes × distance sensitivity); switches have
// heterogeneous aggregate speeds. For application a placed on switch set S:
//   compute time  = compute_work / Σ_{s∈S} speed(s)
//   comm time     = comm_intensity × f(S), where f(S) is the cluster's mean
//                   squared equivalent distance normalized by the network
//                   mean (a per-cluster F_G — the inverse-bandwidth proxy of
//                   §4.1; 0 for single-switch clusters, whose traffic never
//                   leaves the switch)
//   app time      = max(compute time, comm time)       (overlap model)
//   makespan      = max over applications.
#pragma once

#include <string>
#include <vector>

#include "distance/distance_table.h"
#include "quality/partition.h"
#include "topology/graph.h"

namespace commsched::hetero {

struct ApplicationDemand {
  std::string name;
  double compute_work = 1.0;
  double comm_intensity = 1.0;
  std::size_t cluster_switches = 1;  // switches the application occupies
};

/// The machine: topology + distance table + per-switch aggregate speed.
/// References must outlive the outcome computations.
struct HeteroSystem {
  const topo::SwitchGraph* graph = nullptr;
  const dist::DistanceTable* table = nullptr;
  std::vector<double> switch_speed;  // one entry per switch, > 0
};

struct AppEstimate {
  double compute_time = 0.0;
  double comm_time = 0.0;
  [[nodiscard]] double Time() const {
    return compute_time > comm_time ? compute_time : comm_time;
  }
  [[nodiscard]] bool CommBound() const { return comm_time > compute_time; }
};

struct HeteroOutcome {
  qual::Partition partition;  // cluster a hosts application a
  std::vector<AppEstimate> per_app;
  double makespan = 0.0;
};

enum class HeteroStrategy {
  kComputeOnly,        // heaviest applications get the fastest switches
  kCommunicationOnly,  // the paper's Tabu partition; speeds ignored
  kCombined,           // local search on the estimated makespan
};

/// Per-application estimates for a given placement (cluster a = app a).
[[nodiscard]] std::vector<AppEstimate> EstimateApps(const HeteroSystem& system,
                                                    const std::vector<ApplicationDemand>& apps,
                                                    const qual::Partition& partition);

/// max over EstimateApps.
[[nodiscard]] double EstimateMakespan(const HeteroSystem& system,
                                      const std::vector<ApplicationDemand>& apps,
                                      const qual::Partition& partition);

struct HeteroOptions {
  std::uint64_t rng_seed = 1;
  std::size_t restarts = 4;          // combined-strategy local-search restarts
  std::size_t max_iterations = 400;  // per restart
  /// Descend the restarts on a thread pool. All starts are derived before
  /// any descent runs and results combine in start order, so parallel and
  /// sequential scheduling return the same placement (engine.h determinism
  /// rules).
  bool parallel_seeds = false;
};

/// Schedules the applications under one strategy and returns the placement
/// plus the per-application time estimates. Validates that cluster sizes
/// cover the network exactly.
[[nodiscard]] HeteroOutcome ScheduleHetero(const HeteroSystem& system,
                                           const std::vector<ApplicationDemand>& apps,
                                           HeteroStrategy strategy,
                                           const HeteroOptions& options = {});

/// Human-readable strategy name.
[[nodiscard]] std::string ToString(HeteroStrategy strategy);

}  // namespace commsched::hetero
