#include "hetero/meta_heuristics.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/parallel.h"
#include "common/rng.h"
#include "sched/engine.h"

namespace commsched::hetero {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::size_t ArgMin(const std::vector<double>& values) {
  return static_cast<std::size_t>(std::min_element(values.begin(), values.end()) -
                                  values.begin());
}

/// Shared skeleton for the list-scheduling family (Min-min / Max-min /
/// Sufferage): repeatedly score every unassigned task by its best
/// completion-time option and commit the task `pick` selects.
template <typename PickTask>
MetaSchedule ListSchedule(const EtcMatrix& etc, PickTask&& pick) {
  const std::size_t tasks = etc.task_count();
  const std::size_t machines = etc.machine_count();
  std::vector<std::size_t> assignment(tasks, 0);
  std::vector<double> ready(machines, 0.0);
  std::vector<bool> done(tasks, false);

  for (std::size_t round = 0; round < tasks; ++round) {
    std::size_t chosen_task = tasks;
    std::size_t chosen_machine = 0;
    double chosen_key = -kInf;
    for (std::size_t t = 0; t < tasks; ++t) {
      if (done[t]) continue;
      double best_ct = kInf;
      double second_ct = kInf;
      std::size_t best_m = 0;
      for (std::size_t m = 0; m < machines; ++m) {
        const double ct = ready[m] + etc(t, m);
        if (ct < best_ct) {
          second_ct = best_ct;
          best_ct = ct;
          best_m = m;
        } else if (ct < second_ct) {
          second_ct = ct;
        }
      }
      const double key = pick(best_ct, second_ct);
      if (chosen_task == tasks || key > chosen_key) {
        chosen_key = key;
        chosen_task = t;
        chosen_machine = best_m;
      }
    }
    done[chosen_task] = true;
    assignment[chosen_task] = chosen_machine;
    ready[chosen_machine] += etc(chosen_task, chosen_machine);
  }
  return MetaSchedule::FromAssignment(etc, std::move(assignment));
}

}  // namespace

MetaSchedule MetaSchedule::FromAssignment(const EtcMatrix& etc,
                                          std::vector<std::size_t> machine_of_task) {
  CS_CHECK(machine_of_task.size() == etc.task_count(), "assignment must cover every task");
  MetaSchedule schedule;
  schedule.machine_of_task = std::move(machine_of_task);
  schedule.machine_finish.assign(etc.machine_count(), 0.0);
  for (std::size_t t = 0; t < etc.task_count(); ++t) {
    const std::size_t m = schedule.machine_of_task[t];
    CS_CHECK(m < etc.machine_count(), "machine id out of range");
    schedule.machine_finish[m] += etc(t, m);
  }
  schedule.makespan =
      *std::max_element(schedule.machine_finish.begin(), schedule.machine_finish.end());
  return schedule;
}

MetaSchedule Olb(const EtcMatrix& etc) {
  std::vector<std::size_t> assignment(etc.task_count());
  std::vector<double> ready(etc.machine_count(), 0.0);
  for (std::size_t t = 0; t < etc.task_count(); ++t) {
    const std::size_t m = ArgMin(ready);
    assignment[t] = m;
    ready[m] += etc(t, m);
  }
  return MetaSchedule::FromAssignment(etc, std::move(assignment));
}

MetaSchedule Met(const EtcMatrix& etc) {
  std::vector<std::size_t> assignment(etc.task_count());
  for (std::size_t t = 0; t < etc.task_count(); ++t) {
    assignment[t] = etc.BestMachine(t);
  }
  return MetaSchedule::FromAssignment(etc, std::move(assignment));
}

MetaSchedule Mct(const EtcMatrix& etc) {
  std::vector<std::size_t> assignment(etc.task_count());
  std::vector<double> ready(etc.machine_count(), 0.0);
  for (std::size_t t = 0; t < etc.task_count(); ++t) {
    std::size_t best = 0;
    double best_ct = kInf;
    for (std::size_t m = 0; m < etc.machine_count(); ++m) {
      const double ct = ready[m] + etc(t, m);
      if (ct < best_ct) {
        best_ct = ct;
        best = m;
      }
    }
    assignment[t] = best;
    ready[best] += etc(t, best);
  }
  return MetaSchedule::FromAssignment(etc, std::move(assignment));
}

MetaSchedule MinMin(const EtcMatrix& etc) {
  // Smallest best completion first: pick key = -best_ct.
  return ListSchedule(etc, [](double best_ct, double) { return -best_ct; });
}

MetaSchedule MaxMin(const EtcMatrix& etc) {
  return ListSchedule(etc, [](double best_ct, double) { return best_ct; });
}

MetaSchedule Sufferage(const EtcMatrix& etc) {
  return ListSchedule(etc, [](double best_ct, double second_ct) {
    return (second_ct == kInf ? 0.0 : second_ct - best_ct);
  });
}

namespace {

/// One steepest descent to a local minimum of the makespan.
MetaSchedule DescendMakespanOnce(const EtcMatrix& etc, std::vector<std::size_t> start,
                                 std::size_t max_iterations) {
  MetaSchedule current = MetaSchedule::FromAssignment(etc, std::move(start));
  const std::size_t tasks = etc.task_count();
  const std::size_t machines = etc.machine_count();

  for (std::size_t it = 0; it < max_iterations; ++it) {
    double best_makespan = current.makespan;
    std::vector<std::size_t> best_assignment;

    // Single-task moves off the critical machine.
    const std::size_t critical = static_cast<std::size_t>(
        std::max_element(current.machine_finish.begin(), current.machine_finish.end()) -
        current.machine_finish.begin());
    for (std::size_t t = 0; t < tasks; ++t) {
      if (current.machine_of_task[t] != critical) continue;
      for (std::size_t m = 0; m < machines; ++m) {
        if (m == critical) continue;
        auto candidate = current.machine_of_task;
        candidate[t] = m;
        const MetaSchedule moved = MetaSchedule::FromAssignment(etc, std::move(candidate));
        if (moved.makespan < best_makespan - 1e-12) {
          best_makespan = moved.makespan;
          best_assignment = moved.machine_of_task;
        }
      }
    }
    // Pairwise swaps involving the critical machine.
    for (std::size_t t1 = 0; t1 < tasks; ++t1) {
      if (current.machine_of_task[t1] != critical) continue;
      for (std::size_t t2 = 0; t2 < tasks; ++t2) {
        if (current.machine_of_task[t2] == critical) continue;
        auto candidate = current.machine_of_task;
        std::swap(candidate[t1], candidate[t2]);
        const MetaSchedule swapped = MetaSchedule::FromAssignment(etc, std::move(candidate));
        if (swapped.makespan < best_makespan - 1e-12) {
          best_makespan = swapped.makespan;
          best_assignment = swapped.machine_of_task;
        }
      }
    }
    if (best_assignment.empty()) break;  // local minimum
    current = MetaSchedule::FromAssignment(etc, std::move(best_assignment));
  }
  return current;
}

}  // namespace

MetaSchedule ImproveByLocalSearch(const EtcMatrix& etc, MetaSchedule seed,
                                  const MakespanSearchOptions& options) {
  CS_CHECK(options.restarts >= 1, "need at least one restart");
  const std::size_t tasks = etc.task_count();
  const std::size_t machines = etc.machine_count();

  // Starts up front (engine determinism rule 1): restart 0 is the seed
  // schedule itself; extra restarts reassign a few random tasks to random
  // machines from independent RNG streams.
  std::vector<std::vector<std::size_t>> starts;
  starts.reserve(options.restarts);
  starts.push_back(seed.machine_of_task);
  for (std::size_t k = 1; k < options.restarts; ++k) {
    Rng rng(sched::DeriveSeedStream(options.rng_seed, k));
    std::vector<std::size_t> start = seed.machine_of_task;
    const std::size_t kicks = std::max<std::size_t>(1, tasks / 8);
    for (std::size_t kick = 0; kick < kicks; ++kick) {
      start[rng.NextIndex(tasks)] = rng.NextIndex(machines);
    }
    starts.push_back(std::move(start));
  }

  std::vector<MetaSchedule> results(options.restarts);
  auto descend_one = [&](std::size_t k) {
    results[k] = DescendMakespanOnce(etc, std::move(starts[k]), options.max_iterations);
  };
  if (options.parallel_seeds && options.restarts > 1) {
    ParallelFor(options.restarts, descend_one);
  } else {
    for (std::size_t k = 0; k < options.restarts; ++k) descend_one(k);
  }

  // Combine sequentially in restart order (engine determinism rule 3).
  std::size_t best = 0;
  for (std::size_t k = 1; k < options.restarts; ++k) {
    if (results[k].makespan < results[best].makespan - 1e-12) best = k;
  }
  return std::move(results[best]);
}

std::vector<std::pair<std::string, MetaSchedule>> RunAllHeuristics(const EtcMatrix& etc) {
  std::vector<std::pair<std::string, MetaSchedule>> results;
  results.emplace_back("OLB", Olb(etc));
  results.emplace_back("MET/UDA", Met(etc));
  results.emplace_back("MCT/FastGreedy", Mct(etc));
  results.emplace_back("Min-min", MinMin(etc));
  results.emplace_back("Max-min", MaxMin(etc));
  results.emplace_back("Sufferage", Sufferage(etc));
  results.emplace_back("Min-min+LS", ImproveByLocalSearch(etc, MinMin(etc)));
  return results;
}

}  // namespace commsched::hetero
