#include "workload/procgen.h"

#include <cmath>

#include "common/rng.h"

namespace commsched::work {

qual::CommGraph MakeRingComm(std::size_t processes, double weight) {
  if (processes == 0) throw ConfigError("process count must be >= 1");
  std::vector<qual::CommEdge> edges;
  edges.reserve(processes);
  for (std::size_t i = 0; i + 1 < processes; ++i) {
    edges.push_back({i, i + 1, weight});
  }
  if (processes > 2) edges.push_back({0, processes - 1, weight});
  return qual::CommGraph::FromEdges(processes, std::move(edges));
}

qual::CommGraph MakeGridComm(std::size_t processes) {
  if (processes == 0) throw ConfigError("process count must be >= 1");
  std::size_t rows = static_cast<std::size_t>(std::sqrt(static_cast<double>(processes)));
  while (rows > 1 && processes % rows != 0) --rows;
  if (rows == 0) rows = 1;
  const std::size_t cols = processes / rows;
  std::vector<qual::CommEdge> edges;
  edges.reserve(2 * processes);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t v = r * cols + c;
      if (c + 1 < cols) edges.push_back({v, v + 1, 1.0});
      if (r + 1 < rows) edges.push_back({v, v + cols, 1.0});
    }
  }
  return qual::CommGraph::FromEdges(processes, std::move(edges));
}

qual::CommGraph MakeRandomComm(std::size_t processes, std::size_t avg_degree,
                               std::uint64_t seed) {
  if (processes == 0) throw ConfigError("process count must be >= 1");
  std::vector<qual::CommEdge> edges;
  if (processes >= 2) {
    const std::size_t target = processes * avg_degree / 2;
    edges.reserve(target);
    Rng rng(seed);
    for (std::size_t i = 0; i < target; ++i) {
      const std::size_t u = rng.NextIndex(processes);
      const std::size_t v = rng.NextIndex(processes);
      if (u == v) continue;
      edges.push_back({u, v, 1.0});
    }
  }
  return qual::CommGraph::FromEdges(processes, std::move(edges));
}

qual::CommGraph MakeCliqueComm(const std::vector<std::size_t>& group_sizes, double weight) {
  std::vector<std::size_t> group_of_vertex;
  for (std::size_t g = 0; g < group_sizes.size(); ++g) {
    for (std::size_t i = 0; i < group_sizes[g]; ++i) group_of_vertex.push_back(g);
  }
  if (group_of_vertex.empty()) throw ConfigError("group sizes must cover >= 1 process");
  return qual::CommGraph::CliqueGroups(group_of_vertex, weight);
}

qual::CommGraph MakePatternComm(const std::string& pattern, std::size_t processes,
                                std::uint64_t seed) {
  if (processes == 0) throw ConfigError("process count must be >= 1");
  if (pattern == "ring") return MakeRingComm(processes);
  if (pattern == "grid") return MakeGridComm(processes);
  if (pattern == "random") return MakeRandomComm(processes, 4, seed);
  throw ConfigError("unknown comm pattern '" + pattern + "' (ring|grid|random)");
}

}  // namespace commsched::work
