// Seeded synthetic process communication graphs (DESIGN.md §13).
//
// The multilevel pipeline consumes sparse CommGraphs, but the paper's
// workloads are tiny dense cliques; these generators produce the large
// sparse patterns real codes exhibit — rings, 2-D halo-exchange stencils,
// random near-regular graphs — at 10^4–10^6 processes, deterministically
// from a seed, for the scale benches and tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "quality/comm_graph.h"

namespace commsched::work {

/// Ring of `processes` vertices (each talks to its two neighbours).
[[nodiscard]] qual::CommGraph MakeRingComm(std::size_t processes, double weight = 1.0);

/// 2-D halo-exchange stencil: processes arranged rows x cols (rows = the
/// largest divisor of `processes` not exceeding sqrt; a prime count
/// degenerates to a path), 4-neighbour edges of unit weight.
[[nodiscard]] qual::CommGraph MakeGridComm(std::size_t processes);

/// Random near-regular graph: processes * avg_degree / 2 edges drawn
/// uniformly (parallel draws merge by weight); deterministic in `seed`.
[[nodiscard]] qual::CommGraph MakeRandomComm(std::size_t processes, std::size_t avg_degree,
                                             std::uint64_t seed);

/// Clique per group — the dense model's communication structure as a sparse
/// graph (used by the sparse-vs-dense parity tests).
[[nodiscard]] qual::CommGraph MakeCliqueComm(const std::vector<std::size_t>& group_sizes,
                                             double weight = 1.0);

/// Dispatch by name: "ring" | "grid" | "random" (avg degree 4, seeded).
/// Throws ConfigError on unknown patterns or processes == 0.
[[nodiscard]] qual::CommGraph MakePatternComm(const std::string& pattern, std::size_t processes,
                                              std::uint64_t seed);

}  // namespace commsched::work
