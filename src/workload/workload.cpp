#include "workload/workload.h"

#include <algorithm>

#include "common/check.h"

namespace commsched::work {

Workload::Workload(std::vector<ApplicationSpec> applications) : apps_(std::move(applications)) {
  CS_CHECK(!apps_.empty(), "workload needs at least one application");
  for (const ApplicationSpec& app : apps_) {
    CS_CHECK(app.process_count > 0, "application '", app.name, "' has no processes");
    CS_CHECK(app.traffic_weight >= 0.0, "negative traffic weight");
    CS_CHECK(app.intercluster_fraction >= 0.0 && app.intercluster_fraction <= 1.0,
             "intercluster fraction out of [0,1]");
    total_ += app.process_count;
  }
}

Workload Workload::Uniform(std::size_t application_count, std::size_t processes_each) {
  CS_CHECK(application_count > 0 && processes_each > 0, "empty uniform workload");
  std::vector<ApplicationSpec> apps;
  apps.reserve(application_count);
  for (std::size_t a = 0; a < application_count; ++a) {
    apps.push_back({"app" + std::to_string(a), processes_each, 1.0, 0.0});
  }
  return Workload(std::move(apps));
}

void Workload::ValidateFor(const SwitchGraph& graph) const {
  if (total_ != graph.host_count()) {
    throw ConfigError("workload has " + std::to_string(total_) + " processes but the network has " +
                      std::to_string(graph.host_count()) + " hosts");
  }
  for (const ApplicationSpec& app : apps_) {
    if (graph.hosts_per_switch() == 0 || app.process_count % graph.hosts_per_switch() != 0) {
      throw ConfigError("application '" + app.name + "' process count " +
                        std::to_string(app.process_count) +
                        " is not a multiple of hosts per switch (" +
                        std::to_string(graph.hosts_per_switch()) + ")");
    }
  }
}

std::vector<std::size_t> Workload::ClusterSwitchSizes(const SwitchGraph& graph) const {
  ValidateFor(graph);
  std::vector<std::size_t> sizes;
  sizes.reserve(apps_.size());
  for (const ApplicationSpec& app : apps_) {
    sizes.push_back(app.process_count / graph.hosts_per_switch());
  }
  return sizes;
}

ProcessMapping::ProcessMapping(const SwitchGraph& graph, const Workload& workload,
                               std::vector<std::size_t> app_of_host)
    : app_of_host_(std::move(app_of_host)) {
  CS_CHECK(app_of_host_.size() == graph.host_count(), "mapping must cover every host");
  hosts_of_app_.assign(workload.application_count(), {});
  for (std::size_t h = 0; h < app_of_host_.size(); ++h) {
    CS_CHECK(app_of_host_[h] < workload.application_count(), "application id out of range");
    hosts_of_app_[app_of_host_[h]].push_back(h);
  }
  for (std::size_t a = 0; a < workload.application_count(); ++a) {
    CS_CHECK(hosts_of_app_[a].size() == workload.applications()[a].process_count,
             "application '", workload.applications()[a].name, "' mapped to ",
             hosts_of_app_[a].size(), " hosts but has ",
             workload.applications()[a].process_count, " processes");
  }
}

ProcessMapping ProcessMapping::FromPartition(const SwitchGraph& graph, const Workload& workload,
                                             const Partition& partition) {
  workload.ValidateFor(graph);
  CS_CHECK(partition.switch_count() == graph.switch_count(), "partition / graph size mismatch");
  CS_CHECK(partition.cluster_count() == workload.application_count(),
           "partition has ", partition.cluster_count(), " clusters for ",
           workload.application_count(), " applications");
  const auto expected = workload.ClusterSwitchSizes(graph);
  for (std::size_t a = 0; a < expected.size(); ++a) {
    CS_CHECK(partition.ClusterSize(a) == expected[a], "cluster ", a, " has ",
             partition.ClusterSize(a), " switches, expected ", expected[a]);
  }
  std::vector<std::size_t> app_of_host(graph.host_count());
  for (std::size_t s = 0; s < graph.switch_count(); ++s) {
    for (std::size_t k = 0; k < graph.hosts_per_switch(); ++k) {
      app_of_host[graph.FirstHostOfSwitch(s) + k] = partition.ClusterOf(s);
    }
  }
  return ProcessMapping(graph, workload, std::move(app_of_host));
}

ProcessMapping ProcessMapping::RandomAligned(const SwitchGraph& graph, const Workload& workload,
                                             Rng& rng) {
  const Partition partition = Partition::Random(workload.ClusterSwitchSizes(graph), rng);
  return FromPartition(graph, workload, partition);
}

ProcessMapping ProcessMapping::RandomUnaligned(const SwitchGraph& graph, const Workload& workload,
                                               Rng& rng) {
  CS_CHECK(workload.total_processes() == graph.host_count(),
           "unaligned mapping still needs one process per host");
  std::vector<std::size_t> app_of_host;
  app_of_host.reserve(graph.host_count());
  for (std::size_t a = 0; a < workload.application_count(); ++a) {
    for (std::size_t p = 0; p < workload.applications()[a].process_count; ++p) {
      app_of_host.push_back(a);
    }
  }
  rng.Shuffle(app_of_host);
  return ProcessMapping(graph, workload, std::move(app_of_host));
}

std::size_t ProcessMapping::AppOfHost(std::size_t host) const {
  CS_CHECK(host < app_of_host_.size(), "host out of range");
  return app_of_host_[host];
}

const std::vector<std::size_t>& ProcessMapping::HostsOfApp(std::size_t app) const {
  CS_CHECK(app < hosts_of_app_.size(), "application out of range");
  return hosts_of_app_[app];
}

bool ProcessMapping::IsSwitchAligned(const SwitchGraph& graph) const {
  for (std::size_t s = 0; s < graph.switch_count(); ++s) {
    const std::size_t base = graph.FirstHostOfSwitch(s);
    for (std::size_t k = 1; k < graph.hosts_per_switch(); ++k) {
      if (app_of_host_[base + k] != app_of_host_[base]) return false;
    }
  }
  return true;
}

Partition ProcessMapping::InducedPartition(const SwitchGraph& graph) const {
  CS_CHECK(IsSwitchAligned(graph), "induced partition requires a switch-aligned mapping");
  std::vector<std::size_t> cluster_of(graph.switch_count());
  for (std::size_t s = 0; s < graph.switch_count(); ++s) {
    cluster_of[s] = app_of_host_[graph.FirstHostOfSwitch(s)];
  }
  return Partition(std::move(cluster_of));
}

}  // namespace commsched::work
