// Workload model: a set of parallel applications ("logical clusters" of
// processes, §4). Each application belongs to a different user; processes of
// one application communicate intensively with each other and (in the
// paper's base assumptions) not at all with other applications. The
// `intercluster_fraction` knob relaxes that assumption — the paper lists it
// as future work; we expose it for the extension benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "quality/partition.h"
#include "topology/graph.h"

namespace commsched::work {

using qual::Partition;
using topo::SwitchGraph;

/// One parallel application (a logical cluster of processes).
struct ApplicationSpec {
  std::string name;
  std::size_t process_count = 0;
  /// Relative traffic intensity (1.0 = every process injects at the global
  /// rate; the paper assumes all equal).
  double traffic_weight = 1.0;
  /// Fraction of a process's messages sent to *other* applications
  /// (0.0 in the paper's base assumptions).
  double intercluster_fraction = 0.0;
};

/// A set of applications filling a machine (one process per processor).
class Workload {
 public:
  explicit Workload(std::vector<ApplicationSpec> applications);

  /// The paper's standard workload: `application_count` identical
  /// applications of `processes_each` processes.
  [[nodiscard]] static Workload Uniform(std::size_t application_count,
                                        std::size_t processes_each);

  [[nodiscard]] const std::vector<ApplicationSpec>& applications() const { return apps_; }
  [[nodiscard]] std::size_t application_count() const { return apps_.size(); }
  [[nodiscard]] std::size_t total_processes() const { return total_; }

  /// Checks the paper's assumptions against a topology: total processes fill
  /// every host exactly once and every application's process count is an
  /// integer multiple of hosts-per-switch. Throws ConfigError otherwise.
  void ValidateFor(const SwitchGraph& graph) const;

  /// Cluster sizes in switches (process_count / hosts_per_switch) — the
  /// sizes of the induced network partition. Requires ValidateFor to hold.
  [[nodiscard]] std::vector<std::size_t> ClusterSwitchSizes(const SwitchGraph& graph) const;

 private:
  std::vector<ApplicationSpec> apps_;
  std::size_t total_ = 0;
};

/// Assignment of one process per host: host h runs a process of application
/// app_of_host(h). (With the paper's "one process per processor" assumption
/// the process identity is the host slot itself.)
class ProcessMapping {
 public:
  ProcessMapping(const SwitchGraph& graph, const Workload& workload,
                 std::vector<std::size_t> app_of_host);

  /// Switch-aligned mapping from a network partition: application a's
  /// processes occupy every host of the switches in partition cluster a.
  [[nodiscard]] static ProcessMapping FromPartition(const SwitchGraph& graph,
                                                    const Workload& workload,
                                                    const Partition& partition);

  /// Switch-aligned uniformly random mapping (the paper's random baseline).
  [[nodiscard]] static ProcessMapping RandomAligned(const SwitchGraph& graph,
                                                    const Workload& workload, Rng& rng);

  /// Host-level random mapping, NOT switch aligned (extension: processes of
  /// different applications may share a switch).
  [[nodiscard]] static ProcessMapping RandomUnaligned(const SwitchGraph& graph,
                                                      const Workload& workload, Rng& rng);

  [[nodiscard]] std::size_t host_count() const { return app_of_host_.size(); }
  [[nodiscard]] std::size_t AppOfHost(std::size_t host) const;

  /// Hosts running application `app`, ascending.
  [[nodiscard]] const std::vector<std::size_t>& HostsOfApp(std::size_t app) const;

  /// True if every switch's hosts all run the same application.
  [[nodiscard]] bool IsSwitchAligned(const SwitchGraph& graph) const;

  /// The induced network partition (requires IsSwitchAligned).
  [[nodiscard]] Partition InducedPartition(const SwitchGraph& graph) const;

 private:
  std::vector<std::size_t> app_of_host_;
  std::vector<std::vector<std::size_t>> hosts_of_app_;
};

}  // namespace commsched::work
