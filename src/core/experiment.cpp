#include "core/experiment.h"

#include <algorithm>

#include "common/check.h"
#include "simnet/traffic.h"
#include "workload/workload.h"

namespace commsched::core {

double ExperimentResult::BestRandomThroughput() const {
  CS_CHECK(mappings.size() >= 2, "experiment has no random mappings");
  double best = 0.0;
  for (std::size_t k = 1; k < mappings.size(); ++k) {
    best = std::max(best, mappings[k].Throughput());
  }
  return best;
}

double ExperimentResult::ThroughputImprovement() const {
  const double random_best = BestRandomThroughput();
  CS_CHECK(random_best > 0.0, "random mappings delivered nothing");
  return Scheduled().Throughput() / random_best;
}

ExperimentResult RunPaperExperiment(const topo::SwitchGraph& graph,
                                    const ExperimentOptions& options) {
  CS_CHECK(options.applications >= 2, "need at least two applications");
  CS_CHECK(graph.switch_count() % options.applications == 0,
           "switch count must divide evenly into the applications");

  const route::UpDownRouting routing(graph, options.root_policy);
  const sched::CommAwareScheduler scheduler(graph, routing);
  const work::Workload workload = work::Workload::Uniform(
      options.applications,
      graph.host_count() / options.applications);

  ExperimentResult result;

  // The scheduler's mapping (OP).
  sched::ScheduleOutcome op = scheduler.Schedule(workload, options.tabu);
  result.search = op.search;
  MappingEvaluation op_eval;
  op_eval.label = "OP";
  op_eval.partition = op.partition;
  op_eval.fg = op.fg;
  op_eval.dg = op.dg;
  op_eval.cc = op.cc;
  result.mappings.push_back(std::move(op_eval));

  // Random mappings (R1..Rk).
  Rng rng(options.rng_seed);
  for (std::size_t k = 0; k < options.random_mappings; ++k) {
    const work::ProcessMapping mapping = work::ProcessMapping::RandomAligned(graph, workload, rng);
    sched::ScheduleOutcome eval = scheduler.Evaluate(workload, mapping);
    MappingEvaluation r;
    r.label = "R" + std::to_string(k + 1);
    r.partition = eval.partition;
    r.fg = eval.fg;
    r.dg = eval.dg;
    r.cc = eval.cc;
    result.mappings.push_back(std::move(r));
  }

  if (options.run_simulation) {
    for (MappingEvaluation& eval : result.mappings) {
      const work::ProcessMapping mapping =
          work::ProcessMapping::FromPartition(graph, workload, eval.partition);
      const sim::TrafficPattern pattern(graph, workload, mapping);
      eval.sweep = sim::RunLoadSweep(graph, routing, pattern, options.sweep);
    }
  }
  return result;
}

}  // namespace commsched::core
