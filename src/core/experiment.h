// The paper's end-to-end evaluation experiment (§5), reusable by benches and
// examples: given a topology, build up*/down* routing and the distance
// table, run the Tabu scheduler (mapping "OP"), draw random mappings
// ("R1".."Rk"), and simulate every mapping across a load sweep.
#pragma once

#include <string>
#include <vector>

#include "quality/partition.h"
#include "routing/updown.h"
#include "sched/scheduler.h"
#include "simnet/sweep.h"
#include "topology/graph.h"

namespace commsched::core {

struct ExperimentOptions {
  std::size_t applications = 4;  // logical clusters (paper: 4)
  route::RootPolicy root_policy = route::RootPolicy::kMaxDegree;
  sched::TabuOptions tabu;
  sim::SweepOptions sweep;
  std::size_t random_mappings = 9;  // the paper compares against up to 9 R_i
  std::uint64_t rng_seed = 2000;    // seed for the random mappings
  bool run_simulation = true;       // false: only partitions + coefficients
};

/// One mapping's evaluation: quality coefficients plus its load sweep.
struct MappingEvaluation {
  std::string label;        // "OP" or "R1".."Rk"
  qual::Partition partition;
  double fg = 0.0;
  double dg = 0.0;
  double cc = 0.0;
  sim::SweepResult sweep;   // empty when run_simulation == false

  [[nodiscard]] double Throughput() const { return sweep.Throughput(); }
};

struct ExperimentResult {
  std::vector<MappingEvaluation> mappings;  // mappings[0] is the scheduler's OP
  sched::SearchResult search;               // Tabu diagnostics for OP

  [[nodiscard]] const MappingEvaluation& Scheduled() const { return mappings.front(); }

  /// Best random-mapping throughput (the paper compares OP against this).
  [[nodiscard]] double BestRandomThroughput() const;

  /// OP throughput / best random throughput.
  [[nodiscard]] double ThroughputImprovement() const;
};

/// Runs the full experiment. The graph must satisfy the paper's assumptions
/// for the chosen number of applications (switch count divisible by
/// `applications`).
[[nodiscard]] ExperimentResult RunPaperExperiment(const topo::SwitchGraph& graph,
                                                  const ExperimentOptions& options = {});

}  // namespace commsched::core
