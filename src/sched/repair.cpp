#include "sched/repair.h"

#include <limits>

#include "common/check.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "quality/quality.h"

namespace commsched::sched {
namespace {

// Added quadratic intracluster cost of drafting `spare` into `cluster`.
double DraftCost(const dist::DistanceTable& table, const qual::Partition& partition,
                 std::size_t spare, std::size_t cluster) {
  double cost = 0.0;
  for (const std::size_t m : partition.Members(cluster)) {
    const double d = table(spare, m);
    cost += d * d;
  }
  return cost;
}

}  // namespace

RepairOutcome AnchoredRepair(const dist::DistanceTable& table, const qual::Partition& anchor,
                             const std::vector<std::size_t>& deficit_per_cluster,
                             std::optional<std::size_t> spare_cluster,
                             const RepairOptions& options) {
  const std::size_t n = anchor.switch_count();
  CS_CHECK(table.size() == n, "distance table and anchor partition disagree on switch count");
  CS_CHECK(deficit_per_cluster.empty() || deficit_per_cluster.size() == anchor.cluster_count(),
           "deficit vector must have one entry per cluster");
  CS_CHECK(!spare_cluster || *spare_cluster < anchor.cluster_count(),
           "spare cluster out of range");

  RepairOutcome outcome{anchor};
  qual::Partition& partition = outcome.repaired;

  // Phase 1 — forced migration: refill damaged clusters from the spare
  // pool, cheapest-fit first.
  if (spare_cluster && !deficit_per_cluster.empty()) {
    for (std::size_t c = 0; c < deficit_per_cluster.size(); ++c) {
      if (c == *spare_cluster) continue;
      for (std::size_t need = deficit_per_cluster[c]; need > 0; --need) {
        const std::vector<std::size_t> pool = partition.Members(*spare_cluster);
        // Partition forbids emptying a cluster, so the pool keeps one spare.
        if (pool.size() <= 1) break;
        std::size_t best = pool.front();
        double best_cost = std::numeric_limits<double>::infinity();
        for (const std::size_t spare : pool) {
          const double cost = DraftCost(table, partition, spare, c);
          if (cost < best_cost) {
            best_cost = cost;
            best = spare;
          }
        }
        partition.Move(best, c);
        ++outcome.forced_moves;
      }
    }
  }

  // Phase 2 — bounded best-improvement swap refinement from the
  // post-forced-move anchor.
  qual::SwapEvaluator evaluator(table, partition);
  outcome.anchor_fg = evaluator.Fg();
  const std::vector<std::size_t> start_cluster = evaluator.partition().cluster_of_switch();
  std::vector<bool> displaced(n, false);
  std::size_t displaced_count = 0;
  constexpr double kEps = 1e-12;

  for (std::size_t round = 0; round < options.max_refinement_rounds; ++round) {
    double best_gain = -kEps;  // require a strict improvement
    std::size_t best_a = 0;
    std::size_t best_b = 0;
    bool found = false;
    const qual::Partition& current = evaluator.partition();
    for (std::size_t a = 0; a + 1 < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (current.ClusterOf(a) == current.ClusterOf(b)) continue;
        // Displacement delta of this swap relative to the phase-1 anchor:
        // after the swap, a sits in b's cluster and vice versa.
        const bool a_after = current.ClusterOf(b) != start_cluster[a];
        const bool b_after = current.ClusterOf(a) != start_cluster[b];
        const int delta_displaced = (static_cast<int>(a_after) - static_cast<int>(displaced[a])) +
                                    (static_cast<int>(b_after) - static_cast<int>(displaced[b]));
        const std::size_t after =
            static_cast<std::size_t>(static_cast<int>(displaced_count) + delta_displaced);
        if (after > options.migration_budget) continue;
        const double fg_gain = evaluator.Fg() - evaluator.FgAfterDelta(evaluator.SwapDelta(a, b));
        const double gain =
            fg_gain - options.migration_penalty * static_cast<double>(delta_displaced) /
                          static_cast<double>(n);
        if (gain > best_gain) {
          best_gain = gain;
          best_a = a;
          best_b = b;
          found = true;
        }
      }
    }
    if (!found) break;
    evaluator.ApplySwap(best_a, best_b);
    ++outcome.refinement_swaps;
    for (const std::size_t s : {best_a, best_b}) {
      const bool now = evaluator.partition().ClusterOf(s) != start_cluster[s];
      if (now != displaced[s]) {
        displaced[s] = now;
        displaced_count += now ? 1 : static_cast<std::size_t>(-1);
      }
    }
  }

  outcome.repaired = evaluator.partition();
  outcome.displaced = displaced_count;
  outcome.repaired_fg = evaluator.Fg();
  outcome.repaired_cc = evaluator.Cc();

  obs::Registry::Global().GetCounter("sched.repair.runs").Add();
  obs::Registry::Global().GetCounter("sched.repair.forced_moves").Add(outcome.forced_moves);
  obs::Registry::Global().GetCounter("sched.repair.refinement_swaps")
      .Add(outcome.refinement_swaps);
  if (obs::Tracer* t = obs::ActiveTracer()) {
    t->Emit(obs::TraceEvent("sched.repair.done")
                .F("forced_moves", outcome.forced_moves)
                .F("refinement_swaps", outcome.refinement_swaps)
                .F("displaced", outcome.displaced)
                .F("anchor_fg", outcome.anchor_fg)
                .F("repaired_fg", outcome.repaired_fg)
                .F("repaired_cc", outcome.repaired_cc));
  }
  return outcome;
}

}  // namespace commsched::sched
