#include "sched/repair.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "quality/quality.h"
#include "sched/engine.h"

namespace commsched::sched {
namespace {

// Added quadratic intracluster cost of drafting `spare` into `cluster`.
double DraftCost(const dist::DistanceTable& table, const qual::Partition& partition,
                 std::size_t spare, std::size_t cluster) {
  double cost = 0.0;
  for (const std::size_t m : partition.Members(cluster)) {
    const double d = table(spare, m);
    cost += d * d;
  }
  return cost;
}

/// Migration-bounded refinement objective: minimizes -gain where
/// gain = (F_G drop of the swap) - penalty * (added displaced) / N, and
/// swaps that would exceed the hard migration budget are inadmissible
/// (SwapCost returns infinity, which the engine skips).
class RepairObjective final : public Objective {
 public:
  RepairObjective(const dist::DistanceTable& table, const qual::Partition& start,
                  const std::vector<std::size_t>& anchor_cluster, std::size_t budget,
                  double penalty)
      : eval_(table, start),
        anchor_cluster_(&anchor_cluster),
        budget_(budget),
        penalty_(penalty),
        n_(start.switch_count()),
        displaced_(n_, false) {
    for (std::size_t s = 0; s < n_; ++s) {
      displaced_[s] = start.ClusterOf(s) != anchor_cluster[s];
      if (displaced_[s]) ++displaced_count_;
    }
  }

  double SwapCost(std::size_t a, std::size_t b) override {
    const qual::Partition& current = eval_.partition();
    // Displacement delta of this swap relative to the phase-1 anchor:
    // after the swap, a sits in b's cluster and vice versa.
    const bool a_after = current.ClusterOf(b) != (*anchor_cluster_)[a];
    const bool b_after = current.ClusterOf(a) != (*anchor_cluster_)[b];
    const int delta_displaced = (static_cast<int>(a_after) - static_cast<int>(displaced_[a])) +
                                (static_cast<int>(b_after) - static_cast<int>(displaced_[b]));
    const std::size_t after =
        static_cast<std::size_t>(static_cast<int>(displaced_count_) + delta_displaced);
    if (after > budget_) return std::numeric_limits<double>::infinity();
    const double fg_gain = eval_.Fg() - eval_.FgAfterDelta(eval_.SwapDelta(a, b));
    const double gain =
        fg_gain - penalty_ * static_cast<double>(delta_displaced) / static_cast<double>(n_);
    return -gain;
  }

  [[nodiscard]] double Value() const override {
    return eval_.Fg() +
           penalty_ * static_cast<double>(displaced_count_) / static_cast<double>(n_);
  }

  [[nodiscard]] double TraceFg() const override { return eval_.Fg(); }

  [[nodiscard]] double AspirantValue(double cost, double current_value) override {
    return current_value + cost;  // unused: repair runs without a tabu list
  }

  void Apply(std::size_t a, std::size_t b) override {
    eval_.ApplySwap(a, b);
    for (const std::size_t s : {a, b}) {
      const bool now = eval_.partition().ClusterOf(s) != (*anchor_cluster_)[s];
      if (now != displaced_[s]) {
        displaced_[s] = now;
        displaced_count_ += now ? 1 : static_cast<std::size_t>(-1);
      }
    }
  }

  [[nodiscard]] const Partition& partition() const override { return eval_.partition(); }

  void FinalizeSeed(SearchResult& result) const override {
    // Incremental values, not a recompute — matches the legacy refinement.
    result.best_fg = eval_.Fg();
    result.best_cc = eval_.Cc();
  }

  [[nodiscard]] std::size_t displaced_count() const { return displaced_count_; }

 private:
  qual::SwapEvaluator eval_;
  const std::vector<std::size_t>* anchor_cluster_;
  std::size_t budget_;
  double penalty_;
  std::size_t n_;
  std::vector<bool> displaced_;
  std::size_t displaced_count_ = 0;
};

}  // namespace

RepairOutcome AnchoredRepair(const dist::DistanceTable& table, const qual::Partition& anchor,
                             const std::vector<std::size_t>& deficit_per_cluster,
                             std::optional<std::size_t> spare_cluster,
                             const RepairOptions& options) {
  const std::size_t n = anchor.switch_count();
  CS_CHECK(table.size() == n, "distance table and anchor partition disagree on switch count");
  CS_CHECK(deficit_per_cluster.empty() || deficit_per_cluster.size() == anchor.cluster_count(),
           "deficit vector must have one entry per cluster");
  CS_CHECK(!spare_cluster || *spare_cluster < anchor.cluster_count(),
           "spare cluster out of range");
  CS_CHECK(options.seeds >= 1, "need at least one repair seed");

  RepairOutcome outcome{anchor};
  qual::Partition& partition = outcome.repaired;

  // Phase 1 — forced migration: refill damaged clusters from the spare
  // pool, cheapest-fit first.
  if (spare_cluster && !deficit_per_cluster.empty()) {
    for (std::size_t c = 0; c < deficit_per_cluster.size(); ++c) {
      if (c == *spare_cluster) continue;
      for (std::size_t need = deficit_per_cluster[c]; need > 0; --need) {
        const std::vector<std::size_t> pool = partition.Members(*spare_cluster);
        // Partition forbids emptying a cluster, so the pool keeps one spare.
        if (pool.size() <= 1) break;
        std::size_t best = pool.front();
        double best_cost = std::numeric_limits<double>::infinity();
        for (const std::size_t spare : pool) {
          const double cost = DraftCost(table, partition, spare, c);
          if (cost < best_cost) {
            best_cost = cost;
            best = spare;
          }
        }
        partition.Move(best, c);
        ++outcome.forced_moves;
      }
    }
  }

  // Phase 2 — bounded best-improvement swap refinement from the
  // post-forced-move anchor, via the shared search engine. Seed 0 refines
  // the anchor itself (bit-identical to the single-seed repair); extra
  // seeds perturb the anchor with up to two random admissible swaps first.
  outcome.anchor_fg = qual::SwapEvaluator(table, partition).Fg();
  const std::vector<std::size_t> anchor_cluster = partition.cluster_of_switch();

  EngineOptions engine_options;
  engine_options.seeds = options.seeds;
  engine_options.max_iterations_per_seed = options.max_refinement_rounds;
  engine_options.record_trace = false;
  engine_options.parallel_seeds = options.parallel_seeds;
  const SearchEngine engine("repair", engine_options, ScanRules::GreedyGain(kSearchEps));

  // Starts up front (engine determinism rule 1).
  std::vector<qual::Partition> starts;
  std::vector<std::size_t> perturb_swaps(options.seeds, 0);
  starts.reserve(options.seeds);
  starts.push_back(partition);
  for (std::size_t k = 1; k < options.seeds; ++k) {
    qual::Partition start = partition;
    if (partition.cluster_count() >= 2) {
      Rng rng(DeriveSeedStream(options.rng_seed, k));
      std::vector<std::size_t> clusters = anchor_cluster;
      std::size_t swaps = 0;
      for (int attempt = 0; attempt < 2; ++attempt) {
        const auto [a, b] = RandomInterClusterPair(start, rng);
        std::swap(clusters[a], clusters[b]);
        ++swaps;
      }
      qual::Partition perturbed(clusters);
      // Perturbed switches count against the budget; fall back to the
      // unperturbed anchor when the budget cannot afford the perturbation.
      std::size_t displaced = 0;
      for (std::size_t s = 0; s < n; ++s) {
        if (perturbed.ClusterOf(s) != anchor_cluster[s]) ++displaced;
      }
      if (displaced <= options.migration_budget) {
        start = std::move(perturbed);
        perturb_swaps[k] = swaps;
      }
    }
    starts.push_back(std::move(start));
  }

  struct SeedOutcome {
    qual::Partition repaired;
    std::size_t swaps = 0;
    std::size_t displaced = 0;
    double fg = 0.0;
    double cc = 0.0;
    double key = 0.0;  // fg + penalty * displaced / n
  };
  std::vector<SeedOutcome> runs(options.seeds, SeedOutcome{partition});
  auto run_one = [&](std::size_t k) {
    RepairObjective objective(table, starts[k], anchor_cluster, options.migration_budget,
                              options.migration_penalty);
    SeedRun run = engine.RunSeed(objective, k);
    engine.FlushSeedObservability(run, k);
    SeedOutcome& out = runs[k];
    out.repaired = std::move(run.result.best);
    out.swaps = perturb_swaps[k] + run.result.iterations;
    out.displaced = objective.displaced_count();
    out.fg = run.result.best_fg;
    out.cc = run.result.best_cc;
    out.key = out.fg + options.migration_penalty * static_cast<double>(out.displaced) /
                           static_cast<double>(n);
  };
  if (options.parallel_seeds && options.seeds > 1) {
    ParallelFor(options.seeds, run_one);
  } else {
    for (std::size_t k = 0; k < options.seeds; ++k) run_one(k);
  }

  // Combine sequentially in seed order; seed 0 is always admissible.
  std::size_t winner = 0;
  for (std::size_t k = 1; k < options.seeds; ++k) {
    if (runs[k].displaced > options.migration_budget) continue;
    if (runs[k].key < runs[winner].key - kSearchEps) winner = k;
  }
  outcome.repaired = std::move(runs[winner].repaired);
  outcome.refinement_swaps = runs[winner].swaps;
  outcome.displaced = runs[winner].displaced;
  outcome.repaired_fg = runs[winner].fg;
  outcome.repaired_cc = runs[winner].cc;

  obs::Registry::Global().GetCounter("sched.repair.runs").Add();
  obs::Registry::Global().GetCounter("sched.repair.forced_moves").Add(outcome.forced_moves);
  obs::Registry::Global().GetCounter("sched.repair.refinement_swaps")
      .Add(outcome.refinement_swaps);
  if (obs::Tracer* t = obs::ActiveTracer()) {
    t->Emit(obs::TraceEvent("sched.repair.done")
                .F("forced_moves", outcome.forced_moves)
                .F("refinement_swaps", outcome.refinement_swaps)
                .F("displaced", outcome.displaced)
                .F("anchor_fg", outcome.anchor_fg)
                .F("repaired_fg", outcome.repaired_fg)
                .F("repaired_cc", outcome.repaired_cc));
  }
  return outcome;
}

}  // namespace commsched::sched
