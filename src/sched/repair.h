// Anchored repair scheduling after component failure (ISSUE 3 tentpole,
// part 3).
//
// When switches die or are evicted by a network partition, the live mapping
// must be repaired *in place*: processes stranded on lost hardware are
// migrated first (forced moves), then a bounded swap refinement recovers the
// clustering coefficient — restarting from the current mapping rather than
// from random seeds, because every additional changed assignment is a
// process migration with real cost (cf. Bender et al.'s processor-allocation
// repair and Schulz et al.'s mapping-under-change setting).
//
// AnchoredRepair works in the *surviving* switch index space: the caller
// restricts the pre-fault partition to the survivors (e.g. via
// faults::Reconfiguration::to_compact) and supplies the distance table built
// on the degraded routing.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "distance/distance_table.h"
#include "quality/partition.h"

namespace commsched::sched {

struct RepairOptions {
  /// Maximum number of switches the refinement phase may leave displaced
  /// relative to the post-forced-move anchor. Forced moves (drafting spares
  /// into damaged clusters) do not count — they are unavoidable.
  std::size_t migration_budget = SIZE_MAX;

  /// Soft bias: a refinement swap's F_G gain must exceed
  /// migration_penalty * (added displaced switches) / N to be taken.
  /// 0 = pure quality refinement within the hard budget.
  double migration_penalty = 0.0;

  /// Hard cap on refinement swaps (each swap displaces at most 2 switches).
  std::size_t max_refinement_rounds = 100;

  /// Refinement restarts. Seed 0 always refines straight from the
  /// post-forced-move anchor (bit-identical to the single-seed repair);
  /// extra seeds perturb the anchor with a few random admissible swaps
  /// before refining, and the best outcome within the migration budget
  /// wins. (Appended after the original fields so designated initializers
  /// keep working.)
  std::size_t seeds = 1;
  std::uint64_t rng_seed = 1;
  bool parallel_seeds = false;  // run refinement seeds on a thread pool
};

struct RepairOutcome {
  qual::Partition repaired;

  std::size_t forced_moves = 0;       // spares drafted into damaged clusters
  std::size_t refinement_swaps = 0;   // swaps applied by refinement
  std::size_t displaced = 0;          // switches whose final cluster differs
                                      // from the post-forced-move anchor
  double anchor_fg = 0.0;    // F_G right after forced moves (refinement start)
  double repaired_fg = 0.0;  // final F_G
  double repaired_cc = 0.0;  // final C_c
};

/// Repairs `anchor` (a valid partition of the surviving switches).
///
/// Phase 1 — forced migration: for each cluster c, draft
/// `deficit_per_cluster[c]` switches out of `spare_cluster` (the free pool,
/// if any), greedily choosing the spare with the smallest added quadratic
/// intracluster distance. Drafting stops when the pool is down to one switch
/// (a Partition cluster can never be emptied); damaged clusters then simply
/// stay smaller.
///
/// Phase 2 — bounded refinement: best-improvement inter-cluster swaps via
/// SwapEvaluator, subject to options.migration_budget/migration_penalty.
/// Note the spare cluster (when present) takes part in the objective like
/// any other cluster; callers that want free switches ignored should not
/// pass a spare cluster and handle the pool outside.
///
/// `deficit_per_cluster` may be empty (no forced phase) or must have one
/// entry per cluster of `anchor`.
[[nodiscard]] RepairOutcome AnchoredRepair(const dist::DistanceTable& table,
                                           const qual::Partition& anchor,
                                           const std::vector<std::size_t>& deficit_per_cluster,
                                           std::optional<std::size_t> spare_cluster,
                                           const RepairOptions& options = {});

}  // namespace commsched::sched
