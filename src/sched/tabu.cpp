#include "sched/tabu.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/parallel.h"
#include "common/rng.h"
#include "obs/obs.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace commsched::sched {

namespace {

constexpr double kEps = 1e-12;

/// State of one seed's walk.
struct SeedRun {
  SearchResult result;  // best of this seed
  std::vector<TracePoint> trace;
};

/// Switches whose cluster differs from the anchor's.
std::size_t CountMoved(const Partition& partition, const Partition& anchor) {
  std::size_t moved = 0;
  for (std::size_t s = 0; s < partition.switch_count(); ++s) {
    if (partition.ClusterOf(s) != anchor.ClusterOf(s)) ++moved;
  }
  return moved;
}

/// Runs the paper's walk from `start`; `iteration_base` offsets trace
/// iteration numbers so multi-seed traces concatenate like Fig. 1.
///
/// The objective is F_G plus, when an anchor is configured, the migration
/// term migration_penalty * moved / N. With no anchor the extra machinery
/// reduces to plain F_G minimization (migration deltas are all zero).
SeedRun RunSeed(const DistanceTable& table, const Partition& start, const TabuOptions& options,
                std::size_t iteration_base, std::size_t seed_index = 0) {
  obs::Registry& registry = obs::Registry::Global();
  const obs::ScopedTimer seed_timer(registry.GetTimer("search.tabu.seed"));
  const obs::Span seed_span("tabu.seed", "seed", seed_index);
  qual::SwapEvaluator eval(table, start);
  const std::size_t n = start.switch_count();
  const Partition* anchor = options.anchor;
  if (anchor != nullptr) {
    CS_CHECK(anchor->switch_count() == n, "anchor size mismatch");
  }
  const double move_cost =
      anchor != nullptr ? options.migration_penalty / static_cast<double>(n) : 0.0;

  // Objective helpers. F_G is affine in the intra sum, so objective deltas
  // are delta * fg_scale + move_cost * dmoved.
  const double fg_scale = eval.FgAfterDelta(1.0) - eval.FgAfterDelta(0.0);
  std::size_t moved = anchor != nullptr ? CountMoved(start, *anchor) : 0;
  auto swap_dmoved = [&](std::size_t a, std::size_t b) -> int {
    if (anchor == nullptr) return 0;
    const std::size_t ca = eval.partition().ClusterOf(a);
    const std::size_t cb = eval.partition().ClusterOf(b);
    int d = 0;
    d += (cb != anchor->ClusterOf(a)) - (ca != anchor->ClusterOf(a));
    d += (ca != anchor->ClusterOf(b)) - (cb != anchor->ClusterOf(b));
    return d;
  };

  SeedRun run;
  run.result.best = start;
  double current_obj = eval.Fg() + move_cost * static_cast<double>(moved);
  double best_obj = current_obj;

  if (options.record_trace) {
    run.trace.push_back({iteration_base, eval.Fg(), /*is_restart=*/true});
  }

  // Batched observability: hot-loop events accumulate into locals and flush
  // into the global Registry once per seed, so the disabled path costs
  // nothing inside the neighbourhood scan.
  std::uint64_t tabu_hits = 0;    // candidate swaps rejected by the tabu list
  std::uint64_t aspirations = 0;  // tabu swaps admitted by aspiration
  std::uint64_t escapes = 0;      // uphill moves out of local minima
  if (obs::Tracer* tracer = obs::ActiveTracer()) {
    tracer->Emit(obs::TraceEvent("search.restart")
                     .F("algo", "tabu")
                     .F("seed", seed_index)
                     .F("fg", eval.Fg()));
  }

  // tabu_until[a][b]: iteration before which swapping (a,b) is forbidden.
  std::vector<std::vector<std::size_t>> tabu_until(n, std::vector<std::size_t>(n, 0));

  // Local-minimum bookkeeping: objective values quantized to a tolerance so
  // that "the same local minimum" is robust to floating-point noise.
  std::map<long long, std::size_t> local_min_hits;
  auto quantize = [](double obj) { return static_cast<long long>(std::llround(obj * 1e9)); };

  std::size_t iteration = 0;
  while (iteration < options.max_iterations_per_seed) {
    // Escape iterations are re-labelled before the span closes, so the
    // profile separates uphill moves from ordinary descent.
    obs::Span iter_span("tabu.iter", "iter", iteration);
    // Evaluate the whole inter-cluster swap neighbourhood.
    double best_delta_down = 0.0;  // most negative objective delta
    std::pair<std::size_t, std::size_t> best_down{n, n};
    double best_delta_up = std::numeric_limits<double>::infinity();  // smallest increase
    std::pair<std::size_t, std::size_t> best_up{n, n};
    bool any_decrease_exists = false;  // decreasing swap exists, tabu or not

    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (eval.partition().ClusterOf(a) == eval.partition().ClusterOf(b)) continue;
        const double obj_delta = eval.SwapDelta(a, b) * fg_scale +
                                 move_cost * static_cast<double>(swap_dmoved(a, b));
        ++run.result.evaluations;
        if (obj_delta < -kEps) any_decrease_exists = true;

        const bool tabu = tabu_until[a][b] > iteration;
        if (tabu) {
          // Aspiration: a tabu move may still be taken if it would beat the
          // best mapping this seed has seen.
          if (options.aspiration && current_obj + obj_delta < best_obj - kEps) {
            ++aspirations;
          } else {
            ++tabu_hits;
            continue;
          }
        }
        if (obj_delta < best_delta_down - kEps) {
          best_delta_down = obj_delta;
          best_down = {a, b};
        }
        if (obj_delta > kEps && obj_delta < best_delta_up) {
          best_delta_up = obj_delta;
          best_up = {a, b};
        }
      }
    }

    std::pair<std::size_t, std::size_t> move{n, n};
    bool escaping = false;
    if (best_down.first < n && best_delta_down < -kEps) {
      move = best_down;  // greatest decrease
    } else {
      // Local minimum (no admissible decreasing swap).
      if (!any_decrease_exists) {
        const long long key = quantize(current_obj);
        const std::size_t hits = ++local_min_hits[key];
        if (obs::Tracer* tracer = obs::ActiveTracer()) {
          tracer->Emit(obs::TraceEvent("search.local_min")
                           .F("algo", "tabu")
                           .F("seed", seed_index)
                           .F("iter", iteration)
                           .F("fg", eval.Fg())
                           .F("hits", hits));
        }
        if (hits >= options.local_min_repeats) {
          break;  // same local minimum reached `local_min_repeats` times
        }
      }
      if (best_up.first >= n) {
        break;  // nowhere to go (every escape move is tabu)
      }
      move = best_up;  // smallest increase
      escaping = true;
    }

    moved = static_cast<std::size_t>(static_cast<long long>(moved) +
                                     swap_dmoved(move.first, move.second));
    eval.ApplySwap(move.first, move.second);
    current_obj = eval.Fg() + move_cost * static_cast<double>(moved);
    ++iteration;
    ++run.result.iterations;
    if (escaping) {
      ++escapes;
      iter_span.SetArg("escape_iter", iteration - 1);
      // Forbid the inverse permutation for `tenure` iterations.
      tabu_until[move.first][move.second] = iteration + options.tenure;
    }
    if (options.record_trace) {
      run.trace.push_back({iteration_base + iteration, eval.Fg(), false});
    }
    if (obs::Tracer* tracer = obs::ActiveTracer()) {
      tracer->Emit(obs::TraceEvent("search.move")
                       .F("algo", "tabu")
                       .F("seed", seed_index)
                       .F("iter", iteration)
                       .F("a", move.first)
                       .F("b", move.second)
                       .F("fg", eval.Fg())
                       .F("escape", escaping));
    }
    if (current_obj < best_obj - kEps) {
      best_obj = current_obj;
      run.result.best = eval.partition();
    }
  }

  FinalizeResult(table, run.result);
  if (anchor != nullptr) {
    run.result.moved_from_anchor = CountMoved(run.result.best, *anchor);
  }

  registry.GetCounter("search.tabu.seeds").Add(1);
  registry.GetCounter("search.tabu.moves").Add(run.result.iterations);
  registry.GetCounter("search.tabu.evaluations").Add(run.result.evaluations);
  registry.GetCounter("search.tabu.tabu_hits").Add(tabu_hits);
  registry.GetCounter("search.tabu.aspirations").Add(aspirations);
  registry.GetCounter("search.tabu.escapes").Add(escapes);
  // Distribution of per-seed walk lengths: one histogram sample per seed
  // (batched like the counters — nothing lands mid-walk).
  registry.GetHistogram("search.tabu.seed_iters").Record(run.result.iterations);
  if (obs::Tracer* tracer = obs::ActiveTracer()) {
    tracer->Emit(obs::TraceEvent("search.seed_done")
                     .F("algo", "tabu")
                     .F("seed", seed_index)
                     .F("iters", run.result.iterations)
                     .F("evals", run.result.evaluations)
                     .F("best_fg", run.result.best_fg)
                     .F("best_cc", run.result.best_cc));
  }
  return run;
}

}  // namespace

SearchResult TabuSearchFrom(const DistanceTable& table, const Partition& start,
                            const TabuOptions& options) {
  SeedRun run = RunSeed(table, start, options, 0);
  run.result.trace = std::move(run.trace);
  return run.result;
}

SearchResult TabuSearch(const DistanceTable& table, const std::vector<std::size_t>& cluster_sizes,
                        const TabuOptions& options) {
  CS_CHECK(options.seeds >= 1, "need at least one seed");
  Rng rng(options.rng_seed);

  // Derive every seed's start and RNG stream up front so parallel and
  // sequential execution explore identical walks. A configured anchor is
  // always the first start (warm start for re-scheduling).
  std::vector<Partition> starts;
  starts.reserve(options.seeds);
  if (options.anchor != nullptr) {
    CS_CHECK(options.anchor->cluster_count() == cluster_sizes.size(),
             "anchor cluster count mismatch");
    for (std::size_t c = 0; c < cluster_sizes.size(); ++c) {
      CS_CHECK(options.anchor->ClusterSize(c) == cluster_sizes[c],
               "anchor cluster ", c, " size mismatch");
    }
    starts.push_back(*options.anchor);
  }
  while (starts.size() < options.seeds) {
    starts.push_back(Partition::Random(cluster_sizes, rng));
  }

  std::vector<SeedRun> runs(options.seeds);
  // The walk itself is deterministic given the start, so no per-seed RNG is
  // needed; iteration bases are patched afterwards for the combined trace.
  auto run_one = [&](std::size_t s) { runs[s] = RunSeed(table, starts[s], options, 0, s); };
  if (options.parallel_seeds && options.seeds > 1) {
    ParallelFor(options.seeds, run_one);
  } else {
    for (std::size_t s = 0; s < options.seeds; ++s) run_one(s);
  }

  // Seeds are compared by the full objective (F_G plus migration term).
  const double move_cost =
      options.anchor != nullptr && !cluster_sizes.empty()
          ? options.migration_penalty / static_cast<double>(table.size())
          : 0.0;
  auto objective = [&](const SeedRun& run) {
    return run.result.best_fg + move_cost * static_cast<double>(run.result.moved_from_anchor);
  };

  SearchResult combined;
  combined.best = runs[0].result.best;
  combined.moved_from_anchor = runs[0].result.moved_from_anchor;
  double combined_obj = objective(runs[0]);
  combined.best_fg = runs[0].result.best_fg;
  std::size_t iteration_base = 0;
  for (std::size_t s = 0; s < options.seeds; ++s) {
    const SeedRun& run = runs[s];
    combined.iterations += run.result.iterations;
    combined.evaluations += run.result.evaluations;
    if (options.record_trace) {
      for (TracePoint point : run.trace) {
        point.iteration += iteration_base;
        combined.trace.push_back(point);
      }
      iteration_base += run.result.iterations + 1;  // +1 for the restart point
    }
    if (objective(run) < combined_obj - kEps) {
      combined.best = run.result.best;
      combined.moved_from_anchor = run.result.moved_from_anchor;
      combined_obj = objective(run);
      combined.best_fg = run.result.best_fg;
    }
  }
  FinalizeResult(table, combined);
  if (obs::Tracer* tracer = obs::ActiveTracer()) {
    tracer->Emit(obs::TraceEvent("search.done")
                     .F("algo", "tabu")
                     .F("seeds", options.seeds)
                     .F("iters", combined.iterations)
                     .F("evals", combined.evaluations)
                     .F("best_fg", combined.best_fg));
  }
  return combined;
}

}  // namespace commsched::sched
