#include "sched/tabu.h"

#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "sched/engine.h"

namespace commsched::sched {

SearchResult TabuSearchFrom(const DistanceTable& table, const Partition& start,
                            const TabuOptions& options) {
  const SearchEngine engine("tabu", ToEngineOptions(options), ScanRules::TabuMargin());
  TabuObjective objective(table, start, options.anchor, options.migration_penalty);
  SeedRun run = engine.RunSeed(objective, 0);
  engine.FlushSeedObservability(run, 0);
  run.result.trace = std::move(run.trace);
  return run.result;
}

SearchResult TabuSearch(const DistanceTable& table, const std::vector<std::size_t>& cluster_sizes,
                        const TabuOptions& options) {
  CS_CHECK(options.seeds >= 1, "need at least one seed");
  Rng rng(options.rng_seed);

  MultiStartSpec spec;
  spec.algo = "tabu";
  spec.options = ToEngineOptions(options);

  // Derive every seed's start up front so parallel and sequential execution
  // explore identical walks. A configured anchor is always the first start
  // (warm start for re-scheduling).
  spec.starts.reserve(options.seeds);
  if (options.anchor != nullptr) {
    CS_CHECK(options.anchor->cluster_count() == cluster_sizes.size(),
             "anchor cluster count mismatch");
    for (std::size_t c = 0; c < cluster_sizes.size(); ++c) {
      CS_CHECK(options.anchor->ClusterSize(c) == cluster_sizes[c],
               "anchor cluster ", c, " size mismatch");
    }
    spec.starts.push_back(*options.anchor);
  }
  while (spec.starts.size() < options.seeds) {
    spec.starts.push_back(Partition::Random(cluster_sizes, rng));
  }

  const SearchEngine engine("tabu", spec.options, ScanRules::TabuMargin());
  spec.run_seed = [&table, &options, &engine](const Partition& start, std::size_t seed) {
    TabuObjective objective(table, start, options.anchor, options.migration_penalty);
    SeedRun run = engine.RunSeed(objective, seed);
    engine.FlushSeedObservability(run, seed);
    return run;
  };

  // Seeds are compared by the full objective (F_G plus migration term).
  const double move_cost = options.anchor != nullptr && !cluster_sizes.empty()
                               ? options.migration_penalty / static_cast<double>(table.size())
                               : 0.0;
  spec.combine_key = [move_cost](const SeedRun& run) {
    return run.result.best_fg + move_cost * static_cast<double>(run.result.moved_from_anchor);
  };
  return RunMultiStart(table, spec);
}

}  // namespace commsched::sched
