// The paper's scheduling technique (§4.2): Tabu search over mappings.
//
// Per random seed:
//   * apply the inter-cluster swap with the greatest decrease of F_G;
//   * at a local minimum apply the swap with the smallest increase and
//     forbid the inverse swap for `tenure` iterations ("tabu movements");
//   * stop the seed when the same local minimum has been reached
//     `local_min_repeats` times or after `max_iterations_per_seed` moves.
// The search restarts from `seeds` random mappings and keeps the best
// mapping seen anywhere (the paper uses 10 seeds, 3 repeats, 20 iterations).
#pragma once

#include "sched/engine.h"
#include "sched/search.h"

namespace commsched::sched {

struct TabuOptions {
  std::size_t seeds = 10;                    // random restarts (paper: 10)
  std::size_t max_iterations_per_seed = 20;  // iteration budget (paper: 20)
  std::size_t local_min_repeats = 3;         // same-minimum stop (paper: 3)
  std::size_t tenure = 4;                    // h: iterations a reverse swap is tabu
  bool aspiration = true;                    // allow tabu move if it beats the global best
  std::uint64_t rng_seed = 1;
  bool record_trace = false;
  bool parallel_seeds = false;  // run restarts on a thread pool

  /// Migration-aware re-scheduling: if `anchor` is set (same switch count
  /// and cluster sizes as the search space), every switch whose cluster
  /// differs from the anchor's adds migration_penalty / N to the objective
  /// (objective = F_G + migration_penalty * moved/N). The anchor itself is
  /// used as the first seed. With penalty 0 the anchor only warm-starts.
  const qual::Partition* anchor = nullptr;
  double migration_penalty = 0.0;
};

/// Engine-level view of the tabu-family knobs (shared by the plain,
/// weighted, and intensity searchers, which all take TabuOptions).
[[nodiscard]] inline EngineOptions ToEngineOptions(const TabuOptions& options) {
  EngineOptions engine;
  engine.seeds = options.seeds;
  engine.max_iterations_per_seed = options.max_iterations_per_seed;
  engine.local_min_repeats = options.local_min_repeats;
  engine.tenure = options.tenure;
  engine.aspiration = options.aspiration;
  engine.record_trace = options.record_trace;
  engine.parallel_seeds = options.parallel_seeds;
  return engine;
}

/// Runs the Tabu search for partitions with the given cluster sizes.
[[nodiscard]] SearchResult TabuSearch(const DistanceTable& table,
                                      const std::vector<std::size_t>& cluster_sizes,
                                      const TabuOptions& options = {});

/// Runs the Tabu search from one explicit starting partition (single seed;
/// exposed for tests and for warm-starting).
[[nodiscard]] SearchResult TabuSearchFrom(const DistanceTable& table, const Partition& start,
                                          const TabuOptions& options = {});

}  // namespace commsched::sched
