// Exact search over all partitions with fixed cluster sizes.
//
// Used to validate the Tabu search on small networks (§4.2: "for small size
// networks (up to 16 switches) the minimum obtained by this method was the
// same value that the one obtained with an exhaustive search").
//
// Clusters of equal size are interchangeable, so the enumeration breaks that
// symmetry (the 4x4 partitions of 16 switches number 16!/(4!^4 · 4!) =
// 2,627,625). Branch-and-bound pruning on the partial intracluster sum is
// exact — F_G only grows as switches are assigned — so pruning never loses
// the optimum.
#pragma once

#include "sched/search.h"

namespace commsched::sched {

struct ExhaustiveOptions {
  bool prune = true;           // branch-and-bound on the partial intra sum
  std::size_t max_leaves = 500'000'000;  // safety valve against runaway spaces
};

/// Finds the global minimum of F_G; result.evaluations counts visited leaves
/// (without pruning this is the full partition count).
[[nodiscard]] SearchResult ExhaustiveSearch(const DistanceTable& table,
                                            const std::vector<std::size_t>& cluster_sizes,
                                            const ExhaustiveOptions& options = {});

/// Number of distinct partitions of n switches into unlabeled clusters with
/// the given sizes (equal-size clusters interchangeable). Throws on overflow.
[[nodiscard]] unsigned long long CountPartitions(const std::vector<std::size_t>& cluster_sizes);

}  // namespace commsched::sched
