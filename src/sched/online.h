// Online allocation: applications arrive and depart over time and must be
// placed on whatever switches are currently free — the day-to-day regime of
// the paper's NOW scenario ("integration with process scheduling", §6).
//
// Allocate() picks a set of free switches with minimal intracluster
// quadratic distance (greedy growth from the best seed, refined by swap
// local search within the free pool), so each application lands on the
// tightest region still available. Release() frees an application's
// switches. Fragmentation shows up as rising allocation costs; the
// FragmentationIndex tracks it.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "distance/distance_table.h"
#include "quality/partition.h"
#include "topology/graph.h"

namespace commsched::sched {

struct OnlineOptions {
  /// Swap-improvement rounds per allocation (0 = greedy only).
  std::size_t local_search_iterations = 100;
};

/// What happened to the applications touched by a FailSwitch/RestoreSwitch
/// (ISSUE 3: degraded-mode repair scheduling).
struct RemapOutcome {
  std::vector<std::string> remapped;  // evicted and re-placed immediately
  std::vector<std::string> pending;   // evicted; waiting for capacity
};

class OnlineScheduler {
 public:
  /// The table must match the graph and outlive the scheduler.
  OnlineScheduler(const topo::SwitchGraph& graph, const dist::DistanceTable& table,
                  const OnlineOptions& options = {});

  /// Allocates `switch_count` switches for `name`; returns the chosen
  /// switches (ascending) or nullopt if not enough are free. `name` must
  /// not already be allocated (live or pending re-placement).
  [[nodiscard]] std::optional<std::vector<std::size_t>> Allocate(const std::string& name,
                                                                 std::size_t switch_count);

  /// Releases a previous allocation; throws if `name` is unknown. Freed
  /// capacity immediately triggers a retry wave over pending applications.
  void Release(const std::string& name);

  /// Marks switch `s` failed: it leaves the free pool and every application
  /// holding it is evicted and re-Allocate()d on the surviving free
  /// switches. Applications that do not fit right now join the pending
  /// queue and are retried with exponential backoff as capacity returns
  /// (each Release/RestoreSwitch/RetryPending call is one backoff tick).
  /// Idempotent for an already-failed switch.
  RemapOutcome FailSwitch(std::size_t s);

  /// Returns a failed switch to service (back into the free pool) and runs
  /// a retry wave. Idempotent for a healthy switch.
  RemapOutcome RestoreSwitch(std::size_t s);

  /// One backoff tick: decrements every pending application's cooldown and
  /// re-attempts those that reach zero (in eviction order). Failed attempts
  /// double the cooldown (capped at 64 ticks).
  RemapOutcome RetryPending();

  [[nodiscard]] bool SwitchFailed(std::size_t s) const { return failed_[s]; }

  /// Applications evicted by failures and still waiting for capacity.
  [[nodiscard]] std::vector<std::string> PendingApplications() const;

  [[nodiscard]] std::size_t FreeSwitchCount() const;
  [[nodiscard]] const std::vector<std::size_t>& FreeSwitches() const { return free_; }
  [[nodiscard]] const std::map<std::string, std::vector<std::size_t>>& allocations() const {
    return allocations_;
  }

  /// Mean intracluster quadratic distance per pair of an allocation.
  [[nodiscard]] double AllocationCost(const std::string& name) const;

  /// Mean of AllocationCost over live allocations with >= 2 switches,
  /// normalized by the table's mean squared distance (1.0 = as bad as
  /// random placement, smaller is tighter). 0 when nothing qualifies.
  [[nodiscard]] double FragmentationIndex() const;

  /// The current overall partition: one cluster per allocation (in
  /// lexicographic name order) plus, if any switches are free, a final
  /// "idle" cluster. Useful to hand the live system to the simulator.
  [[nodiscard]] qual::Partition SnapshotPartition(
      std::vector<std::string>* cluster_names = nullptr) const;

 private:
  struct PendingApp {
    std::string name;
    std::size_t switch_count = 0;
    std::size_t attempts = 0;  // failed placement attempts so far
    std::size_t cooldown = 0;  // ticks until the next attempt
  };

  [[nodiscard]] double SetCost(const std::vector<std::size_t>& members) const;

  /// The placement engine behind Allocate (no duplicate-name checks).
  [[nodiscard]] std::optional<std::vector<std::size_t>> TryPlace(const std::string& name,
                                                                 std::size_t switch_count);

  [[nodiscard]] bool IsPending(const std::string& name) const;

  const topo::SwitchGraph* graph_;
  const dist::DistanceTable* table_;
  OnlineOptions options_;
  std::vector<bool> is_free_;
  std::vector<bool> failed_;
  std::vector<std::size_t> free_;  // ascending
  std::map<std::string, std::vector<std::size_t>> allocations_;
  std::vector<PendingApp> pending_;  // eviction order
};

}  // namespace commsched::sched
