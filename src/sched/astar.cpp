#include "sched/astar.h"

#include <algorithm>
#include <queue>

namespace commsched::sched {

namespace {


struct Node {
  double f = 0.0;  // g + h
  double g = 0.0;  // intracluster sum of the prefix
  std::vector<std::uint8_t> cluster_of;  // assignment of switches [0, depth)

  // Min-heap by f.
  friend bool operator>(const Node& a, const Node& b) { return a.f > b.f; }
};

}  // namespace

SearchResult AStarSearch(const DistanceTable& table,
                         const std::vector<std::size_t>& cluster_sizes,
                         const AStarOptions& options) {
  const std::size_t n = table.size();
  std::size_t total = 0;
  std::size_t total_intra_pairs = 0;
  for (std::size_t size : cluster_sizes) {
    CS_CHECK(size > 0, "cluster sizes must be positive");
    total += size;
    total_intra_pairs += size * (size - 1) / 2;
  }
  CS_CHECK(total == n, "cluster sizes must cover every switch");
  CS_CHECK(cluster_sizes.size() <= 255, "too many clusters for the compact encoding");

  // Sorted squared pair distances and their prefix sums: the sum of the R
  // smallest is an admissible bound for any R future intracluster pairs.
  std::vector<double> sorted_sq;
  sorted_sq.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      sorted_sq.push_back(table(i, j) * table(i, j));
    }
  }
  std::sort(sorted_sq.begin(), sorted_sq.end());
  std::vector<double> prefix(sorted_sq.size() + 1, 0.0);
  for (std::size_t k = 0; k < sorted_sq.size(); ++k) {
    prefix[k + 1] = prefix[k] + sorted_sq[k];
  }
  const double min_sq = sorted_sq.empty() ? 0.0 : sorted_sq.front();

  auto heuristic = [&](const std::vector<std::uint8_t>& cluster_of) -> double {
    if (options.heuristic_level == 0) return 0.0;
    // Intracluster pairs already realized by the prefix.
    std::vector<std::size_t> filled(cluster_sizes.size(), 0);
    for (std::uint8_t c : cluster_of) ++filled[c];
    std::size_t current_pairs = 0;
    for (std::size_t c = 0; c < filled.size(); ++c) {
      current_pairs += filled[c] * (filled[c] - 1) / 2;
    }
    const std::size_t remaining = total_intra_pairs - current_pairs;
    if (options.heuristic_level == 1) {
      return static_cast<double>(remaining) * min_sq;
    }
    return prefix[remaining];  // sum of the R globally smallest pair costs
  };

  std::priority_queue<Node, std::vector<Node>, std::greater<>> open;
  open.push({heuristic({}), 0.0, {}});

  SearchResult result;
  while (!open.empty()) {
    Node node = std::move(const_cast<Node&>(open.top()));
    open.pop();
    const std::size_t depth = node.cluster_of.size();
    if (depth == n) {
      std::vector<std::size_t> assignment(node.cluster_of.begin(), node.cluster_of.end());
      result.best = Partition(std::move(assignment));
      FinalizeResult(table, result);
      return result;
    }
    ++result.evaluations;
    CS_CHECK(result.evaluations <= options.max_expansions, "A* exceeded max_expansions");

    std::vector<std::size_t> filled(cluster_sizes.size(), 0);
    for (std::uint8_t c : node.cluster_of) ++filled[c];
    for (std::size_t c = 0; c < cluster_sizes.size(); ++c) {
      if (filled[c] >= cluster_sizes[c]) continue;
      // Symmetry breaking: an empty cluster may be opened only if no earlier
      // cluster of the same size is still empty.
      if (filled[c] == 0) {
        bool blocked = false;
        for (std::size_t c2 = 0; c2 < c; ++c2) {
          if (filled[c2] == 0 && cluster_sizes[c2] == cluster_sizes[c]) {
            blocked = true;
            break;
          }
        }
        if (blocked) continue;
      }
      double delta = 0.0;
      for (std::size_t s = 0; s < depth; ++s) {
        if (node.cluster_of[s] == c) {
          const double d = table(s, depth);
          delta += d * d;
        }
      }
      Node child;
      child.g = node.g + delta;
      child.cluster_of = node.cluster_of;
      child.cluster_of.push_back(static_cast<std::uint8_t>(c));
      // Note: the prefix-sum heuristic is admissible but NOT consistent
      // (a child's f may drop below its parent's — the parent's bound can
      // charge higher-ranked global pairs than the child actually formed).
      // That is fine for optimality: this is tree search (each assignment
      // prefix is generated exactly once), so the first goal popped still
      // carries the global minimum.
      child.f = child.g + heuristic(child.cluster_of);
      open.push(std::move(child));
    }
    ++result.iterations;
  }
  CS_UNREACHABLE("A* open list exhausted without reaching a goal");
}

}  // namespace commsched::sched
