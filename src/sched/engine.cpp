#include "sched/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/obs.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace commsched::sched {

ScanRules ScanRules::TabuMargin() { return ScanRules{}; }

ScanRules ScanRules::ValueDescent() {
  ScanRules rules;
  rules.down = Down::kValueStrict;
  return rules;
}

ScanRules ScanRules::GreedyDescent() {
  ScanRules rules;
  rules.down = Down::kDeltaStrict;
  rules.strict_init = -kSearchEps;
  rules.allow_escape = false;
  rules.use_tabu = false;
  return rules;
}

ScanRules ScanRules::GreedyGain(double strict_init) {
  ScanRules rules;
  rules.down = Down::kDeltaStrict;
  rules.strict_init = strict_init;
  rules.allow_escape = false;
  rules.use_tabu = false;
  rules.track_best = false;  // the walk's final mapping is the repair result
  return rules;
}

SearchEngine::SearchEngine(std::string algo, const EngineOptions& options, const ScanRules& rules)
    : algo_(std::move(algo)),
      options_(options),
      rules_(rules),
      timer_name_("search." + algo_ + ".seed"),
      seed_span_name_(algo_ + ".seed"),
      iter_span_name_(algo_ + ".iter") {
  // A zero here used to silently yield an empty no-op search result; callers
  // that meant "don't search" invariably meant something else (a typoed
  // flag, an uninitialized knob), so it is a configuration error.
  if (options.seeds == 0) {
    throw ConfigError("search seeds must be >= 1 (got 0)");
  }
  if (options.max_iterations_per_seed == 0) {
    throw ConfigError("search iterations per seed must be >= 1 (got 0)");
  }
}

SeedRun SearchEngine::RunSeed(Objective& objective, std::size_t seed_index) const {
  obs::Registry& registry = obs::Registry::Global();
  const obs::ScopedTimer seed_timer(registry.GetTimer(timer_name_));
  const obs::Span seed_span(seed_span_name_, "seed", seed_index);
  const std::size_t n = objective.partition().switch_count();

  SeedRun run;
  run.result.best = objective.partition();
  double current_value = objective.Value();
  double best_value = current_value;

  if (options_.record_trace) {
    run.trace.push_back({0, objective.TraceFg(), /*is_restart=*/true});
  }
  if (obs::Tracer* tracer = obs::ActiveTracer()) {
    tracer->Emit(obs::TraceEvent("search.restart")
                     .F("algo", algo_)
                     .F("seed", seed_index)
                     .F("fg", objective.TraceFg()));
  }

  // tabu_until[a][b]: iteration before which swapping (a,b) is forbidden.
  std::vector<std::vector<std::size_t>> tabu_until;
  if (rules_.use_tabu) {
    tabu_until.assign(n, std::vector<std::size_t>(n, 0));
  }

  // Local-minimum bookkeeping: values quantized to a tolerance so that
  // "the same local minimum" is robust to floating-point noise.
  std::map<long long, std::size_t> local_min_hits;
  auto quantize = [](double value) { return static_cast<long long>(std::llround(value * 1e9)); };

  std::size_t iteration = 0;
  while (iteration < options_.max_iterations_per_seed) {
    // Escape iterations are re-labelled before the span closes, so the
    // profile separates uphill moves from ordinary descent.
    obs::Span iter_span(iter_span_name_, "iter", iteration);

    // Evaluate the whole inter-cluster swap neighbourhood. In value space
    // the comparison reference is the current value; in delta space it is 0.
    const double reference = rules_.down == ScanRules::Down::kValueStrict ? current_value : 0.0;
    double best_down = 0.0;
    switch (rules_.down) {
      case ScanRules::Down::kDeltaMargin:
        best_down = 0.0;
        break;
      case ScanRules::Down::kDeltaStrict:
        best_down = rules_.strict_init;
        break;
      case ScanRules::Down::kValueStrict:
        best_down = current_value - kSearchEps;
        break;
    }
    std::pair<std::size_t, std::size_t> down_move{n, n};
    bool down_found = false;
    double best_up = std::numeric_limits<double>::infinity();  // smallest increase
    std::pair<std::size_t, std::size_t> up_move{n, n};
    bool any_decrease_exists = false;  // decreasing swap exists, tabu or not

    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (objective.partition().ClusterOf(a) == objective.partition().ClusterOf(b)) continue;
        const double cost = objective.SwapCost(a, b);
        ++run.result.evaluations;
        if (!std::isfinite(cost)) continue;  // inadmissible (e.g. over budget)
        if (cost < reference - kSearchEps) any_decrease_exists = true;

        if (rules_.use_tabu && tabu_until[a][b] > iteration) {
          // Aspiration: a tabu move may still be taken if it would beat the
          // best mapping this seed has seen.
          if (options_.aspiration &&
              objective.AspirantValue(cost, current_value) < best_value - kSearchEps) {
            ++run.aspirations;
          } else {
            ++run.tabu_hits;
            continue;
          }
        }
        const bool replace = rules_.down == ScanRules::Down::kDeltaMargin
                                 ? cost < best_down - kSearchEps
                                 : cost < best_down;
        if (replace) {
          best_down = cost;
          down_move = {a, b};
          down_found = true;
        }
        if (rules_.allow_escape && cost > reference + kSearchEps && cost < best_up) {
          best_up = cost;
          up_move = {a, b};
        }
      }
    }

    std::pair<std::size_t, std::size_t> move{n, n};
    bool escaping = false;
    if (down_found) {
      move = down_move;  // greatest decrease
    } else {
      if (!rules_.allow_escape) break;  // pure descent: first local minimum ends the walk
      // Local minimum (no admissible decreasing swap).
      if (!any_decrease_exists) {
        const std::size_t hits = ++local_min_hits[quantize(current_value)];
        if (obs::Tracer* tracer = obs::ActiveTracer()) {
          tracer->Emit(obs::TraceEvent("search.local_min")
                           .F("algo", algo_)
                           .F("seed", seed_index)
                           .F("iter", iteration)
                           .F("fg", objective.TraceFg())
                           .F("hits", hits));
        }
        if (hits >= options_.local_min_repeats) {
          break;  // same local minimum reached `local_min_repeats` times
        }
      }
      if (up_move.first >= n) {
        break;  // nowhere to go (every escape move is tabu)
      }
      move = up_move;  // smallest increase
      escaping = true;
    }

    objective.Apply(move.first, move.second);
    current_value = objective.Value();
    ++iteration;
    ++run.result.iterations;
    if (escaping) {
      ++run.escapes;
      iter_span.SetArg("escape_iter", iteration - 1);
      // Forbid the inverse permutation for `tenure` iterations.
      tabu_until[move.first][move.second] = iteration + options_.tenure;
    }
    if (options_.record_trace) {
      run.trace.push_back({iteration, objective.TraceFg(), false});
    }
    if (obs::Tracer* tracer = obs::ActiveTracer()) {
      tracer->Emit(obs::TraceEvent("search.move")
                       .F("algo", algo_)
                       .F("seed", seed_index)
                       .F("iter", iteration)
                       .F("a", move.first)
                       .F("b", move.second)
                       .F("fg", objective.TraceFg())
                       .F("escape", escaping));
    }
    if (rules_.track_best && current_value < best_value - kSearchEps) {
      best_value = current_value;
      run.result.best = objective.partition();
    }
  }

  if (!rules_.track_best) {
    run.result.best = objective.partition();
    best_value = current_value;
  }
  run.best_value = best_value;
  run.trace_span = run.result.iterations + 1;  // +1 for the restart point
  objective.FinalizeSeed(run.result);
  return run;
}

void SearchEngine::FlushSeedObservability(const SeedRun& run, std::size_t seed_index) const {
  obs::Registry& registry = obs::Registry::Global();
  const std::string family = "search." + algo_ + ".";
  registry.GetCounter(family + "seeds").Add(1);
  registry.GetCounter(family + "moves").Add(run.result.iterations);
  registry.GetCounter(family + "evaluations").Add(run.result.evaluations);
  registry.GetCounter(family + "tabu_hits").Add(run.tabu_hits);
  registry.GetCounter(family + "aspirations").Add(run.aspirations);
  registry.GetCounter(family + "escapes").Add(run.escapes);
  // Distribution of per-seed walk lengths: one histogram sample per seed
  // (batched like the counters — nothing lands mid-walk).
  registry.GetHistogram(family + "seed_iters").Record(run.result.iterations);
  if (obs::Tracer* tracer = obs::ActiveTracer()) {
    tracer->Emit(obs::TraceEvent("search.seed_done")
                     .F("algo", algo_)
                     .F("seed", seed_index)
                     .F("iters", run.result.iterations)
                     .F("evals", run.result.evaluations)
                     .F("best_fg", run.result.best_fg)
                     .F("best_cc", run.result.best_cc));
  }
}

SearchResult RunMultiStart(const DistanceTable& table, const MultiStartSpec& spec) {
  const std::size_t seeds = spec.options.seeds;
  CS_CHECK(seeds >= 1, "need at least one seed");
  CS_CHECK(spec.starts.size() == seeds, "one start per seed required");

  // Every start and RNG stream was derived before this point, so the seed
  // walks are independent and parallel execution explores identical walks.
  std::vector<SeedRun> runs(seeds);
  auto run_one = [&](std::size_t s) { runs[s] = spec.run_seed(spec.starts[s], s); };
  if (spec.options.parallel_seeds && seeds > 1) {
    ParallelFor(seeds, run_one);
  } else {
    for (std::size_t s = 0; s < seeds; ++s) run_one(s);
  }

  // Combine sequentially in seed order with a strict margin: the winner is
  // independent of thread scheduling.
  SearchResult combined;
  combined.best = runs[0].result.best;
  combined.best_fg = runs[0].result.best_fg;
  combined.best_dg = runs[0].result.best_dg;
  combined.best_cc = runs[0].result.best_cc;
  combined.moved_from_anchor = runs[0].result.moved_from_anchor;
  double combined_key = spec.combine_key(runs[0]);
  std::size_t iteration_base = 0;
  for (std::size_t s = 0; s < seeds; ++s) {
    const SeedRun& run = runs[s];
    combined.iterations += run.result.iterations;
    combined.evaluations += run.result.evaluations;
    if (spec.options.record_trace) {
      for (TracePoint point : run.trace) {
        point.iteration += iteration_base;
        combined.trace.push_back(point);
      }
      iteration_base += run.trace_span;
    }
    const double key = spec.combine_key(run);
    if (key < combined_key - kSearchEps) {
      combined.best = run.result.best;
      combined.best_fg = run.result.best_fg;
      combined.best_dg = run.result.best_dg;
      combined.best_cc = run.result.best_cc;
      combined.moved_from_anchor = run.result.moved_from_anchor;
      combined_key = key;
    }
  }
  if (spec.finalize_combined) {
    FinalizeResult(table, combined);
  }
  if (spec.emit_done) {
    if (obs::Tracer* tracer = obs::ActiveTracer()) {
      tracer->Emit(obs::TraceEvent("search.done")
                       .F("algo", spec.algo)
                       .F("seeds", seeds)
                       .F("iters", combined.iterations)
                       .F("evals", combined.evaluations)
                       .F("best_fg", combined.best_fg));
    }
  }
  return combined;
}

std::uint64_t DeriveSeedStream(std::uint64_t base, std::size_t k) {
  // SplitMix64 over a golden-ratio stride: independent streams per restart
  // that never touch the searcher's master Rng (restart 0 keeps the master
  // stream for bit-compatibility with the single-restart searchers).
  std::uint64_t state = base + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(k) + 1);
  return SplitMix64(state);
}

std::pair<std::size_t, std::size_t> RandomInterClusterPair(const Partition& partition, Rng& rng) {
  const std::size_t n = partition.switch_count();
  for (;;) {
    const std::size_t a = static_cast<std::size_t>(rng.NextIndex(n));
    const std::size_t b = static_cast<std::size_t>(rng.NextIndex(n));
    if (a != b && partition.ClusterOf(a) != partition.ClusterOf(b)) {
      return {std::min(a, b), std::max(a, b)};
    }
  }
}

bool MetropolisPolicy::Accept(double cost, Rng& rng) {
  // Short-circuit keeps RNG consumption identical to the legacy loop: one
  // NextDouble per uphill proposal only.
  return cost < kSearchEps || rng.NextDouble() < std::exp(-cost / temperature_);
}

void MetropolisPolicy::AfterProposal() {
  temperature_ = std::max(temperature_ * cooling_, floor_);
}

SampledMoveStats RunSampledMoves(Objective& objective, AcceptancePolicy& policy,
                                 std::size_t proposals, Rng& rng,
                                 const std::function<void(std::size_t)>& on_accept) {
  SampledMoveStats stats;
  for (std::size_t it = 0; it < proposals; ++it) {
    const auto [a, b] = RandomInterClusterPair(objective.partition(), rng);
    const double cost = objective.SwapCost(a, b);
    ++stats.proposals;
    if (policy.Accept(cost, rng)) {
      if (cost > kSearchEps) ++stats.uphill_accepts;
      objective.Apply(a, b);
      ++stats.accepts;
      on_accept(it);
    }
    policy.AfterProposal();
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Objective adapters.
// ---------------------------------------------------------------------------

std::size_t CountMovedFromAnchor(const Partition& partition, const Partition& anchor) {
  std::size_t moved = 0;
  for (std::size_t s = 0; s < partition.switch_count(); ++s) {
    if (partition.ClusterOf(s) != anchor.ClusterOf(s)) ++moved;
  }
  return moved;
}

TabuObjective::TabuObjective(const DistanceTable& table, const Partition& start,
                             const Partition* anchor, double migration_penalty)
    : eval_(table, start), table_(&table), anchor_(anchor) {
  const std::size_t n = start.switch_count();
  if (anchor_ != nullptr) {
    CS_CHECK(anchor_->switch_count() == n, "anchor size mismatch");
  }
  move_cost_ = anchor_ != nullptr ? migration_penalty / static_cast<double>(n) : 0.0;
  fg_scale_ = eval_.FgAfterDelta(1.0) - eval_.FgAfterDelta(0.0);
  moved_ = anchor_ != nullptr ? CountMovedFromAnchor(start, *anchor_) : 0;
}

int TabuObjective::SwapDMoved(std::size_t a, std::size_t b) const {
  if (anchor_ == nullptr) return 0;
  const std::size_t ca = eval_.partition().ClusterOf(a);
  const std::size_t cb = eval_.partition().ClusterOf(b);
  int d = 0;
  d += (cb != anchor_->ClusterOf(a)) - (ca != anchor_->ClusterOf(a));
  d += (ca != anchor_->ClusterOf(b)) - (cb != anchor_->ClusterOf(b));
  return d;
}

double TabuObjective::SwapCost(std::size_t a, std::size_t b) {
  return eval_.SwapDelta(a, b) * fg_scale_ + move_cost_ * static_cast<double>(SwapDMoved(a, b));
}

double TabuObjective::Value() const {
  return eval_.Fg() + move_cost_ * static_cast<double>(moved_);
}

double TabuObjective::TraceFg() const { return eval_.Fg(); }

double TabuObjective::AspirantValue(double cost, double current_value) {
  return current_value + cost;
}

void TabuObjective::Apply(std::size_t a, std::size_t b) {
  moved_ = static_cast<std::size_t>(static_cast<long long>(moved_) + SwapDMoved(a, b));
  eval_.ApplySwap(a, b);
}

const Partition& TabuObjective::partition() const { return eval_.partition(); }

void TabuObjective::FinalizeSeed(SearchResult& result) const {
  FinalizeResult(*table_, result);
  if (anchor_ != nullptr) {
    result.moved_from_anchor = CountMovedFromAnchor(result.best, *anchor_);
  }
}

WeightedFgObjective::WeightedFgObjective(const DistanceTable& table,
                                         const qual::WeightMatrix& weights, const Partition& start)
    : eval_(table, weights, start), table_(&table), weights_(&weights) {}

double WeightedFgObjective::SwapCost(std::size_t a, std::size_t b) {
  return eval_.FgAfterSwap(a, b);
}

double WeightedFgObjective::Value() const { return eval_.Fg(); }

double WeightedFgObjective::TraceFg() const { return eval_.Fg(); }

double WeightedFgObjective::AspirantValue(double cost, double /*current_value*/) { return cost; }

void WeightedFgObjective::Apply(std::size_t a, std::size_t b) { eval_.ApplySwap(a, b); }

const Partition& WeightedFgObjective::partition() const { return eval_.partition(); }

void WeightedFgObjective::FinalizeSeed(SearchResult& result) const {
  result.best_fg = qual::WeightedGlobalSimilarity(*table_, *weights_, result.best);
  result.best_dg = qual::WeightedGlobalDissimilarity(*table_, *weights_, result.best);
  result.best_cc = result.best_dg / result.best_fg;
}

IntensityFgObjective::IntensityFgObjective(const DistanceTable& table, const Partition& start,
                                           const std::vector<double>& cluster_intensity)
    : eval_(table, start, cluster_intensity), table_(&table), intensity_(cluster_intensity) {}

double IntensityFgObjective::SwapCost(std::size_t a, std::size_t b) {
  return eval_.SwapDelta(a, b);
}

double IntensityFgObjective::Value() const { return eval_.Fg(); }

double IntensityFgObjective::TraceFg() const { return eval_.Fg(); }

double IntensityFgObjective::AspirantValue(double cost, double /*current_value*/) {
  return eval_.FgAfterDelta(cost);
}

void IntensityFgObjective::Apply(std::size_t a, std::size_t b) { eval_.ApplySwap(a, b); }

const Partition& IntensityFgObjective::partition() const { return eval_.partition(); }

void IntensityFgObjective::FinalizeSeed(SearchResult& result) const {
  result.best_fg = qual::IntensityGlobalSimilarity(*table_, result.best, intensity_);
  result.best_dg = qual::GlobalDissimilarity(*table_, result.best);
  result.best_cc = result.best_dg / qual::GlobalSimilarity(*table_, result.best);
}

double IntraSumObjective::SwapCost(std::size_t a, std::size_t b) { return eval_->SwapDelta(a, b); }

double IntraSumObjective::Value() const { return eval_->IntraSum(); }

double IntraSumObjective::TraceFg() const { return eval_->Fg(); }

double IntraSumObjective::AspirantValue(double cost, double current_value) {
  return current_value + cost;
}

void IntraSumObjective::Apply(std::size_t a, std::size_t b) { eval_->ApplySwap(a, b); }

const Partition& IntraSumObjective::partition() const { return eval_->partition(); }

void IntraSumObjective::FinalizeSeed(SearchResult& result) const {
  FinalizeResult(*table_, result);
}

}  // namespace commsched::sched
