#include "sched/multilevel/multilevel.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/rng.h"
#include "sched/engine.h"
#include "sched/multilevel/coarsen.h"

namespace commsched::sched::ml {
namespace {

using qual::CommGraph;
using qual::SparseQapEvaluator;

/// Sparse-QAP objective for the coarsest-level SearchEngine walk. The
/// engine's Partition is over coarse *vertices*; cluster c stands for the
/// switch cluster_switch_[c] (only switches the start actually uses appear,
/// relabelled contiguously as Partition requires). Swaps that would push a
/// switch past its host capacity are inadmissible (non-finite SwapCost).
class SparseQapObjective final : public Objective {
 public:
  SparseQapObjective(const CommGraph& graph, const dist::DistanceTable& table,
                     const std::vector<std::size_t>& assignment, std::size_t capacity)
      : eval_(graph, table, assignment), capacity_(capacity) {
    // Relabel used switches as contiguous cluster ids, ordered by switch id.
    std::vector<std::size_t> used = assignment;
    std::sort(used.begin(), used.end());
    used.erase(std::unique(used.begin(), used.end()), used.end());
    cluster_switch_ = used;
    std::vector<std::size_t> cluster_of_switch(table.size(), 0);
    for (std::size_t c = 0; c < used.size(); ++c) cluster_of_switch[used[c]] = c;
    std::vector<std::size_t> cluster_of_vertex(assignment.size());
    for (std::size_t v = 0; v < assignment.size(); ++v) {
      cluster_of_vertex[v] = cluster_of_switch[assignment[v]];
    }
    partition_ = Partition(std::move(cluster_of_vertex));
  }

  double SwapCost(std::size_t a, std::size_t b) override {
    const std::size_t sa = eval_.SwitchOf(a);
    const std::size_t sb = eval_.SwitchOf(b);
    const std::size_t size_a = eval_.graph().vertex_size(a);
    const std::size_t size_b = eval_.graph().vertex_size(b);
    if (size_a != size_b) {
      if (eval_.load()[sa] - size_a + size_b > capacity_ ||
          eval_.load()[sb] - size_b + size_a > capacity_) {
        return std::numeric_limits<double>::quiet_NaN();
      }
    }
    return eval_.SwapDelta(a, b);
  }
  [[nodiscard]] double Value() const override { return eval_.Cost(); }
  [[nodiscard]] double TraceFg() const override { return eval_.NormalizedCost(); }
  [[nodiscard]] double AspirantValue(double cost, double current_value) override {
    return current_value + cost;
  }
  void Apply(std::size_t a, std::size_t b) override {
    eval_.ApplySwap(a, b);
    partition_.Swap(a, b);
  }
  [[nodiscard]] const Partition& partition() const override { return partition_; }
  void FinalizeSeed(SearchResult& result) const override {
    result.best_fg = eval_.NormalizedCost();
    result.best_dg = 0.0;
    result.best_cc = 0.0;
  }

  /// Translates an engine partition (over coarse vertices) back into a
  /// switch assignment.
  [[nodiscard]] std::vector<std::size_t> ToAssignment(const Partition& partition) const {
    std::vector<std::size_t> assignment(partition.switch_count());
    for (std::size_t v = 0; v < assignment.size(); ++v) {
      assignment[v] = cluster_switch_[partition.ClusterOf(v)];
    }
    return assignment;
  }

 private:
  SparseQapEvaluator eval_;
  Partition partition_;
  std::vector<std::size_t> cluster_switch_;  // cluster id -> switch id
  std::size_t capacity_;
};

/// Capacity-aware greedy affinity placement: vertices in decreasing
/// (size, weighted degree) order, each onto the switch minimizing the cost
/// against already-placed neighbours; ties prefer the least-loaded switch.
/// A vertex that fits nowhere lands on the least-loaded switch (transient
/// overflow, repaired by Rebalance).
std::vector<std::size_t> GreedyPlace(const CommGraph& graph,
                                     const dist::DistanceTable& table, std::size_t capacity) {
  const std::size_t n = graph.vertex_count();
  const std::size_t switches = table.size();
  std::vector<double> weighted_degree(n, 0.0);
  for (const qual::CommEdge& e : graph.edges()) {
    weighted_degree[e.u] += e.weight;
    weighted_degree[e.v] += e.weight;
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (graph.vertex_size(a) != graph.vertex_size(b)) {
      return graph.vertex_size(a) > graph.vertex_size(b);
    }
    if (weighted_degree[a] != weighted_degree[b]) {
      return weighted_degree[a] > weighted_degree[b];
    }
    return a < b;
  });

  constexpr std::size_t kUnplaced = static_cast<std::size_t>(-1);
  std::vector<std::size_t> assignment(n, kUnplaced);
  std::vector<std::size_t> load(switches, 0);
  for (std::size_t v : order) {
    const std::size_t size = graph.vertex_size(v);
    std::size_t best = kUnplaced;
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best_load = 0;
    for (std::size_t s = 0; s < switches; ++s) {
      if (load[s] + size > capacity) continue;
      double cost = 0.0;
      for (const CommGraph::Neighbor* it = graph.NeighborsBegin(v);
           it != graph.NeighborsEnd(v); ++it) {
        const std::size_t sx = assignment[it->vertex];
        if (sx == kUnplaced) continue;
        const double d = table(s, sx);
        cost += it->weight * d * d;
      }
      if (best == kUnplaced || cost < best_cost ||
          (cost == best_cost && load[s] < best_load)) {
        best = s;
        best_cost = cost;
        best_load = load[s];
      }
    }
    if (best == kUnplaced) {
      // Nothing fits: overflow onto the least-loaded switch.
      best = static_cast<std::size_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
    }
    assignment[v] = best;
    load[best] += size;
  }
  return assignment;
}

/// Drains overloaded switches by moving their cheapest-to-move vertices to
/// switches with room. Always succeeds at the finest level (unit sizes +
/// total <= switches * capacity); at coarse levels it may leave residual
/// overflow, which projection hands to the finer level to fix.
void Rebalance(SparseQapEvaluator& eval, std::size_t capacity) {
  const CommGraph& graph = eval.graph();
  const std::size_t n = graph.vertex_count();
  const std::size_t switches = eval.load().size();
  for (std::size_t guard = 0; guard < 2 * n + 16; ++guard) {
    std::size_t overloaded = switches;
    for (std::size_t s = 0; s < switches; ++s) {
      if (eval.load()[s] > capacity &&
          (overloaded == switches || eval.load()[s] > eval.load()[overloaded])) {
        overloaded = s;
      }
    }
    if (overloaded == switches) return;
    std::size_t best_vertex = n;
    std::size_t best_target = switches;
    double best_delta = std::numeric_limits<double>::infinity();
    for (std::size_t v = 0; v < n; ++v) {
      if (eval.SwitchOf(v) != overloaded) continue;
      const std::size_t size = graph.vertex_size(v);
      for (std::size_t s = 0; s < switches; ++s) {
        if (s == overloaded || eval.load()[s] + size > capacity) continue;
        const double delta = eval.MoveDelta(v, s);
        if (delta < best_delta) {
          best_delta = delta;
          best_vertex = v;
          best_target = s;
        }
      }
    }
    if (best_vertex == n) return;  // nothing fits anywhere — defer to a finer level
    eval.ApplyMove(best_vertex, best_target);
  }
}

/// Budgeted edge-local refinement: passes over the edge list trying, for
/// each cross-switch edge, the swap of its endpoints and the two single-
/// vertex moves; applies the best strictly-improving feasible option.
/// Returns applied-move count. Cost is monotonically non-increasing.
std::size_t RefineLevel(SparseQapEvaluator& eval, std::size_t capacity, std::size_t budget,
                        std::size_t rounds) {
  const CommGraph& graph = eval.graph();
  std::size_t applied = 0;
  for (std::size_t round = 0; round < rounds && applied < budget; ++round) {
    std::size_t applied_this_round = 0;
    for (const qual::CommEdge& e : graph.edges()) {
      if (applied >= budget) break;
      const std::size_t su = eval.SwitchOf(e.u);
      const std::size_t sv = eval.SwitchOf(e.v);
      if (su == sv) continue;
      const std::size_t size_u = graph.vertex_size(e.u);
      const std::size_t size_v = graph.vertex_size(e.v);

      double best_delta = -kSearchEps;
      int best_op = -1;  // 0 = swap, 1 = move u->sv, 2 = move v->su
      if (size_u == size_v || (eval.load()[su] - size_u + size_v <= capacity &&
                               eval.load()[sv] - size_v + size_u <= capacity)) {
        const double delta = eval.SwapDelta(e.u, e.v);
        if (delta < best_delta) {
          best_delta = delta;
          best_op = 0;
        }
      }
      if (eval.load()[sv] + size_u <= capacity) {
        const double delta = eval.MoveDelta(e.u, sv);
        if (delta < best_delta) {
          best_delta = delta;
          best_op = 1;
        }
      }
      if (eval.load()[su] + size_v <= capacity) {
        const double delta = eval.MoveDelta(e.v, su);
        if (delta < best_delta) {
          best_delta = delta;
          best_op = 2;
        }
      }
      if (best_op < 0) continue;
      if (best_op == 0) {
        eval.ApplySwap(e.u, e.v);
      } else if (best_op == 1) {
        eval.ApplyMove(e.u, sv);
      } else {
        eval.ApplyMove(e.v, su);
      }
      ++applied;
      ++applied_this_round;
    }
    if (applied_this_round == 0) break;
  }
  return applied;
}

std::size_t AutoCoarsenTarget(std::size_t switches, std::size_t engine_cap) {
  const std::size_t target = std::max<std::size_t>(64, std::min(2 * switches, engine_cap));
  return target;
}

}  // namespace

MultilevelResult MapMultilevel(const CommGraph& processes, const dist::DistanceTable& distances,
                               std::size_t hosts_per_switch, const MultilevelOptions& options) {
  const std::size_t switches = distances.size();
  if (switches == 0) throw ConfigError("multilevel mapping needs at least one switch");
  if (hosts_per_switch == 0) throw ConfigError("hosts per switch must be >= 1");
  if (options.seeds == 0) throw ConfigError("multilevel seeds must be >= 1");
  if (options.refine_rounds == 0) throw ConfigError("refine rounds must be >= 1");
  const std::size_t capacity = hosts_per_switch;
  if (processes.total_vertex_size() > switches * capacity) {
    throw ConfigError("workload of " + std::to_string(processes.total_vertex_size()) +
                      " processes exceeds capacity " + std::to_string(switches * capacity));
  }
  for (std::size_t v = 0; v < processes.vertex_count(); ++v) {
    if (processes.vertex_size(v) > capacity) {
      throw ConfigError("process vertex larger than a switch's host capacity");
    }
  }

  MultilevelResult result;

  // 1. Coarsen.
  CoarsenOptions coarsen;
  coarsen.target_vertices = options.coarsen_target != 0
                                ? options.coarsen_target
                                : AutoCoarsenTarget(switches, options.engine_max_vertices);
  coarsen.max_vertex_size = capacity;
  coarsen.rng_seed = options.rng_seed;
  const std::vector<Contraction> hierarchy = Coarsen(processes, coarsen);
  result.levels = hierarchy.size();
  const CommGraph& coarsest = hierarchy.empty() ? processes : hierarchy.back().coarse;
  result.coarsest_vertices = coarsest.vertex_count();

  // 2. Map the coarsest graph: greedy placement, then engine refinement.
  std::vector<std::size_t> assignment = GreedyPlace(coarsest, distances, capacity);
  {
    SparseQapEvaluator greedy_eval(coarsest, distances, assignment);
    Rebalance(greedy_eval, capacity);
    assignment = greedy_eval.switch_of_vertex();

    LevelStats stats;
    stats.vertices = coarsest.vertex_count();
    stats.edges = coarsest.edge_count();
    stats.cost_before = greedy_eval.Cost();
    stats.cost_after = stats.cost_before;

    const bool engine_feasible =
        coarsest.vertex_count() >= 2 && switches >= 2 &&
        coarsest.vertex_count() <= options.engine_max_vertices &&
        *std::max_element(greedy_eval.load().begin(), greedy_eval.load().end()) <= capacity;
    if (engine_feasible) {
      EngineOptions engine_options;
      engine_options.seeds = options.seeds;
      engine_options.max_iterations_per_seed =
          options.engine_iterations != 0
              ? options.engine_iterations
              : std::clamp<std::size_t>(2 * coarsest.vertex_count(), 20, 200);
      const SearchEngine engine("multilevel", engine_options, ScanRules::TabuMargin());

      // Per-seed starts derived up front: seed 0 is the greedy placement,
      // later seeds perturb it with feasible random swaps.
      double best_cost = std::numeric_limits<double>::infinity();
      std::vector<std::size_t> best_assignment = assignment;
      for (std::size_t k = 0; k < options.seeds; ++k) {
        std::vector<std::size_t> start = assignment;
        if (k > 0) {
          Rng rng(DeriveSeedStream(options.rng_seed, k));
          const std::size_t attempts = coarsest.vertex_count();
          for (std::size_t t = 0; t < attempts; ++t) {
            const std::size_t a = rng.NextIndex(coarsest.vertex_count());
            const std::size_t b = rng.NextIndex(coarsest.vertex_count());
            if (a == b || start[a] == start[b] ||
                coarsest.vertex_size(a) != coarsest.vertex_size(b)) {
              continue;
            }
            std::swap(start[a], start[b]);
          }
        }
        SparseQapObjective objective(coarsest, distances, start, capacity);
        const SeedRun run = engine.RunSeed(objective, k);
        engine.FlushSeedObservability(run, k);
        ++result.engine_seeds;
        result.engine_evaluations += run.result.evaluations;
        if (run.best_value < best_cost - kSearchEps) {
          best_cost = run.best_value;
          best_assignment = objective.ToAssignment(run.result.best);
          result.engine_iterations = run.result.iterations;
        }
      }
      assignment = std::move(best_assignment);
      stats.cost_after = best_cost;
      stats.moves = result.engine_iterations;
    }
    result.level_stats.push_back(stats);
  }

  // 3. Uncoarsen: project, rebalance residual overflow, refine.
  for (std::size_t j = hierarchy.size(); j-- > 0;) {
    const CommGraph& fine = j == 0 ? processes : hierarchy[j - 1].coarse;
    const Contraction& contraction = hierarchy[j];
    std::vector<std::size_t> fine_assignment(fine.vertex_count());
    for (std::size_t v = 0; v < fine.vertex_count(); ++v) {
      fine_assignment[v] = assignment[contraction.coarse_of_fine[v]];
    }
    SparseQapEvaluator eval(fine, distances, std::move(fine_assignment));
    Rebalance(eval, capacity);

    LevelStats stats;
    stats.vertices = fine.vertex_count();
    stats.edges = fine.edge_count();
    stats.cost_before = eval.Cost();
    const std::size_t budget =
        options.refine_budget != 0
            ? options.refine_budget
            : std::max<std::size_t>(fine.vertex_count(), 1024);
    stats.moves = RefineLevel(eval, capacity, budget, options.refine_rounds);
    stats.cost_after = eval.Cost();
    result.level_stats.push_back(stats);
    assignment = eval.switch_of_vertex();
  }

  // Refine in place when no coarsening happened at all (small inputs).
  if (hierarchy.empty()) {
    SparseQapEvaluator eval(processes, distances, std::move(assignment));
    Rebalance(eval, capacity);
    const std::size_t budget =
        options.refine_budget != 0
            ? options.refine_budget
            : std::max<std::size_t>(processes.vertex_count(), 1024);
    result.level_stats.back().moves += RefineLevel(eval, capacity, budget, options.refine_rounds);
    result.level_stats.back().cost_after = eval.Cost();
    assignment = eval.switch_of_vertex();
  }

  const SparseQapEvaluator final_eval(processes, distances, assignment);
  result.switch_of_process = std::move(assignment);
  result.cost = final_eval.Cost();
  result.normalized = final_eval.NormalizedCost();
  result.max_load =
      *std::max_element(final_eval.load().begin(), final_eval.load().end());
  return result;
}

}  // namespace commsched::sched::ml
