#include "sched/multilevel/coarsen.h"

#include <numeric>

#include "common/rng.h"

namespace commsched::sched::ml {

std::vector<std::size_t> HeavyEdgeMatching(const qual::CommGraph& graph,
                                           const MatchingOptions& options) {
  const std::size_t n = graph.vertex_count();
  std::vector<std::size_t> match(n);
  std::iota(match.begin(), match.end(), std::size_t{0});

  Rng rng(options.rng_seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.Shuffle(order);

  for (std::size_t v : order) {
    if (match[v] != v) continue;  // already matched
    std::size_t best = v;
    double best_weight = 0.0;
    for (const qual::CommGraph::Neighbor* it = graph.NeighborsBegin(v);
         it != graph.NeighborsEnd(v); ++it) {
      const std::size_t u = it->vertex;
      if (match[u] != u) continue;
      if (graph.vertex_size(v) + graph.vertex_size(u) > options.max_vertex_size) continue;
      if (it->weight > best_weight ||
          (it->weight == best_weight && best != v && u < best)) {
        best = u;
        best_weight = it->weight;
      }
    }
    if (best != v) {
      match[v] = best;
      match[best] = v;
    }
  }
  return match;
}

Contraction Contract(const qual::CommGraph& graph, const std::vector<std::size_t>& match) {
  const std::size_t n = graph.vertex_count();
  CS_CHECK(match.size() == n, "matching length must equal vertex count");

  Contraction result;
  result.coarse_of_fine.assign(n, static_cast<std::size_t>(-1));
  std::vector<std::size_t> coarse_sizes;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t partner = match[v];
    CS_CHECK(partner < n && match[partner] == v, "matching is not an involution");
    if (partner < v) continue;  // the smaller endpoint creates the super-vertex
    const std::size_t id = coarse_sizes.size();
    result.coarse_of_fine[v] = id;
    std::size_t size = graph.vertex_size(v);
    if (partner != v) {
      result.coarse_of_fine[partner] = id;
      size += graph.vertex_size(partner);
    }
    coarse_sizes.push_back(size);
  }

  std::vector<qual::CommEdge> coarse_edges;
  coarse_edges.reserve(graph.edge_count());
  result.absorbed_weight = 0.0;
  for (const qual::CommEdge& e : graph.edges()) {
    const std::size_t cu = result.coarse_of_fine[e.u];
    const std::size_t cv = result.coarse_of_fine[e.v];
    if (cu == cv) {
      result.absorbed_weight += e.weight;
    } else {
      coarse_edges.push_back({cu, cv, e.weight});
    }
  }
  // coarse_sizes.size() must be read before the vector is moved from: the
  // two argument expressions are unsequenced.
  const std::size_t coarse_count = coarse_sizes.size();
  result.coarse = qual::CommGraph::FromEdges(coarse_count, std::move(coarse_edges),
                                             std::move(coarse_sizes));
  return result;
}

std::vector<Contraction> Coarsen(const qual::CommGraph& graph, const CoarsenOptions& options) {
  std::vector<Contraction> levels;
  const qual::CommGraph* current = &graph;
  std::uint64_t state = options.rng_seed;
  while (current->vertex_count() > options.target_vertices &&
         levels.size() < options.max_levels) {
    MatchingOptions matching;
    matching.max_vertex_size = options.max_vertex_size;
    matching.rng_seed = SplitMix64(state);
    const std::vector<std::size_t> match = HeavyEdgeMatching(*current, matching);
    Contraction level = Contract(*current, match);
    const double shrink = static_cast<double>(level.coarse.vertex_count()) /
                          static_cast<double>(current->vertex_count());
    if (shrink > options.min_shrink) break;  // matching stalled
    levels.push_back(std::move(level));
    current = &levels.back().coarse;
  }
  return levels;
}

}  // namespace commsched::sched::ml
