// Multilevel hierarchical mapping (DESIGN.md §13): coarsen -> map -> refine.
//
// Scales the mapping search to 10^5+ processes where the dense searchers'
// O(N²)-per-move neighbourhood dies. The pipeline follows Schulz & Träff's
// sparse-QAP recipe:
//
//   1. Coarsen the process communication graph by repeated heavy-edge
//      matching + contraction (coarsen.h) until it is small enough for the
//      exact searchers, capping super-vertex sizes at the per-switch host
//      capacity so feasibility survives every level.
//   2. Map the coarsest graph: capacity-aware greedy affinity placement,
//      then — when the coarse graph is small enough — multi-start tabu
//      refinement through the unchanged SearchEngine, speaking to the
//      sparse evaluator via the standard Objective interface (capacity-
//      violating swaps are inadmissible, i.e. SwapCost = NaN).
//   3. Uncoarsen level by level: project the assignment to the finer graph
//      (loads are invariant under projection), then run a budgeted
//      edge-local refinement pass — only strictly improving swaps/moves are
//      applied, so the per-level cost is monotonically non-increasing (the
//      invariant the multilevel tests assert).
#pragma once

#include <cstdint>
#include <vector>

#include "distance/distance_table.h"
#include "quality/comm_graph.h"
#include "quality/sparse.h"

namespace commsched::sched::ml {

struct MultilevelOptions {
  /// Coarsening stops at this many vertices. 0 = auto:
  /// max(64, min(2 * switches, 512)), clamped to the SearchEngine's
  /// practical scan size.
  std::size_t coarsen_target = 0;
  /// Max applied refinement swaps/moves per level. 0 = auto (the level's
  /// vertex count, at least 1024).
  std::size_t refine_budget = 0;
  /// Max refinement passes over the edge list per level (a pass that
  /// applies nothing ends refinement early).
  std::size_t refine_rounds = 4;
  /// Multi-start seeds of the coarsest-level engine search.
  std::size_t seeds = 4;
  /// Engine iterations per coarsest seed. 0 = auto
  /// (clamp(2 * coarse vertices, 20, 200)).
  std::size_t engine_iterations = 0;
  /// The full-scan SearchEngine only runs when the coarsest graph has at
  /// most this many vertices (above it the greedy placement + per-level
  /// refinement carry the quality).
  std::size_t engine_max_vertices = 512;
  std::uint64_t rng_seed = 1;
};

/// One uncoarsening level's refinement ledger (index 0 = coarsest).
struct LevelStats {
  std::size_t vertices = 0;
  std::size_t edges = 0;
  double cost_before = 0.0;  // after projection (+ any forced rebalance)
  double cost_after = 0.0;   // after refinement; <= cost_before always
  std::size_t moves = 0;     // applied refinement swaps/moves
};

struct MultilevelResult {
  /// Process vertex -> switch id.
  std::vector<std::size_t> switch_of_process;
  /// Final sparse-QAP cost Σ w·T² and its F_G-style normalization.
  double cost = 0.0;
  double normalized = 0.0;
  std::size_t levels = 0;             // contraction steps taken
  std::size_t coarsest_vertices = 0;
  std::size_t max_load = 0;           // busiest switch's process count
  std::vector<LevelStats> level_stats;  // coarsest first, finest last
  std::size_t engine_seeds = 0;       // coarsest-level engine seeds run
  std::size_t engine_iterations = 0;  // winning seed's applied moves
  std::size_t engine_evaluations = 0;  // summed over seeds
};

/// Maps `processes` (vertex sizes = process counts) onto the switches of
/// `distances`, each hosting at most `hosts_per_switch` processes. Throws
/// ConfigError when the processes cannot fit, a vertex exceeds the per-
/// switch capacity, or options are degenerate (seeds == 0).
[[nodiscard]] MultilevelResult MapMultilevel(const qual::CommGraph& processes,
                                             const dist::DistanceTable& distances,
                                             std::size_t hosts_per_switch,
                                             const MultilevelOptions& options = {});

}  // namespace commsched::sched::ml
