// Coarsening for the multilevel mapping pipeline (DESIGN.md §13).
//
// Heavy-edge matching + contraction in the KaHIP/Scotch tradition: pair
// each vertex with its heaviest-weight unmatched neighbour (subject to a
// size cap so every super-vertex still fits on one switch), merge matched
// pairs, and repeat until the graph is small enough for the SearchEngine to
// map directly. The invariant tests lean on:
//
//   coarse.TotalEdgeWeight() + absorbed_weight == fine.TotalEdgeWeight()
//
// — contraction moves weight between the edge list and the absorbed pool,
// it never creates or destroys it — and vertex sizes are conserved exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "quality/comm_graph.h"

namespace commsched::sched::ml {

struct MatchingOptions {
  /// A matched pair's combined size must not exceed this (so a super-vertex
  /// can always be hosted by a single switch).
  std::size_t max_vertex_size = static_cast<std::size_t>(-1);
  /// Seed of the random visit order (deterministic for a fixed seed).
  std::uint64_t rng_seed = 1;
};

/// Heavy-edge matching: match[v] == partner, or v when unmatched. Visits
/// vertices in a seeded random order; each unmatched vertex grabs its
/// heaviest unmatched neighbour whose combined size fits the cap (ties
/// break toward the smaller vertex id).
[[nodiscard]] std::vector<std::size_t> HeavyEdgeMatching(const qual::CommGraph& graph,
                                                         const MatchingOptions& options);

/// One contraction step.
struct Contraction {
  qual::CommGraph coarse;
  /// Fine vertex -> coarse vertex (coarse ids are contiguous, ordered by the
  /// smallest fine member).
  std::vector<std::size_t> coarse_of_fine;
  /// Weight of fine edges internal to merged pairs (dropped from the coarse
  /// edge list; conserved by the invariant above).
  double absorbed_weight = 0.0;
};

/// Contracts matched pairs into super-vertices: sizes add, parallel coarse
/// edges merge by weight, intra-pair edges move to absorbed_weight.
[[nodiscard]] Contraction Contract(const qual::CommGraph& graph,
                                   const std::vector<std::size_t>& match);

struct CoarsenOptions {
  /// Stop once the coarse graph has at most this many vertices.
  std::size_t target_vertices = 256;
  std::size_t max_vertex_size = static_cast<std::size_t>(-1);
  std::size_t max_levels = 64;
  /// Stop when a level shrinks by less than this factor (matching stalls on
  /// graphs whose vertices are all near the size cap).
  double min_shrink = 0.98;
  std::uint64_t rng_seed = 1;
};

/// The full coarsening hierarchy. levels[0] contracts the input graph;
/// levels.back().coarse is the coarsest graph. Empty when the input is
/// already at or below target_vertices.
[[nodiscard]] std::vector<Contraction> Coarsen(const qual::CommGraph& graph,
                                               const CoarsenOptions& options);

}  // namespace commsched::sched::ml
