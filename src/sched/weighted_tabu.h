// Tabu search driven by the *weighted* global similarity F_G^w
// (quality/weighted.h) — the scheduling technique with measured or
// estimated communication requirements instead of the paper's
// all-equal assumption.
//
// Note: unlike the unweighted case, fixed cluster sizes do NOT make
// minimizing F_G^w equivalent to maximizing C_c^w (the intracluster weight
// mass moves with the mapping), but F_G^w remains the natural target: it is
// the weighted mean squared distance actually experienced by the traffic.
#pragma once

#include "quality/weighted.h"
#include "sched/tabu.h"

namespace commsched::sched {

/// Same schedule as TabuSearch (seeds / iteration budget / tenure / repeat
/// stop), with F_G^w as the target. The returned best_fg/best_dg/best_cc are
/// the *weighted* coefficients of the best mapping.
[[nodiscard]] SearchResult WeightedTabuSearch(const DistanceTable& table,
                                              const qual::WeightMatrix& weights,
                                              const std::vector<std::size_t>& cluster_sizes,
                                              const TabuOptions& options = {});

/// Tabu search on the application-intensity similarity F_G^λ: cluster c's
/// intracluster distances count with weight cluster_intensity[c]. This is
/// the placement search for workloads whose applications have *different*
/// communication intensities (estimated e.g. by sim::EstimateAppIntensities)
/// — the applications with higher requirements get the
/// highest-bandwidth network regions, exactly the paper's motivation.
/// best_fg is F_G^λ; best_dg/best_cc are the unweighted eq. (5) values of
/// the winning mapping (for comparability with the paper's tables).
[[nodiscard]] SearchResult IntensityTabuSearch(const DistanceTable& table,
                                               const std::vector<std::size_t>& cluster_sizes,
                                               const std::vector<double>& cluster_intensity,
                                               const TabuOptions& options = {});

}  // namespace commsched::sched
