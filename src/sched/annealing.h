// Simulated annealing and Genetic Simulated Annealing baselines (§2).
//
// The paper studied these against the Tabu variant and reports Tabu gave
// equal-or-better clustering coefficients at lower computational cost; these
// implementations exist to reproduce that comparison (bench/tab_heuristic_compare).
#pragma once

#include "sched/search.h"

namespace commsched::sched {

struct AnnealingOptions {
  std::size_t iterations = 20000;   // proposed moves
  double initial_temperature = 0.0; // 0 = auto-calibrate from random moves
  double cooling = 0.999;           // geometric factor per move
  double final_temperature_ratio = 1e-4;  // floor relative to initial T
  std::uint64_t rng_seed = 1;
  bool record_trace = false;
  /// Independent annealing walks; the best final mapping wins. Restart 0
  /// reproduces the single-walk search bit-for-bit; extra restarts draw
  /// from derived RNG streams (engine.h DeriveSeedStream).
  std::size_t restarts = 1;
  bool parallel_seeds = false;  // run restarts on a thread pool
};

/// Classic single-walk simulated annealing over inter-cluster swaps.
[[nodiscard]] SearchResult SimulatedAnnealing(const DistanceTable& table,
                                              const std::vector<std::size_t>& cluster_sizes,
                                              const AnnealingOptions& options = {});

struct GeneticAnnealingOptions {
  std::size_t population = 20;
  std::size_t generations = 200;
  std::size_t moves_per_individual = 4;  // SA moves each individual tries per generation
  double initial_temperature = 0.0;      // 0 = auto-calibrate
  double cooling = 0.97;                 // per generation
  double elite_fraction = 0.25;          // survivors copied over the worst
  double crossover_probability = 0.5;    // chance a replacement is a crossover child
  std::uint64_t rng_seed = 1;
  /// Independent population runs; the best mapping over all runs wins.
  /// Run 0 reproduces the single-run search bit-for-bit.
  std::size_t restarts = 1;
  bool parallel_seeds = false;  // run restarts on a thread pool
};

/// Genetic Simulated Annealing: a population of mappings, each mutated with
/// SA acceptance; each generation the worst individuals are replaced by
/// copies/crossovers of the best ("chromosome" = mapping, as in [7, 22]).
[[nodiscard]] SearchResult GeneticSimulatedAnnealing(const DistanceTable& table,
                                                     const std::vector<std::size_t>& cluster_sizes,
                                                     const GeneticAnnealingOptions& options = {});

}  // namespace commsched::sched
