// CommAwareScheduler — the library's main entry point.
//
// Ties the pipeline together: topology + routing -> table of equivalent
// distances -> Tabu search for the best network partition -> process
// mapping. This is the "communication-aware task scheduling strategy" the
// paper proposes for situations where the interconnect, not the CPUs, is
// the system bottleneck.
#pragma once

#include <memory>

#include "distance/distance_table.h"
#include "quality/comm_graph.h"
#include "routing/routing.h"
#include "sched/multilevel/multilevel.h"
#include "sched/tabu.h"
#include "workload/workload.h"

namespace commsched::sched {

using work::ProcessMapping;
using work::Workload;

/// Everything a caller needs to know about a scheduling decision.
struct ScheduleOutcome {
  ProcessMapping mapping;   // process -> host assignment
  Partition partition;      // induced network partition
  double fg = 0.0;          // global similarity (eq. 2)
  double dg = 0.0;          // global dissimilarity (eq. 5)
  double cc = 0.0;          // clustering coefficient D_G / F_G
  SearchResult search;      // raw search diagnostics (iterations, trace, ...)
};

class CommAwareScheduler {
 public:
  /// Builds the distance table from the routing function (the graph and
  /// routing must outlive the scheduler).
  CommAwareScheduler(const topo::SwitchGraph& graph, const route::Routing& routing,
                     bool parallel_table_build = true);

  /// Uses a precomputed table (must match the graph's switch count).
  CommAwareScheduler(const topo::SwitchGraph& graph, DistanceTable table);

  [[nodiscard]] const DistanceTable& distance_table() const { return table_; }
  [[nodiscard]] const topo::SwitchGraph& graph() const { return *graph_; }

  /// Finds a near-optimal mapping for the workload via Tabu search.
  /// The workload must satisfy the paper's assumptions (ValidateFor).
  /// options.parallel_seeds runs the search's restarts on a thread pool via
  /// the shared engine (sched/engine.h) — results are identical either way.
  [[nodiscard]] ScheduleOutcome Schedule(const Workload& workload,
                                         const TabuOptions& options = {}) const;

  /// Evaluates an existing switch-aligned mapping (F_G, D_G, C_c) — used to
  /// score random baselines the same way the scheduler's result is scored.
  [[nodiscard]] ScheduleOutcome Evaluate(const Workload& workload,
                                         const ProcessMapping& mapping) const;

  /// Maps a sparse process communication graph through the multilevel
  /// coarsen/map/uncoarsen pipeline (DESIGN.md §13) — the scalable path for
  /// workloads far beyond the dense searchers' reach. Each switch hosts at
  /// most graph().hosts_per_switch() processes.
  [[nodiscard]] ml::MultilevelResult ScheduleProcesses(
      const qual::CommGraph& processes, const ml::MultilevelOptions& options = {}) const;

 private:
  const topo::SwitchGraph* graph_;
  DistanceTable table_;
};

}  // namespace commsched::sched
