#include "sched/search.h"

#include <sstream>

namespace commsched::sched {

void FinalizeResult(const DistanceTable& table, SearchResult& result) {
  result.best_fg = qual::GlobalSimilarity(table, result.best);
  result.best_dg = qual::GlobalDissimilarity(table, result.best);
  CS_CHECK(result.best_fg > 0.0, "degenerate F_G");
  result.best_cc = result.best_dg / result.best_fg;
}

std::string FormatSearchResult(const SearchResult& result) {
  std::ostringstream out;
  out << "partition: " << result.best.ToString() << "\n";
  out << "F_G = " << result.best_fg << ", D_G = " << result.best_dg
      << ", C_c = " << result.best_cc << "\n";
  out << "moves: " << result.iterations << ", evaluations: " << result.evaluations << "\n";
  return out.str();
}

std::vector<std::pair<std::size_t, std::size_t>> InterClusterPairs(const Partition& partition) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  const std::size_t n = partition.switch_count();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (partition.ClusterOf(a) != partition.ClusterOf(b)) {
        pairs.emplace_back(a, b);
      }
    }
  }
  return pairs;
}

}  // namespace commsched::sched
