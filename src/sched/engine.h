// Unified search core for every mapping searcher (§4.2 and variants).
//
// All searchers in this module minimize some objective over the space Ω of
// fixed-size network partitions by repeated inter-cluster swaps. Before this
// engine existed each searcher carried its own copy of the neighbourhood
// scan, tabu/escape bookkeeping, trace emission, and observability flush;
// now a searcher is just
//
//   * an Objective — how much a swap costs, what the current mapping is
//     worth, and how to finalize a SearchResult, plus
//   * a ScanRules preset — which comparison rule its legacy loop used
//     (the presets exist for bit-exact parity, see below), plus
//   * a MultiStartSpec — how many seeds, how to build each start, and how
//     seed results combine.
//
// Determinism rules (enforced by tests/test_engine_parity.cpp):
//   1. All starts and RNG streams are derived *up front*, before any seed
//      runs, so parallel and sequential execution explore identical walks.
//   2. A seed's walk never draws randomness shared with another seed; extra
//      streams come from DeriveSeedStream(base_seed, k).
//   3. Seed results are combined sequentially in seed order with a strict
//      kEps margin, so the winner does not depend on thread scheduling.
//
// The comparison rules are deliberately *not* unified: the legacy loops
// differed in how candidate swaps were compared (margin vs. strict, delta
// space vs. absolute value), and those differences are observable in which
// mapping wins a tie. ScanRules pins each searcher to its historical rule
// so ported searchers stay bit-identical to the pre-refactor code.
//
// To add a new objective: implement Objective over an incremental evaluator
// (SwapCost must be O(cluster size), not a full recompute), pick the
// ScanRules preset whose tie-breaking you want, and drive it either through
// SearchEngine::RunSeed (one walk) or RunMultiStart (seeded restarts with
// optional ThreadPool parallelism).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "quality/weighted.h"
#include "sched/search.h"

namespace commsched::sched {

/// Strict-improvement margin shared by every searcher: two objective values
/// closer than this are "the same" (tie → keep the incumbent).
inline constexpr double kSearchEps = 1e-12;

/// Engine-level knobs common to all scan searchers. Mirrors the searcher
/// option structs (TabuOptions et al.), which stay the public surface.
/// SearchEngine's constructor throws ConfigError when seeds or
/// max_iterations_per_seed is 0 (a zero used to silently produce an empty
/// no-op result).
struct EngineOptions {
  std::size_t seeds = 10;
  std::size_t max_iterations_per_seed = 20;
  std::size_t local_min_repeats = 3;  // stop after revisiting a minimum
  std::size_t tenure = 4;             // tabu duration of escape moves
  bool aspiration = true;             // tabu override when beating the best
  bool record_trace = false;
  bool parallel_seeds = false;        // ThreadPool over seeds
};

/// A search objective over partitions. The engine only ever talks to the
/// walk through this interface; adapters wrap the incremental evaluators
/// (qual::SwapEvaluator, WeightedSwapEvaluator, IntensitySwapEvaluator) and
/// the migration-anchored penalty.
class Objective {
 public:
  virtual ~Objective() = default;

  /// Cost of swapping switches (a, b), in this objective's comparison
  /// space: a delta for delta-space objectives, the absolute post-swap
  /// value for value-space ones (ScanRules::Down picks the interpretation).
  /// Return a non-finite value to mark the swap inadmissible (e.g. the
  /// repair objective's migration budget).
  virtual double SwapCost(std::size_t a, std::size_t b) = 0;

  /// Current value of the mapping in the comparison space (used for
  /// best-so-far tracking and local-minimum detection).
  [[nodiscard]] virtual double Value() const = 0;

  /// F_G of the current mapping, for TracePoints and trace events. May
  /// differ from Value() (e.g. the anchored objective adds a migration
  /// term; annealing walks compare raw intra-cluster sums).
  [[nodiscard]] virtual double TraceFg() const = 0;

  /// Value the mapping would have after a swap of cost `cost`, compared
  /// against the best-so-far for aspiration. Kept virtual because the
  /// legacy loops disagreed (plain tabu: current + cost; intensity tabu:
  /// FgAfterDelta(cost); weighted tabu: cost itself).
  [[nodiscard]] virtual double AspirantValue(double cost, double current_value) = 0;

  /// Applies the swap and updates any internal bookkeeping.
  virtual void Apply(std::size_t a, std::size_t b) = 0;

  [[nodiscard]] virtual const Partition& partition() const = 0;

  /// Fills best_fg / best_dg / best_cc (and any extra fields) of a finished
  /// seed result from result.best.
  virtual void FinalizeSeed(SearchResult& result) const = 0;
};

/// Candidate-comparison rules of the neighbourhood scan. Each preset
/// reproduces one legacy loop's tie-breaking exactly.
struct ScanRules {
  enum class Down {
    kDeltaMargin,  // init 0; replace when cost < best - kEps (tabu, itabu)
    kDeltaStrict,  // init strict_init; replace when cost < best (sd, repair)
    kValueStrict,  // init current - kEps; replace when cost < best (wtabu)
  };
  Down down = Down::kDeltaMargin;
  double strict_init = 0.0;  // initial threshold for kDeltaStrict
  bool allow_escape = true;  // false: stop at the first local minimum
  bool use_tabu = true;      // maintain the tabu list + aspiration
  bool track_best = true;    // false: the walk's final mapping is its result

  static ScanRules TabuMargin();           // plain & intensity tabu
  static ScanRules ValueDescent();         // weighted tabu
  static ScanRules GreedyDescent();        // steepest descent
  static ScanRules GreedyGain(double strict_init);  // repair refinement
};

/// One seed's finished walk.
struct SeedRun {
  SearchResult result;            // finalized per-seed result
  std::vector<TracePoint> trace;  // local iteration numbers (base 0)
  double best_value = 0.0;        // walk-space best, for combining
  std::size_t trace_span = 0;     // iteration numbers the trace occupies
  std::uint64_t tabu_hits = 0;
  std::uint64_t aspirations = 0;
  std::uint64_t escapes = 0;
};

/// The neighbourhood-scan walk: owns candidate scanning, the tabu list and
/// aspiration, local-minimum escape/repeat-stop logic, TracePoint recording,
/// and span/trace-event emission under `algo`'s name.
class SearchEngine {
 public:
  SearchEngine(std::string algo, const EngineOptions& options, const ScanRules& rules);

  /// Runs one walk from the objective's current mapping. Emits
  /// search.restart / search.move / search.local_min trace events and
  /// "<algo>.seed" / "<algo>.iter" spans; does NOT flush counters (call
  /// FlushSeedObservability so batched flushing stays one registry touch
  /// per seed).
  SeedRun RunSeed(Objective& objective, std::size_t seed_index) const;

  /// The single per-seed observability flush shared by every searcher:
  /// search.<algo>.{seeds,moves,evaluations,tabu_hits,aspirations,escapes},
  /// the seed_iters histogram, and the search.seed_done trace event.
  void FlushSeedObservability(const SeedRun& run, std::size_t seed_index) const;

  [[nodiscard]] const EngineOptions& options() const { return options_; }
  [[nodiscard]] const std::string& algo() const { return algo_; }

 private:
  std::string algo_;
  EngineOptions options_;
  ScanRules rules_;
  std::string timer_name_;      // "search.<algo>.seed"
  std::string seed_span_name_;  // "<algo>.seed"
  std::string iter_span_name_;  // "<algo>.iter"
};

/// Multi-start driver: how seeds are produced and combined.
struct MultiStartSpec {
  std::string algo;
  EngineOptions options;
  /// One start per seed, derived up front (determinism rule 1).
  std::vector<Partition> starts;
  /// Runs one seed (usually SearchEngine::RunSeed over a fresh Objective
  /// plus FlushSeedObservability). Must not touch shared mutable state.
  std::function<SeedRun(const Partition& start, std::size_t seed)> run_seed;
  /// Comparison key of a finished seed; lower wins by a strict kEps margin,
  /// ties keep the earlier seed.
  std::function<double(const SeedRun&)> combine_key;
  /// Recompute best_fg/dg/cc of the winner from its partition. Weighted
  /// objectives set this false and carry their own finalized values.
  bool finalize_combined = true;
  /// Emit the search.done summary event.
  bool emit_done = true;
};

/// Runs every seed (in parallel when options.parallel_seeds), then combines
/// results sequentially in seed order — identical output either way.
SearchResult RunMultiStart(const DistanceTable& table, const MultiStartSpec& spec);

/// Independent per-restart RNG stream: restart k of a searcher seeded with
/// `base` draws from Rng(DeriveSeedStream(base, k)). Restart 0 of the
/// legacy searchers keeps the master stream instead (bit-compat).
[[nodiscard]] std::uint64_t DeriveSeedStream(std::uint64_t base, std::size_t k);

/// Uniform random unordered pair of switches in different clusters (the
/// proposal kernel of the annealing searchers).
std::pair<std::size_t, std::size_t> RandomInterClusterPair(const Partition& partition, Rng& rng);

/// Acceptance rule for sampled-move (annealing-family) walks. Kept a policy
/// object so the engine owns the move loop while the searcher owns the
/// thermodynamics.
class AcceptancePolicy {
 public:
  virtual ~AcceptancePolicy() = default;
  /// Whether to accept a proposed swap of cost `cost`. May draw from `rng`.
  virtual bool Accept(double cost, Rng& rng) = 0;
  /// Called once per proposal, accepted or not (e.g. per-proposal cooling).
  virtual void AfterProposal() = 0;
};

/// Metropolis acceptance with optional geometric cooling per proposal.
/// Draws one NextDouble only for uphill proposals (cost >= kEps) — the
/// exact RNG consumption of the legacy annealing loop.
class MetropolisPolicy final : public AcceptancePolicy {
 public:
  MetropolisPolicy(double temperature, double cooling, double floor)
      : temperature_(temperature), cooling_(cooling), floor_(floor) {}
  bool Accept(double cost, Rng& rng) override;
  void AfterProposal() override;
  [[nodiscard]] double temperature() const { return temperature_; }
  void set_temperature(double temperature) { temperature_ = temperature; }

 private:
  double temperature_;
  double cooling_;
  double floor_;
};

/// Outcome of a sampled-move loop.
struct SampledMoveStats {
  std::size_t proposals = 0;
  std::size_t accepts = 0;
  std::size_t uphill_accepts = 0;  // accepted with cost > kEps
};

/// The annealing-family move loop: `proposals` random inter-cluster swaps,
/// each evaluated through the objective and accepted by the policy.
/// `on_accept(proposal_index)` runs after each applied swap (best tracking,
/// trace recording — whatever the searcher needs).
SampledMoveStats RunSampledMoves(Objective& objective, AcceptancePolicy& policy,
                                 std::size_t proposals, Rng& rng,
                                 const std::function<void(std::size_t)>& on_accept);

// ---------------------------------------------------------------------------
// Objective adapters over the incremental evaluators.
// ---------------------------------------------------------------------------

/// Switches whose cluster differs from the anchor's (migration distance).
[[nodiscard]] std::size_t CountMovedFromAnchor(const Partition& partition, const Partition& anchor);

/// Plain F_G (§4.2) with an optional migration-anchored penalty: minimizes
/// F_G + migration_penalty * moved / N against `anchor`. With no anchor the
/// migration machinery reduces to plain F_G minimization (deltas all zero).
class TabuObjective final : public Objective {
 public:
  TabuObjective(const DistanceTable& table, const Partition& start, const Partition* anchor,
                double migration_penalty);

  double SwapCost(std::size_t a, std::size_t b) override;
  [[nodiscard]] double Value() const override;
  [[nodiscard]] double TraceFg() const override;
  [[nodiscard]] double AspirantValue(double cost, double current_value) override;
  void Apply(std::size_t a, std::size_t b) override;
  [[nodiscard]] const Partition& partition() const override;
  void FinalizeSeed(SearchResult& result) const override;

 private:
  [[nodiscard]] int SwapDMoved(std::size_t a, std::size_t b) const;

  qual::SwapEvaluator eval_;
  const DistanceTable* table_;
  const Partition* anchor_;
  double move_cost_ = 0.0;
  double fg_scale_ = 0.0;  // F_G is affine in the intra sum
  std::size_t moved_ = 0;
};

/// Traffic-weighted F_G^w. Value space: FgAfterSwap yields the absolute
/// post-swap value (no delta form exists), so this pairs with
/// ScanRules::ValueDescent().
class WeightedFgObjective final : public Objective {
 public:
  WeightedFgObjective(const DistanceTable& table, const qual::WeightMatrix& weights,
                      const Partition& start);

  double SwapCost(std::size_t a, std::size_t b) override;
  [[nodiscard]] double Value() const override;
  [[nodiscard]] double TraceFg() const override;
  [[nodiscard]] double AspirantValue(double cost, double current_value) override;
  void Apply(std::size_t a, std::size_t b) override;
  [[nodiscard]] const Partition& partition() const override;
  void FinalizeSeed(SearchResult& result) const override;

 private:
  qual::WeightedSwapEvaluator eval_;
  const DistanceTable* table_;
  const qual::WeightMatrix* weights_;
};

/// Per-cluster intensity-weighted F_G^λ (delta space, like plain F_G).
class IntensityFgObjective final : public Objective {
 public:
  IntensityFgObjective(const DistanceTable& table, const Partition& start,
                       const std::vector<double>& cluster_intensity);

  double SwapCost(std::size_t a, std::size_t b) override;
  [[nodiscard]] double Value() const override;
  [[nodiscard]] double TraceFg() const override;
  [[nodiscard]] double AspirantValue(double cost, double current_value) override;
  void Apply(std::size_t a, std::size_t b) override;
  [[nodiscard]] const Partition& partition() const override;
  void FinalizeSeed(SearchResult& result) const override;

 private:
  qual::IntensitySwapEvaluator eval_;
  const DistanceTable* table_;
  std::vector<double> intensity_;
};

/// Raw intra-cluster sum over a borrowed SwapEvaluator. Used by steepest
/// descent and the annealing walks, whose legacy loops compared IntraSum
/// deltas directly; the evaluator outlives the adapter (annealing
/// populations keep theirs across generations).
class IntraSumObjective final : public Objective {
 public:
  IntraSumObjective(const DistanceTable& table, qual::SwapEvaluator& eval)
      : eval_(&eval), table_(&table) {}

  double SwapCost(std::size_t a, std::size_t b) override;
  [[nodiscard]] double Value() const override;
  [[nodiscard]] double TraceFg() const override;
  [[nodiscard]] double AspirantValue(double cost, double current_value) override;
  void Apply(std::size_t a, std::size_t b) override;
  [[nodiscard]] const Partition& partition() const override;
  void FinalizeSeed(SearchResult& result) const override;

 private:
  qual::SwapEvaluator* eval_;
  const DistanceTable* table_;
};

}  // namespace commsched::sched
