// Common types for the mapping searchers (§4.2).
//
// Every searcher minimizes the global similarity function F_G over the space
// of network partitions with fixed cluster sizes (the space Ω of mappings of
// processes to processors). Since cluster sizes are fixed, minimizing F_G
// simultaneously maximizes the clustering coefficient C_c = D_G / F_G.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "distance/distance_table.h"
#include "quality/partition.h"
#include "quality/quality.h"

namespace commsched::sched {

using dist::DistanceTable;
using qual::Partition;

/// One point of a search trace (Fig. 1 plots these).
struct TracePoint {
  std::size_t iteration = 0;  // global iteration number across restarts
  double fg = 0.0;            // F_G after this iteration's move
  bool is_restart = false;    // true for the random starting point of a seed
};

/// Outcome of a mapping search.
struct SearchResult {
  Partition best;
  double best_fg = 0.0;
  double best_dg = 0.0;
  double best_cc = 0.0;
  std::size_t iterations = 0;        // moves applied (all restarts combined)
  std::size_t evaluations = 0;       // candidate F_G evaluations
  std::vector<TracePoint> trace;     // filled only when tracing is enabled
  /// Switches whose cluster differs from the anchor's (migration-aware
  /// searches only; 0 otherwise).
  std::size_t moved_from_anchor = 0;
};

/// Fills best_fg / best_dg / best_cc of a result from its partition.
void FinalizeResult(const DistanceTable& table, SearchResult& result);

/// The canonical human-readable rendering of a search result — exactly what
/// `commsched_cli schedule` prints. Shared with the scheduling service so a
/// served request is byte-identical to the one-shot CLI run (the service
/// e2e test diffs the two).
[[nodiscard]] std::string FormatSearchResult(const SearchResult& result);

/// All unordered switch pairs (a, b) lying in different clusters — the swap
/// neighbourhood of §4.2.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> InterClusterPairs(
    const Partition& partition);

}  // namespace commsched::sched
