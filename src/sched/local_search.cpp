#include "sched/local_search.h"

#include "common/rng.h"
#include "obs/obs.h"
#include "sched/engine.h"

namespace commsched::sched {

SearchResult SteepestDescent(const DistanceTable& table,
                             const std::vector<std::size_t>& cluster_sizes,
                             const SteepestDescentOptions& options) {
  Rng rng(options.rng_seed);

  MultiStartSpec spec;
  spec.algo = "sd";
  spec.options.seeds = options.restarts;
  spec.options.max_iterations_per_seed = options.max_iterations_per_restart;
  spec.options.parallel_seeds = options.parallel_seeds;
  spec.starts.reserve(options.restarts);
  for (std::size_t s = 0; s < options.restarts; ++s) {
    spec.starts.push_back(Partition::Random(cluster_sizes, rng));
  }

  const SearchEngine engine("sd", spec.options, ScanRules::GreedyDescent());
  spec.run_seed = [&table, &engine](const Partition& start, std::size_t seed) {
    qual::SwapEvaluator eval(table, start);
    IntraSumObjective objective(table, eval);
    SeedRun run = engine.RunSeed(objective, seed);
    engine.FlushSeedObservability(run, seed);
    return run;
  };
  // Restarts are compared on the raw intra-cluster sum, like the walk.
  spec.combine_key = [](const SeedRun& run) { return run.best_value; };
  return RunMultiStart(table, spec);
}

SearchResult RandomSearch(const DistanceTable& table,
                          const std::vector<std::size_t>& cluster_sizes,
                          const RandomSearchOptions& options) {
  CS_CHECK(options.samples >= 1, "need at least one sample");
  Rng rng(options.rng_seed);

  MultiStartSpec spec;
  spec.algo = "random";
  spec.options.seeds = options.samples;
  spec.options.parallel_seeds = options.parallel_seeds;
  spec.starts.reserve(options.samples);
  for (std::size_t s = 0; s < options.samples; ++s) {
    spec.starts.push_back(Partition::Random(cluster_sizes, rng));
  }

  // A sample is a zero-move "seed": one evaluation, no walk. The engine's
  // combiner then keeps the best by intra-cluster sum, exactly like the
  // multi-start searchers.
  spec.run_seed = [&table](const Partition& start, std::size_t) {
    const qual::SwapEvaluator eval(table, start);
    SeedRun run;
    run.result.best = start;
    run.result.iterations = 1;
    run.result.evaluations = 1;
    run.best_value = eval.IntraSum();
    run.trace_span = 1;
    return run;
  };
  spec.combine_key = [](const SeedRun& run) { return run.best_value; };

  obs::Registry::Global().GetCounter("search.random.samples").Add(options.samples);
  return RunMultiStart(table, spec);
}

}  // namespace commsched::sched
