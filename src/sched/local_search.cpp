#include "sched/local_search.h"

#include <limits>

#include "common/rng.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace commsched::sched {

namespace {
constexpr double kEps = 1e-12;
}  // namespace

SearchResult SteepestDescent(const DistanceTable& table,
                             const std::vector<std::size_t>& cluster_sizes,
                             const SteepestDescentOptions& options) {
  Rng rng(options.rng_seed);
  SearchResult result;
  double best_sum = std::numeric_limits<double>::infinity();

  for (std::size_t restart = 0; restart < options.restarts; ++restart) {
    qual::SwapEvaluator eval(table, Partition::Random(cluster_sizes, rng));
    const std::size_t n = eval.partition().switch_count();
    if (obs::Tracer* tracer = obs::ActiveTracer()) {
      tracer->Emit(obs::TraceEvent("search.restart")
                       .F("algo", "sd")
                       .F("seed", restart)
                       .F("fg", eval.Fg()));
    }
    for (std::size_t it = 0; it < options.max_iterations_per_restart; ++it) {
      double best_delta = -kEps;
      std::pair<std::size_t, std::size_t> best_move{n, n};
      for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
          if (eval.partition().ClusterOf(a) == eval.partition().ClusterOf(b)) continue;
          const double delta = eval.SwapDelta(a, b);
          ++result.evaluations;
          if (delta < best_delta) {
            best_delta = delta;
            best_move = {a, b};
          }
        }
      }
      if (best_move.first >= n) break;  // local minimum
      eval.ApplySwap(best_move.first, best_move.second);
      ++result.iterations;
    }
    if (eval.IntraSum() < best_sum - kEps) {
      best_sum = eval.IntraSum();
      result.best = eval.partition();
    }
  }
  FinalizeResult(table, result);
  obs::Registry& registry = obs::Registry::Global();
  registry.GetCounter("search.sd.restarts").Add(options.restarts);
  registry.GetCounter("search.sd.moves").Add(result.iterations);
  registry.GetCounter("search.sd.evaluations").Add(result.evaluations);
  if (obs::Tracer* tracer = obs::ActiveTracer()) {
    tracer->Emit(obs::TraceEvent("search.done")
                     .F("algo", "sd")
                     .F("iters", result.iterations)
                     .F("evals", result.evaluations)
                     .F("best_fg", result.best_fg));
  }
  return result;
}

SearchResult RandomSearch(const DistanceTable& table,
                          const std::vector<std::size_t>& cluster_sizes,
                          const RandomSearchOptions& options) {
  CS_CHECK(options.samples >= 1, "need at least one sample");
  Rng rng(options.rng_seed);
  SearchResult result;
  double best_sum = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < options.samples; ++k) {
    qual::SwapEvaluator eval(table, Partition::Random(cluster_sizes, rng));
    ++result.evaluations;
    if (eval.IntraSum() < best_sum - kEps) {
      best_sum = eval.IntraSum();
      result.best = eval.partition();
    }
  }
  result.iterations = options.samples;
  FinalizeResult(table, result);
  obs::Registry::Global().GetCounter("search.random.samples").Add(options.samples);
  if (obs::Tracer* tracer = obs::ActiveTracer()) {
    tracer->Emit(obs::TraceEvent("search.done")
                     .F("algo", "random")
                     .F("iters", result.iterations)
                     .F("evals", result.evaluations)
                     .F("best_fg", result.best_fg));
  }
  return result;
}

}  // namespace commsched::sched
