// Simple search baselines: steepest-descent hill climbing (Tabu without the
// escape mechanism) and pure random sampling. Both bound how much the Tabu
// machinery actually buys (bench/tab_heuristic_compare, abl_tabu_params).
#pragma once

#include "sched/search.h"

namespace commsched::sched {

struct SteepestDescentOptions {
  std::size_t restarts = 10;
  std::size_t max_iterations_per_restart = 1000;  // descent almost always stops earlier
  std::uint64_t rng_seed = 1;
  bool parallel_seeds = false;  // descend restarts on a thread pool
};

/// Repeated steepest descent: apply the best decreasing swap until a local
/// minimum; restart from fresh random partitions; keep the best.
[[nodiscard]] SearchResult SteepestDescent(const DistanceTable& table,
                                           const std::vector<std::size_t>& cluster_sizes,
                                           const SteepestDescentOptions& options = {});

struct RandomSearchOptions {
  std::size_t samples = 1000;
  std::uint64_t rng_seed = 1;
  bool parallel_seeds = false;  // evaluate samples on a thread pool
};

/// Best of `samples` uniformly random partitions.
[[nodiscard]] SearchResult RandomSearch(const DistanceTable& table,
                                        const std::vector<std::size_t>& cluster_sizes,
                                        const RandomSearchOptions& options = {});

}  // namespace commsched::sched
