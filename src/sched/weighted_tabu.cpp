#include "sched/weighted_tabu.h"

#include "common/check.h"
#include "common/rng.h"
#include "sched/engine.h"
#include "sched/tabu.h"

namespace commsched::sched {

namespace {

/// Shared driver of the weighted variants: seeds differ only in objective
/// construction and scan rules; everything else (starts, parallelism,
/// combining by finalized F_G) is the engine's multi-start machinery.
template <typename MakeObjective>
SearchResult WeightedFamilySearch(const DistanceTable& table,
                                  const std::vector<std::size_t>& cluster_sizes,
                                  const TabuOptions& options, const char* algo,
                                  const ScanRules& rules, MakeObjective make_objective) {
  CS_CHECK(options.seeds >= 1, "need at least one seed");
  Rng rng(options.rng_seed);

  MultiStartSpec spec;
  spec.algo = algo;
  spec.options = ToEngineOptions(options);
  spec.starts.reserve(options.seeds);
  for (std::size_t s = 0; s < options.seeds; ++s) {
    spec.starts.push_back(Partition::Random(cluster_sizes, rng));
  }

  const SearchEngine engine(algo, spec.options, rules);
  spec.run_seed = [&make_objective, &engine](const Partition& start, std::size_t seed) {
    auto objective = make_objective(start);
    SeedRun run = engine.RunSeed(objective, seed);
    engine.FlushSeedObservability(run, seed);
    return run;
  };
  // The per-seed finalized F_G already lives in its weighted space, so the
  // combined result keeps the winning seed's values instead of recomputing
  // them unweighted.
  spec.combine_key = [](const SeedRun& run) { return run.result.best_fg; };
  spec.finalize_combined = false;
  return RunMultiStart(table, spec);
}

}  // namespace

SearchResult WeightedTabuSearch(const DistanceTable& table, const qual::WeightMatrix& weights,
                                const std::vector<std::size_t>& cluster_sizes,
                                const TabuOptions& options) {
  return WeightedFamilySearch(table, cluster_sizes, options, "wtabu", ScanRules::ValueDescent(),
                              [&](const Partition& start) {
                                return WeightedFgObjective(table, weights, start);
                              });
}

SearchResult IntensityTabuSearch(const DistanceTable& table,
                                 const std::vector<std::size_t>& cluster_sizes,
                                 const std::vector<double>& cluster_intensity,
                                 const TabuOptions& options) {
  CS_CHECK(cluster_intensity.size() == cluster_sizes.size(), "one intensity per cluster");
  return WeightedFamilySearch(table, cluster_sizes, options, "itabu", ScanRules::TabuMargin(),
                              [&](const Partition& start) {
                                return IntensityFgObjective(table, start, cluster_intensity);
                              });
}

}  // namespace commsched::sched
