#include "sched/weighted_tabu.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>

#include "common/rng.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace commsched::sched {

namespace {

constexpr double kEps = 1e-12;

/// Per-seed observability flush shared by the weighted and intensity
/// variants: one Registry update per seed keeps the scan loops clean.
void FlushSeedObservability(const char* algo, std::size_t seed_index,
                            const SearchResult& result, std::uint64_t tabu_hits,
                            std::uint64_t escapes) {
  obs::Registry& registry = obs::Registry::Global();
  const std::string family = std::string("search.") + algo + ".";
  registry.GetCounter(family + "seeds").Add(1);
  registry.GetCounter(family + "moves").Add(result.iterations);
  registry.GetCounter(family + "evaluations").Add(result.evaluations);
  registry.GetCounter(family + "tabu_hits").Add(tabu_hits);
  registry.GetCounter(family + "escapes").Add(escapes);
  if (obs::Tracer* tracer = obs::ActiveTracer()) {
    tracer->Emit(obs::TraceEvent("search.seed_done")
                     .F("algo", algo)
                     .F("seed", seed_index)
                     .F("iters", result.iterations)
                     .F("evals", result.evaluations)
                     .F("best_fg", result.best_fg));
  }
}

SearchResult RunWeightedSeed(const DistanceTable& table, const qual::WeightMatrix& weights,
                             const Partition& start, const TabuOptions& options,
                             std::size_t seed_index) {
  qual::WeightedSwapEvaluator eval(table, weights, start);
  const std::size_t n = start.switch_count();

  SearchResult result;
  result.best = start;
  double best_fg = eval.Fg();
  double current_fg = best_fg;
  std::uint64_t tabu_hits = 0;
  std::uint64_t escapes = 0;

  if (options.record_trace) {
    result.trace.push_back({0, current_fg, true});
  }
  if (obs::Tracer* tracer = obs::ActiveTracer()) {
    tracer->Emit(obs::TraceEvent("search.restart")
                     .F("algo", "wtabu")
                     .F("seed", seed_index)
                     .F("fg", current_fg));
  }

  std::vector<std::vector<std::size_t>> tabu_until(n, std::vector<std::size_t>(n, 0));
  std::map<long long, std::size_t> local_min_hits;
  auto quantize = [](double fg) { return static_cast<long long>(std::llround(fg * 1e9)); };

  std::size_t iteration = 0;
  while (iteration < options.max_iterations_per_seed) {
    double best_down = current_fg - kEps;  // must strictly decrease
    std::pair<std::size_t, std::size_t> down_move{n, n};
    double best_up = std::numeric_limits<double>::infinity();
    std::pair<std::size_t, std::size_t> up_move{n, n};
    bool any_decrease_exists = false;

    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (eval.partition().ClusterOf(a) == eval.partition().ClusterOf(b)) continue;
        const double after = eval.FgAfterSwap(a, b);
        ++result.evaluations;
        if (after < current_fg - kEps) any_decrease_exists = true;
        const bool tabu = tabu_until[a][b] > iteration;
        if (tabu && !(options.aspiration && after < best_fg - kEps)) {
          ++tabu_hits;
          continue;
        }
        if (after < best_down) {
          best_down = after;
          down_move = {a, b};
        }
        if (after > current_fg + kEps && after < best_up) {
          best_up = after;
          up_move = {a, b};
        }
      }
    }

    std::pair<std::size_t, std::size_t> move{n, n};
    bool escaping = false;
    if (down_move.first < n) {
      move = down_move;
    } else {
      if (!any_decrease_exists) {
        if (++local_min_hits[quantize(current_fg)] >= options.local_min_repeats) break;
      }
      if (up_move.first >= n) break;
      move = up_move;
      escaping = true;
    }

    eval.ApplySwap(move.first, move.second);
    current_fg = eval.Fg();
    ++iteration;
    ++result.iterations;
    if (escaping) {
      ++escapes;
      tabu_until[move.first][move.second] = iteration + options.tenure;
    }
    if (options.record_trace) {
      result.trace.push_back({iteration, current_fg, false});
    }
    if (obs::Tracer* tracer = obs::ActiveTracer()) {
      tracer->Emit(obs::TraceEvent("search.move")
                       .F("algo", "wtabu")
                       .F("seed", seed_index)
                       .F("iter", iteration)
                       .F("a", move.first)
                       .F("b", move.second)
                       .F("fg", current_fg)
                       .F("escape", escaping));
    }
    if (current_fg < best_fg - kEps) {
      best_fg = current_fg;
      result.best = eval.partition();
    }
  }

  result.best_fg = qual::WeightedGlobalSimilarity(table, weights, result.best);
  result.best_dg = qual::WeightedGlobalDissimilarity(table, weights, result.best);
  result.best_cc = result.best_dg / result.best_fg;
  FlushSeedObservability("wtabu", seed_index, result, tabu_hits, escapes);
  return result;
}

SearchResult RunIntensitySeed(const DistanceTable& table,
                              const std::vector<double>& intensity, const Partition& start,
                              const TabuOptions& options, std::size_t seed_index) {
  qual::IntensitySwapEvaluator eval(table, start, intensity);
  const std::size_t n = start.switch_count();

  SearchResult result;
  result.best = start;
  double best_fg = eval.Fg();
  double current_fg = best_fg;
  std::uint64_t tabu_hits = 0;
  std::uint64_t escapes = 0;
  if (options.record_trace) {
    result.trace.push_back({0, current_fg, true});
  }
  if (obs::Tracer* tracer = obs::ActiveTracer()) {
    tracer->Emit(obs::TraceEvent("search.restart")
                     .F("algo", "itabu")
                     .F("seed", seed_index)
                     .F("fg", current_fg));
  }

  std::vector<std::vector<std::size_t>> tabu_until(n, std::vector<std::size_t>(n, 0));
  std::map<long long, std::size_t> local_min_hits;
  auto quantize = [](double fg) { return static_cast<long long>(std::llround(fg * 1e9)); };

  std::size_t iteration = 0;
  while (iteration < options.max_iterations_per_seed) {
    double best_delta_down = 0.0;
    std::pair<std::size_t, std::size_t> down_move{n, n};
    double best_delta_up = std::numeric_limits<double>::infinity();
    std::pair<std::size_t, std::size_t> up_move{n, n};
    bool any_decrease_exists = false;

    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (eval.partition().ClusterOf(a) == eval.partition().ClusterOf(b)) continue;
        const double delta = eval.SwapDelta(a, b);
        ++result.evaluations;
        if (delta < -kEps) any_decrease_exists = true;
        const bool tabu = tabu_until[a][b] > iteration;
        if (tabu && !(options.aspiration && eval.FgAfterDelta(delta) < best_fg - kEps)) {
          ++tabu_hits;
          continue;
        }
        if (delta < best_delta_down - kEps) {
          best_delta_down = delta;
          down_move = {a, b};
        }
        if (delta > kEps && delta < best_delta_up) {
          best_delta_up = delta;
          up_move = {a, b};
        }
      }
    }

    std::pair<std::size_t, std::size_t> move{n, n};
    bool escaping = false;
    if (down_move.first < n && best_delta_down < -kEps) {
      move = down_move;
    } else {
      if (!any_decrease_exists) {
        if (++local_min_hits[quantize(current_fg)] >= options.local_min_repeats) break;
      }
      if (up_move.first >= n) break;
      move = up_move;
      escaping = true;
    }

    eval.ApplySwap(move.first, move.second);
    current_fg = eval.Fg();
    ++iteration;
    ++result.iterations;
    if (escaping) {
      ++escapes;
      tabu_until[move.first][move.second] = iteration + options.tenure;
    }
    if (options.record_trace) {
      result.trace.push_back({iteration, current_fg, false});
    }
    if (obs::Tracer* tracer = obs::ActiveTracer()) {
      tracer->Emit(obs::TraceEvent("search.move")
                       .F("algo", "itabu")
                       .F("seed", seed_index)
                       .F("iter", iteration)
                       .F("a", move.first)
                       .F("b", move.second)
                       .F("fg", current_fg)
                       .F("escape", escaping));
    }
    if (current_fg < best_fg - kEps) {
      best_fg = current_fg;
      result.best = eval.partition();
    }
  }

  result.best_fg = qual::IntensityGlobalSimilarity(table, result.best, intensity);
  result.best_dg = qual::GlobalDissimilarity(table, result.best);
  result.best_cc = result.best_dg / qual::GlobalSimilarity(table, result.best);
  FlushSeedObservability("itabu", seed_index, result, tabu_hits, escapes);
  return result;
}

}  // namespace

SearchResult IntensityTabuSearch(const DistanceTable& table,
                                 const std::vector<std::size_t>& cluster_sizes,
                                 const std::vector<double>& cluster_intensity,
                                 const TabuOptions& options) {
  CS_CHECK(options.seeds >= 1, "need at least one seed");
  CS_CHECK(cluster_intensity.size() == cluster_sizes.size(), "one intensity per cluster");
  Rng rng(options.rng_seed);

  SearchResult combined;
  bool first = true;
  std::size_t iteration_base = 0;
  for (std::size_t s = 0; s < options.seeds; ++s) {
    const Partition start = Partition::Random(cluster_sizes, rng);
    SearchResult run = RunIntensitySeed(table, cluster_intensity, start, options, s);
    combined.iterations += run.iterations;
    combined.evaluations += run.evaluations;
    if (options.record_trace) {
      for (TracePoint point : run.trace) {
        point.iteration += iteration_base;
        combined.trace.push_back(point);
      }
      iteration_base += run.iterations + 1;
    }
    if (first || run.best_fg < combined.best_fg - kEps) {
      combined.best = run.best;
      combined.best_fg = run.best_fg;
      combined.best_dg = run.best_dg;
      combined.best_cc = run.best_cc;
      first = false;
    }
  }
  return combined;
}

SearchResult WeightedTabuSearch(const DistanceTable& table, const qual::WeightMatrix& weights,
                                const std::vector<std::size_t>& cluster_sizes,
                                const TabuOptions& options) {
  CS_CHECK(options.seeds >= 1, "need at least one seed");
  Rng rng(options.rng_seed);

  SearchResult combined;
  bool first = true;
  std::size_t iteration_base = 0;
  for (std::size_t s = 0; s < options.seeds; ++s) {
    const Partition start = Partition::Random(cluster_sizes, rng);
    SearchResult run = RunWeightedSeed(table, weights, start, options, s);
    combined.iterations += run.iterations;
    combined.evaluations += run.evaluations;
    if (options.record_trace) {
      for (TracePoint point : run.trace) {
        point.iteration += iteration_base;
        combined.trace.push_back(point);
      }
      iteration_base += run.iterations + 1;
    }
    if (first || run.best_fg < combined.best_fg - kEps) {
      combined.best = run.best;
      combined.best_fg = run.best_fg;
      combined.best_dg = run.best_dg;
      combined.best_cc = run.best_cc;
      first = false;
    }
  }
  return combined;
}

}  // namespace commsched::sched
