#include "sched/exhaustive.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace commsched::sched {

namespace {

constexpr double kEps = 1e-12;

struct Enumerator {
  const DistanceTable& table;
  const ExhaustiveOptions& options;
  std::vector<std::size_t> capacity;           // remaining slots per cluster
  std::vector<std::size_t> sizes;              // full sizes per cluster
  std::vector<std::vector<std::size_t>> members;  // assigned switches per cluster
  std::vector<std::size_t> cluster_of;         // per switch (filled in order)
  double intra_sum = 0.0;
  double best_sum = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best_assignment;
  unsigned long long leaves = 0;

  explicit Enumerator(const DistanceTable& t, const std::vector<std::size_t>& cluster_sizes,
                      const ExhaustiveOptions& opts)
      : table(t), options(opts), capacity(cluster_sizes), sizes(cluster_sizes),
        members(cluster_sizes.size()), cluster_of(t.size(), 0) {}

  void Assign(std::size_t s) {
    if (s == table.size()) {
      ++leaves;
      CS_CHECK(leaves <= options.max_leaves, "exhaustive search exceeded max_leaves");
      if (intra_sum < best_sum - kEps) {
        best_sum = intra_sum;
        best_assignment = cluster_of;
      }
      return;
    }
    for (std::size_t c = 0; c < capacity.size(); ++c) {
      if (capacity[c] == 0) continue;
      // Symmetry breaking: an empty cluster may be opened only if no earlier
      // cluster of the same size is still empty.
      if (members[c].empty()) {
        bool blocked = false;
        for (std::size_t c2 = 0; c2 < c; ++c2) {
          if (members[c2].empty() && sizes[c2] == sizes[c]) {
            blocked = true;
            break;
          }
        }
        if (blocked) continue;
      }
      double delta = 0.0;
      for (std::size_t m : members[c]) {
        const double d = table(s, m);
        delta += d * d;
      }
      if (options.prune && intra_sum + delta >= best_sum - kEps) {
        continue;  // exact bound: remaining assignments only add mass
      }
      members[c].push_back(s);
      --capacity[c];
      cluster_of[s] = c;
      intra_sum += delta;
      Assign(s + 1);
      intra_sum -= delta;
      ++capacity[c];
      members[c].pop_back();
    }
  }
};

unsigned long long CheckedMul(unsigned long long a, unsigned long long b) {
  CS_CHECK(b == 0 || a <= std::numeric_limits<unsigned long long>::max() / b,
           "partition count overflows 64 bits");
  return a * b;
}

unsigned long long Binomial(std::size_t n, std::size_t k) {
  k = std::min(k, n - k);
  unsigned long long result = 1;
  for (std::size_t i = 1; i <= k; ++i) {
    // result * (n-k+i) / i stays integral at each step.
    const unsigned long long numer = n - k + i;
    const unsigned long long g = std::gcd(result, static_cast<unsigned long long>(i));
    unsigned long long r = result / g;
    unsigned long long d = i / g;
    r = CheckedMul(r, numer);
    CS_CHECK(r % d == 0, "binomial arithmetic error");
    result = r / d;
  }
  return result;
}

}  // namespace

unsigned long long CountPartitions(const std::vector<std::size_t>& cluster_sizes) {
  CS_CHECK(!cluster_sizes.empty(), "need at least one cluster");
  std::size_t n = 0;
  for (std::size_t size : cluster_sizes) n += size;
  unsigned long long count = 1;
  std::size_t remaining = n;
  for (std::size_t size : cluster_sizes) {
    count = CheckedMul(count, Binomial(remaining, size));
    remaining -= size;
  }
  // Divide by m! for each multiplicity m of equal cluster sizes.
  std::vector<std::size_t> sorted = cluster_sizes;
  std::sort(sorted.begin(), sorted.end());
  std::size_t run = 1;
  for (std::size_t i = 1; i <= sorted.size(); ++i) {
    if (i < sorted.size() && sorted[i] == sorted[i - 1]) {
      ++run;
    } else {
      for (std::size_t f = 2; f <= run; ++f) {
        CS_CHECK(count % f == 0, "multiplicity division error");
        count /= f;
      }
      run = 1;
    }
  }
  return count;
}

SearchResult ExhaustiveSearch(const DistanceTable& table,
                              const std::vector<std::size_t>& cluster_sizes,
                              const ExhaustiveOptions& options) {
  std::size_t n = 0;
  for (std::size_t size : cluster_sizes) {
    CS_CHECK(size > 0, "cluster sizes must be positive");
    n += size;
  }
  CS_CHECK(n == table.size(), "cluster sizes must cover every switch");

  Enumerator enumerator(table, cluster_sizes, options);
  enumerator.Assign(0);
  CS_CHECK(!enumerator.best_assignment.empty(), "no feasible partition found");

  SearchResult result;
  result.best = Partition(enumerator.best_assignment);
  result.evaluations = enumerator.leaves;
  result.iterations = enumerator.leaves;
  FinalizeResult(table, result);
  return result;
}

}  // namespace commsched::sched
