#include "sched/scheduler.h"

namespace commsched::sched {

CommAwareScheduler::CommAwareScheduler(const topo::SwitchGraph& graph,
                                       const route::Routing& routing, bool parallel_table_build)
    : graph_(&graph), table_(DistanceTable::Build(routing, parallel_table_build)) {
  CS_CHECK(&routing.graph() == &graph, "routing was built for a different graph");
}

CommAwareScheduler::CommAwareScheduler(const topo::SwitchGraph& graph, DistanceTable table)
    : graph_(&graph), table_(std::move(table)) {
  CS_CHECK(table_.size() == graph.switch_count(), "table size does not match the graph");
}

ScheduleOutcome CommAwareScheduler::Schedule(const Workload& workload,
                                             const TabuOptions& options) const {
  workload.ValidateFor(*graph_);
  const auto sizes = workload.ClusterSwitchSizes(*graph_);
  SearchResult search = TabuSearch(table_, sizes, options);
  ProcessMapping mapping = ProcessMapping::FromPartition(*graph_, workload, search.best);
  ScheduleOutcome outcome{std::move(mapping), search.best, search.best_fg, search.best_dg,
                          search.best_cc, std::move(search)};
  return outcome;
}

ScheduleOutcome CommAwareScheduler::Evaluate(const Workload& workload,
                                             const ProcessMapping& mapping) const {
  workload.ValidateFor(*graph_);
  Partition partition = mapping.InducedPartition(*graph_);
  SearchResult search;
  search.best = partition;
  FinalizeResult(table_, search);
  ScheduleOutcome outcome{mapping, std::move(partition), search.best_fg, search.best_dg,
                          search.best_cc, std::move(search)};
  return outcome;
}

ml::MultilevelResult CommAwareScheduler::ScheduleProcesses(
    const qual::CommGraph& processes, const ml::MultilevelOptions& options) const {
  return ml::MapMultilevel(processes, table_, graph_->hosts_per_switch(), options);
}

}  // namespace commsched::sched
