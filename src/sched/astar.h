// A* search over partial partitions (§2 mentions the authors evaluated the
// A* heuristic of Kafil & Ahmad [17] alongside GSA and Tabu).
//
// States are prefixes of the assignment order (switch 0..k-1 placed),
// g = intracluster quadratic sum accumulated so far, and h is an admissible
// lower bound: every not-yet-formed intracluster pair will cost at least the
// smallest squared distance its switches can still realize. With an
// admissible h, the first goal popped is the global optimum — same answer
// as ExhaustiveSearch, typically visiting far fewer states, at the price of
// a priority queue and visited-state bookkeeping.
#pragma once

#include "sched/search.h"

namespace commsched::sched {

struct AStarOptions {
  /// Abort when the open list has expanded this many states (safety valve).
  std::size_t max_expansions = 50'000'000;
  /// h strength: 0 = h==0 (uniform-cost search), 1 = global-min bound,
  /// 2 = per-switch min bound (tighter, slightly costlier per node).
  int heuristic_level = 2;
};

/// Exact minimum of F_G via A*; result.evaluations counts expanded states.
[[nodiscard]] SearchResult AStarSearch(const DistanceTable& table,
                                       const std::vector<std::size_t>& cluster_sizes,
                                       const AStarOptions& options = {});

}  // namespace commsched::sched
