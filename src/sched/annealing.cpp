#include "sched/annealing.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace commsched::sched {

namespace {

constexpr double kEps = 1e-12;

/// Uniform random unordered pair of switches in different clusters.
std::pair<std::size_t, std::size_t> RandomInterClusterPair(const Partition& partition, Rng& rng) {
  const std::size_t n = partition.switch_count();
  for (;;) {
    const std::size_t a = static_cast<std::size_t>(rng.NextIndex(n));
    const std::size_t b = static_cast<std::size_t>(rng.NextIndex(n));
    if (a != b && partition.ClusterOf(a) != partition.ClusterOf(b)) {
      return {std::min(a, b), std::max(a, b)};
    }
  }
}

/// Median |delta| over random moves — a robust temperature scale.
double CalibrateTemperature(const qual::SwapEvaluator& eval, Rng& rng) {
  std::vector<double> magnitudes;
  magnitudes.reserve(64);
  for (int i = 0; i < 64; ++i) {
    const auto [a, b] = RandomInterClusterPair(eval.partition(), rng);
    magnitudes.push_back(std::abs(eval.SwapDelta(a, b)));
  }
  std::nth_element(magnitudes.begin(), magnitudes.begin() + magnitudes.size() / 2,
                   magnitudes.end());
  const double median = magnitudes[magnitudes.size() / 2];
  return std::max(median, 1e-9);
}

}  // namespace

SearchResult SimulatedAnnealing(const DistanceTable& table,
                                const std::vector<std::size_t>& cluster_sizes,
                                const AnnealingOptions& options) {
  Rng rng(options.rng_seed);
  Partition start = Partition::Random(cluster_sizes, rng);
  qual::SwapEvaluator eval(table, std::move(start));

  SearchResult result;
  result.best = eval.partition();
  double best_sum = eval.IntraSum();

  double temperature = options.initial_temperature > 0.0 ? options.initial_temperature
                                                         : CalibrateTemperature(eval, rng);
  const double floor = temperature * options.final_temperature_ratio;

  if (options.record_trace) {
    result.trace.push_back({0, eval.Fg(), true});
  }
  if (obs::Tracer* tracer = obs::ActiveTracer()) {
    tracer->Emit(obs::TraceEvent("search.restart")
                     .F("algo", "sa")
                     .F("fg", eval.Fg())
                     .F("temperature", temperature));
  }
  std::uint64_t uphill_accepts = 0;  // flushed to the Registry after the loop
  for (std::size_t it = 0; it < options.iterations; ++it) {
    const auto [a, b] = RandomInterClusterPair(eval.partition(), rng);
    const double delta = eval.SwapDelta(a, b);
    ++result.evaluations;
    const bool accept = delta < kEps || rng.NextDouble() < std::exp(-delta / temperature);
    if (accept) {
      if (delta > kEps) ++uphill_accepts;
      eval.ApplySwap(a, b);
      ++result.iterations;
      if (eval.IntraSum() < best_sum - kEps) {
        best_sum = eval.IntraSum();
        result.best = eval.partition();
        if (obs::Tracer* tracer = obs::ActiveTracer()) {
          tracer->Emit(obs::TraceEvent("search.improved")
                           .F("algo", "sa")
                           .F("iter", it + 1)
                           .F("fg", eval.Fg())
                           .F("temperature", temperature));
        }
      }
      if (options.record_trace) {
        result.trace.push_back({it + 1, eval.Fg(), false});
      }
    }
    temperature = std::max(temperature * options.cooling, floor);
  }
  FinalizeResult(table, result);
  obs::Registry& registry = obs::Registry::Global();
  registry.GetCounter("search.sa.runs").Add(1);
  registry.GetCounter("search.sa.evaluations").Add(result.evaluations);
  registry.GetCounter("search.sa.accepts").Add(result.iterations);
  registry.GetCounter("search.sa.uphill_accepts").Add(uphill_accepts);
  if (obs::Tracer* tracer = obs::ActiveTracer()) {
    tracer->Emit(obs::TraceEvent("search.done")
                     .F("algo", "sa")
                     .F("iters", result.iterations)
                     .F("evals", result.evaluations)
                     .F("best_fg", result.best_fg));
  }
  return result;
}

namespace {

/// Capacity-respecting crossover: child copies parent A's cluster for a
/// random subset of switches (up to each cluster's capacity) and fills the
/// remaining switches greedily in parent B's cluster where possible.
Partition Crossover(const Partition& pa, const Partition& pb,
                    const std::vector<std::size_t>& cluster_sizes, Rng& rng) {
  const std::size_t n = pa.switch_count();
  std::vector<std::size_t> child(n, static_cast<std::size_t>(-1));
  std::vector<std::size_t> capacity = cluster_sizes;
  std::vector<std::size_t> order = RandomPermutation(n, rng);

  // Phase 1: inherit from A for a random half of the switches.
  for (std::size_t k = 0; k < n / 2; ++k) {
    const std::size_t s = order[k];
    const std::size_t c = pa.ClusterOf(s);
    if (capacity[c] > 0) {
      child[s] = c;
      --capacity[c];
    }
  }
  // Phase 2: inherit from B where capacity allows.
  for (std::size_t s = 0; s < n; ++s) {
    if (child[s] != static_cast<std::size_t>(-1)) continue;
    const std::size_t c = pb.ClusterOf(s);
    if (capacity[c] > 0) {
      child[s] = c;
      --capacity[c];
    }
  }
  // Phase 3: any leftovers go to whichever cluster still has room.
  for (std::size_t s = 0; s < n; ++s) {
    if (child[s] != static_cast<std::size_t>(-1)) continue;
    for (std::size_t c = 0; c < capacity.size(); ++c) {
      if (capacity[c] > 0) {
        child[s] = c;
        --capacity[c];
        break;
      }
    }
  }
  return Partition(std::move(child));
}

}  // namespace

SearchResult GeneticSimulatedAnnealing(const DistanceTable& table,
                                       const std::vector<std::size_t>& cluster_sizes,
                                       const GeneticAnnealingOptions& options) {
  CS_CHECK(options.population >= 2, "population must be at least 2");
  Rng rng(options.rng_seed);

  struct Individual {
    qual::SwapEvaluator eval;
    explicit Individual(qual::SwapEvaluator e) : eval(std::move(e)) {}
  };
  std::vector<Individual> population;
  population.reserve(options.population);
  for (std::size_t i = 0; i < options.population; ++i) {
    population.emplace_back(qual::SwapEvaluator(table, Partition::Random(cluster_sizes, rng)));
  }

  SearchResult result;
  result.best = population.front().eval.partition();
  double best_sum = population.front().eval.IntraSum();

  double temperature = options.initial_temperature > 0.0
                           ? options.initial_temperature
                           : CalibrateTemperature(population.front().eval, rng);

  auto consider_best = [&](const qual::SwapEvaluator& eval) {
    if (eval.IntraSum() < best_sum - kEps) {
      best_sum = eval.IntraSum();
      result.best = eval.partition();
    }
  };
  for (auto& ind : population) consider_best(ind.eval);

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    // Mutation phase: each individual attempts SA-accepted swaps.
    for (auto& ind : population) {
      for (std::size_t m = 0; m < options.moves_per_individual; ++m) {
        const auto [a, b] = RandomInterClusterPair(ind.eval.partition(), rng);
        const double delta = ind.eval.SwapDelta(a, b);
        ++result.evaluations;
        if (delta < kEps || rng.NextDouble() < std::exp(-delta / temperature)) {
          ind.eval.ApplySwap(a, b);
          ++result.iterations;
          consider_best(ind.eval);
        }
      }
    }
    // Selection phase: sort by fitness; replace the worst with elite copies
    // or crossovers of two random elites.
    std::vector<std::size_t> rank(population.size());
    for (std::size_t i = 0; i < rank.size(); ++i) rank[i] = i;
    std::sort(rank.begin(), rank.end(), [&](std::size_t x, std::size_t y) {
      return population[x].eval.IntraSum() < population[y].eval.IntraSum();
    });
    const std::size_t elites = std::max<std::size_t>(
        1, static_cast<std::size_t>(options.elite_fraction * population.size()));
    for (std::size_t k = 0; k < elites && k < population.size(); ++k) {
      const std::size_t victim = rank[population.size() - 1 - k];
      if (victim == rank[k]) continue;
      if (rng.NextBool(options.crossover_probability) && elites >= 2) {
        const std::size_t p1 = rank[rng.NextIndex(elites)];
        const std::size_t p2 = rank[rng.NextIndex(elites)];
        population[victim].eval.Reset(Crossover(population[p1].eval.partition(),
                                                population[p2].eval.partition(), cluster_sizes,
                                                rng));
      } else {
        population[victim].eval.Reset(population[rank[k]].eval.partition());
      }
      consider_best(population[victim].eval);
    }
    temperature *= options.cooling;
  }
  FinalizeResult(table, result);
  obs::Registry& registry = obs::Registry::Global();
  registry.GetCounter("search.gsa.runs").Add(1);
  registry.GetCounter("search.gsa.evaluations").Add(result.evaluations);
  registry.GetCounter("search.gsa.accepts").Add(result.iterations);
  if (obs::Tracer* tracer = obs::ActiveTracer()) {
    tracer->Emit(obs::TraceEvent("search.done")
                     .F("algo", "gsa")
                     .F("iters", result.iterations)
                     .F("evals", result.evaluations)
                     .F("best_fg", result.best_fg));
  }
  return result;
}

}  // namespace commsched::sched
