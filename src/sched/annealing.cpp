#include "sched/annealing.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/parallel.h"
#include "common/rng.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "sched/engine.h"

namespace commsched::sched {

namespace {

/// Median |delta| over random moves — a robust temperature scale.
double CalibrateTemperature(const qual::SwapEvaluator& eval, Rng& rng) {
  std::vector<double> magnitudes;
  magnitudes.reserve(64);
  for (int i = 0; i < 64; ++i) {
    const auto [a, b] = RandomInterClusterPair(eval.partition(), rng);
    magnitudes.push_back(std::abs(eval.SwapDelta(a, b)));
  }
  std::nth_element(magnitudes.begin(), magnitudes.begin() + magnitudes.size() / 2,
                   magnitudes.end());
  const double median = magnitudes[magnitudes.size() / 2];
  return std::max(median, 1e-9);
}

/// One finished annealing walk (restart).
struct AnnealWalk {
  SearchResult result;
  double best_sum = 0.0;  // walk-space best (intra-cluster sum)
  std::uint64_t uphill_accepts = 0;
  std::size_t trace_span = 0;  // iteration numbers the trace occupies
};

/// RNG streams for `restarts` independent walks: stream 0 is the master
/// stream of `seed` (bit-compatible with the single-restart searchers),
/// streams k >= 1 are derived and never touch the master.
std::vector<Rng> RestartStreams(std::uint64_t seed, std::size_t restarts) {
  std::vector<Rng> rngs;
  rngs.reserve(restarts);
  rngs.emplace_back(seed);
  for (std::size_t k = 1; k < restarts; ++k) {
    rngs.emplace_back(DeriveSeedStream(seed, k));
  }
  return rngs;
}

/// Combines walks in restart order (strict margin, earliest wins) and fills
/// the trace/iteration totals.
SearchResult CombineWalks(const DistanceTable& table, std::vector<AnnealWalk>& walks,
                          bool record_trace) {
  SearchResult combined;
  combined.best = walks[0].result.best;
  double best_sum = walks[0].best_sum;
  std::size_t iteration_base = 0;
  for (std::size_t k = 0; k < walks.size(); ++k) {
    AnnealWalk& walk = walks[k];
    combined.iterations += walk.result.iterations;
    combined.evaluations += walk.result.evaluations;
    if (record_trace) {
      for (TracePoint point : walk.result.trace) {
        point.iteration += iteration_base;
        combined.trace.push_back(point);
      }
      iteration_base += walk.trace_span;
    }
    if (k > 0 && walk.best_sum < best_sum - kSearchEps) {
      best_sum = walk.best_sum;
      combined.best = walk.result.best;
    }
  }
  FinalizeResult(table, combined);
  return combined;
}

}  // namespace

SearchResult SimulatedAnnealing(const DistanceTable& table,
                                const std::vector<std::size_t>& cluster_sizes,
                                const AnnealingOptions& options) {
  CS_CHECK(options.restarts >= 1, "need at least one restart");
  std::vector<Rng> rngs = RestartStreams(options.rng_seed, options.restarts);

  // Starts come from each walk's own stream, derived before any walk runs.
  std::vector<Partition> starts;
  starts.reserve(options.restarts);
  for (std::size_t k = 0; k < options.restarts; ++k) {
    starts.push_back(Partition::Random(cluster_sizes, rngs[k]));
  }

  std::vector<AnnealWalk> walks(options.restarts);
  auto run_one = [&](std::size_t k) {
    Rng rng = rngs[k];
    qual::SwapEvaluator eval(table, starts[k]);

    AnnealWalk walk;
    walk.result.best = eval.partition();
    walk.best_sum = eval.IntraSum();

    const double initial = options.initial_temperature > 0.0 ? options.initial_temperature
                                                             : CalibrateTemperature(eval, rng);
    const double floor = initial * options.final_temperature_ratio;

    if (options.record_trace) {
      walk.result.trace.push_back({0, eval.Fg(), /*is_restart=*/true});
    }
    if (obs::Tracer* tracer = obs::ActiveTracer()) {
      tracer->Emit(obs::TraceEvent("search.restart")
                       .F("algo", "sa")
                       .F("seed", k)
                       .F("fg", eval.Fg())
                       .F("temperature", initial));
    }

    MetropolisPolicy policy(initial, options.cooling, floor);
    IntraSumObjective objective(table, eval);
    const SampledMoveStats stats = RunSampledMoves(
        objective, policy, options.iterations, rng, [&](std::size_t it) {
          if (eval.IntraSum() < walk.best_sum - kSearchEps) {
            walk.best_sum = eval.IntraSum();
            walk.result.best = eval.partition();
            if (obs::Tracer* tracer = obs::ActiveTracer()) {
              tracer->Emit(obs::TraceEvent("search.improved")
                               .F("algo", "sa")
                               .F("seed", k)
                               .F("iter", it + 1)
                               .F("fg", eval.Fg())
                               .F("temperature", policy.temperature()));
            }
          }
          if (options.record_trace) {
            walk.result.trace.push_back({it + 1, eval.Fg(), false});
          }
        });
    walk.result.iterations = stats.accepts;
    walk.result.evaluations = stats.proposals;
    walk.uphill_accepts = stats.uphill_accepts;
    // Trace iterations are proposal indices (accepted moves only), so a
    // restart's trace occupies the full proposal range.
    walk.trace_span = options.iterations + 1;
    walks[k] = std::move(walk);
  };
  if (options.parallel_seeds && options.restarts > 1) {
    ParallelFor(options.restarts, run_one);
  } else {
    for (std::size_t k = 0; k < options.restarts; ++k) run_one(k);
  }

  SearchResult combined = CombineWalks(table, walks, options.record_trace);
  std::uint64_t uphill_total = 0;
  for (const AnnealWalk& walk : walks) uphill_total += walk.uphill_accepts;

  obs::Registry& registry = obs::Registry::Global();
  registry.GetCounter("search.sa.runs").Add(options.restarts);
  registry.GetCounter("search.sa.evaluations").Add(combined.evaluations);
  registry.GetCounter("search.sa.accepts").Add(combined.iterations);
  registry.GetCounter("search.sa.uphill_accepts").Add(uphill_total);
  if (obs::Tracer* tracer = obs::ActiveTracer()) {
    tracer->Emit(obs::TraceEvent("search.done")
                     .F("algo", "sa")
                     .F("iters", combined.iterations)
                     .F("evals", combined.evaluations)
                     .F("best_fg", combined.best_fg));
  }
  return combined;
}

namespace {

/// Capacity-respecting crossover: child copies parent A's cluster for a
/// random subset of switches (up to each cluster's capacity) and fills the
/// remaining switches greedily in parent B's cluster where possible.
Partition Crossover(const Partition& pa, const Partition& pb,
                    const std::vector<std::size_t>& cluster_sizes, Rng& rng) {
  const std::size_t n = pa.switch_count();
  std::vector<std::size_t> child(n, static_cast<std::size_t>(-1));
  std::vector<std::size_t> capacity = cluster_sizes;
  std::vector<std::size_t> order = RandomPermutation(n, rng);

  // Phase 1: inherit from A for a random half of the switches.
  for (std::size_t k = 0; k < n / 2; ++k) {
    const std::size_t s = order[k];
    const std::size_t c = pa.ClusterOf(s);
    if (capacity[c] > 0) {
      child[s] = c;
      --capacity[c];
    }
  }
  // Phase 2: inherit from B where capacity allows.
  for (std::size_t s = 0; s < n; ++s) {
    if (child[s] != static_cast<std::size_t>(-1)) continue;
    const std::size_t c = pb.ClusterOf(s);
    if (capacity[c] > 0) {
      child[s] = c;
      --capacity[c];
    }
  }
  // Phase 3: any leftovers go to whichever cluster still has room.
  for (std::size_t s = 0; s < n; ++s) {
    if (child[s] != static_cast<std::size_t>(-1)) continue;
    for (std::size_t c = 0; c < capacity.size(); ++c) {
      if (capacity[c] > 0) {
        child[s] = c;
        --capacity[c];
        break;
      }
    }
  }
  return Partition(std::move(child));
}

}  // namespace

SearchResult GeneticSimulatedAnnealing(const DistanceTable& table,
                                       const std::vector<std::size_t>& cluster_sizes,
                                       const GeneticAnnealingOptions& options) {
  CS_CHECK(options.population >= 2, "population must be at least 2");
  CS_CHECK(options.restarts >= 1, "need at least one restart");
  std::vector<Rng> rngs = RestartStreams(options.rng_seed, options.restarts);

  std::vector<AnnealWalk> walks(options.restarts);
  auto run_one = [&](std::size_t run_index) {
    Rng rng = rngs[run_index];

    struct Individual {
      qual::SwapEvaluator eval;
      explicit Individual(qual::SwapEvaluator e) : eval(std::move(e)) {}
    };
    std::vector<Individual> population;
    population.reserve(options.population);
    for (std::size_t i = 0; i < options.population; ++i) {
      population.emplace_back(qual::SwapEvaluator(table, Partition::Random(cluster_sizes, rng)));
    }

    AnnealWalk walk;
    walk.result.best = population.front().eval.partition();
    walk.best_sum = population.front().eval.IntraSum();

    double temperature = options.initial_temperature > 0.0
                             ? options.initial_temperature
                             : CalibrateTemperature(population.front().eval, rng);

    auto consider_best = [&](const qual::SwapEvaluator& eval) {
      if (eval.IntraSum() < walk.best_sum - kSearchEps) {
        walk.best_sum = eval.IntraSum();
        walk.result.best = eval.partition();
      }
    };
    for (auto& ind : population) consider_best(ind.eval);

    // Per-proposal cooling off (cooling factor 1, floor 0): GSA cools per
    // generation instead, via set_temperature below.
    MetropolisPolicy policy(temperature, 1.0, 0.0);
    for (std::size_t gen = 0; gen < options.generations; ++gen) {
      // Mutation phase: each individual attempts SA-accepted swaps.
      policy.set_temperature(temperature);
      for (auto& ind : population) {
        IntraSumObjective objective(table, ind.eval);
        const SampledMoveStats stats =
            RunSampledMoves(objective, policy, options.moves_per_individual, rng,
                            [&](std::size_t) { consider_best(ind.eval); });
        walk.result.evaluations += stats.proposals;
        walk.result.iterations += stats.accepts;
      }
      // Selection phase: sort by fitness; replace the worst with elite
      // copies or crossovers of two random elites.
      std::vector<std::size_t> rank(population.size());
      for (std::size_t i = 0; i < rank.size(); ++i) rank[i] = i;
      std::sort(rank.begin(), rank.end(), [&](std::size_t x, std::size_t y) {
        return population[x].eval.IntraSum() < population[y].eval.IntraSum();
      });
      const std::size_t elites = std::max<std::size_t>(
          1, static_cast<std::size_t>(options.elite_fraction * population.size()));
      for (std::size_t k = 0; k < elites && k < population.size(); ++k) {
        const std::size_t victim = rank[population.size() - 1 - k];
        if (victim == rank[k]) continue;
        if (rng.NextBool(options.crossover_probability) && elites >= 2) {
          const std::size_t p1 = rank[rng.NextIndex(elites)];
          const std::size_t p2 = rank[rng.NextIndex(elites)];
          population[victim].eval.Reset(Crossover(population[p1].eval.partition(),
                                                  population[p2].eval.partition(), cluster_sizes,
                                                  rng));
        } else {
          population[victim].eval.Reset(population[rank[k]].eval.partition());
        }
        consider_best(population[victim].eval);
      }
      temperature *= options.cooling;
    }
    walks[run_index] = std::move(walk);
  };
  if (options.parallel_seeds && options.restarts > 1) {
    ParallelFor(options.restarts, run_one);
  } else {
    for (std::size_t k = 0; k < options.restarts; ++k) run_one(k);
  }

  SearchResult combined = CombineWalks(table, walks, /*record_trace=*/false);
  obs::Registry& registry = obs::Registry::Global();
  registry.GetCounter("search.gsa.runs").Add(options.restarts);
  registry.GetCounter("search.gsa.evaluations").Add(combined.evaluations);
  registry.GetCounter("search.gsa.accepts").Add(combined.iterations);
  if (obs::Tracer* tracer = obs::ActiveTracer()) {
    tracer->Emit(obs::TraceEvent("search.done")
                     .F("algo", "gsa")
                     .F("iters", combined.iterations)
                     .F("evals", combined.evaluations)
                     .F("best_fg", combined.best_fg));
  }
  return combined;
}

}  // namespace commsched::sched
