#include "sched/online.h"

#include <algorithm>
#include <limits>

namespace commsched::sched {

OnlineScheduler::OnlineScheduler(const topo::SwitchGraph& graph,
                                 const dist::DistanceTable& table, const OnlineOptions& options)
    : graph_(&graph), table_(&table), options_(options) {
  CS_CHECK(table.size() == graph.switch_count(), "table / graph size mismatch");
  is_free_.assign(graph.switch_count(), true);
  free_.resize(graph.switch_count());
  for (std::size_t s = 0; s < graph.switch_count(); ++s) free_[s] = s;
}

double OnlineScheduler::SetCost(const std::vector<std::size_t>& members) const {
  double cost = 0.0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      const double d = (*table_)(members[i], members[j]);
      cost += d * d;
    }
  }
  return cost;
}

std::optional<std::vector<std::size_t>> OnlineScheduler::Allocate(const std::string& name,
                                                                  std::size_t switch_count) {
  CS_CHECK(switch_count >= 1, "allocation needs at least one switch");
  CS_CHECK(allocations_.find(name) == allocations_.end(), "'", name, "' already allocated");
  if (free_.size() < switch_count) {
    return std::nullopt;
  }

  // Greedy: try every free switch as the seed; grow by the free switch with
  // the least added cost; keep the cheapest grown set.
  std::vector<std::size_t> best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t seed : free_) {
    std::vector<std::size_t> chosen{seed};
    std::vector<std::size_t> pool;
    pool.reserve(free_.size() - 1);
    for (std::size_t s : free_) {
      if (s != seed) pool.push_back(s);
    }
    double cost = 0.0;
    while (chosen.size() < switch_count) {
      std::size_t pick = 0;
      double pick_delta = std::numeric_limits<double>::infinity();
      for (std::size_t k = 0; k < pool.size(); ++k) {
        double delta = 0.0;
        for (std::size_t m : chosen) {
          const double d = (*table_)(pool[k], m);
          delta += d * d;
        }
        if (delta < pick_delta) {
          pick_delta = delta;
          pick = k;
        }
      }
      cost += pick_delta;
      chosen.push_back(pool[pick]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (cost < best_cost - 1e-12) {
      best_cost = cost;
      best = chosen;
    }
  }

  // Local search: swap a chosen switch for a free one while it helps.
  for (std::size_t round = 0; round < options_.local_search_iterations; ++round) {
    bool improved = false;
    for (std::size_t i = 0; i < best.size() && !improved; ++i) {
      for (std::size_t candidate : free_) {
        if (std::find(best.begin(), best.end(), candidate) != best.end()) continue;
        std::vector<std::size_t> trial = best;
        trial[i] = candidate;
        const double cost = SetCost(trial);
        if (cost < best_cost - 1e-12) {
          best_cost = cost;
          best = std::move(trial);
          improved = true;
          break;
        }
      }
    }
    if (!improved) break;
  }

  std::sort(best.begin(), best.end());
  for (std::size_t s : best) {
    is_free_[s] = false;
  }
  free_.erase(std::remove_if(free_.begin(), free_.end(),
                             [&](std::size_t s) { return !is_free_[s]; }),
              free_.end());
  allocations_[name] = best;
  return best;
}

void OnlineScheduler::Release(const std::string& name) {
  auto it = allocations_.find(name);
  CS_CHECK(it != allocations_.end(), "unknown allocation '", name, "'");
  for (std::size_t s : it->second) {
    CS_DCHECK(!is_free_[s], "double free of switch ", s);
    is_free_[s] = true;
    free_.push_back(s);
  }
  std::sort(free_.begin(), free_.end());
  allocations_.erase(it);
}

std::size_t OnlineScheduler::FreeSwitchCount() const { return free_.size(); }

double OnlineScheduler::AllocationCost(const std::string& name) const {
  auto it = allocations_.find(name);
  CS_CHECK(it != allocations_.end(), "unknown allocation '", name, "'");
  const std::size_t n = it->second.size();
  if (n < 2) return 0.0;
  return SetCost(it->second) / (static_cast<double>(n) * (n - 1) / 2.0);
}

double OnlineScheduler::FragmentationIndex() const {
  double sum = 0.0;
  std::size_t counted = 0;
  for (const auto& [name, members] : allocations_) {
    if (members.size() < 2) continue;
    sum += AllocationCost(name) / table_->MeanSquaredDistance();
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

qual::Partition OnlineScheduler::SnapshotPartition(std::vector<std::string>* cluster_names) const {
  std::vector<std::size_t> cluster_of(graph_->switch_count(), 0);
  std::vector<std::string> names;
  std::size_t next = 0;
  for (const auto& [name, members] : allocations_) {
    for (std::size_t s : members) {
      cluster_of[s] = next;
    }
    names.push_back(name);
    ++next;
  }
  if (!free_.empty()) {
    for (std::size_t s : free_) {
      cluster_of[s] = next;
    }
    names.push_back("<idle>");
    ++next;
  }
  CS_CHECK(next >= 1, "empty system has no partition");
  if (cluster_names) *cluster_names = std::move(names);
  return qual::Partition(std::move(cluster_of));
}

}  // namespace commsched::sched
