#include "sched/online.h"

#include <algorithm>
#include <limits>

#include "obs/obs.h"
#include "obs/trace.h"

namespace commsched::sched {
namespace {

constexpr std::size_t kMaxCooldownTicks = 64;

void TraceRemap(const char* action, const std::string& name, std::size_t switch_id) {
  if (obs::Tracer* t = obs::ActiveTracer()) {
    t->Emit(obs::TraceEvent("sched.remap").F("action", action).F("app", name).F("switch", switch_id));
  }
}

}  // namespace

OnlineScheduler::OnlineScheduler(const topo::SwitchGraph& graph,
                                 const dist::DistanceTable& table, const OnlineOptions& options)
    : graph_(&graph), table_(&table), options_(options) {
  CS_CHECK(table.size() == graph.switch_count(), "table / graph size mismatch");
  is_free_.assign(graph.switch_count(), true);
  failed_.assign(graph.switch_count(), false);
  free_.resize(graph.switch_count());
  for (std::size_t s = 0; s < graph.switch_count(); ++s) free_[s] = s;
}

double OnlineScheduler::SetCost(const std::vector<std::size_t>& members) const {
  double cost = 0.0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      const double d = (*table_)(members[i], members[j]);
      cost += d * d;
    }
  }
  return cost;
}

std::optional<std::vector<std::size_t>> OnlineScheduler::Allocate(const std::string& name,
                                                                  std::size_t switch_count) {
  CS_CHECK(switch_count >= 1, "allocation needs at least one switch");
  CS_CHECK(allocations_.find(name) == allocations_.end(), "'", name, "' already allocated");
  CS_CHECK(!IsPending(name), "'", name, "' is pending re-placement after an eviction");
  return TryPlace(name, switch_count);
}

std::optional<std::vector<std::size_t>> OnlineScheduler::TryPlace(const std::string& name,
                                                                  std::size_t switch_count) {
  if (free_.size() < switch_count) {
    return std::nullopt;
  }

  // Greedy: try every free switch as the seed; grow by the free switch with
  // the least added cost; keep the cheapest grown set.
  std::vector<std::size_t> best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t seed : free_) {
    std::vector<std::size_t> chosen{seed};
    std::vector<std::size_t> pool;
    pool.reserve(free_.size() - 1);
    for (std::size_t s : free_) {
      if (s != seed) pool.push_back(s);
    }
    double cost = 0.0;
    while (chosen.size() < switch_count) {
      std::size_t pick = 0;
      double pick_delta = std::numeric_limits<double>::infinity();
      for (std::size_t k = 0; k < pool.size(); ++k) {
        double delta = 0.0;
        for (std::size_t m : chosen) {
          const double d = (*table_)(pool[k], m);
          delta += d * d;
        }
        if (delta < pick_delta) {
          pick_delta = delta;
          pick = k;
        }
      }
      cost += pick_delta;
      chosen.push_back(pool[pick]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (cost < best_cost - 1e-12) {
      best_cost = cost;
      best = chosen;
    }
  }

  // Local search: swap a chosen switch for a free one while it helps.
  for (std::size_t round = 0; round < options_.local_search_iterations; ++round) {
    bool improved = false;
    for (std::size_t i = 0; i < best.size() && !improved; ++i) {
      for (std::size_t candidate : free_) {
        if (std::find(best.begin(), best.end(), candidate) != best.end()) continue;
        std::vector<std::size_t> trial = best;
        trial[i] = candidate;
        const double cost = SetCost(trial);
        if (cost < best_cost - 1e-12) {
          best_cost = cost;
          best = std::move(trial);
          improved = true;
          break;
        }
      }
    }
    if (!improved) break;
  }

  std::sort(best.begin(), best.end());
  for (std::size_t s : best) {
    is_free_[s] = false;
  }
  free_.erase(std::remove_if(free_.begin(), free_.end(),
                             [&](std::size_t s) { return !is_free_[s]; }),
              free_.end());
  allocations_[name] = best;
  return best;
}

void OnlineScheduler::Release(const std::string& name) {
  auto it = allocations_.find(name);
  CS_CHECK(it != allocations_.end(), "unknown allocation '", name, "'");
  for (std::size_t s : it->second) {
    CS_DCHECK(!is_free_[s], "double free of switch ", s);
    // A switch that failed while allocated stays out of the free pool.
    if (failed_[s]) continue;
    is_free_[s] = true;
    free_.push_back(s);
  }
  std::sort(free_.begin(), free_.end());
  allocations_.erase(it);
  RetryPending();
}

RemapOutcome OnlineScheduler::FailSwitch(std::size_t s) {
  CS_CHECK(s < failed_.size(), "switch out of range");
  RemapOutcome outcome;
  if (failed_[s]) return outcome;  // idempotent
  failed_[s] = true;
  obs::Registry::Global().GetCounter("sched.remap.switch_failures").Add();
  if (is_free_[s]) {
    is_free_[s] = false;
    free_.erase(std::remove(free_.begin(), free_.end(), s), free_.end());
    return outcome;  // nothing was running there
  }

  // Evict every application holding the dead switch, freeing its healthy
  // switches, then try to re-place each one immediately.
  std::vector<std::pair<std::string, std::size_t>> evicted;
  for (auto it = allocations_.begin(); it != allocations_.end();) {
    const bool holds = std::find(it->second.begin(), it->second.end(), s) != it->second.end();
    if (!holds) {
      ++it;
      continue;
    }
    evicted.emplace_back(it->first, it->second.size());
    TraceRemap("evict", it->first, s);
    obs::Registry::Global().GetCounter("sched.remap.evictions").Add();
    for (const std::size_t member : it->second) {
      if (member == s || failed_[member]) continue;
      is_free_[member] = true;
      free_.push_back(member);
    }
    it = allocations_.erase(it);
  }
  std::sort(free_.begin(), free_.end());

  for (const auto& [name, switch_count] : evicted) {
    if (TryPlace(name, switch_count).has_value()) {
      TraceRemap("reallocate", name, s);
      obs::Registry::Global().GetCounter("sched.remap.reallocated").Add();
      outcome.remapped.push_back(name);
    } else {
      TraceRemap("defer", name, s);
      obs::Registry::Global().GetCounter("sched.remap.deferred").Add();
      pending_.push_back({name, switch_count, 1, 1});
      outcome.pending.push_back(name);
    }
  }
  return outcome;
}

RemapOutcome OnlineScheduler::RestoreSwitch(std::size_t s) {
  CS_CHECK(s < failed_.size(), "switch out of range");
  if (!failed_[s]) return RetryPending();  // healthy already; still tick
  failed_[s] = false;
  is_free_[s] = true;
  free_.push_back(s);
  std::sort(free_.begin(), free_.end());
  obs::Registry::Global().GetCounter("sched.remap.switch_restores").Add();
  TraceRemap("restore", "", s);
  return RetryPending();
}

RemapOutcome OnlineScheduler::RetryPending() {
  RemapOutcome outcome;
  std::vector<PendingApp> still_pending;
  for (PendingApp app : pending_) {
    if (app.cooldown > 1) {
      --app.cooldown;
      still_pending.push_back(std::move(app));
      continue;
    }
    if (TryPlace(app.name, app.switch_count).has_value()) {
      TraceRemap("reallocate", app.name, SIZE_MAX);
      obs::Registry::Global().GetCounter("sched.remap.reallocated").Add();
      outcome.remapped.push_back(app.name);
    } else {
      ++app.attempts;
      app.cooldown = std::min<std::size_t>(std::size_t{1} << std::min<std::size_t>(app.attempts, 6),
                                           kMaxCooldownTicks);
      outcome.pending.push_back(app.name);
      still_pending.push_back(std::move(app));
    }
  }
  pending_ = std::move(still_pending);
  return outcome;
}

std::vector<std::string> OnlineScheduler::PendingApplications() const {
  std::vector<std::string> names;
  names.reserve(pending_.size());
  for (const PendingApp& app : pending_) names.push_back(app.name);
  return names;
}

bool OnlineScheduler::IsPending(const std::string& name) const {
  return std::any_of(pending_.begin(), pending_.end(),
                     [&](const PendingApp& app) { return app.name == name; });
}

std::size_t OnlineScheduler::FreeSwitchCount() const { return free_.size(); }

double OnlineScheduler::AllocationCost(const std::string& name) const {
  auto it = allocations_.find(name);
  CS_CHECK(it != allocations_.end(), "unknown allocation '", name, "'");
  const std::size_t n = it->second.size();
  if (n < 2) return 0.0;
  return SetCost(it->second) / (static_cast<double>(n) * (n - 1) / 2.0);
}

double OnlineScheduler::FragmentationIndex() const {
  double sum = 0.0;
  std::size_t counted = 0;
  for (const auto& [name, members] : allocations_) {
    if (members.size() < 2) continue;
    sum += AllocationCost(name) / table_->MeanSquaredDistance();
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

qual::Partition OnlineScheduler::SnapshotPartition(std::vector<std::string>* cluster_names) const {
  std::vector<std::size_t> cluster_of(graph_->switch_count(), 0);
  std::vector<std::string> names;
  std::size_t next = 0;
  for (const auto& [name, members] : allocations_) {
    for (std::size_t s : members) {
      cluster_of[s] = next;
    }
    names.push_back(name);
    ++next;
  }
  if (!free_.empty()) {
    for (std::size_t s : free_) {
      cluster_of[s] = next;
    }
    names.push_back("<idle>");
    ++next;
  }
  CS_CHECK(next >= 1, "empty system has no partition");
  if (cluster_names) *cluster_names = std::move(names);
  return qual::Partition(std::move(cluster_of));
}

}  // namespace commsched::sched
