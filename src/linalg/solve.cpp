#include "linalg/solve.h"

#include <algorithm>
#include <cmath>

namespace commsched::linalg {

std::optional<LuFactorization> LuFactorization::Compute(const Matrix& a, double tol) {
  CS_CHECK(a.rows() == a.cols(), "LU requires a square matrix");
  const std::size_t n = a.rows();
  Matrix lu = a;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  int sign = 1;

  double max_abs = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      max_abs = std::max(max_abs, std::abs(lu(r, c)));
    }
  }
  const double threshold = tol * std::max(max_abs, 1.0);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |entry| in column k at/below the diagonal.
    std::size_t pivot_row = k;
    double pivot_val = std::abs(lu(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      if (std::abs(lu(r, k)) > pivot_val) {
        pivot_val = std::abs(lu(r, k));
        pivot_row = r;
      }
    }
    if (pivot_val <= threshold) {
      return std::nullopt;  // singular
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu(k, c), lu(pivot_row, c));
      }
      std::swap(perm[k], perm[pivot_row]);
      sign = -sign;
    }
    const double inv_pivot = 1.0 / lu(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu(r, k) * inv_pivot;
      lu(r, k) = factor;
      if (factor == 0.0) continue;
      double* rrow = lu.row(r);
      const double* krow = lu.row(k);
      for (std::size_t c = k + 1; c < n; ++c) {
        rrow[c] -= factor * krow[c];
      }
    }
  }
  return LuFactorization(std::move(lu), std::move(perm), sign);
}

std::vector<double> LuFactorization::Solve(const std::vector<double>& b) const {
  const std::size_t n = order();
  CS_CHECK(b.size() == n, "rhs size mismatch");
  std::vector<double> x(n);
  // Apply permutation, forward-substitute L (unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[perm_[i]];
    const double* row = lu_.row(i);
    for (std::size_t j = 0; j < i; ++j) {
      sum -= row[j] * x[j];
    }
    x[i] = sum;
  }
  // Back-substitute U.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = x[ii];
    const double* row = lu_.row(ii);
    for (std::size_t j = ii + 1; j < n; ++j) {
      sum -= row[j] * x[j];
    }
    x[ii] = sum / row[ii];
  }
  return x;
}

double LuFactorization::Determinant() const {
  double det = perm_sign_;
  for (std::size_t i = 0; i < order(); ++i) {
    det *= lu_(i, i);
  }
  return det;
}

std::optional<CholeskyFactorization> CholeskyFactorization::Compute(const Matrix& a, double tol) {
  CS_CHECK(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  double max_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) max_diag = std::max(max_diag, std::abs(a(i, i)));
  const double threshold = tol * std::max(max_diag, 1.0);

  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) {
      diag -= l(j, k) * l(j, k);
    }
    if (diag <= threshold) {
      return std::nullopt;  // not SPD
    }
    l(j, j) = std::sqrt(diag);
    const double inv = 1.0 / l(j, j);
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        sum -= l(i, k) * l(j, k);
      }
      l(i, j) = sum * inv;
    }
  }
  return CholeskyFactorization(std::move(l));
}

std::vector<double> CholeskyFactorization::Solve(const std::vector<double>& b) const {
  const std::size_t n = order();
  CS_CHECK(b.size() == n, "rhs size mismatch");
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t j = 0; j < i; ++j) {
      sum -= l_(i, j) * y[j];
    }
    y[i] = sum / l_(i, i);
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) {
      sum -= l_(j, ii) * x[j];
    }
    x[ii] = sum / l_(ii, ii);
  }
  return x;
}

std::vector<double> SolveLinearSystem(const Matrix& a, const std::vector<double>& b) {
  auto lu = LuFactorization::Compute(a);
  CS_CHECK(lu.has_value(), "singular system in SolveLinearSystem");
  return lu->Solve(b);
}

}  // namespace commsched::linalg
