#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

namespace commsched::linalg {

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  CS_CHECK(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  CS_CHECK(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  CS_CHECK(a.cols_ == b.rows_, "shape mismatch in matrix product");
  Matrix out(a.rows_, b.cols_);
  for (std::size_t i = 0; i < a.rows_; ++i) {
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.row(k);
      double* orow = out.row(i);
      for (std::size_t j = 0; j < b.cols_; ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
  return out;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  CS_CHECK(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch in MaxAbsDiff");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << std::fixed << std::setprecision(4);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << (c ? " " : "") << std::setw(9) << m(r, c);
    }
    os << '\n';
  }
  return os;
}

}  // namespace commsched::linalg
