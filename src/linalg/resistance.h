// Effective-resistance computation on weighted resistor networks.
//
// This is the numerical core of the paper's "equivalent distance" (§3):
// every link on a routing-supplied shortest path becomes a 1 Ω resistor and
// the equivalent distance between two switches is the effective resistance
// between the corresponding terminals.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace commsched::linalg {

/// One resistor between nodes `a` and `b` with conductance 1/resistance.
struct Resistor {
  std::size_t a = 0;
  std::size_t b = 0;
  double resistance = 1.0;
};

/// A resistor network over nodes 0..node_count-1. Parallel resistors are
/// allowed (conductances add); self-loops are rejected.
class ResistorNetwork {
 public:
  explicit ResistorNetwork(std::size_t node_count);

  /// Adds a resistor; resistance must be positive and a != b.
  void Add(std::size_t a, std::size_t b, double resistance = 1.0);

  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] const std::vector<Resistor>& resistors() const { return resistors_; }

  /// Weighted graph Laplacian L (conductance matrix).
  [[nodiscard]] Matrix Laplacian() const;

  /// Effective resistance between s and t.  Requires that s and t are in the
  /// same connected component (checked; throws ContractError otherwise).
  /// Solves the grounded Laplacian system L' v = e_s with node t removed.
  [[nodiscard]] double EffectiveResistance(std::size_t s, std::size_t t) const;

  /// True if s and t are connected through resistors.
  [[nodiscard]] bool Connected(std::size_t s, std::size_t t) const;

 private:
  std::size_t node_count_;
  std::vector<Resistor> resistors_;
};

/// Effective resistance between every pair of a connected network, via one
/// pseudo-inverse-style solve per node: R(i,j) = M(i,i) + M(j,j) - 2 M(i,j)
/// where M is the inverse of the Laplacian grounded at node 0, extended with
/// zero row/column at the ground. Faster than n^2 independent solves.
[[nodiscard]] Matrix AllPairsEffectiveResistance(const ResistorNetwork& network);

}  // namespace commsched::linalg
