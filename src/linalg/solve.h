// Direct solvers: LU with partial pivoting and Cholesky (LL^T).
// Sized for the small dense systems arising from resistor networks.
#pragma once

#include <optional>
#include <vector>

#include "linalg/matrix.h"

namespace commsched::linalg {

/// LU factorization with partial pivoting of a square matrix.
/// Factor once, solve many right-hand sides.
class LuFactorization {
 public:
  /// Factors `a`; returns nullopt if the matrix is singular (to working
  /// precision, pivot < tol * max|a|).
  [[nodiscard]] static std::optional<LuFactorization> Compute(const Matrix& a,
                                                              double tol = 1e-12);

  /// Solves A x = b. b.size() must equal the matrix order.
  [[nodiscard]] std::vector<double> Solve(const std::vector<double>& b) const;

  /// Determinant of A (product of pivots with sign of the permutation).
  [[nodiscard]] double Determinant() const;

  [[nodiscard]] std::size_t order() const { return lu_.rows(); }

 private:
  LuFactorization(Matrix lu, std::vector<std::size_t> perm, int perm_sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), perm_sign_(perm_sign) {}

  Matrix lu_;                       // packed L (unit diag) and U
  std::vector<std::size_t> perm_;   // row permutation
  int perm_sign_;
};

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
class CholeskyFactorization {
 public:
  /// Returns nullopt if `a` is not positive definite (within tolerance).
  [[nodiscard]] static std::optional<CholeskyFactorization> Compute(const Matrix& a,
                                                                    double tol = 1e-12);

  [[nodiscard]] std::vector<double> Solve(const std::vector<double>& b) const;

  [[nodiscard]] std::size_t order() const { return l_.rows(); }

 private:
  explicit CholeskyFactorization(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// One-shot convenience: solves A x = b by LU; throws ContractError on a
/// singular matrix.
[[nodiscard]] std::vector<double> SolveLinearSystem(const Matrix& a, const std::vector<double>& b);

}  // namespace commsched::linalg
