// Dense row-major matrix of doubles.  Networks in this library have at most
// a few dozen switches, so dense storage and O(n^3) factorizations are the
// right tool; no sparse machinery is warranted.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "common/check.h"

namespace commsched::linalg {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Identity matrix of order n.
  [[nodiscard]] static Matrix Identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    CS_DCHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    CS_DCHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Raw row pointer (row-major, contiguous).
  [[nodiscard]] double* row(std::size_t r) { return &data_[r * cols_]; }
  [[nodiscard]] const double* row(std::size_t r) const { return &data_[r * cols_]; }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  [[nodiscard]] Matrix Transposed() const;

  /// Matrix product (dims must agree).
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  /// Max-abs element difference; matrices must have equal shape.
  [[nodiscard]] double MaxAbsDiff(const Matrix& other) const;

  friend std::ostream& operator<<(std::ostream& os, const Matrix& m);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace commsched::linalg
