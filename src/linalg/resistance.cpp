#include "linalg/resistance.h"

#include <vector>

#include "linalg/solve.h"

namespace commsched::linalg {

ResistorNetwork::ResistorNetwork(std::size_t node_count) : node_count_(node_count) {
  CS_CHECK(node_count >= 1, "resistor network needs at least one node");
}

void ResistorNetwork::Add(std::size_t a, std::size_t b, double resistance) {
  CS_CHECK(a < node_count_ && b < node_count_, "resistor endpoint out of range");
  CS_CHECK(a != b, "self-loop resistor is meaningless");
  CS_CHECK(resistance > 0.0, "resistance must be positive");
  resistors_.push_back({a, b, resistance});
}

Matrix ResistorNetwork::Laplacian() const {
  Matrix l(node_count_, node_count_);
  for (const Resistor& r : resistors_) {
    const double g = 1.0 / r.resistance;
    l(r.a, r.a) += g;
    l(r.b, r.b) += g;
    l(r.a, r.b) -= g;
    l(r.b, r.a) -= g;
  }
  return l;
}

bool ResistorNetwork::Connected(std::size_t s, std::size_t t) const {
  CS_CHECK(s < node_count_ && t < node_count_, "node out of range");
  if (s == t) return true;
  std::vector<std::vector<std::size_t>> adj(node_count_);
  for (const Resistor& r : resistors_) {
    adj[r.a].push_back(r.b);
    adj[r.b].push_back(r.a);
  }
  std::vector<bool> seen(node_count_, false);
  std::vector<std::size_t> stack{s};
  seen[s] = true;
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    if (u == t) return true;
    for (std::size_t v : adj[u]) {
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  return false;
}

double ResistorNetwork::EffectiveResistance(std::size_t s, std::size_t t) const {
  CS_CHECK(s < node_count_ && t < node_count_, "terminal out of range");
  if (s == t) return 0.0;
  CS_CHECK(Connected(s, t), "terminals are not connected; resistance is infinite");

  // Ground node t: delete its row/column from L, solve L' v = e_s.
  const Matrix l = Laplacian();
  const std::size_t n = node_count_;
  // Map original node -> reduced index.
  std::vector<std::size_t> reduced(n, static_cast<std::size_t>(-1));
  std::size_t idx = 0;
  for (std::size_t u = 0; u < n; ++u) {
    if (u != t) reduced[u] = idx++;
  }
  Matrix lg(n - 1, n - 1);
  for (std::size_t r = 0; r < n; ++r) {
    if (r == t) continue;
    for (std::size_t c = 0; c < n; ++c) {
      if (c == t) continue;
      lg(reduced[r], reduced[c]) = l(r, c);
    }
  }
  std::vector<double> rhs(n - 1, 0.0);
  rhs[reduced[s]] = 1.0;

  // The grounded Laplacian restricted to the component of s is SPD; if the
  // network has other disconnected nodes the full grounded matrix is
  // singular, so restrict to nodes reachable from s or t first.
  // (Connectivity of s,t was checked; unreachable nodes have zero rows.)
  // Drop isolated/unreachable rows to keep the solver happy.
  std::vector<std::vector<std::size_t>> adj(n);
  for (const Resistor& r : resistors_) {
    adj[r.a].push_back(r.b);
    adj[r.b].push_back(r.a);
  }
  std::vector<bool> reach(n, false);
  std::vector<std::size_t> stack{s};
  reach[s] = true;
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    for (std::size_t v : adj[u]) {
      if (!reach[v]) {
        reach[v] = true;
        stack.push_back(v);
      }
    }
  }
  std::vector<std::size_t> keep;  // reduced indices to keep
  for (std::size_t u = 0; u < n; ++u) {
    if (u != t && reach[u]) keep.push_back(reduced[u]);
  }
  Matrix lk(keep.size(), keep.size());
  std::vector<double> rhsk(keep.size());
  for (std::size_t r = 0; r < keep.size(); ++r) {
    rhsk[r] = rhs[keep[r]];
    for (std::size_t c = 0; c < keep.size(); ++c) {
      lk(r, c) = lg(keep[r], keep[c]);
    }
  }

  auto chol = CholeskyFactorization::Compute(lk);
  std::vector<double> v;
  if (chol) {
    v = chol->Solve(rhsk);
  } else {
    v = SolveLinearSystem(lk, rhsk);  // fallback (shouldn't happen for SPD)
  }
  // v[s] is the potential at s with 1 A injected at s and extracted at the
  // grounded t, i.e. the effective resistance.
  for (std::size_t r = 0; r < keep.size(); ++r) {
    if (keep[r] == reduced[s]) {
      return v[r];
    }
  }
  CS_UNREACHABLE("source vanished from reduced system");
}

Matrix AllPairsEffectiveResistance(const ResistorNetwork& network) {
  const std::size_t n = network.node_count();
  Matrix result(n, n);
  if (n == 1) return result;
  for (std::size_t u = 1; u < n; ++u) {
    CS_CHECK(network.Connected(0, u), "AllPairsEffectiveResistance requires a connected network");
  }
  // Ground node 0; invert the reduced Laplacian by solving n-1 systems with
  // one Cholesky factorization.
  const Matrix l = network.Laplacian();
  Matrix lg(n - 1, n - 1);
  for (std::size_t r = 1; r < n; ++r) {
    for (std::size_t c = 1; c < n; ++c) {
      lg(r - 1, c - 1) = l(r, c);
    }
  }
  auto chol = CholeskyFactorization::Compute(lg);
  CS_CHECK(chol.has_value(), "grounded Laplacian must be SPD for a connected network");
  Matrix m(n, n);  // M = L^+-like matrix with ground row/col zero
  for (std::size_t c = 1; c < n; ++c) {
    std::vector<double> e(n - 1, 0.0);
    e[c - 1] = 1.0;
    const std::vector<double> col = chol->Solve(e);
    for (std::size_t r = 1; r < n; ++r) {
      m(r, c) = col[r - 1];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      result(i, j) = m(i, i) + m(j, j) - m(i, j) - m(j, i);
    }
  }
  return result;
}

}  // namespace commsched::linalg
