#include "distance/distance_table.h"

#include <cmath>
#include <sstream>

#include "common/parallel.h"
#include "linalg/resistance.h"

namespace commsched::dist {

DistanceTable::DistanceTable(std::size_t n, double fill) : n_(n), values_(n * n, fill) {
  for (std::size_t i = 0; i < n; ++i) {
    values_[i * n + i] = 0.0;
  }
}

void DistanceTable::Set(std::size_t i, std::size_t j, double value) {
  CS_CHECK(i < n_ && j < n_, "distance index out of range");
  CS_CHECK(i != j || value == 0.0, "diagonal must stay zero");
  CS_CHECK(value >= 0.0, "distances are non-negative");
  values_[i * n_ + j] = value;
  values_[j * n_ + i] = value;
}

namespace {

/// Equivalent distance for one pair: restrict to links on minimal permitted
/// paths, 1 Ω each, effective resistance between the endpoints.
double PairEquivalentDistance(const Routing& routing, SwitchId i, SwitchId j) {
  const auto links = routing.LinksOnMinimalPaths(i, j);
  CS_CHECK(!links.empty(), "connected pair must have at least one path link");
  linalg::ResistorNetwork network(routing.graph().switch_count());
  for (topo::LinkId l : links) {
    const topo::Link& link = routing.graph().link(l);
    network.Add(link.a, link.b, 1.0);
  }
  return network.EffectiveResistance(i, j);
}

}  // namespace

DistanceTable DistanceTable::Build(const Routing& routing, bool parallel) {
  const std::size_t n = routing.graph().switch_count();
  DistanceTable table(n, 0.0);

  // All unordered pairs, flattened for the parallel loop.
  std::vector<std::pair<SwitchId, SwitchId>> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (SwitchId i = 0; i < n; ++i) {
    for (SwitchId j = i + 1; j < n; ++j) {
      pairs.emplace_back(i, j);
    }
  }
  auto compute = [&](std::size_t k) {
    const auto [i, j] = pairs[k];
    const double d = PairEquivalentDistance(routing, i, j);
    // Each task writes a distinct (i,j): no synchronization needed.
    table.values_[i * n + j] = d;
    table.values_[j * n + i] = d;
  };
  if (parallel && pairs.size() > 8) {
    ParallelFor(pairs.size(), compute);
  } else {
    for (std::size_t k = 0; k < pairs.size(); ++k) compute(k);
  }
  return table;
}

DistanceTable DistanceTable::BuildHopCount(const Routing& routing) {
  const std::size_t n = routing.graph().switch_count();
  DistanceTable table(n, 0.0);
  for (SwitchId i = 0; i < n; ++i) {
    for (SwitchId j = i + 1; j < n; ++j) {
      table.Set(i, j, static_cast<double>(routing.MinimalDistance(i, j)));
    }
  }
  return table;
}

DistanceTable DistanceTable::BuildGraphHops(const topo::SwitchGraph& graph) {
  const std::size_t n = graph.switch_count();
  DistanceTable table(n, 0.0);
  for (SwitchId i = 0; i < n; ++i) {
    const std::vector<std::size_t> hops = graph.BfsDistances(i);
    for (SwitchId j = i + 1; j < n; ++j) {
      CS_CHECK(hops[j] != static_cast<std::size_t>(-1), "graph must be connected");
      table.Set(i, j, static_cast<double>(hops[j]));
    }
  }
  return table;
}

DistanceTable DistanceTable::FromValues(std::size_t n, std::vector<double> values) {
  if (values.size() != n * n) {
    throw ConfigError("distance table payload holds " + std::to_string(values.size()) +
                      " values, expected " + std::to_string(n * n));
  }
  DistanceTable table;
  table.n_ = n;
  table.values_ = std::move(values);
  return table;
}

double DistanceTable::SumSquaredAllPairs() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      const double d = values_[i * n_ + j];
      sum += d * d;
    }
  }
  return sum;
}

double DistanceTable::MeanSquaredDistance() const {
  CS_CHECK(n_ >= 2, "need at least two switches");
  return SumSquaredAllPairs() / (static_cast<double>(n_) * (n_ - 1) / 2.0);
}

bool DistanceTable::SatisfiesTriangleInequality(double tolerance) const {
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (i == j) continue;
      for (std::size_t k = 0; k < n_; ++k) {
        if (k == i || k == j) continue;
        if ((*this)(i, j) > (*this)(i, k) + (*this)(k, j) + tolerance) {
          return false;
        }
      }
    }
  }
  return true;
}

double DistanceTable::MaxAbsDiff(const DistanceTable& other) const {
  CS_CHECK(n_ == other.n_, "table size mismatch");
  double worst = 0.0;
  for (std::size_t k = 0; k < values_.size(); ++k) {
    worst = std::max(worst, std::abs(values_[k] - other.values_[k]));
  }
  return worst;
}

std::string DistanceTable::ToCsv() const {
  std::ostringstream oss;
  oss << "switch";
  for (std::size_t j = 0; j < n_; ++j) oss << ',' << j;
  oss << '\n';
  for (std::size_t i = 0; i < n_; ++i) {
    oss << i;
    for (std::size_t j = 0; j < n_; ++j) {
      oss << ',' << (*this)(i, j);
    }
    oss << '\n';
  }
  return oss.str();
}

double CorrelateTables(const DistanceTable& a, const DistanceTable& b) {
  CS_CHECK(a.size() == b.size(), "table size mismatch");
  const std::size_t n = a.size();
  CS_CHECK(n >= 3, "need at least 3 switches for a meaningful correlation");
  double mean_a = 0.0;
  double mean_b = 0.0;
  const double pairs = static_cast<double>(n) * (n - 1) / 2.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      mean_a += a(i, j);
      mean_b += b(i, j);
    }
  }
  mean_a /= pairs;
  mean_b /= pairs;
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double da = a(i, j) - mean_a;
      const double db = b(i, j) - mean_b;
      cov += da * db;
      var_a += da * da;
      var_b += db * db;
    }
  }
  CS_CHECK(var_a > 0.0 && var_b > 0.0, "degenerate table in correlation");
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace commsched::dist
