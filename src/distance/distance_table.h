// The table of equivalent distances (paper §3, originally [2]).
//
// For each switch pair (i, j): take the union of links on every minimal path
// supplied by the routing algorithm, replace each link by a 1 Ω resistor, and
// define T[i][j] as the effective resistance between i and j. The table
// captures both topology and routing, is traffic-independent, does not
// satisfy the triangle inequality (so it is not a metric), and is the basis
// of the scheduling quality functions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "routing/routing.h"

namespace commsched::dist {

using route::Routing;
using topo::SwitchId;

/// Symmetric N x N table of equivalent distances; T[i][i] == 0.
class DistanceTable {
 public:
  DistanceTable() = default;

  /// Table with all off-diagonal entries `fill` (mostly for tests).
  DistanceTable(std::size_t n, double fill);

  /// Builds the equivalent-distance table for a routing function, optionally
  /// parallelizing across pairs.
  [[nodiscard]] static DistanceTable Build(const Routing& routing, bool parallel = true);

  /// Hop-count table (ablation baseline): T[i][j] = minimal legal hops.
  [[nodiscard]] static DistanceTable BuildHopCount(const Routing& routing);

  /// BFS hop-count table straight from the graph, no routing function — the
  /// large-fabric path (DESIGN.md §13). Build()'s per-pair effective-
  /// resistance solves are infeasible at 10^3 switches; one BFS per source
  /// is O(N(N+L)) total. Requires a connected graph.
  [[nodiscard]] static DistanceTable BuildGraphHops(const topo::SwitchGraph& graph);

  /// Reconstructs a table from its raw row-major values (the artifact-store
  /// warm-boot path, DESIGN.md §14); `values` must hold n*n entries. Throws
  /// ConfigError on a size mismatch.
  [[nodiscard]] static DistanceTable FromValues(std::size_t n, std::vector<double> values);

  /// The raw row-major values (n*n entries) — the persisted representation.
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  [[nodiscard]] std::size_t size() const { return n_; }

  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    CS_DCHECK(i < n_ && j < n_, "distance index out of range");
    return values_[i * n_ + j];
  }

  void Set(std::size_t i, std::size_t j, double value);

  /// Sum of squared distances over unordered pairs: sum_{i<j} T[i][j]^2.
  [[nodiscard]] double SumSquaredAllPairs() const;

  /// Quadratic mean normalizer of eq. (2)/(5): SumSquaredAllPairs() divided
  /// by N(N-1)/2.
  [[nodiscard]] double MeanSquaredDistance() const;

  /// True if T[i][j] <= T[i][k] + T[k][j] for all triples (the equivalent
  /// distance generally violates this; exposed so tests/benches can report
  /// how non-metric a table is).
  [[nodiscard]] bool SatisfiesTriangleInequality(double tolerance = 1e-9) const;

  /// Max |T - other| entry.
  [[nodiscard]] double MaxAbsDiff(const DistanceTable& other) const;

  /// CSV rendering (switch ids as header).
  [[nodiscard]] std::string ToCsv() const;

 private:
  std::size_t n_ = 0;
  std::vector<double> values_;
};

/// Pearson correlation between the equivalent-distance and hop-count tables
/// (upper triangle); the paper reports the equivalent distance tracks
/// congestion better than hops, but the two are strongly related.
[[nodiscard]] double CorrelateTables(const DistanceTable& a, const DistanceTable& b);

}  // namespace commsched::dist
