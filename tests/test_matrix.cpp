#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace commsched::linalg {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 9.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 9.0);
}

TEST(Matrix, IdentityProperties) {
  const Matrix id = Matrix::Identity(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, AdditionSubtraction) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 2.0);
  a += b;
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(1, 1), 1.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  Matrix b(3, 2);
  EXPECT_THROW(a += b, commsched::ContractError);
  EXPECT_THROW(a -= b, commsched::ContractError);
  EXPECT_THROW((void)a.MaxAbsDiff(b), commsched::ContractError);
}

TEST(Matrix, ScalarMultiply) {
  Matrix a(2, 2, 3.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(0, 1), 6.0);
}

TEST(Matrix, Transpose) {
  Matrix a(2, 3);
  a(0, 1) = 5.0;
  a(1, 2) = -2.0;
  const Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(2, 1), -2.0);
}

TEST(Matrix, ProductMatchesHandComputation) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double va = 1.0;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = va++;
  double vb = 7.0;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c) b(r, c) = vb++;
  const Matrix p = a * b;
  EXPECT_DOUBLE_EQ(p(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 154.0);
}

TEST(Matrix, ProductWithIdentityIsIdentityOp) {
  Matrix a(3, 3);
  double v = 0.5;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = v += 0.25;
  const Matrix p = a * Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(p.MaxAbsDiff(a), 0.0);
}

TEST(Matrix, ProductShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW((void)(a * b), commsched::ContractError);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 1.0);
  b(1, 0) = 1.75;
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 0.75);
}

}  // namespace
}  // namespace commsched::linalg
