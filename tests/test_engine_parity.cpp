// Engine parity corpus (ISSUE 4): every searcher ported onto the
// Objective × SearchEngine core must return *bit-identical* results to the
// pre-refactor hand-rolled loops. The golden file was generated from the
// pre-refactor implementations (COMMSCHED_UPDATE_GOLDEN=1) and is never
// regenerated as part of the refactor itself.
//
// Coverage: 8/16/24-switch irregular networks × plain/weighted/intensity/
// anchored tabu, steepest descent, random sampling, simulated annealing,
// genetic annealing, and anchored repair. Floats are serialized as hexfloats
// so the comparison is exact to the last bit.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "distance/distance_table.h"
#include "quality/weighted.h"
#include "routing/updown.h"
#include "sched/annealing.h"
#include "sched/local_search.h"
#include "sched/repair.h"
#include "sched/tabu.h"
#include "sched/weighted_tabu.h"
#include "topology/generator.h"

namespace commsched::sched {
namespace {

#ifndef COMMSCHED_TEST_DATA_DIR
#define COMMSCHED_TEST_DATA_DIR "tests/data"
#endif

const char* const kGoldenPath = COMMSCHED_TEST_DATA_DIR "/engine_parity.golden.txt";

using Corpus = std::map<std::string, std::string>;

DistanceTable PaperTable(std::size_t switches, std::uint64_t seed) {
  topo::IrregularTopologyOptions options;
  options.switch_count = switches;
  options.seed = seed;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const route::UpDownRouting routing(g);
  return DistanceTable::Build(routing);
}

std::string Hex(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

void RecordResult(Corpus& corpus, const std::string& key, const SearchResult& result) {
  corpus[key + ".best"] = result.best.ToString();
  corpus[key + ".best_fg"] = Hex(result.best_fg);
  corpus[key + ".best_dg"] = Hex(result.best_dg);
  corpus[key + ".best_cc"] = Hex(result.best_cc);
  corpus[key + ".iterations"] = std::to_string(result.iterations);
  corpus[key + ".evaluations"] = std::to_string(result.evaluations);
  corpus[key + ".moved"] = std::to_string(result.moved_from_anchor);
}

void RecordRepair(Corpus& corpus, const std::string& key, const RepairOutcome& outcome) {
  corpus[key + ".repaired"] = outcome.repaired.ToString();
  corpus[key + ".forced_moves"] = std::to_string(outcome.forced_moves);
  corpus[key + ".refinement_swaps"] = std::to_string(outcome.refinement_swaps);
  corpus[key + ".displaced"] = std::to_string(outcome.displaced);
  corpus[key + ".anchor_fg"] = Hex(outcome.anchor_fg);
  corpus[key + ".repaired_fg"] = Hex(outcome.repaired_fg);
  corpus[key + ".repaired_cc"] = Hex(outcome.repaired_cc);
}

/// Deterministic synthetic weight matrix (no RNG: exactly reproducible).
qual::WeightMatrix SyntheticWeights(std::size_t n) {
  qual::WeightMatrix weights(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      weights.Set(i, j, 1.0 + static_cast<double>((i * 7 + j * 3) % 5));
    }
  }
  return weights;
}

std::vector<double> SyntheticIntensity(std::size_t clusters) {
  std::vector<double> intensity(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    intensity[c] = 1.0 + 0.5 * static_cast<double>(c);
  }
  return intensity;
}

/// Runs every searcher over one network and records the results under
/// `prefix`. The options deliberately exercise tenure/aspiration/local-min
/// machinery (small iteration budgets force escape moves).
void RunCases(Corpus& corpus, const std::string& prefix, std::size_t switches,
              std::uint64_t topo_seed, const std::vector<std::size_t>& sizes) {
  const DistanceTable table = PaperTable(switches, topo_seed);

  {
    TabuOptions options;
    options.seeds = 4;
    options.rng_seed = 11;
    RecordResult(corpus, prefix + ".tabu", TabuSearch(table, sizes, options));
  }
  {
    TabuOptions options;
    options.seeds = 3;
    options.rng_seed = 13;
    const qual::Partition anchor = qual::Partition::Blocked(sizes);
    options.anchor = &anchor;
    options.migration_penalty = 0.25;
    RecordResult(corpus, prefix + ".atabu", TabuSearch(table, sizes, options));
  }
  {
    TabuOptions options;
    options.record_trace = true;
    const SearchResult from =
        TabuSearchFrom(table, qual::Partition::Blocked(sizes), options);
    RecordResult(corpus, prefix + ".tabu_from", from);
    corpus[prefix + ".tabu_from.trace_len"] = std::to_string(from.trace.size());
  }
  {
    TabuOptions options;
    options.seeds = 3;
    options.rng_seed = 17;
    RecordResult(corpus, prefix + ".wtabu",
                 WeightedTabuSearch(table, SyntheticWeights(switches), sizes, options));
  }
  {
    TabuOptions options;
    options.seeds = 3;
    options.rng_seed = 19;
    RecordResult(corpus, prefix + ".itabu",
                 IntensityTabuSearch(table, sizes, SyntheticIntensity(sizes.size()), options));
  }
  {
    SteepestDescentOptions options;
    options.restarts = 4;
    options.rng_seed = 23;
    RecordResult(corpus, prefix + ".sd", SteepestDescent(table, sizes, options));
  }
  {
    RandomSearchOptions options;
    options.samples = 50;
    options.rng_seed = 29;
    RecordResult(corpus, prefix + ".random", RandomSearch(table, sizes, options));
  }
  {
    AnnealingOptions options;
    options.iterations = 1500;
    options.rng_seed = 31;
    RecordResult(corpus, prefix + ".sa", SimulatedAnnealing(table, sizes, options));
  }
  {
    GeneticAnnealingOptions options;
    options.generations = 20;
    options.rng_seed = 37;
    RecordResult(corpus, prefix + ".gsa", GeneticSimulatedAnnealing(table, sizes, options));
  }
  {
    Rng rng(41);
    const qual::Partition anchor = qual::Partition::Random(sizes, rng);
    RepairOptions options;
    RecordRepair(corpus, prefix + ".repair", AnchoredRepair(table, anchor, {}, {}, options));
    RepairOptions bounded;
    bounded.migration_budget = 4;
    bounded.migration_penalty = 0.5;
    RecordRepair(corpus, prefix + ".repair_bounded",
                 AnchoredRepair(table, anchor, {}, {}, bounded));
  }
}

Corpus CollectCurrent() {
  Corpus corpus;
  RunCases(corpus, "n8", 8, 1, {2, 2, 2, 2});
  RunCases(corpus, "n16", 16, 4, {4, 4, 4, 4});
  RunCases(corpus, "n24", 24, 2, {6, 6, 6, 6});
  return corpus;
}

Corpus LoadGolden(const std::string& path) {
  Corpus corpus;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    corpus[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return corpus;
}

/// Serializes a SearchResult into one comparable line (hexfloats: exact).
std::string Fingerprint(const SearchResult& result) {
  std::ostringstream out;
  out << result.best.ToString() << "|" << Hex(result.best_fg) << "|" << Hex(result.best_dg)
      << "|" << Hex(result.best_cc) << "|" << result.iterations << "|" << result.evaluations
      << "|" << result.moved_from_anchor << "|" << result.trace.size();
  return out.str();
}

std::string Fingerprint(const RepairOutcome& outcome) {
  std::ostringstream out;
  out << outcome.repaired.ToString() << "|" << outcome.forced_moves << "|"
      << outcome.refinement_swaps << "|" << outcome.displaced << "|" << Hex(outcome.anchor_fg)
      << "|" << Hex(outcome.repaired_fg) << "|" << Hex(outcome.repaired_cc);
  return out.str();
}

/// Every searcher must return identical results with parallel_seeds on and
/// off (engine determinism rules 1-3): starts and RNG streams derive up
/// front and seed results combine sequentially in seed order.
TEST(EngineParity, ParallelMatchesSequential) {
  const DistanceTable table = PaperTable(16, 4);
  const std::vector<std::size_t> sizes = {4, 4, 4, 4};

  const auto both = [](auto run) {
    const std::string sequential = run(false);
    const std::string parallel = run(true);
    EXPECT_EQ(sequential, parallel);
  };

  both([&](bool parallel) {
    TabuOptions options;
    options.seeds = 6;
    options.rng_seed = 11;
    options.record_trace = true;
    options.parallel_seeds = parallel;
    return Fingerprint(TabuSearch(table, sizes, options));
  });
  both([&](bool parallel) {
    TabuOptions options;
    options.seeds = 5;
    options.rng_seed = 13;
    options.migration_penalty = 0.25;
    options.parallel_seeds = parallel;
    const qual::Partition anchor = qual::Partition::Blocked(sizes);
    options.anchor = &anchor;
    return Fingerprint(TabuSearch(table, sizes, options));
  });
  both([&](bool parallel) {
    TabuOptions options;
    options.seeds = 5;
    options.rng_seed = 17;
    options.parallel_seeds = parallel;
    return Fingerprint(WeightedTabuSearch(table, SyntheticWeights(16), sizes, options));
  });
  both([&](bool parallel) {
    TabuOptions options;
    options.seeds = 5;
    options.rng_seed = 19;
    options.parallel_seeds = parallel;
    return Fingerprint(IntensityTabuSearch(table, sizes, SyntheticIntensity(4), options));
  });
  both([&](bool parallel) {
    SteepestDescentOptions options;
    options.restarts = 6;
    options.rng_seed = 23;
    options.parallel_seeds = parallel;
    return Fingerprint(SteepestDescent(table, sizes, options));
  });
  both([&](bool parallel) {
    RandomSearchOptions options;
    options.samples = 64;
    options.rng_seed = 29;
    options.parallel_seeds = parallel;
    return Fingerprint(RandomSearch(table, sizes, options));
  });
  both([&](bool parallel) {
    AnnealingOptions options;
    options.iterations = 800;
    options.restarts = 4;
    options.rng_seed = 31;
    options.record_trace = true;
    options.parallel_seeds = parallel;
    return Fingerprint(SimulatedAnnealing(table, sizes, options));
  });
  both([&](bool parallel) {
    GeneticAnnealingOptions options;
    options.generations = 10;
    options.restarts = 3;
    options.rng_seed = 37;
    options.parallel_seeds = parallel;
    return Fingerprint(GeneticSimulatedAnnealing(table, sizes, options));
  });
  both([&](bool parallel) {
    Rng rng(41);
    const qual::Partition anchor = qual::Partition::Random(sizes, rng);
    RepairOptions options;
    options.seeds = 4;
    options.rng_seed = 43;
    options.migration_budget = 6;
    options.migration_penalty = 0.5;
    options.parallel_seeds = parallel;
    return Fingerprint(AnchoredRepair(table, anchor, {}, {}, options));
  });
}

/// Multi-restart annealing with restart 0 must reproduce the single-restart
/// walk's best when no extra restart wins — and restarts must never make the
/// result worse.
TEST(EngineParity, AnnealingRestartsNeverWorse) {
  const DistanceTable table = PaperTable(16, 4);
  const std::vector<std::size_t> sizes = {4, 4, 4, 4};
  AnnealingOptions single;
  single.iterations = 800;
  single.rng_seed = 31;
  const SearchResult one = SimulatedAnnealing(table, sizes, single);
  AnnealingOptions multi = single;
  multi.restarts = 4;
  const SearchResult four = SimulatedAnnealing(table, sizes, multi);
  EXPECT_LE(four.best_fg, one.best_fg + 1e-12);
}

TEST(EngineParity, MatchesPreRefactorGolden) {
  const Corpus current = CollectCurrent();
  if (std::getenv("COMMSCHED_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
    for (const auto& [key, value] : current) out << key << "=" << value << "\n";
    GTEST_SKIP() << "golden regenerated at " << kGoldenPath;
  }
  const Corpus golden = LoadGolden(kGoldenPath);
  ASSERT_FALSE(golden.empty()) << "missing golden corpus " << kGoldenPath
                               << " (generate with COMMSCHED_UPDATE_GOLDEN=1)";
  // Key-by-key comparison so a mismatch names the exact searcher and field.
  for (const auto& [key, value] : golden) {
    const auto it = current.find(key);
    ASSERT_NE(it, current.end()) << "missing result for " << key;
    EXPECT_EQ(it->second, value) << "bitwise parity lost for " << key;
  }
  EXPECT_EQ(current.size(), golden.size());
}

}  // namespace
}  // namespace commsched::sched
