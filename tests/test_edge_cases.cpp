// Failure-injection / edge-case coverage across modules.
#include <gtest/gtest.h>

#include "core/commsched.h"

namespace commsched {
namespace {

TEST(EdgeCases, WithoutLinkValidatesId) {
  const topo::SwitchGraph g = topo::MakeRing(4);
  EXPECT_THROW((void)g.WithoutLink(99), ContractError);
}

TEST(EdgeCases, WithoutLinkCanDisconnect) {
  topo::SwitchGraph g(3, 1);  // path 0-1-2
  g.AddLink(0, 1);
  g.AddLink(1, 2);
  const topo::SwitchGraph cut = g.WithoutLink(0);
  EXPECT_FALSE(cut.IsConnected());
  EXPECT_THROW(route::UpDownRouting routing(cut), route::DisconnectedGraphError);
}

TEST(EdgeCases, UpDownExplicitRootOutOfRange) {
  const topo::SwitchGraph g = topo::MakeRing(4);
  EXPECT_THROW(route::UpDownRouting routing(g, topo::SwitchId{4}), ContractError);
}

TEST(EdgeCases, EnumerateMinimalPathsLimit) {
  // A 4x4 mesh corner pair has C(6,3) = 20 monotone paths; a limit of 3
  // must trip.
  const topo::SwitchGraph mesh = topo::MakeMesh2D(4, 4);
  const route::ShortestPathRouting routing(mesh);
  EXPECT_THROW((void)route::EnumerateMinimalPaths(routing, 0, 15, 3), ContractError);
}

TEST(EdgeCases, SimulatorWithNoSendersDeliversNothing) {
  // Every application's weight is zero: positive offered load produces no
  // messages (weight sum is zero).
  const topo::SwitchGraph g = topo::GenerateIrregularTopology({8, 4, 3, 1, 1000});
  const route::UpDownRouting routing(g);
  std::vector<work::ApplicationSpec> apps = work::Workload::Uniform(2, 16).applications();
  for (auto& app : apps) app.traffic_weight = 0.0;
  const work::Workload workload(apps);
  Rng rng(1);
  const auto mapping = work::ProcessMapping::RandomAligned(g, workload, rng);
  const sim::TrafficPattern pattern(g, workload, mapping);
  sim::SimConfig config;
  config.warmup_cycles = 100;
  config.measure_cycles = 500;
  sim::NetworkSimulator simulator(g, routing, pattern, config);
  const sim::SimMetrics m = simulator.Run(0.5);
  EXPECT_EQ(m.messages_generated, 0u);
  EXPECT_EQ(m.flits_delivered, 0u);
  EXPECT_FALSE(m.deadlock_detected);
}

TEST(EdgeCases, SingleClusterWorkloadSimulates) {
  // One application owning the whole machine: F_G/D_G are undefined, but
  // the simulator must still run (pure uniform traffic).
  const topo::SwitchGraph g = topo::GenerateIrregularTopology({8, 4, 3, 2, 1000});
  const route::UpDownRouting routing(g);
  const work::Workload workload = work::Workload::Uniform(1, 32);
  Rng rng(1);
  const auto mapping = work::ProcessMapping::RandomAligned(g, workload, rng);
  const sim::TrafficPattern pattern(g, workload, mapping);
  sim::SimConfig config;
  config.warmup_cycles = 500;
  config.measure_cycles = 2000;
  sim::NetworkSimulator simulator(g, routing, pattern, config);
  const sim::SimMetrics m = simulator.Run(0.2);
  EXPECT_GT(m.messages_delivered, 0u);
  ASSERT_EQ(m.per_app.size(), 1u);
  EXPECT_EQ(m.per_app[0].messages_delivered, m.messages_delivered);
}

TEST(EdgeCases, TwoSwitchSchedulingPipeline) {
  // The smallest machine the full pipeline supports: 2 switches, 2 apps of
  // one switch each. F_G is undefined (all clusters singletons) — the
  // scheduler must reject it cleanly rather than divide by zero.
  topo::SwitchGraph g(2, 4);
  g.AddLink(0, 1);
  const route::UpDownRouting routing(g);
  const sched::CommAwareScheduler scheduler(g, routing);
  EXPECT_THROW((void)scheduler.Schedule(work::Workload::Uniform(2, 4)), ContractError);
  // One app of 2 switches has intra pairs but no intercluster: also reject.
  EXPECT_THROW((void)scheduler.Schedule(work::Workload::Uniform(1, 8)), ContractError);
}

TEST(EdgeCases, MessageLengthOneFlit) {
  // Header == tail: single-flit messages exercise the release-on-head path.
  const topo::SwitchGraph g = topo::GenerateIrregularTopology({8, 4, 3, 3, 1000});
  const route::UpDownRouting routing(g);
  const work::Workload workload = work::Workload::Uniform(2, 16);
  Rng rng(2);
  const auto mapping = work::ProcessMapping::RandomAligned(g, workload, rng);
  const sim::TrafficPattern pattern(g, workload, mapping);
  sim::SimConfig config;
  config.message_length_flits = 1;
  config.warmup_cycles = 500;
  config.measure_cycles = 3000;
  sim::NetworkSimulator simulator(g, routing, pattern, config);
  const sim::SimMetrics m = simulator.Run(0.3);
  EXPECT_GT(m.messages_delivered, 0u);
  EXPECT_EQ(m.flits_delivered, m.messages_delivered);
  EXPECT_FALSE(m.deadlock_detected);
}

TEST(EdgeCases, TinyBuffersStillDeliver) {
  const topo::SwitchGraph g = topo::GenerateIrregularTopology({8, 4, 3, 4, 1000});
  const route::UpDownRouting routing(g);
  const work::Workload workload = work::Workload::Uniform(2, 16);
  Rng rng(3);
  const auto mapping = work::ProcessMapping::RandomAligned(g, workload, rng);
  const sim::TrafficPattern pattern(g, workload, mapping);
  sim::SimConfig config;
  config.input_buffer_flits = 1;  // minimum legal
  config.warmup_cycles = 1000;
  config.measure_cycles = 4000;
  sim::NetworkSimulator simulator(g, routing, pattern, config);
  const sim::SimMetrics m = simulator.Run(0.1);
  EXPECT_GT(m.messages_delivered, 0u);
  EXPECT_FALSE(m.deadlock_detected);
}

TEST(EdgeCases, PartitionOfOneSwitchPerCluster) {
  // Legal partition object, even though quality functions reject it.
  const qual::Partition p({0, 1, 2, 3});
  EXPECT_EQ(p.IntraPairCount(), 0u);
  EXPECT_EQ(p.InterPairCountOrdered(), 12u);
}

TEST(EdgeCases, TabuOnTwoClustersOfOne) {
  const dist::DistanceTable t(2, 1.0);
  // No inter-cluster swap can change anything; evaluator construction must
  // reject the degenerate (no intra pairs) space.
  EXPECT_THROW((void)sched::TabuSearch(t, {1, 1}), ContractError);
}

}  // namespace
}  // namespace commsched
