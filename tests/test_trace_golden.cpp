// Golden trace test (observability regression): TabuSearch on a fixed
// 16-switch topology with a pinned seed must emit the exact same JSONL event
// stream — schema and move sequence — as the checked-in golden file.
//
// The trace intentionally carries no timestamps, so the stream is fully
// deterministic for sequential (parallel_seeds = false) runs. Regenerate the
// golden after an intentional trace change with:
//
//   COMMSCHED_UPDATE_GOLDEN=1 ./build/tests/test_trace_golden
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "distance/distance_table.h"
#include "jsonl_test_util.h"
#include "obs/trace.h"
#include "routing/updown.h"
#include "sched/tabu.h"
#include "topology/generator.h"

namespace commsched {
namespace {

std::string GoldenPath() {
  return std::string(COMMSCHED_TEST_DATA_DIR) + "/tabu_trace16.golden.jsonl";
}

/// Runs the pinned scenario under a scoped tracer and returns the JSONL text.
std::string CaptureTrace() {
  topo::IrregularTopologyOptions topo_options;
  topo_options.switch_count = 16;
  topo_options.seed = 1;
  const topo::SwitchGraph graph = topo::GenerateIrregularTopology(topo_options);
  const route::UpDownRouting routing(graph);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);

  sched::TabuOptions options;
  options.seeds = 3;
  options.rng_seed = 42;
  options.parallel_seeds = false;  // sequential => deterministic event order

  std::ostringstream out;
  obs::Tracer tracer(out);
  {
    const obs::ScopedTracer scope(tracer);
    (void)sched::TabuSearch(table, {4, 4, 4, 4}, options);
  }
  return out.str();
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Required fields per event type; every line must carry seq + type, and the
/// identifying payload fields listed here.
void ExpectSchema(const std::map<std::string, std::string>& fields, const std::string& line) {
  ASSERT_NE(testutil::JsonRaw(fields, "seq"), "") << line;
  const std::string type = testutil::JsonString(fields, "type");
  ASSERT_NE(type, "") << line;
  const auto require = [&](std::initializer_list<const char*> keys) {
    for (const char* key : keys) {
      EXPECT_NE(testutil::JsonRaw(fields, key), "") << "missing '" << key << "' in " << line;
    }
  };
  if (type == "search.restart") {
    require({"algo", "seed", "fg"});
  } else if (type == "search.move") {
    require({"algo", "seed", "iter", "a", "b", "fg", "escape"});
  } else if (type == "search.local_min") {
    require({"algo", "seed", "iter", "fg", "hits"});
  } else if (type == "search.seed_done") {
    require({"algo", "seed", "iters", "evals", "best_fg"});
  } else if (type == "search.done") {
    require({"algo", "best_fg", "iters"});
  } else {
    ADD_FAILURE() << "unexpected event type '" << type << "' in " << line;
  }
}

/// The comparison key: event type plus the move-identifying integer fields.
/// Floats are deliberately excluded — the move sequence is the contract, the
/// fg values are covered by EXPECT_NEAR elsewhere and by schema checks here.
std::string CanonicalKey(const std::map<std::string, std::string>& fields) {
  std::string key = testutil::JsonString(fields, "type");
  for (const char* field : {"seed", "iter", "a", "b", "escape", "iters", "evals", "hits"}) {
    const std::string raw = testutil::JsonRaw(fields, field);
    if (!raw.empty()) {
      key += ' ';
      key += field;
      key += '=';
      key += raw;
    }
  }
  return key;
}

TEST(TraceGolden, TabuTraceMatchesGoldenFile) {
  const std::string trace = CaptureTrace();
  const std::vector<std::string> lines = SplitLines(trace);
  ASSERT_FALSE(lines.empty());

  if (std::getenv("COMMSCHED_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << trace;
    GTEST_SKIP() << "golden regenerated at " << GoldenPath();
  }

  // Every emitted line parses and satisfies the per-type schema, with
  // sequential seq numbers.
  std::vector<std::string> actual_keys;
  for (std::size_t k = 0; k < lines.size(); ++k) {
    const auto fields = testutil::ParseJsonObject(lines[k]);
    ASSERT_TRUE(fields.has_value()) << lines[k];
    ExpectSchema(*fields, lines[k]);
    EXPECT_EQ(testutil::JsonUint(*fields, "seq", lines.size()), k);
    actual_keys.push_back(CanonicalKey(*fields));
  }

  std::ifstream golden(GoldenPath());
  ASSERT_TRUE(golden.good()) << "missing golden file " << GoldenPath()
                             << " (regenerate with COMMSCHED_UPDATE_GOLDEN=1)";
  std::vector<std::string> golden_keys;
  std::string line;
  while (std::getline(golden, line)) {
    if (line.empty()) continue;
    const auto fields = testutil::ParseJsonObject(line);
    ASSERT_TRUE(fields.has_value()) << "golden line unparseable: " << line;
    ExpectSchema(*fields, line);
    golden_keys.push_back(CanonicalKey(*fields));
  }

  ASSERT_EQ(actual_keys.size(), golden_keys.size())
      << "event count changed; regenerate the golden if intentional";
  for (std::size_t k = 0; k < actual_keys.size(); ++k) {
    EXPECT_EQ(actual_keys[k], golden_keys[k]) << "at line " << k + 1;
  }
}

// Re-running the pinned scenario yields byte-identical traces — the property
// the golden file depends on.
TEST(TraceGolden, CaptureIsDeterministic) {
  EXPECT_EQ(CaptureTrace(), CaptureTrace());
}

}  // namespace
}  // namespace commsched
