#include "topology/serialize.h"

#include <gtest/gtest.h>

#include "topology/generator.h"
#include "topology/library.h"

namespace commsched::topo {
namespace {

TEST(Serialize, RoundTrip) {
  IrregularTopologyOptions options;
  options.switch_count = 16;
  options.seed = 3;
  const SwitchGraph g = GenerateIrregularTopology(options);
  const SwitchGraph back = FromText(ToText(g));
  EXPECT_EQ(back.switch_count(), g.switch_count());
  EXPECT_EQ(back.hosts_per_switch(), g.hosts_per_switch());
  ASSERT_EQ(back.link_count(), g.link_count());
  for (LinkId l = 0; l < g.link_count(); ++l) {
    EXPECT_TRUE(back.link(l) == g.link(l));
  }
}

TEST(Serialize, TextFormatShape) {
  SwitchGraph g(2, 4);
  g.AddLink(0, 1);
  EXPECT_EQ(ToText(g), "switches 2\nhosts_per_switch 4\nlink 0 1\n");
}

TEST(Serialize, ParserSkipsCommentsAndBlanks) {
  const SwitchGraph g = FromText(
      "# a comment\n"
      "switches 3\n"
      "\n"
      "hosts_per_switch 2\n"
      "link 0 1\n"
      "  # indented comment\n"
      "link 1 2\n");
  EXPECT_EQ(g.switch_count(), 3u);
  EXPECT_EQ(g.link_count(), 2u);
}

TEST(Serialize, ParserRejectsMalformedInput) {
  EXPECT_THROW((void)FromText("link 0 1\n"), ConfigError);             // missing switches
  EXPECT_THROW((void)FromText("switches 0\n"), ConfigError);           // zero switches
  EXPECT_THROW((void)FromText("switches 2\nlink 0\n"), ConfigError);   // one endpoint
  EXPECT_THROW((void)FromText("switches 2\nlink 0 5\n"), ConfigError); // out of range
  EXPECT_THROW((void)FromText("switches 2\nfrobnicate\n"), ConfigError);
}

// Hardening corpus (ISSUE 3 satellite): every malformed, truncated, or
// hostile input must surface as a ConfigError carrying the given fragment —
// never UB, a bad_alloc from a wrapped count, or a ContractError from the
// graph-construction contracts.
TEST(Serialize, MalformedInputCorpus) {
  struct Case {
    const char* name;
    const char* text;
    const char* expect_in_message;
  };
  const Case kCorpus[] = {
      {"negative switches wraps to huge", "switches -1\n", "positive switch count"},
      {"switch count allocation bomb", "switches 99999999999\n", "sanity cap"},
      {"switch count overflow", "switches 99999999999999999999999999\n",
       "positive switch count"},
      {"non-numeric switches", "switches many\n", "positive switch count"},
      {"truncated switches line", "switches\n", "positive switch count"},
      {"duplicate switches line", "switches 2\nswitches 3\n", "duplicate 'switches'"},
      {"trailing token on switches", "switches 2 extra\n", "trailing token"},
      {"negative hosts", "switches 2\nhosts_per_switch -4\n", "host count"},
      {"hosts allocation bomb", "switches 2\nhosts_per_switch 1000000000\n", "sanity cap"},
      {"duplicate hosts line",
       "switches 2\nhosts_per_switch 1\nhosts_per_switch 2\n",
       "duplicate 'hosts_per_switch'"},
      {"negative link endpoint", "switches 2\nlink -1 1\n", "non-negative endpoints"},
      {"truncated link line", "switches 2\nlink\n", "two non-negative endpoints"},
      {"trailing token on link", "switches 3\nlink 0 1 2\n", "trailing token"},
      {"self-loop link", "switches 2\nlink 1 1\n", "self-loop"},
      {"duplicate link", "switches 2\nlink 0 1\nlink 1 0\n", "duplicate link"},
      {"unknown keyword", "switches 2\nswitch 0\n", "unknown keyword"},
      {"binary garbage", "\x01\x02\xff garbage\n", "unknown keyword"},
  };
  for (const Case& c : kCorpus) {
    try {
      (void)FromText(c.text);
      ADD_FAILURE() << c.name << ": no error thrown";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect_in_message), std::string::npos)
          << c.name << ": message was: " << e.what();
    } catch (const std::exception& e) {
      ADD_FAILURE() << c.name << ": wrong exception type: " << e.what();
    }
  }
}

TEST(Serialize, DotContainsNodesAndEdges) {
  const SwitchGraph g = MakeRing(4);
  const std::string dot = ToDot(g);
  EXPECT_NE(dot.find("graph topology"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("n3"), std::string::npos);
}

TEST(Serialize, DotColorsClusters) {
  const SwitchGraph g = MakeRing(4);
  const std::string dot = ToDot(g, {0, 0, 1, 1});
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

TEST(Serialize, DotClusterMapSizeChecked) {
  const SwitchGraph g = MakeRing(4);
  EXPECT_THROW((void)ToDot(g, {0, 1}), ContractError);
}

}  // namespace
}  // namespace commsched::topo
