#include "topology/serialize.h"

#include <gtest/gtest.h>

#include "topology/generator.h"
#include "topology/library.h"

namespace commsched::topo {
namespace {

TEST(Serialize, RoundTrip) {
  IrregularTopologyOptions options;
  options.switch_count = 16;
  options.seed = 3;
  const SwitchGraph g = GenerateIrregularTopology(options);
  const SwitchGraph back = FromText(ToText(g));
  EXPECT_EQ(back.switch_count(), g.switch_count());
  EXPECT_EQ(back.hosts_per_switch(), g.hosts_per_switch());
  ASSERT_EQ(back.link_count(), g.link_count());
  for (LinkId l = 0; l < g.link_count(); ++l) {
    EXPECT_TRUE(back.link(l) == g.link(l));
  }
}

TEST(Serialize, TextFormatShape) {
  SwitchGraph g(2, 4);
  g.AddLink(0, 1);
  EXPECT_EQ(ToText(g), "switches 2\nhosts_per_switch 4\nlink 0 1\n");
}

TEST(Serialize, ParserSkipsCommentsAndBlanks) {
  const SwitchGraph g = FromText(
      "# a comment\n"
      "switches 3\n"
      "\n"
      "hosts_per_switch 2\n"
      "link 0 1\n"
      "  # indented comment\n"
      "link 1 2\n");
  EXPECT_EQ(g.switch_count(), 3u);
  EXPECT_EQ(g.link_count(), 2u);
}

TEST(Serialize, ParserRejectsMalformedInput) {
  EXPECT_THROW((void)FromText("link 0 1\n"), ConfigError);             // missing switches
  EXPECT_THROW((void)FromText("switches 0\n"), ConfigError);           // zero switches
  EXPECT_THROW((void)FromText("switches 2\nlink 0\n"), ConfigError);   // one endpoint
  EXPECT_THROW((void)FromText("switches 2\nlink 0 5\n"), ConfigError); // out of range
  EXPECT_THROW((void)FromText("switches 2\nfrobnicate\n"), ConfigError);
}

TEST(Serialize, DotContainsNodesAndEdges) {
  const SwitchGraph g = MakeRing(4);
  const std::string dot = ToDot(g);
  EXPECT_NE(dot.find("graph topology"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("n3"), std::string::npos);
}

TEST(Serialize, DotColorsClusters) {
  const SwitchGraph g = MakeRing(4);
  const std::string dot = ToDot(g, {0, 0, 1, 1});
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

TEST(Serialize, DotClusterMapSizeChecked) {
  const SwitchGraph g = MakeRing(4);
  EXPECT_THROW((void)ToDot(g, {0, 1}), ContractError);
}

}  // namespace
}  // namespace commsched::topo
