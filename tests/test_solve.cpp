#include "linalg/solve.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace commsched::linalg {
namespace {

Matrix RandomSpd(std::size_t n, commsched::Rng& rng) {
  // A^T A + n I is SPD.
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = rng.NextDouble() * 2.0 - 1.0;
    }
  }
  Matrix spd = a.Transposed() * a;
  for (std::size_t i = 0; i < n; ++i) {
    spd(i, i) += static_cast<double>(n);
  }
  return spd;
}

std::vector<double> MatVec(const Matrix& m, const std::vector<double>& x) {
  std::vector<double> y(m.rows(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      y[r] += m(r, c) * x[c];
    }
  }
  return y;
}

TEST(Lu, SolvesSmallSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const auto lu = LuFactorization::Compute(a);
  ASSERT_TRUE(lu.has_value());
  const auto x = lu->Solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SingularMatrixReturnsNullopt) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;  // rank 1
  EXPECT_FALSE(LuFactorization::Compute(a).has_value());
}

TEST(Lu, RequiresSquare) {
  Matrix a(2, 3);
  EXPECT_THROW((void)LuFactorization::Compute(a), commsched::ContractError);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const auto lu = LuFactorization::Compute(a);
  ASSERT_TRUE(lu.has_value());
  const auto x = lu->Solve({3.0, 4.0});
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, DeterminantKnownValues) {
  Matrix a(2, 2);
  a(0, 0) = 3.0;
  a(0, 1) = 1.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  const auto lu = LuFactorization::Compute(a);
  ASSERT_TRUE(lu.has_value());
  EXPECT_NEAR(lu->Determinant(), 10.0, 1e-12);
  EXPECT_NEAR(LuFactorization::Compute(Matrix::Identity(5))->Determinant(), 1.0, 1e-12);
}

TEST(Lu, RandomRoundTrip) {
  commsched::Rng rng(99);
  for (std::size_t n : {3u, 7u, 15u}) {
    const Matrix a = RandomSpd(n, rng);  // well-conditioned
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.NextDouble() * 4.0 - 2.0;
    const auto b = MatVec(a, x_true);
    const auto lu = LuFactorization::Compute(a);
    ASSERT_TRUE(lu.has_value());
    const auto x = lu->Solve(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-9) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Lu, RhsSizeMismatchThrows) {
  const auto lu = LuFactorization::Compute(Matrix::Identity(3));
  ASSERT_TRUE(lu.has_value());
  EXPECT_THROW((void)lu->Solve({1.0, 2.0}), commsched::ContractError);
}

TEST(Cholesky, SolvesSpdSystem) {
  commsched::Rng rng(7);
  const Matrix a = RandomSpd(8, rng);
  std::vector<double> x_true(8);
  for (auto& v : x_true) v = rng.NextDouble();
  const auto b = MatVec(a, x_true);
  const auto chol = CholeskyFactorization::Compute(a);
  ASSERT_TRUE(chol.has_value());
  const auto x = chol->Solve(b);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyFactorization::Compute(a).has_value());
}

TEST(Cholesky, AgreesWithLu) {
  commsched::Rng rng(55);
  const Matrix a = RandomSpd(10, rng);
  std::vector<double> b(10);
  for (auto& v : b) v = rng.NextDouble();
  const auto x_lu = LuFactorization::Compute(a)->Solve(b);
  const auto x_chol = CholeskyFactorization::Compute(a)->Solve(b);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(x_lu[i], x_chol[i], 1e-9);
  }
}

TEST(SolveLinearSystem, ThrowsOnSingular) {
  Matrix a(2, 2);  // zero matrix
  EXPECT_THROW((void)SolveLinearSystem(a, {1.0, 1.0}), commsched::ContractError);
}

TEST(SolveLinearSystem, OneShot) {
  Matrix a = Matrix::Identity(3);
  a *= 2.0;
  const auto x = SolveLinearSystem(a, {2.0, 4.0, 6.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

}  // namespace
}  // namespace commsched::linalg
